// Experiment T3 (Theorem 3, the regular case): a regular binary-chain query
// runs in time O(n t) where n is the size of the expression restricted to
// the reachable part. Sweeps graph size for (i) the demand-driven engine,
// (ii) the HSU preconstruction ablation — the engine's work follows the
// *reachable* size while HSU always materializes everything. A third sweep
// compares per-source all-pairs evaluation against the shared Tarjan
// condensation pass (Section 3 end).
#include <benchmark/benchmark.h>

#include "eval/hsu.h"
#include "eval/query.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace binchain;

/// Graph with one small reachable component (chain of 64 from v1) plus a
/// large irrelevant random part.
void BuildSparseReachable(Database& db, size_t irrelevant_edges, Rng& rng) {
  workloads::Chain(db, "e", "v", 64);
  for (size_t i = 0; i < irrelevant_edges; ++i) {
    size_t u = 100 + rng.Below(irrelevant_edges);
    size_t v = 100 + rng.Below(irrelevant_edges);
    db.AddFact("e", {"w" + std::to_string(u), "w" + std::to_string(v)});
  }
}

void BM_EngineReachableOnly(benchmark::State& state) {
  Database db;
  Rng rng(7);
  BuildSparseReachable(db, static_cast<size_t>(state.range(0)), rng);
  QueryEngine engine(&db);
  if (!engine.LoadProgramText(workloads::PathProgramText()).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  uint64_t nodes = 0, fetches = 0;
  for (auto _ : state) {
    auto r = engine.Query("path(v1, Y)");
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    nodes = r.value().stats.nodes;
    fetches = r.value().fetches;
  }
  // Independent of the irrelevant-part size.
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["fetches"] = static_cast<double>(fetches);
}

void BM_HsuPreconstructsEverything(benchmark::State& state) {
  Database db;
  Rng rng(7);
  BuildSparseReachable(db, static_cast<size_t>(state.range(0)), rng);
  QueryEngine engine(&db);
  if (!engine.LoadProgramText(workloads::PathProgramText()).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  TermId source = engine.views().pool().Unary(db.symbols().Intern("v1"));
  uint64_t arcs = 0;
  for (auto _ : state) {
    HsuStats stats;
    auto r = HsuEvaluate(engine.equations(), engine.views(),
                         *db.symbols().Find("path"), source, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    arcs = stats.preconstructed_arcs;
  }
  // Grows with the irrelevant-part size.
  state.counters["preconstructed"] = static_cast<double>(arcs);
}

/// Linear scaling in the reachable size: random connected-ish graph.
void BM_EngineScalesWithReachable(benchmark::State& state) {
  Database db;
  Rng rng(13);
  size_t n = static_cast<size_t>(state.range(0));
  workloads::RandomGraph(db, "e", "v", n, 3 * n, rng);
  QueryEngine engine(&db);
  if (!engine.LoadProgramText(workloads::PathProgramText()).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  uint64_t arcs = 0;
  for (auto _ : state) {
    auto r = engine.Query("path(v0, Y)");
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    arcs = r.value().stats.arcs;
  }
  state.counters["arcs"] = static_cast<double>(arcs);
}

/// All-free path(X, Y): shared condensation pass vs per-source traversal.
void BM_AllPairsShared(benchmark::State& state) {
  Database db;
  Rng rng(29);
  size_t n = static_cast<size_t>(state.range(0));
  workloads::RandomGraph(db, "e", "v", n, 2 * n, rng);
  QueryEngine engine(&db);
  if (!engine.LoadProgramText(workloads::PathProgramText()).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  size_t pairs = 0;
  for (auto _ : state) {
    auto r = engine.Query("path(X, Y)");
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    pairs = r.value().tuples.size();
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

void BM_AllPairsPerSource(benchmark::State& state) {
  Database db;
  Rng rng(29);
  size_t n = static_cast<size_t>(state.range(0));
  workloads::RandomGraph(db, "e", "v", n, 2 * n, rng);
  QueryEngine engine(&db);
  if (!engine.LoadProgramText(workloads::PathProgramText()).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  EvalOptions opt;
  opt.disable_closure_sharing = true;
  size_t pairs = 0;
  for (auto _ : state) {
    auto r = engine.Query("path(X, Y)", opt);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    pairs = r.value().tuples.size();
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}

}  // namespace

BENCHMARK(BM_EngineReachableOnly)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000);
BENCHMARK(BM_HsuPreconstructsEverything)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Arg(64000);
BENCHMARK(BM_EngineScalesWithReachable)
    ->Arg(1000)
    ->Arg(2000)
    ->Arg(4000)
    ->Arg(8000)
    ->Arg(16000);
BENCHMARK(BM_AllPairsShared)->Arg(100)->Arg(200)->Arg(400);
BENCHMARK(BM_AllPairsPerSource)->Arg(100)->Arg(200)->Arg(400);

BENCHMARK_MAIN();
