// Experiment S4p: Naughton's alternating-binding program (Section 4),
//   p(X, Y) :- b0(X, Y).
//   p(X, Y) :- b1(X, Z), p(Y, Z).
// whose adorned program alternates between bf and fb and whose binary-chain
// form is the nonregular equation
//   bin-p~fb = base-r2 U base-r0.out-r3 U in-r1.bin-p~fb.out-r3.
// Compares the Section-4 transformation against magic sets and seminaive on
// acyclic b1 data of growing size.
#include <benchmark/benchmark.h>

#include <string>

#include "baselines/bottom_up.h"
#include "baselines/magic.h"
#include "datalog/parser.h"
#include "transform/binarize.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace binchain;

struct AltCase {
  Database db;
  Program program;
  Literal query;

  explicit AltCase(size_t n) {
    Rng rng(321);
    workloads::RandomGraph(db, "b0", "u", n, 2 * n, rng);
    workloads::RandomDag(db, "b1", "u", n, 2 * n, rng);
    program =
        ParseProgram(workloads::AlternatingProgramText(), db.symbols())
            .take();
    query = ParseLiteral("p(u0, Y)", db.symbols()).take();
  }
};

void BM_AltTransformed(benchmark::State& state) {
  AltCase c(static_cast<size_t>(state.range(0)));
  uint64_t fetches = 0, nodes = 0;
  for (auto _ : state) {
    c.db.ResetFetches();
    auto r = EvaluateViaBinarization(c.program, c.db, c.query);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    fetches = c.db.TotalFetches();
    nodes = r.value().stats.nodes;
  }
  state.counters["fetches"] = static_cast<double>(fetches);
  state.counters["nodes"] = static_cast<double>(nodes);
}

void BM_AltMagic(benchmark::State& state) {
  AltCase c(static_cast<size_t>(state.range(0)));
  uint64_t fetches = 0;
  for (auto _ : state) {
    BottomUpStats stats;
    auto r = MagicQuery(c.program, c.db, c.query, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    fetches = stats.fetches;
  }
  state.counters["fetches"] = static_cast<double>(fetches);
}

void BM_AltSeminaive(benchmark::State& state) {
  AltCase c(static_cast<size_t>(state.range(0)));
  uint64_t fetches = 0;
  for (auto _ : state) {
    BottomUpStats stats;
    auto r = SeminaiveQuery(c.program, c.db, c.query, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    fetches = stats.fetches;
  }
  state.counters["fetches"] = static_cast<double>(fetches);
}

}  // namespace

BENCHMARK(BM_AltTransformed)->Arg(100)->Arg(200)->Arg(400)->Arg(800);
BENCHMARK(BM_AltMagic)->Arg(100)->Arg(200)->Arg(400)->Arg(800)->MinTime(0.05);
BENCHMARK(BM_AltSeminaive)->Arg(100)->Arg(200)->Arg(400)->Arg(800)->MinTime(0.02);

BENCHMARK_MAIN();
