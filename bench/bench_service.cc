// Standalone query-service throughput benchmark: evaluates an all-sources
// same-generation batch (one sg(c, Y) request per constant, the
// bench_table1 samples) through QueryService at 1/2/4/8 threads, verifying
// that every thread count returns byte-identical result sets before
// reporting aggregate queries/sec. A cyclic Figure-8 batch (overlapping
// sources under the |D1|*|D2| bound) rides along as the contention-heavy
// case, and an all-free sg(X, Y) batch as the shared-artifact stress.
// `fetches` and `memo_hits` together show the epoch-shared artifact effect:
// probes served by the snapshot-owned memos cost no EDB fetches.
//
// Each batch also runs once through the async future-based submission path
// (SubmitBatch + Take), reported as `async_qps` next to the blocking
// throughput, and a dedicated cancellation benchmark measures in-flight
// deadline-enforcement latency: how far past its deadline a provably long
// query (Figure 7 (b)) actually runs before the engine's cancellation
// points unwind it.
//
// Two answer-cache benchmarks ride along: a skewed-repeat (Zipf) stream
// evaluated one query at a time against a cache-off and a cache-on
// service (qps / p50 / hit-rate A/B with byte-identical result hashes),
// and a publish-heavy live run demonstrating selective invalidation —
// publishes touching only `down` retire exactly the pdown entries while
// every pup entry keeps hitting.
//
// The JSON snapshot carries, per benchmark, a `status` object counting
// per-query status codes and a `result_hash` over the response tuples, so
// the CI regression gate (bench/check_regression.py) can assert that
// result sets agree across thread counts and that failure modes
// (deadline_exceeded / cancelled / overloaded) appear only where expected.
//
// Usage:
//   bench_service [--n <size>] [--reps <k>] [--threads <list>] [--smoke]
//                 [--json [path]]
//
// `--json` writes BENCH_service.json (default path) so successive PRs can
// track the throughput trajectory alongside BENCH_storage.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cache/answer_cache.h"
#include "datalog/parser.h"
#include "eval/answer_sink.h"
#include "live/snapshot_manager.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace binchain;
using bench::HostJson;
using bench::JsonEscape;
using bench::MsSince;

/// Per-query status-code counts over one batch run (the regression gate
/// asserts on these).
struct StatusCounts {
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  uint64_t overloaded = 0;
  uint64_t other = 0;
  void Count(const Status& s) {
    switch (s.code()) {
      case StatusCode::kOk: ++ok; break;
      case StatusCode::kDeadlineExceeded: ++deadline_exceeded; break;
      case StatusCode::kCancelled: ++cancelled; break;
      case StatusCode::kOverloaded: ++overloaded; break;
      default: ++other; break;
    }
  }
};

struct BenchResult {
  std::string name;
  size_t threads = 1;
  uint64_t queries = 0;
  uint64_t tuples = 0;   // sanity: must match across thread counts and PRs
  uint64_t fetches = 0;  // aggregate t-cost, deterministic per batch
  uint64_t memo_hits = 0;  // probes served by the epoch-shared artifacts
  double startup_ms = 0;  // service construction (plan + workers + freeze)
  double wall_ms = 0;    // best-of-reps batch wall time
  double qps = 0;        // queries / second at the best rep (blocking path)
  double async_qps = 0;  // same batch through SubmitBatch + futures
  double speedup = 1;    // vs the 1-thread run of the same batch
  // Per-query latency percentiles over every query of this run (all reps,
  // blocking + async), read back from the service's own
  // binchain_service_latency_ms registry histogram.
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  uint64_t result_hash = 0;  // over all response tuples; order-sensitive
  StatusCounts status;   // per-query status codes of the recorded run
  bool identical = true;  // result sets match the 1-thread reference
  bool ok = true;
  std::string error;
};

/// FNV-1a over every response's tuples (in batch order): equal across
/// thread counts and submission paths for deterministic batches, so the
/// regression gate can catch result divergence without shipping tuples.
uint64_t HashResponses(const std::vector<QueryResponse>& responses) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const QueryResponse& r : responses) {
    mix(r.status.ok() ? 1 : 2);
    mix(r.tuples.size());
    for (const Tuple& t : r.tuples) {
      for (SymbolId c : t) mix(c);
    }
  }
  return h;
}

/// Every constant interned in the database: the all-sources request set.
std::vector<std::string> AllConstants(const Database& db) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const std::string& name : db.relation_names()) {
    const Relation* rel = db.Find(name);
    for (TupleRef t : rel->tuples()) {
      for (SymbolId c : t) {
        if (seen.insert(db.symbols().Name(c)).second) {
          out.push_back(db.symbols().Name(c));
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct Batch {
  std::string label;
  std::unique_ptr<Database> db;
  Program program;
  std::vector<QueryRequest> requests;
};

std::unique_ptr<Batch> MakeSgBatch(const std::string& label,
                                   std::string (*build)(Database&, size_t),
                                   size_t n, const QueryOptions& options) {
  auto b = std::make_unique<Batch>();
  b->label = label;
  b->db = std::make_unique<Database>();
  build(*b->db, n);
  auto parsed = ParseProgram(workloads::SgProgramText(), b->db->symbols());
  if (!parsed.ok()) return nullptr;
  b->program = parsed.take();
  for (const std::string& c : AllConstants(*b->db)) {
    QueryRequest req;
    req.pred = "sg";
    req.source = c;
    req.options = options;
    b->requests.push_back(std::move(req));
  }
  return b;
}

/// All-pairs-style stress on the shared caches: every request is the free-
/// free sg(X, Y), so each one sweeps every candidate source. Pre-refactor,
/// every worker recomputed the candidate set and re-fetched every edge per
/// sweep; with epoch-shared artifacts the source set is computed once per
/// epoch and every probe is memo-served.
std::unique_ptr<Batch> MakeAllFreeBatch(size_t n, size_t repeats) {
  auto b = std::make_unique<Batch>();
  b->label = "allfree/n=" + std::to_string(n);
  b->db = std::make_unique<Database>();
  workloads::Fig7c(*b->db, n);
  auto parsed = ParseProgram(workloads::SgProgramText(), b->db->symbols());
  if (!parsed.ok()) return nullptr;
  b->program = parsed.take();
  for (size_t i = 0; i < repeats; ++i) {
    QueryRequest req;
    req.pred = "sg";
    b->requests.push_back(std::move(req));
  }
  return b;
}

std::unique_ptr<Batch> MakeFig8Batch(size_t m, size_t n, int overlap) {
  auto b = std::make_unique<Batch>();
  b->label = "fig8/m=" + std::to_string(m) + ",n=" + std::to_string(n);
  b->db = std::make_unique<Database>();
  workloads::Fig8(*b->db, m, n);
  auto parsed = ParseProgram(workloads::SgProgramText(), b->db->symbols());
  if (!parsed.ok()) return nullptr;
  b->program = parsed.take();
  QueryOptions options;
  options.use_cyclic_bound = true;
  // Overlapping sources: every up-cycle node, `overlap` times over, so
  // several workers traverse the same cyclic region simultaneously.
  for (int rep = 0; rep < overlap; ++rep) {
    for (size_t i = 1; i <= m; ++i) {
      QueryRequest req;
      req.pred = "sg";
      req.source = "a" + std::to_string(i);
      req.options = options;
      b->requests.push_back(std::move(req));
    }
  }
  return b;
}

/// Runs the batch at `threads` on a service over the (shared, frozen-after-
/// first-service) database; fills throughput numbers and compares result
/// sets against `reference` (the 1-thread responses) when given.
BenchResult RunBatch(Batch& batch, size_t threads, int reps,
                     const std::vector<QueryResponse>* reference,
                     std::vector<QueryResponse>* out_responses) {
  BenchResult r;
  r.name = batch.label + "/threads=" + std::to_string(threads);
  r.threads = threads;
  r.queries = batch.requests.size();

  // The registry is process-global and cumulative; zero it per run so the
  // latency histogram read back below covers exactly this run's queries.
  obs::Registry::Global().ResetForTest();

  QueryService::Options opts;
  opts.num_threads = threads;
  // Async submission below pushes the whole batch at once; keep the
  // high-water mark above the batch so admission never sheds here.
  opts.queue_depth = std::max<size_t>(1024, batch.requests.size());
  // Startup cost: with the shared plan, program transformation and machine
  // compilation happen once, so this should stay flat as threads grow.
  auto ts = std::chrono::steady_clock::now();
  QueryService service(batch.db.get(), batch.program, opts);
  r.startup_ms = MsSince(ts);
  if (!service.status().ok()) {
    r.ok = false;
    r.error = service.status().message();
    return r;
  }

  r.wall_ms = 1e300;
  std::vector<QueryResponse> responses;
  for (int i = 0; i < reps; ++i) {
    BatchStats stats;
    auto t0 = std::chrono::steady_clock::now();
    responses = service.EvalBatch(batch.requests, &stats);
    double ms = MsSince(t0);
    if (stats.failed != 0) {
      for (const QueryResponse& resp : responses) {
        if (!resp.status.ok()) {
          r.ok = false;
          r.error = resp.status.message();
          return r;
        }
      }
    }
    if (ms < r.wall_ms) {
      r.wall_ms = ms;
      r.tuples = stats.tuples;
      r.fetches = stats.fetches;
      r.memo_hits = stats.total.memo_hits;
    }
  }
  r.qps = r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.queries) / r.wall_ms
                        : 0;
  for (const QueryResponse& resp : responses) r.status.Count(resp.status);
  r.result_hash = HashResponses(responses);

  // One async rep: the same batch through SubmitBatch + futures. Results
  // must be identical to the blocking path (same workers, same epoch);
  // wall time includes future wakeups, so async_qps vs qps is the price
  // of the future-based surface.
  {
    auto t0 = std::chrono::steady_clock::now();
    BatchHandle handle = service.SubmitBatch(batch.requests);
    BatchStats astats;
    std::vector<QueryResponse> aresp = handle.Take(&astats);
    double ms = MsSince(t0);
    r.async_qps =
        ms > 0 ? 1000.0 * static_cast<double>(r.queries) / ms : 0;
    if (astats.failed != 0 || HashResponses(aresp) != r.result_hash) {
      r.ok = false;
      r.error = "async submission diverged from blocking batch";
      return r;
    }
  }

  // Percentiles from the new observability layer rather than a bench-local
  // sort: the same numbers an operator would scrape off /metrics.
  {
    obs::HistogramSnapshot lat =
        obs::Registry::Global()
            .GetHistogram("binchain_service_latency_ms",
                          "Query latency, submission to completion")
            ->Snapshot();
    r.p50_ms = lat.P50();
    r.p95_ms = lat.P95();
    r.p99_ms = lat.P99();
  }

  if (reference != nullptr) {
    r.identical = responses.size() == reference->size();
    for (size_t i = 0; r.identical && i < responses.size(); ++i) {
      r.identical = responses[i].tuples == (*reference)[i].tuples;
    }
  }
  if (out_responses != nullptr) *out_responses = std::move(responses);
  return r;
}

/// In-flight deadline-enforcement latency: a provably long query (Figure
/// 7 (b), Theta(n^2) nodes) with a budget far below its uncancelled
/// runtime, evaluated one at a time so the deadline always lands
/// mid-traversal. Reports how far past the deadline each unwind completed.
struct CancelResult {
  uint64_t queries = 0;
  double deadline_ms = 0;
  double uncancelled_ms = 0;    // the same query, run to completion
  double latency_p50_ms = 0;    // overshoot past the deadline, median
  double latency_max_ms = 0;    // overshoot past the deadline, worst
  uint64_t partial_tuples = 0;  // answers gathered before the last unwind
  StatusCounts status;
  bool ok = true;
  std::string error;
};

CancelResult RunCancellationLatency(size_t n, int reps) {
  CancelResult cr;
  Database db;
  std::string source = workloads::Fig7b(db, n);
  auto parsed = ParseProgram(workloads::SgProgramText(), db.symbols());
  if (!parsed.ok()) {
    cr.ok = false;
    cr.error = parsed.status().message();
    return cr;
  }
  QueryService service(&db, parsed.take(), {1, 64});
  if (!service.status().ok()) {
    cr.ok = false;
    cr.error = service.status().message();
    return cr;
  }
  QueryRequest req{"sg", source, "", {}};
  auto t0 = std::chrono::steady_clock::now();
  QueryResponse full = service.Eval(req);
  cr.uncancelled_ms = MsSince(t0);
  if (!full.status.ok()) {
    cr.ok = false;
    cr.error = full.status.message();
    return cr;
  }
  // A budget an order of magnitude under the uncancelled runtime, so the
  // unwind is always mid-flight.
  cr.deadline_ms = std::max(2.0, cr.uncancelled_ms / 16);
  cr.queries = static_cast<uint64_t>(std::max(3, reps * 3));
  std::vector<double> overshoot;
  for (uint64_t i = 0; i < cr.queries; ++i) {
    QueryRequest limited = req;
    limited.options.deadline_ms = cr.deadline_ms;
    t0 = std::chrono::steady_clock::now();
    QueryResponse resp = service.Eval(limited);
    double ms = MsSince(t0);
    cr.status.Count(resp.status);
    if (resp.status.code() != StatusCode::kDeadlineExceeded ||
        !resp.partial) {
      cr.ok = false;
      cr.error = "expected a mid-flight deadline unwind";
      return cr;
    }
    overshoot.push_back(ms - cr.deadline_ms);
    cr.partial_tuples = resp.tuples.size();
  }
  std::sort(overshoot.begin(), overshoot.end());
  cr.latency_p50_ms = overshoot[overshoot.size() / 2];
  cr.latency_max_ms = overshoot.back();
  return cr;
}

/// Streamed-delivery latency: the ladder query (Figure 7 (b), one answer
/// per fixpoint iteration) evaluated with an AnswerSink attached, timing
/// the first chunk's arrival against the full response. The data plane's
/// whole point is that first_chunk <= total with room to spare — the
/// regression gate asserts the p50s keep that order, which can only hold
/// if chunks really leave the engine mid-fixpoint.
struct StreamingResult {
  std::string name;
  uint64_t queries = 0;
  uint64_t chunks = 0;  // total over all queries (>= 2 per query required)
  double first_chunk_p50_ms = 0;
  double first_chunk_p95_ms = 0;
  double total_p50_ms = 0;
  double total_p95_ms = 0;
  bool ok = true;
  std::string error;
};

StreamingResult RunStreaming(size_t n, int reps) {
  StreamingResult sr;
  sr.name = "streaming/fig7b/n=" + std::to_string(n);
  Database db;
  std::string source = workloads::Fig7b(db, n);
  auto parsed = ParseProgram(workloads::SgProgramText(), db.symbols());
  if (!parsed.ok()) {
    sr.ok = false;
    sr.error = parsed.status().message();
    return sr;
  }
  QueryService service(&db, parsed.take(), {1, 64});
  if (!service.status().ok()) {
    sr.ok = false;
    sr.error = service.status().message();
    return sr;
  }

  /// Stamps the arrival of the first chunk relative to submission.
  struct TimingSink : AnswerSink {
    std::chrono::steady_clock::time_point t0;
    double first_ms = -1;
    uint64_t chunks = 0;
    void OnAnswers(const Tuple*, size_t, const SymbolTable&) override {
      if (first_ms < 0) first_ms = MsSince(t0);
      ++chunks;
    }
  };

  sr.queries = static_cast<uint64_t>(std::max(8, reps * 8));
  std::vector<double> first, total;
  QueryRequest req{"sg", source, "", {}};
  for (uint64_t i = 0; i < sr.queries; ++i) {
    TimingSink sink;
    QueryRequest q = req;
    q.sink = &sink;
    sink.t0 = std::chrono::steady_clock::now();
    QueryResponse resp = service.Eval(q);
    double tot = MsSince(sink.t0);
    if (!resp.status.ok()) {
      sr.ok = false;
      sr.error = resp.status.message();
      return sr;
    }
    if (sink.first_ms < 0 || sink.chunks < 2) {
      sr.ok = false;
      sr.error = "expected >= 2 streamed chunks on the ladder, got " +
                 std::to_string(sink.chunks);
      return sr;
    }
    first.push_back(sink.first_ms);
    total.push_back(tot);
    sr.chunks += sink.chunks;
  }
  std::sort(first.begin(), first.end());
  std::sort(total.begin(), total.end());
  auto pct = [](const std::vector<double>& v, size_t p) {
    return v[std::min(v.size() - 1, v.size() * p / 100)];
  };
  sr.first_chunk_p50_ms = pct(first, 50);
  sr.first_chunk_p95_ms = pct(first, 95);
  sr.total_p50_ms = pct(total, 50);
  sr.total_p95_ms = pct(total, 95);
  return sr;
}

/// Before/after cost of the observability layer on the service hot path:
/// the same batch through two services over one frozen database, one with
/// record_metrics off (no counters, histograms, gauge or flight recorder)
/// and one with the production default on. Reps interleave so thermal /
/// frequency drift hits both sides equally; best-of-reps wall times make
/// the ratio a structural-overhead measure, not a noise sample. The
/// regression gate bounds `ratio` (wall_on / wall_off); the design target
/// is <= 1.01 — a handful of relaxed increments per completed query.
struct ObsOverheadResult {
  std::string name;
  size_t threads = 0;
  uint64_t queries = 0;
  double wall_off_ms = 1e300;  // best rep, metrics disabled
  double wall_on_ms = 1e300;   // best rep, metrics enabled
  double ratio = 0;            // wall_on / wall_off
  bool ok = true;
  std::string error;
};

ObsOverheadResult RunObsOverhead(Batch& batch, size_t threads, int reps) {
  ObsOverheadResult r;
  r.name = batch.label + "/obs_overhead";
  r.threads = threads;
  r.queries = batch.requests.size();

  QueryService::Options opts;
  opts.num_threads = threads;
  opts.queue_depth = std::max<size_t>(1024, batch.requests.size());
  QueryService::Options off = opts;
  off.record_metrics = false;
  QueryService service_off(batch.db.get(), batch.program, off);
  QueryService service_on(batch.db.get(), batch.program, opts);
  if (!service_off.status().ok() || !service_on.status().ok()) {
    r.ok = false;
    r.error = (!service_off.status().ok() ? service_off.status()
                                          : service_on.status())
                  .message();
    return r;
  }

  uint64_t tuples_off = 0, tuples_on = 0;
  for (int i = 0; i < std::max(3, reps); ++i) {
    BatchStats stats;
    auto t0 = std::chrono::steady_clock::now();
    service_off.EvalBatch(batch.requests, &stats);
    r.wall_off_ms = std::min(r.wall_off_ms, MsSince(t0));
    tuples_off = stats.tuples;

    t0 = std::chrono::steady_clock::now();
    service_on.EvalBatch(batch.requests, &stats);
    r.wall_on_ms = std::min(r.wall_on_ms, MsSince(t0));
    tuples_on = stats.tuples;
  }
  if (tuples_off != tuples_on) {
    r.ok = false;
    r.error = "metrics on/off runs disagree on result size";
    return r;
  }
  r.ratio = r.wall_off_ms > 0 ? r.wall_on_ms / r.wall_off_ms : 0;
  return r;
}

/// Skewed-repeat workload: queries drawn one at a time from a Zipf
/// distribution over the ranked constants, the request shape the answer
/// cache exists for. The same deterministic stream runs against a
/// cache-off and a cache-on service over one shared frozen database;
/// one-at-a-time submission keeps in-batch dedup out of the picture, so
/// the A/B isolates the cache itself. Responses are hashed in stream
/// order on both sides — the cache must never change an answer.
struct SkewedCacheResult {
  std::string name;
  uint64_t queries = 0;
  uint64_t distinct = 0;       // population the Zipf ranks draw from
  double zipf_s = 0;
  double wall_off_ms = 1e300;  // best rep, cache disabled
  double wall_on_ms = 1e300;   // best rep, cache enabled
  double qps_off = 0;
  double qps_on = 0;
  double speedup = 0;          // qps_on / qps_off
  double p50_off_ms = 0;       // per-query latency, best rep
  double p50_on_ms = 0;
  double hit_rate = 0;         // over every cache-on rep
  uint64_t result_hash_off = 0;
  uint64_t result_hash_on = 0;
  bool hashes_match = false;
  bool ok = true;
  std::string error;
};

SkewedCacheResult RunSkewedCache(size_t n, int reps) {
  SkewedCacheResult r;
  r.name = "skewed/fig7b/n=" + std::to_string(n);
  r.zipf_s = 1.07;
  Database db;
  workloads::Fig7b(db, n);
  auto parsed = ParseProgram(workloads::SgProgramText(), db.symbols());
  if (!parsed.ok()) {
    r.ok = false;
    r.error = parsed.status().message();
    return r;
  }
  Program program = parsed.take();

  // Rank every constant and draw a fixed stream from the Zipf CDF; the
  // seed makes the stream identical across sides, reps, and PRs.
  std::vector<std::string> sources = AllConstants(db);
  r.distinct = sources.size();
  std::vector<double> cdf;
  cdf.reserve(sources.size());
  double acc = 0;
  for (size_t i = 0; i < sources.size(); ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), r.zipf_s);
    cdf.push_back(acc);
  }
  const size_t kStream = 512;
  r.queries = kStream;
  Rng rng(0x5eedcafe);
  std::vector<const std::string*> stream;
  stream.reserve(kStream);
  for (size_t i = 0; i < kStream; ++i) {
    double u = static_cast<double>(rng.Next() >> 11) * 0x1.0p-53 * acc;
    size_t idx = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (idx >= sources.size()) idx = sources.size() - 1;
    stream.push_back(&sources[idx]);
  }

  QueryService::Options off_opts;
  off_opts.num_threads = 2;
  QueryService::Options on_opts = off_opts;
  on_opts.answer_cache_bytes = 64 << 20;
  QueryService service_off(&db, program, off_opts);
  QueryService service_on(&db, program, on_opts);
  if (!service_off.status().ok() || !service_on.status().ok()) {
    r.ok = false;
    r.error = (!service_off.status().ok() ? service_off.status()
                                          : service_on.status())
                  .message();
    return r;
  }

  // One pass of the stream, one query at a time (the serving shape —
  // cache hits complete on the caller thread, misses go through the
  // workers). Returns false on any failed query.
  auto run_stream = [&](QueryService& service, double* wall_ms, double* p50,
                        uint64_t* hash) {
    std::vector<QueryResponse> responses;
    responses.reserve(stream.size());
    std::vector<double> lat;
    lat.reserve(stream.size());
    auto t0 = std::chrono::steady_clock::now();
    for (const std::string* source : stream) {
      QueryRequest req;
      req.pred = "sg";
      req.source = *source;
      auto q0 = std::chrono::steady_clock::now();
      responses.push_back(service.Eval(req));
      lat.push_back(MsSince(q0));
      if (!responses.back().status.ok()) {
        r.ok = false;
        r.error = responses.back().status.message();
        return false;
      }
    }
    double ms = MsSince(t0);
    if (ms < *wall_ms) {
      *wall_ms = ms;
      std::sort(lat.begin(), lat.end());
      *p50 = lat[lat.size() / 2];
    }
    uint64_t h = HashResponses(responses);
    if (*hash != 0 && *hash != h) {
      r.ok = false;
      r.error = "skewed stream hash drifted across reps";
      return false;
    }
    *hash = h;
    return true;
  };

  // Reps interleave so machine drift hits both sides equally. The cache
  // stays warm across cache-on reps — steady-state behavior is exactly
  // what the benchmark is after.
  for (int i = 0; i < std::max(3, reps); ++i) {
    if (!run_stream(service_off, &r.wall_off_ms, &r.p50_off_ms,
                    &r.result_hash_off) ||
        !run_stream(service_on, &r.wall_on_ms, &r.p50_on_ms,
                    &r.result_hash_on)) {
      return r;
    }
  }
  r.qps_off = r.wall_off_ms > 0
                  ? 1000.0 * static_cast<double>(kStream) / r.wall_off_ms
                  : 0;
  r.qps_on = r.wall_on_ms > 0
                 ? 1000.0 * static_cast<double>(kStream) / r.wall_on_ms
                 : 0;
  r.speedup = r.qps_off > 0 ? r.qps_on / r.qps_off : 0;
  r.hashes_match = r.result_hash_on == r.result_hash_off;
  cache::CacheSnapshot snap = service_on.answer_cache()->Snapshot();
  r.hit_rate = snap.HitRate();
  return r;
}

/// Publish-heavy selective invalidation: two independent closures over
/// disjoint base relations (support(pup) = {up}, support(pdown) = {down})
/// on a live service, publishes that grow only the down-chain. Each
/// publish must invalidate exactly the pdown entries (the up side keeps
/// hitting off the copy-on-write re-shared relation), so the steady-state
/// hit rate under a write stream is 1/2, not 0.
struct CacheInvalidationResult {
  std::string name;
  uint64_t warm_entries = 0;      // entries after the warming pass
  uint64_t publishes = 0;
  uint64_t invalidated = 0;       // total across all publishes
  uint64_t surviving_hits = 0;    // pup hits recorded after publishes
  uint64_t expected_per_publish = 0;  // pdown entry count
  bool selective = false;  // every publish retired exactly the pdown side
  bool ok = true;
  std::string error;
};

CacheInvalidationResult RunCacheInvalidation(size_t chain, int cycles) {
  CacheInvalidationResult r;
  r.name = "cache_invalidation/chain=" + std::to_string(chain);
  r.publishes = static_cast<uint64_t>(cycles);
  r.expected_per_publish = chain;  // one pdown entry per source d1..d<chain>

  static const char* kTwoClosures =
      "pup(X, Y) :- up(X, Y).\n"
      "pup(X, Y) :- up(X, Z), pup(Z, Y).\n"
      "pdown(X, Y) :- down(X, Y).\n"
      "pdown(X, Y) :- down(X, Z), pdown(Z, Y).\n";
  auto genesis = std::make_unique<Database>();
  genesis->GetOrCreate("up", 2);
  genesis->GetOrCreate("down", 2);
  for (size_t i = 1; i <= chain; ++i) {
    genesis->AddFact("up", {"u" + std::to_string(i),
                            "u" + std::to_string(i + 1)});
    genesis->AddFact("down", {"d" + std::to_string(i),
                              "d" + std::to_string(i + 1)});
  }
  auto parsed = ParseProgram(kTwoClosures, genesis->symbols());
  if (!parsed.ok()) {
    r.ok = false;
    r.error = parsed.status().message();
    return r;
  }
  Program program = parsed.take();
  SnapshotManager manager(std::move(genesis));
  QueryService::Options opts;
  opts.num_threads = 2;
  opts.answer_cache_bytes = 16 << 20;
  QueryService service(&manager, program, opts);
  if (!service.status().ok()) {
    r.ok = false;
    r.error = service.status().message();
    return r;
  }

  auto query_all = [&](const char* pred, const char* prefix) {
    for (size_t i = 1; i <= chain; ++i) {
      QueryRequest req;
      req.pred = pred;
      req.source = prefix + std::to_string(i);
      QueryResponse resp = service.Eval(req);
      if (!resp.status.ok()) {
        r.ok = false;
        r.error = resp.status.message();
        return false;
      }
    }
    return true;
  };

  if (!query_all("pup", "u") || !query_all("pdown", "d")) return r;
  const cache::AnswerCache* cache = service.answer_cache();
  r.warm_entries = cache->Snapshot().entries;

  r.selective = true;
  size_t next_down = chain + 1;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    cache::CacheSnapshot before = cache->Snapshot();
    manager.AddFact("down", {"d" + std::to_string(next_down),
                             "d" + std::to_string(next_down + 1)});
    ++next_down;
    PublishStats ps = manager.Publish();
    if (!ps.status.ok()) {
      r.ok = false;
      r.error = ps.status.message();
      return r;
    }
    cache::CacheSnapshot after = cache->Snapshot();
    uint64_t dropped = after.invalidations - before.invalidations;
    r.invalidated += dropped;
    // Selectivity: the publish touched only `down`, so exactly the pdown
    // entries may go; every pup entry must survive and keep hitting.
    if (dropped != r.expected_per_publish) r.selective = false;
    if (!query_all("pup", "u") || !query_all("pdown", "d")) return r;
    cache::CacheSnapshot served = cache->Snapshot();
    uint64_t pup_hits = served.hits - after.hits;
    r.surviving_hits += pup_hits;
    if (pup_hits < chain) r.selective = false;  // a pup entry was dropped
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 128;
  int reps = 3;
  bool json = false;
  std::string json_path = "BENCH_service.json";
  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--n") && i + 1 < argc) {
      n = static_cast<size_t>(std::atol(argv[++i]));
    } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
      if (reps < 1) {
        std::fprintf(stderr, "--reps must be >= 1\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      thread_counts.clear();
      for (const char* p = argv[++i]; *p;) {
        char* end = nullptr;
        size_t t = static_cast<size_t>(std::strtoul(p, &end, 10));
        if (end == p || t == 0) {
          std::fprintf(stderr, "bad --threads list (want e.g. 1,2,4)\n");
          return 2;
        }
        p = end;
        if (*p == ',') ++p;
        thread_counts.push_back(t);
      }
    } else if (!std::strcmp(argv[i], "--smoke")) {
      n = 32;
      reps = 1;
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n <size>] [--reps <k>] [--threads <list>] "
                   "[--smoke] [--json [path]]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<std::unique_ptr<Batch>> batches;
  batches.push_back(MakeSgBatch("fig7a", &workloads::Fig7a, n, {}));
  batches.push_back(MakeSgBatch("fig7b", &workloads::Fig7b, n / 2, {}));
  batches.push_back(MakeSgBatch("fig7c", &workloads::Fig7c, n, {}));
  batches.push_back(MakeFig8Batch(17, 19, 4));
  batches.push_back(MakeAllFreeBatch(n, 8));

  std::vector<BenchResult> results;
  int failures = 0;
  for (auto& batch : batches) {
    if (batch == nullptr) {
      ++failures;
      continue;
    }
    std::vector<QueryResponse> reference;
    double base_qps = 0;
    for (size_t ti = 0; ti < thread_counts.size(); ++ti) {
      // The first entry (by position, so duplicate thread values still get
      // checked) is the reference run all others are compared against.
      bool is_reference = ti == 0;
      BenchResult r = RunBatch(*batch, thread_counts[ti], reps,
                               is_reference ? nullptr : &reference,
                               is_reference ? &reference : nullptr);
      if (is_reference) base_qps = r.qps;
      if (base_qps > 0) r.speedup = r.qps / base_qps;
      results.push_back(std::move(r));
    }
  }

  CancelResult cancel = RunCancellationLatency(512, reps);
  if (!cancel.ok) ++failures;

  StreamingResult streaming = RunStreaming(std::max<size_t>(16, n / 2), reps);
  if (!streaming.ok) ++failures;

  // Overhead is measured on the fig8 batch (queries that do ~1 ms of real
  // traversal each, the shape production queries have) at a thread count
  // the hardware can actually run — oversubscribed threads on a small CI
  // box turn any mutex into a preemption lottery and measure the
  // scheduler, not the metrics layer.
  ObsOverheadResult overhead;
  overhead.ok = false;
  overhead.error = "fig8 batch unavailable";
  for (auto& batch : batches) {
    if (batch == nullptr || batch->label.compare(0, 4, "fig8") != 0) continue;
    size_t overhead_threads = std::max<size_t>(
        1, std::min<size_t>(
               *std::max_element(thread_counts.begin(), thread_counts.end()),
               std::thread::hardware_concurrency()));
    overhead = RunObsOverhead(*batch, overhead_threads, reps);
    break;
  }
  if (!overhead.ok) ++failures;

  SkewedCacheResult skewed = RunSkewedCache(n / 2, reps);
  if (!skewed.ok || !skewed.hashes_match) ++failures;
  CacheInvalidationResult invalidation =
      RunCacheInvalidation(/*chain=*/std::max<size_t>(8, n / 8),
                           /*cycles=*/4);
  if (!invalidation.ok || !invalidation.selective) ++failures;

  std::printf(
      "%-28s %8s %10s %10s %10s %12s %12s %10s %8s %10s %8s %8s %8s %6s\n",
      "batch", "queries", "tuples", "startup_ms", "wall_ms", "queries/sec",
      "async_qps", "speedup", "fetches", "memo_hits", "p50_ms", "p95_ms",
      "p99_ms", "same");
  for (const BenchResult& r : results) {
    if (!r.ok) {
      ++failures;
      std::printf("%-28s ERROR: %s\n", r.name.c_str(), r.error.c_str());
      continue;
    }
    if (!r.identical) ++failures;
    std::printf(
        "%-28s %8llu %10llu %10.3f %10.3f %12.1f %12.1f %9.2fx %8llu %10llu "
        "%8.3f %8.3f %8.3f %6s\n",
        r.name.c_str(), static_cast<unsigned long long>(r.queries),
        static_cast<unsigned long long>(r.tuples), r.startup_ms, r.wall_ms,
        r.qps, r.async_qps, r.speedup,
        static_cast<unsigned long long>(r.fetches),
        static_cast<unsigned long long>(r.memo_hits), r.p50_ms, r.p95_ms,
        r.p99_ms, r.identical ? "yes" : "NO");
  }
  if (overhead.ok) {
    std::printf(
        "obs overhead (%s, threads=%zu): metrics off %.3f ms, on %.3f ms, "
        "ratio x%.4f over %llu queries/rep\n",
        overhead.name.c_str(), overhead.threads, overhead.wall_off_ms,
        overhead.wall_on_ms, overhead.ratio,
        static_cast<unsigned long long>(overhead.queries));
  } else {
    std::printf("obs overhead: ERROR: %s\n", overhead.error.c_str());
  }
  if (cancel.ok) {
    std::printf(
        "cancellation latency (fig7b/n=512): uncancelled %.2f ms, deadline "
        "%.2f ms, overshoot p50 %.3f ms / max %.3f ms over %llu queries "
        "(%llu partial tuples at last unwind)\n",
        cancel.uncancelled_ms, cancel.deadline_ms, cancel.latency_p50_ms,
        cancel.latency_max_ms,
        static_cast<unsigned long long>(cancel.queries),
        static_cast<unsigned long long>(cancel.partial_tuples));
  } else {
    std::printf("cancellation latency: ERROR: %s\n", cancel.error.c_str());
  }
  if (streaming.ok) {
    std::printf(
        "streamed delivery (%s): first chunk p50 %.3f ms / p95 %.3f ms, "
        "full response p50 %.3f ms / p95 %.3f ms, %llu chunks over %llu "
        "queries\n",
        streaming.name.c_str(), streaming.first_chunk_p50_ms,
        streaming.first_chunk_p95_ms, streaming.total_p50_ms,
        streaming.total_p95_ms,
        static_cast<unsigned long long>(streaming.chunks),
        static_cast<unsigned long long>(streaming.queries));
  } else {
    std::printf("streamed delivery: ERROR: %s\n", streaming.error.c_str());
  }
  if (skewed.ok) {
    std::printf(
        "skewed repeats (%s, zipf s=%.2f, %llu queries over %llu keys): "
        "cache off %.1f qps / p50 %.3f ms, on %.1f qps / p50 %.3f ms, "
        "speedup x%.2f, hit rate %.3f, results %s\n",
        skewed.name.c_str(), skewed.zipf_s,
        static_cast<unsigned long long>(skewed.queries),
        static_cast<unsigned long long>(skewed.distinct), skewed.qps_off,
        skewed.p50_off_ms, skewed.qps_on, skewed.p50_on_ms, skewed.speedup,
        skewed.hit_rate, skewed.hashes_match ? "identical" : "DIVERGED");
  } else {
    std::printf("skewed repeats: ERROR: %s\n", skewed.error.c_str());
  }
  if (invalidation.ok) {
    std::printf(
        "cache invalidation (%s): %llu warm entries, %llu publishes "
        "touching only `down`, %llu invalidated (expected %llu/publish), "
        "%llu surviving pup hits — %s\n",
        invalidation.name.c_str(),
        static_cast<unsigned long long>(invalidation.warm_entries),
        static_cast<unsigned long long>(invalidation.publishes),
        static_cast<unsigned long long>(invalidation.invalidated),
        static_cast<unsigned long long>(invalidation.expected_per_publish),
        static_cast<unsigned long long>(invalidation.surviving_hits),
        invalidation.selective ? "selective" : "NOT SELECTIVE");
  } else {
    std::printf("cache invalidation: ERROR: %s\n",
                invalidation.error.c_str());
  }

  if (json) {
    auto status_json = [](const StatusCounts& s) {
      std::string out = "{\"ok\": " + std::to_string(s.ok) +
                        ", \"deadline_exceeded\": " +
                        std::to_string(s.deadline_exceeded) +
                        ", \"cancelled\": " + std::to_string(s.cancelled) +
                        ", \"overloaded\": " + std::to_string(s.overloaded) +
                        ", \"other\": " + std::to_string(s.other) + "}";
      return out;
    };
    char hash_buf[32];
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"service\",\n  \"host\": " << HostJson()
        << ",\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const BenchResult& r = results[i];
      std::snprintf(hash_buf, sizeof(hash_buf), "0x%016llx",
                    static_cast<unsigned long long>(r.result_hash));
      out << "    {\"name\": \"" << JsonEscape(r.name) << "\", \"ok\": "
          << (r.ok && r.identical ? "true" : "false")
          << ", \"threads\": " << r.threads << ", \"queries\": " << r.queries
          << ", \"startup_ms\": " << r.startup_ms
          << ", \"wall_ms\": " << r.wall_ms << ", \"qps\": " << r.qps
          << ", \"async_qps\": " << r.async_qps
          << ", \"speedup\": " << r.speedup << ", \"p50_ms\": " << r.p50_ms
          << ", \"p95_ms\": " << r.p95_ms << ", \"p99_ms\": " << r.p99_ms
          << ", \"tuples\": " << r.tuples
          << ", \"fetches\": " << r.fetches
          << ", \"memo_hits\": " << r.memo_hits
          << ", \"result_hash\": \"" << hash_buf << "\""
          << ", \"status\": " << status_json(r.status) << "}"
          << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"obs_overhead\": {\"name\": \"" << JsonEscape(overhead.name)
        << "\", \"ok\": " << (overhead.ok ? "true" : "false")
        << ", \"threads\": " << overhead.threads
        << ", \"queries\": " << overhead.queries
        << ", \"wall_off_ms\": " << overhead.wall_off_ms
        << ", \"wall_on_ms\": " << overhead.wall_on_ms
        << ", \"ratio\": " << overhead.ratio << "},\n";
    out << "  \"cancellation\": {\"ok\": " << (cancel.ok ? "true" : "false")
        << ", \"queries\": " << cancel.queries
        << ", \"deadline_ms\": " << cancel.deadline_ms
        << ", \"uncancelled_ms\": " << cancel.uncancelled_ms
        << ", \"latency_p50_ms\": " << cancel.latency_p50_ms
        << ", \"latency_max_ms\": " << cancel.latency_max_ms
        << ", \"status\": " << status_json(cancel.status) << "},\n";
    out << "  \"streaming\": {\"name\": \"" << JsonEscape(streaming.name)
        << "\", \"ok\": " << (streaming.ok ? "true" : "false")
        << ", \"queries\": " << streaming.queries
        << ", \"chunks\": " << streaming.chunks
        << ", \"first_chunk_p50_ms\": " << streaming.first_chunk_p50_ms
        << ", \"first_chunk_p95_ms\": " << streaming.first_chunk_p95_ms
        << ", \"total_p50_ms\": " << streaming.total_p50_ms
        << ", \"total_p95_ms\": " << streaming.total_p95_ms << "},\n";
    char off_hash[32], on_hash[32];
    std::snprintf(off_hash, sizeof(off_hash), "0x%016llx",
                  static_cast<unsigned long long>(skewed.result_hash_off));
    std::snprintf(on_hash, sizeof(on_hash), "0x%016llx",
                  static_cast<unsigned long long>(skewed.result_hash_on));
    out << "  \"skewed\": {\"name\": \"" << JsonEscape(skewed.name)
        << "\", \"ok\": " << (skewed.ok ? "true" : "false")
        << ", \"queries\": " << skewed.queries
        << ", \"distinct\": " << skewed.distinct
        << ", \"zipf_s\": " << skewed.zipf_s
        << ", \"qps_off\": " << skewed.qps_off
        << ", \"qps_on\": " << skewed.qps_on
        << ", \"speedup\": " << skewed.speedup
        << ", \"p50_off_ms\": " << skewed.p50_off_ms
        << ", \"p50_on_ms\": " << skewed.p50_on_ms
        << ", \"hit_rate\": " << skewed.hit_rate
        << ", \"result_hash_off\": \"" << off_hash << "\""
        << ", \"result_hash_on\": \"" << on_hash << "\""
        << ", \"hashes_match\": "
        << (skewed.hashes_match ? "true" : "false") << "},\n";
    out << "  \"cache_invalidation\": {\"name\": \""
        << JsonEscape(invalidation.name)
        << "\", \"ok\": " << (invalidation.ok ? "true" : "false")
        << ", \"warm_entries\": " << invalidation.warm_entries
        << ", \"publishes\": " << invalidation.publishes
        << ", \"invalidated\": " << invalidation.invalidated
        << ", \"expected_per_publish\": "
        << invalidation.expected_per_publish
        << ", \"surviving_hits\": " << invalidation.surviving_hits
        << ", \"selective\": "
        << (invalidation.selective ? "true" : "false") << "}\n";
    out << "}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
