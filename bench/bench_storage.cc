// Standalone storage-layer benchmark runner: times the same-generation
// query across the engine and the baseline strategies on the Figure 7 /
// Figure 8 samples and a wide ladder, reporting wall time plus the paper's
// `t`-cost (EDB fetch count) per benchmark.
//
// Usage:
//   bench_storage [--n <size>] [--reps <k>] [--smoke] [--json [path]]
//
// `--json` writes BENCH_storage.json (or the given path) so successive PRs
// can track the perf trajectory; without it a table goes to stdout.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/bottom_up.h"
#include "baselines/counting.h"
#include "baselines/magic.h"
#include "bench_util.h"
#include "datalog/parser.h"
#include "equations/lemma1.h"
#include "eval/query.h"
#include "workloads/workloads.h"

namespace {

using namespace binchain;
using bench::JsonEscape;
using bench::MsSince;

struct BenchResult {
  std::string name;
  double wall_ms = 0;    // best-of-reps wall time of one query
  uint64_t fetches = 0;  // EDB retrievals during that query
  uint64_t results = 0;  // answer-set size (sanity: must match across PRs)
  bool ok = true;
  std::string error;
};

/// Runs `body` `reps` times; records the fastest wall time and the fetch
/// delta / result count of that run.
template <typename Fn>
BenchResult Measure(const std::string& name, Database& db, int reps, Fn body) {
  BenchResult r;
  r.name = name;
  r.wall_ms = 1e300;
  for (int i = 0; i < reps; ++i) {
    uint64_t fetches_before = db.TotalFetches();
    auto t0 = std::chrono::steady_clock::now();
    Result<uint64_t> count = body();
    double ms = MsSince(t0);
    if (!count.ok()) {
      r.ok = false;
      r.error = count.status().message();
      return r;
    }
    if (ms < r.wall_ms) {
      r.wall_ms = ms;
      r.fetches = db.TotalFetches() - fetches_before;
      r.results = count.value();
    }
  }
  return r;
}

using SampleFn = std::string (*)(Database&, size_t);

struct Case {
  std::string label;
  SampleFn build;
};

/// The wide ladder of bench_linear: h levels, `width` rungs per level.
std::string WideLadder(Database& db, size_t h, size_t width) {
  for (size_t i = 1; i < h; ++i) {
    db.AddFact("up", {"a" + std::to_string(i), "a" + std::to_string(i + 1)});
    db.AddFact("down", {"b" + std::to_string(i + 1), "b" + std::to_string(i)});
  }
  for (size_t i = 1; i <= h; ++i) {
    for (size_t w = 0; w < width; ++w) {
      std::string mid = "m" + std::to_string(i) + "_" + std::to_string(w);
      db.AddFact("flat", {"a" + std::to_string(i), mid});
      db.AddFact("down", {mid, "b" + std::to_string(i)});
    }
  }
  return "a1";
}

void RunSample(const std::string& label, SampleFn build, size_t n,
               size_t small_n, int reps, std::vector<BenchResult>& out) {
  // One database per strategy family so warm indexes are comparable and
  // fetch counters are attributable.
  {
    Database db;
    std::string a = build(db, n);
    QueryEngine engine(&db);
    Program program = ParseProgram(workloads::SgProgramText(), db.symbols()).take();
    if (!engine.LoadProgram(program).ok()) return;
    Literal query = ParseLiteral("sg(" + a + ", Y)", db.symbols()).take();
    out.push_back(Measure(label + "/ours/n=" + std::to_string(n), db, reps,
                          [&]() -> Result<uint64_t> {
                            auto r = engine.Query(query);
                            if (!r.ok()) return r.status();
                            return static_cast<uint64_t>(r.value().tuples.size());
                          }));
  }
  {
    Database db;
    std::string a = build(db, n);
    Program program = ParseProgram(workloads::SgProgramText(), db.symbols()).take();
    auto eqs = TransformToEquations(program, db.symbols());
    LinearNormalForm nf;
    if (eqs.ok() && MatchLinearNormalForm(eqs.value().final_system,
                                          *db.symbols().Find("sg"), &nf)) {
      ViewRegistry views(&db.symbols());
      views.RegisterDatabase(db);
      TermId src = views.pool().Unary(*db.symbols().Find(a));
      size_t cap = 4 * n;
      out.push_back(Measure(label + "/counting/n=" + std::to_string(n), db,
                            reps, [&]() -> Result<uint64_t> {
                              LevelStats stats;
                              auto r = CountingQuery(views, nf, src, cap, &stats);
                              if (!r.ok()) return r.status();
                              return static_cast<uint64_t>(r.value().size());
                            }));
      out.push_back(Measure(label + "/henschen-naqvi/n=" + std::to_string(n),
                            db, reps, [&]() -> Result<uint64_t> {
                              LevelStats stats;
                              auto r = HenschenNaqviQuery(views, nf, src, cap,
                                                          &stats);
                              if (!r.ok()) return r.status();
                              return static_cast<uint64_t>(r.value().size());
                            }));
    }
  }
  // Bottom-up strategies are quadratic-ish on these samples: smaller n.
  {
    Database db;
    std::string a = build(db, small_n);
    Program program = ParseProgram(workloads::SgProgramText(), db.symbols()).take();
    Literal query = ParseLiteral("sg(" + a + ", Y)", db.symbols()).take();
    out.push_back(Measure(label + "/seminaive/n=" + std::to_string(small_n),
                          db, reps, [&]() -> Result<uint64_t> {
                            BottomUpStats stats;
                            auto r = SeminaiveQuery(program, db, query, &stats,
                                                    1000000);
                            if (!r.ok()) return r.status();
                            return static_cast<uint64_t>(r.value().size());
                          }));
    out.push_back(Measure(label + "/magic/n=" + std::to_string(small_n), db,
                          reps, [&]() -> Result<uint64_t> {
                            BottomUpStats stats;
                            auto r = MagicQuery(program, db, query, &stats);
                            if (!r.ok()) return r.status();
                            return static_cast<uint64_t>(r.value().size());
                          }));
    out.push_back(Measure(label + "/naive/n=" + std::to_string(small_n), db,
                          reps, [&]() -> Result<uint64_t> {
                            BottomUpStats stats;
                            auto r = NaiveQuery(program, db, query, &stats,
                                                1000000);
                            if (!r.ok()) return r.status();
                            return static_cast<uint64_t>(r.value().size());
                          }));
  }
}

void RunAll(size_t n, size_t small_n, int reps, std::vector<BenchResult>& out) {
  RunSample("fig7a", &workloads::Fig7a, n, small_n, reps, out);
  RunSample("fig7b", &workloads::Fig7b, n, small_n, reps, out);
  RunSample("fig7c", &workloads::Fig7c, n, small_n, reps, out);

  {  // the linear-case ladder (bench_linear's shape)
    Database db;
    std::string a = WideLadder(db, n / 2, 8);
    QueryEngine engine(&db);
    if (engine.LoadProgramText(workloads::SgProgramText()).ok()) {
      Literal query = ParseLiteral("sg(" + a + ", Y)", db.symbols()).take();
      out.push_back(Measure("ladder/ours/h=" + std::to_string(n / 2), db, reps,
                            [&]() -> Result<uint64_t> {
                              auto r = engine.Query(query);
                              if (!r.ok()) return r.status();
                              return static_cast<uint64_t>(
                                  r.value().tuples.size());
                            }));
    }
  }
  {  // Figure 8 cyclic data under the |D1|*|D2| bound
    Database db;
    size_t m = std::max<size_t>(3, small_n / 8 | 1);
    size_t cyc_n = m + 2;  // coprime with m (m odd)
    std::string a = workloads::Fig8(db, m, cyc_n);
    QueryEngine engine(&db);
    if (engine.LoadProgramText(workloads::SgProgramText()).ok()) {
      Literal query = ParseLiteral("sg(" + a + ", Y)", db.symbols()).take();
      EvalOptions opt;
      opt.use_cyclic_bound = true;
      out.push_back(Measure(
          "fig8/ours-cyclic/m=" + std::to_string(m) + ",n=" +
              std::to_string(cyc_n),
          db, reps, [&]() -> Result<uint64_t> {
            auto r = engine.Query(query, opt);
            if (!r.ok()) return r.status();
            return static_cast<uint64_t>(r.value().tuples.size());
          }));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 256, small_n = 128;
  int reps = 3;
  bool json = false;
  std::string json_path = "BENCH_storage.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--n") && i + 1 < argc) {
      n = static_cast<size_t>(std::atol(argv[++i]));
      small_n = n / 2;
    } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--smoke")) {
      n = 64;
      small_n = 32;
      reps = 1;
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n <size>] [--reps <k>] [--smoke] "
                   "[--json [path]]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<BenchResult> results;
  RunAll(n, small_n, reps, results);

  int failures = 0;
  std::printf("%-36s %12s %12s %10s\n", "benchmark", "wall_ms", "fetches",
              "results");
  for (const BenchResult& r : results) {
    if (!r.ok) {
      ++failures;
      std::printf("%-36s ERROR: %s\n", r.name.c_str(), r.error.c_str());
      continue;
    }
    std::printf("%-36s %12.3f %12llu %10llu\n", r.name.c_str(), r.wall_ms,
                static_cast<unsigned long long>(r.fetches),
                static_cast<unsigned long long>(r.results));
  }

  if (json) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"storage\",\n  \"host\": " << bench::HostJson()
        << ",\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const BenchResult& r = results[i];
      out << "    {\"name\": \"" << JsonEscape(r.name) << "\", \"ok\": "
          << (r.ok ? "true" : "false") << ", \"wall_ms\": " << r.wall_ms
          << ", \"fetches\": " << r.fetches << ", \"results\": " << r.results
          << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
