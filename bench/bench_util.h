// Helpers shared by the standalone benchmark runners (bench_storage,
// bench_service, bench_live): wall-clock deltas, the escaping used by
// their BENCH_*.json emitters, and the host-shape block every snapshot
// carries so numbers from different machines are never compared blind.
#ifndef BINCHAIN_BENCH_BENCH_UTIL_H_
#define BINCHAIN_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <fstream>
#include <string>
#include <thread>

namespace binchain {
namespace bench {

inline double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// First `model name` line from /proc/cpuinfo, or "unknown" off-Linux.
inline std::string CpuModel() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    if (line.compare(0, 10, "model name") == 0) {
      size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      size_t start = line.find_first_not_of(" \t", colon + 1);
      if (start == std::string::npos) break;
      return line.substr(start);
    }
  }
  return "unknown";
}

/// Host-shape block for the BENCH_*.json emitters:
/// {"nproc": N, "cpu": "<model>"}. The regression gate ignores it (strings
/// and host-dependent ints are not comparable fields); it exists so a
/// human reading two snapshots knows whether the hardware moved.
inline std::string HostJson() {
  return "{\"nproc\": " + std::to_string(std::thread::hardware_concurrency()) +
         ", \"cpu\": \"" + JsonEscape(CpuModel()) + "\"}";
}

}  // namespace bench
}  // namespace binchain

#endif  // BINCHAIN_BENCH_BENCH_UTIL_H_
