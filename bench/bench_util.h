// Helpers shared by the standalone benchmark runners (bench_storage,
// bench_service): wall-clock deltas and the escaping used by their
// BENCH_*.json emitters.
#ifndef BINCHAIN_BENCH_BENCH_UTIL_H_
#define BINCHAIN_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <string>

namespace binchain {
namespace bench {

inline double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace bench
}  // namespace binchain

#endif  // BINCHAIN_BENCH_BENCH_UTIL_H_
