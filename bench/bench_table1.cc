// Experiment T1: the complexity table of Section 3. Same-generation query
// sg(a, Y) on the three Figure 7 samples, across the five strategies of the
// paper's table (Henschen-Naqvi, magic sets, counting, reverse counting,
// the graph-traversal algorithm) plus naive/seminaive for reference.
//
// The paper reports asymptotic orders; this harness reports measured wall
// time plus the strategy's abstract work counter ("work") so the growth
// exponent can be read off the n-sweep (n doubles -> work x2 = linear,
// x4 = quadratic). Expected shape, prose of Section 3:
//   (a): ours/counting/HN linear, magic quadratic;
//   (b): ours/counting quadratic (Theta(n^2) nodes);
//   (c): ours/counting linear, HN quadratic (path re-traversal).
//
// Databases are built once per benchmark (indexes warm); the timed region
// is the query alone, matching the paper's cost model of constant-time
// tuple retrieval.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "baselines/bottom_up.h"
#include "baselines/counting.h"
#include "baselines/magic.h"
#include "datalog/parser.h"
#include "equations/lemma1.h"
#include "eval/query.h"
#include "workloads/workloads.h"

namespace {

using namespace binchain;

using SampleFn = std::string (*)(Database&, size_t);

SampleFn Sample(int id) {
  switch (id) {
    case 0:
      return &workloads::Fig7a;
    case 1:
      return &workloads::Fig7b;
    default:
      return &workloads::Fig7c;
  }
}

struct SgCase {
  Database db;
  std::string source;
  Program program;
  Literal query;

  explicit SgCase(benchmark::State& state) {
    source = Sample(static_cast<int>(state.range(1)))(
        db, static_cast<size_t>(state.range(0)));
    program = ParseProgram(workloads::SgProgramText(), db.symbols()).take();
    query = ParseLiteral("sg(" + source + ", Y)", db.symbols()).take();
  }
};

void BM_Ours(benchmark::State& state) {
  SgCase c(state);
  QueryEngine engine(&c.db);
  if (!engine.LoadProgram(c.program).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  uint64_t work = 0;
  for (auto _ : state) {
    auto r = engine.Query(c.query);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    work = r.value().stats.nodes;
    benchmark::DoNotOptimize(r.value().tuples.size());
  }
  state.counters["work"] = static_cast<double>(work);
}

template <Result<std::vector<TermId>> (*Fn)(const ViewRegistry&,
                                            const LinearNormalForm&, TermId,
                                            size_t, LevelStats*)>
void BM_Level(benchmark::State& state) {
  SgCase c(state);
  auto eqs = TransformToEquations(c.program, c.db.symbols());
  LinearNormalForm nf;
  if (!eqs.ok() ||
      !MatchLinearNormalForm(eqs.value().final_system,
                             *c.db.symbols().Find("sg"), &nf)) {
    state.SkipWithError("normal form not found");
    return;
  }
  ViewRegistry views(&c.db.symbols());
  views.RegisterDatabase(c.db);
  TermId src = views.pool().Unary(*c.db.symbols().Find(c.source));
  size_t cap = 4 * static_cast<size_t>(state.range(0));
  uint64_t work = 0;
  for (auto _ : state) {
    LevelStats stats;
    auto r = Fn(views, nf, src, cap, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    work = stats.up_work + stats.down_work;
    benchmark::DoNotOptimize(r.value().size());
  }
  state.counters["work"] = static_cast<double>(work);
}

template <Result<std::vector<Tuple>> (*Fn)(const Program&, Database&,
                                           const Literal&, BottomUpStats*,
                                           size_t)>
void BM_BottomUp(benchmark::State& state) {
  SgCase c(state);
  uint64_t work = 0;
  for (auto _ : state) {
    BottomUpStats stats;
    auto r = Fn(c.program, c.db, c.query, &stats, 1000000);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    work = stats.firings;
    benchmark::DoNotOptimize(r.value().size());
  }
  state.counters["work"] = static_cast<double>(work);
}

void BM_Magic(benchmark::State& state) {
  SgCase c(state);
  uint64_t work = 0;
  for (auto _ : state) {
    BottomUpStats stats;
    auto r = MagicQuery(c.program, c.db, c.query, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    work = stats.firings;
    benchmark::DoNotOptimize(r.value().size());
  }
  state.counters["work"] = static_cast<double>(work);
}

void SampleSweep(benchmark::internal::Benchmark* b) {
  for (int sample = 0; sample < 3; ++sample) {
    for (int n : {64, 128, 256, 512}) {
      b->Args({n, sample});
    }
  }
}

// Smaller sweep for the strategies whose quadratic growth makes large n
// impractically slow.
void SmallSweep(benchmark::internal::Benchmark* b) {
  for (int sample = 0; sample < 3; ++sample) {
    for (int n : {32, 64, 128, 256}) {
      b->Args({n, sample});
    }
  }
}

}  // namespace

BENCHMARK(BM_Ours)->Apply(SampleSweep)->ArgNames({"n", "sample"});
BENCHMARK(BM_Level<&binchain::CountingQuery>)
    ->Apply(SampleSweep)
    ->ArgNames({"n", "sample"})
    ->Name("BM_Counting");
BENCHMARK(BM_Level<&binchain::HenschenNaqviQuery>)
    ->Apply(SampleSweep)
    ->ArgNames({"n", "sample"})
    ->Name("BM_HenschenNaqvi");
BENCHMARK(BM_Level<&binchain::ReverseCountingQuery>)
    ->Apply(SmallSweep)
    ->ArgNames({"n", "sample"})
    ->MinTime(0.05)
    ->Name("BM_ReverseCounting");
BENCHMARK(BM_Magic)->Apply(SmallSweep)->ArgNames({"n", "sample"})->MinTime(0.05);
BENCHMARK(BM_BottomUp<&binchain::SeminaiveQuery>)
    ->Apply(SmallSweep)
    ->ArgNames({"n", "sample"})
    ->MinTime(0.05)
    ->Name("BM_Seminaive");
BENCHMARK(BM_BottomUp<&binchain::NaiveQuery>)
    ->Apply(SmallSweep)
    ->ArgNames({"n", "sample"})
    ->MinTime(0.05)
    ->Name("BM_Naive");

BENCHMARK_MAIN();
