#!/usr/bin/env python3
"""Tiny Prometheus text-exposition (0.0.4) linter for the CI scrape step.

Validates the shape a scraper depends on, without needing a Prometheus
install:

* every line is a ``# HELP``/``# TYPE`` comment or a ``name[{labels}] value``
  sample; metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
* ``# TYPE`` appears at most once per family and precedes that family's
  samples; the declared type is one Prometheus knows;
* sample values parse as numbers;
* histogram families declared via ``# TYPE ... histogram`` expose
  ``_bucket`` series with non-decreasing cumulative counts ending in an
  ``le="+Inf"`` bucket that equals ``_count``, plus ``_sum`` and ``_count``;
* ``--require <prefix>`` (repeatable) asserts at least one sample of that
  family prefix is present — CI requires the ``binchain_service_``,
  ``binchain_engine_``, ``binchain_live_`` and ``binchain_wal_`` families
  so a refactor cannot silently drop a subsystem from the exposition.

Usage:  lint_prometheus.py [--require PREFIX]... [file]
Reads stdin when no file is given. Exit 0 clean, 1 on any violation.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
HELP_RE = re.compile(r"^# HELP (?P<name>\S+) (?P<text>.*)$")
TYPE_RE = re.compile(r"^# TYPE (?P<name>\S+) (?P<kind>\S+)$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def base_family(name, types):
    """Family a sample belongs to: strips histogram suffixes when the
    stripped name was TYPE-declared as a histogram."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            stem = name[: -len(suffix)]
            if types.get(stem) == "histogram":
                return stem
    return name


def lint(lines):
    errors = []
    types = {}          # family -> declared type
    helps = set()
    samples = []        # (family, name, labels, float value, line number)
    for n, raw in enumerate(lines, 1):
        line = raw.rstrip("\n")
        if not line:
            errors.append(f"line {n}: empty line in exposition")
            continue
        if line.startswith("#"):
            h = HELP_RE.match(line)
            t = TYPE_RE.match(line)
            if h:
                name = h.group("name")
                if not NAME_RE.match(name):
                    errors.append(f"line {n}: bad metric name in HELP: {name}")
                elif name in helps:
                    errors.append(f"line {n}: duplicate HELP for {name}")
                else:
                    helps.add(name)
            elif t:
                name, kind = t.group("name"), t.group("kind")
                if not NAME_RE.match(name):
                    errors.append(f"line {n}: bad metric name in TYPE: {name}")
                elif kind not in KNOWN_TYPES:
                    errors.append(f"line {n}: unknown TYPE '{kind}' for {name}")
                elif name in types:
                    errors.append(f"line {n}: duplicate TYPE for {name}")
                else:
                    types[name] = kind
            else:
                errors.append(f"line {n}: comment is neither HELP nor TYPE: "
                              f"{line[:60]}")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {n}: not a valid sample line: {line[:60]}")
            continue
        name = m.group("name")
        family = base_family(name, types)
        if family not in types:
            errors.append(f"line {n}: sample {name} has no preceding TYPE")
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"line {n}: non-numeric value for {name}: "
                          f"{m.group('value')}")
            continue
        samples.append((family, name, m.group("labels"), value, n))

    # Histogram shape: cumulative non-decreasing buckets, +Inf == _count.
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = [s for s in samples if s[1] == family + "_bucket"]
        counts = [s for s in samples if s[1] == family + "_count"]
        sums = [s for s in samples if s[1] == family + "_sum"]
        if not buckets or len(counts) != 1 or len(sums) != 1:
            errors.append(
                f"histogram {family}: expected _bucket series plus exactly "
                f"one _sum and one _count (got {len(buckets)} buckets, "
                f"{len(sums)} sums, {len(counts)} counts)")
            continue
        last = -1.0
        inf_value = None
        for _, _, labels, value, n in buckets:
            le = None
            for part in (labels or "").split(","):
                if part.startswith("le="):
                    le = part[3:].strip('"')
            if le is None:
                errors.append(f"line {n}: {family}_bucket without an le label")
                continue
            if value < last:
                errors.append(
                    f"line {n}: {family}_bucket cumulative count decreased "
                    f"({value} after {last})")
            last = value
            if le == "+Inf":
                inf_value = value
        if inf_value is None:
            errors.append(f"histogram {family}: missing le=\"+Inf\" bucket")
        elif inf_value != counts[0][3]:
            errors.append(
                f"histogram {family}: le=\"+Inf\" bucket ({inf_value}) != "
                f"_count ({counts[0][3]})")
    return errors, samples


def main(argv):
    require = []
    files = []
    i = 1
    while i < len(argv):
        if argv[i] == "--require" and i + 1 < len(argv):
            require.append(argv[i + 1])
            i += 2
        elif argv[i].startswith("--require="):
            require.append(argv[i].split("=", 1)[1])
            i += 1
        elif argv[i] in ("-h", "--help"):
            print(__doc__)
            return 2
        else:
            files.append(argv[i])
            i += 1

    if files:
        with open(files[0]) as f:
            lines = f.readlines()
    else:
        lines = sys.stdin.readlines()

    errors, samples = lint(lines)
    sample_names = {s[1] for s in samples}
    for prefix in require:
        if not any(name.startswith(prefix) for name in sample_names):
            errors.append(
                f"required metric family '{prefix}*' has no samples in the "
                f"exposition ({len(sample_names)} sample names present)")

    if errors:
        for e in errors:
            print(f"LINT: {e}")
        print(f"{len(errors)} exposition problem(s)")
        return 1
    print(f"prometheus exposition OK: {len(sample_names)} sample names, "
          f"{len(require)} required families present")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
