// Experiment F8: cyclic same-generation data (Figure 8). With an up-cycle of
// length m and a down-cycle of length n, gcd(m, n) = 1, the paper shows the
// complete answer requires m*n iterations of the main loop; the
// Marchetti-Spaccamela-style bound |D1| * |D2| = m*n makes the run
// terminate exactly there. The "iterations" counter should track m*n.
#include <benchmark/benchmark.h>

#include <numeric>
#include <string>

#include "eval/query.h"
#include "workloads/workloads.h"

namespace {

using namespace binchain;

void BM_CyclicSg(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t n = static_cast<size_t>(state.range(1));
  Database db;
  std::string a = workloads::Fig8(db, m, n);
  QueryEngine engine(&db);
  if (!engine.LoadProgramText(workloads::SgProgramText()).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  EvalOptions opt;
  opt.use_cyclic_bound = true;
  std::string q = "sg(" + a + ", Y)";
  uint64_t iterations = 0, nodes = 0;
  size_t answers = 0;
  for (auto _ : state) {
    auto r = engine.Query(q, opt);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    iterations = r.value().stats.iterations;
    nodes = r.value().stats.nodes;
    answers = r.value().tuples.size();
  }
  state.counters["iterations"] = static_cast<double>(iterations);
  state.counters["m*n"] = static_cast<double>(m * n);
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["answers"] = static_cast<double>(answers);
  if (std::gcd(m, n) == 1 && answers != n) {
    state.SkipWithError("incomplete answer on coprime cycles");
  }
}

// Reference: the same query stopped early (half the bound) returns an
// incomplete answer, demonstrating that the full m*n iterations are really
// needed.
void BM_CyclicSgHalfBound(benchmark::State& state) {
  size_t m = static_cast<size_t>(state.range(0));
  size_t n = static_cast<size_t>(state.range(1));
  Database db;
  std::string a = workloads::Fig8(db, m, n);
  QueryEngine engine(&db);
  if (!engine.LoadProgramText(workloads::SgProgramText()).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  EvalOptions opt;
  opt.max_iterations = m * n / 2;
  std::string q = "sg(" + a + ", Y)";
  size_t answers = 0;
  for (auto _ : state) {
    auto r = engine.Query(q, opt);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    answers = r.value().tuples.size();
  }
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["full"] = static_cast<double>(n);
}

// Ablation (DESIGN.md section 6): cost of computing the |D1|*|D2| bound on
// *acyclic* data, where the C = 0 test alone would do. The bound costs two
// extra closures before evaluation; measured against the plain run on the
// Figure 7(c) ladder.
void BM_AcyclicLadder(benchmark::State& state) {
  Database db;
  std::string a = workloads::Fig7c(db, static_cast<size_t>(state.range(0)));
  QueryEngine engine(&db);
  if (!engine.LoadProgramText(workloads::SgProgramText()).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  EvalOptions opt;
  opt.use_cyclic_bound = state.range(1) != 0;
  std::string q = "sg(" + a + ", Y)";
  for (auto _ : state) {
    auto r = engine.Query(q, opt);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().tuples.size());
  }
  state.SetLabel(opt.use_cyclic_bound ? "with-bound" : "plain");
}

}  // namespace

BENCHMARK(BM_AcyclicLadder)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->ArgNames({"n", "bound"});
BENCHMARK(BM_CyclicSg)
    ->Args({3, 4})
    ->Args({5, 7})
    ->Args({7, 9})
    ->Args({9, 11})
    ->Args({4, 6})  // gcd 2: fewer distinct answers
    ->ArgNames({"m", "n"});
BENCHMARK(BM_CyclicSgHalfBound)
    ->Args({5, 7})
    ->Args({7, 9})
    ->ArgNames({"m", "n"});

BENCHMARK_MAIN();
