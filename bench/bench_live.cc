// Standalone live-update benchmark: publish latency and query throughput
// during continuous ingestion, on the ladder workload (Fig. 7c shape).
//
// Part 1 — publish latency scaling: for each initial ladder size, run a
// train of publishes that each append a fixed number of rungs, and report
// the median/max publish wall time. Because Publish() builds the successor
// epoch from shared storage plus a delta layer (incremental index
// catch-up, symbol extension), the median must stay roughly flat as the
// database grows — the "sublinear" gate below compares the latency ratio
// of the largest and smallest size against the size ratio. A cold rebuild
// of the final database is timed alongside as the contrast, and the final
// epoch's answers are checked against that rebuild.
//
// Part 2 — serving during ingestion: a publisher thread keeps staging and
// publishing rungs while the main thread pumps query batches through the
// service; reports queries/sec, publishes completed, and the epoch range
// observed, then verifies the drained final epoch against a cold rebuild.
//
// Part 3 — durable publish overhead: the same publish train run three
// ways against the largest ladder — in-memory (no sink), with a WAL
// attached but fdatasync off (the structural cost of logging every staged
// op plus a COMMIT record), and with fdatasync'd commits (a real durable
// deployment). Reports the p50 of each and the overhead ratios; the
// regression gate (bench/check_regression.py) bounds the no-fsync ratio —
// record framing and appends must stay cheap relative to Publish() itself,
// while raw fdatasync latency is hardware the gate does not second-guess.
// The fsync'd run's WAL directory is then recovered from scratch and the
// recovered tip must render fact-for-fact identical to the pre-shutdown
// tip (folded into `ok`).
//
// Usage:
//   bench_live [--sizes <list>] [--publishes <k>] [--delta <rungs>]
//              [--threads <n>] [--duration-ms <t>] [--smoke] [--json [path]]
//
// `--json` writes BENCH_live.json (default path) so successive PRs can
// track the live-serving trajectory alongside BENCH_storage/BENCH_service.
#include <stdlib.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datalog/parser.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "live/snapshot_manager.h"
#include "service/query_service.h"
#include "workloads/workloads.h"

namespace {

using namespace binchain;
using bench::JsonEscape;
using bench::MsSince;

std::string N(const char* prefix, size_t i) {
  return prefix + std::to_string(i);
}

/// Appends ladder rung `r` (valid for r >= 2) to the staged delta:
/// up(a_{r-1}, a_r), flat(a_r, b_r), down(b_r, b_{r-1}). Fig7c(n) plus
/// rungs n+1..m is fact-identical to Fig7c(m), which is what the cold
/// rebuild check relies on.
void StageRung(SnapshotManager& manager, size_t r) {
  manager.AddFact("up", {N("a", r - 1), N("a", r)});
  manager.AddFact("flat", {N("a", r), N("b", r)});
  manager.AddFact("down", {N("b", r), N("b", r - 1)});
}

std::vector<QueryRequest> SampleRequests(size_t ladder_size, size_t count) {
  std::vector<QueryRequest> requests;
  size_t step = std::max<size_t>(1, ladder_size / count);
  for (size_t i = 1; i <= ladder_size && requests.size() < count; i += step) {
    QueryRequest req;
    req.pred = "sg";
    req.source = N("a", i);
    requests.push_back(std::move(req));
  }
  return requests;
}

/// Tuples rendered by name, so live epochs and cold rebuilds compare even
/// though their intern orders differ.
std::vector<std::string> Render(const std::vector<Tuple>& tuples,
                                const SymbolTable& symbols) {
  std::vector<std::string> out;
  for (const Tuple& t : tuples) {
    out.push_back(symbols.Name(t[0]) + "|" + symbols.Name(t[1]));
  }
  std::sort(out.begin(), out.end());
  return out;
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct PublishTrainResult {
  std::string name;
  size_t initial_size = 0;
  size_t final_size = 0;
  size_t publishes = 0;
  size_t delta_rungs = 0;
  double publish_p50_ms = 0;
  double publish_max_ms = 0;
  double build_p50_ms = 0;
  double freeze_p50_ms = 0;
  /// Epoch-shared artifact refresh inside Publish(); O(delta) by contract,
  /// so the median must stay flat as the database grows (the sublinear
  /// gate below covers it through wall_ms).
  double artifact_p50_ms = 0;
  double cold_rebuild_ms = 0;  // full rebuild + freeze of the final db
  bool ok = true;
  std::string error;
};

struct IngestResult {
  std::string name;
  size_t queries = 0;
  size_t batches = 0;
  size_t publishes = 0;
  uint64_t first_epoch = 0;
  uint64_t last_epoch = 0;
  double qps = 0;
  double publish_p50_ms = 0;
  bool ok = true;
  std::string error;
};

/// Part 1 runner: one ladder size, `publishes` cycles of `delta_rungs`.
PublishTrainResult RunPublishTrain(size_t size, size_t publishes,
                                   size_t delta_rungs, size_t threads) {
  PublishTrainResult r;
  r.name = "ladder/n=" + std::to_string(size);
  r.initial_size = size;
  r.publishes = publishes;
  r.delta_rungs = delta_rungs;

  auto genesis = std::make_unique<Database>();
  workloads::Fig7c(*genesis, size);
  auto parsed = ParseProgram(workloads::SgProgramText(), genesis->symbols());
  if (!parsed.ok()) {
    r.ok = false;
    r.error = parsed.status().message();
    return r;
  }
  Program program = parsed.take();
  SnapshotManager manager(std::move(genesis));
  QueryService::Options opts;
  opts.num_threads = threads;
  QueryService service(&manager, program, opts);
  if (!service.status().ok()) {
    r.ok = false;
    r.error = service.status().message();
    return r;
  }

  std::vector<double> wall, build, freeze, artifact;
  size_t next_rung = size + 1;
  for (size_t p = 0; p < publishes; ++p) {
    for (size_t d = 0; d < delta_rungs; ++d) StageRung(manager, next_rung++);
    PublishStats ps = manager.Publish();
    wall.push_back(ps.wall_ms);
    build.push_back(ps.build_ms);
    freeze.push_back(ps.freeze_ms);
    artifact.push_back(ps.artifact_ms);
  }
  r.final_size = next_rung - 1;
  r.publish_p50_ms = Median(wall);
  r.publish_max_ms = *std::max_element(wall.begin(), wall.end());
  r.build_p50_ms = Median(build);
  r.freeze_p50_ms = Median(freeze);
  r.artifact_p50_ms = Median(artifact);

  // The contrast case: cold rebuild of the final database (re-intern every
  // symbol, reload the program, re-index every row) — what each publish
  // would cost without the epoch chain.
  auto t0 = std::chrono::steady_clock::now();
  Database cold;
  workloads::Fig7c(cold, r.final_size);
  QueryEngine cold_engine(&cold);
  if (Status s = cold_engine.LoadProgramText(workloads::SgProgramText());
      !s.ok()) {
    r.ok = false;
    r.error = s.message();
    return r;
  }
  cold.Freeze();
  r.cold_rebuild_ms = MsSince(t0);
  auto requests = SampleRequests(r.final_size, 8);
  auto responses = service.EvalBatch(requests);
  auto tip = manager.Acquire();
  for (size_t i = 0; i < requests.size(); ++i) {
    auto cold_answer = cold_engine.Query("sg(" + requests[i].source + ", Y)");
    if (!responses[i].status.ok() || !cold_answer.ok() ||
        Render(responses[i].tuples, tip->symbols()) !=
            Render(cold_answer.value().tuples, cold.symbols())) {
      r.ok = false;
      r.error = "final epoch diverged from cold rebuild at " +
                requests[i].source;
      return r;
    }
  }
  return r;
}

/// Part 2 runner: publisher thread vs query batches on the service.
IngestResult RunIngest(size_t size, size_t delta_rungs, size_t threads,
                       int duration_ms) {
  IngestResult r;
  r.name = "ingest/n=" + std::to_string(size) +
           ",threads=" + std::to_string(threads);

  auto genesis = std::make_unique<Database>();
  workloads::Fig7c(*genesis, size);
  auto parsed = ParseProgram(workloads::SgProgramText(), genesis->symbols());
  if (!parsed.ok()) {
    r.ok = false;
    r.error = parsed.status().message();
    return r;
  }
  Program program = parsed.take();
  SnapshotManager manager(std::move(genesis));
  QueryService::Options opts;
  opts.num_threads = threads;
  QueryService service(&manager, program, opts);
  if (!service.status().ok()) {
    r.ok = false;
    r.error = service.status().message();
    return r;
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> next_rung{size + 1};
  std::vector<double> publish_ms;
  std::thread publisher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      size_t base = next_rung.fetch_add(delta_rungs);
      for (size_t d = 0; d < delta_rungs; ++d) {
        StageRung(manager, base + d);
      }
      publish_ms.push_back(manager.Publish().wall_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  auto requests = SampleRequests(size, 16);
  r.first_epoch = manager.epoch();
  auto t0 = std::chrono::steady_clock::now();
  double total_ms = 0;
  while (MsSince(t0) < duration_ms) {
    BatchStats stats;
    auto responses = service.EvalBatch(requests, &stats);
    for (const QueryResponse& resp : responses) {
      if (!resp.status.ok()) {
        r.ok = false;
        r.error = resp.status.message();
      }
    }
    total_ms += stats.wall_ms;
    r.queries += stats.queries;
    ++r.batches;
    r.last_epoch = stats.epoch;
  }
  stop.store(true);
  publisher.join();
  r.publishes = publish_ms.size();
  r.publish_p50_ms = Median(publish_ms);
  r.qps = total_ms > 0 ? 1000.0 * static_cast<double>(r.queries) / total_ms
                       : 0;

  // Drain: everything published must now answer like a cold rebuild.
  size_t final_size = next_rung.load() - 1;
  Database cold;
  workloads::Fig7c(cold, final_size);
  QueryEngine cold_engine(&cold);
  if (Status s = cold_engine.LoadProgramText(workloads::SgProgramText());
      !s.ok()) {
    r.ok = false;
    r.error = s.message();
    return r;
  }
  auto final_requests = SampleRequests(final_size, 8);
  auto responses = service.EvalBatch(final_requests);
  auto tip = manager.Acquire();
  for (size_t i = 0; i < final_requests.size(); ++i) {
    auto cold_answer =
        cold_engine.Query("sg(" + final_requests[i].source + ", Y)");
    if (!responses[i].status.ok() || !cold_answer.ok() ||
        Render(responses[i].tuples, tip->symbols()) !=
            Render(cold_answer.value().tuples, cold.symbols())) {
      r.ok = false;
      r.error = "drained epoch diverged from cold rebuild at " +
                final_requests[i].source;
      return r;
    }
  }
  return r;
}

/// Part 3 result: the same publish train in-memory, WAL-attached without
/// fdatasync, and WAL-attached with fdatasync'd commits.
struct DurableResult {
  std::string name;
  size_t initial_size = 0;
  size_t publishes = 0;
  size_t delta_rungs = 0;
  double memory_p50_ms = 0;
  double wal_p50_ms = 0;    // sink attached, fsync_commits = false
  double fsync_p50_ms = 0;  // sink attached, fsync_commits = true
  double wal_overhead = 0;  // wal_p50 / memory_p50 — the gated ratio
  double fsync_overhead = 0;
  uint64_t log_bytes = 0;          // log growth over the fsync'd train
  size_t recovered_batches = 0;    // replayed + checkpoint-skipped
  uint64_t recovered_epoch = 0;
  bool ok = true;
  std::string error;
};

/// Scratch WAL directory, removed on destruction.
class ScratchDir {
 public:
  ScratchDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "binchain_bench_wal_XXXXXX")
                           .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (char* p = mkdtemp(buf.data())) path_ = p;
  }
  ~ScratchDir() {
    std::error_code ec;
    if (!path_.empty()) std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Every live fact of a snapshot rendered by name, so tips survive the
/// symbol re-interning a recovery implies.
std::set<std::string> RenderTip(const Database& db) {
  std::set<std::string> out;
  for (const std::string& name : db.relation_names()) {
    const Relation* rel = db.Find(name);
    for (TupleRef t : rel->tuples()) {
      std::string s = name;
      for (SymbolId c : t) s += "|" + db.symbols().Name(c);
      out.insert(std::move(s));
    }
  }
  return out;
}

/// Runs one publish train (Part 1 shape, no service) and returns the p50
/// publish wall time, or -1 with `error` set on a refused commit.
double DurableTrainP50(SnapshotManager& manager, size_t size,
                       size_t publishes, size_t delta_rungs,
                       std::string* error) {
  std::vector<double> wall;
  size_t next_rung = size + 1;
  for (size_t p = 0; p < publishes; ++p) {
    for (size_t d = 0; d < delta_rungs; ++d) StageRung(manager, next_rung++);
    PublishStats ps = manager.Publish();
    if (!ps.status.ok()) {
      *error = ps.status.message();
      return -1;
    }
    wall.push_back(ps.wall_ms);
  }
  return Median(wall);
}

/// Part 3 runner. The three trains share size/publish count; the WAL
/// checkpoint threshold is left at its default so no mid-train checkpoint
/// pollutes the publish timings (the Sealed-time genesis checkpoint lands
/// before the timed region).
DurableResult RunDurableOverhead(size_t size, size_t publishes,
                                 size_t delta_rungs) {
  using durability::RecoveredSystem;
  using durability::RecoverSnapshotManager;
  using durability::Wal;
  using durability::WalOptions;

  DurableResult r;
  r.name = "durable/n=" + std::to_string(size);
  r.initial_size = size;
  // Medians of a handful of ~tens-of-microseconds publishes are too noisy
  // to gate on; give the ratio a wider sample than Part 1 needs.
  r.publishes = std::max<size_t>(publishes, 32);
  r.delta_rungs = delta_rungs;

  auto fresh_manager = [&](durability::Wal* sink) {
    auto genesis = std::make_unique<Database>();
    workloads::Fig7c(*genesis, size);
    auto manager = std::make_unique<SnapshotManager>(std::move(genesis));
    if (sink != nullptr) manager->SetDurabilitySink(sink);
    manager->Seal();
    return manager;
  };

  // In-memory baseline: no sink attached.
  {
    auto manager = fresh_manager(nullptr);
    r.memory_p50_ms =
        DurableTrainP50(*manager, size, r.publishes, delta_rungs, &r.error);
    if (r.memory_p50_ms < 0) {
      r.ok = false;
      return r;
    }
  }

  // WAL attached, commits flushed to the OS but not fdatasync'd: the
  // structural logging cost (framing, CRC, appends) alone.
  {
    ScratchDir dir;
    WalOptions wopts;
    wopts.fsync_commits = false;
    auto wal = Wal::Open(dir.path(), wopts);
    if (!wal.ok()) {
      r.ok = false;
      r.error = wal.status().message();
      return r;
    }
    auto manager = fresh_manager(wal.value().get());
    r.wal_p50_ms =
        DurableTrainP50(*manager, size, r.publishes, delta_rungs, &r.error);
    manager->SetDurabilitySink(nullptr);
    if (r.wal_p50_ms < 0) {
      r.ok = false;
      return r;
    }
  }

  // WAL attached with fdatasync'd commits — a real durable deployment —
  // then a from-scratch recovery of the directory, which must land on the
  // same epoch serving the same facts.
  {
    ScratchDir dir;
    std::set<std::string> pre_tip;
    uint64_t pre_epoch = 0;
    {
      auto wal = Wal::Open(dir.path(), WalOptions{});
      if (!wal.ok()) {
        r.ok = false;
        r.error = wal.status().message();
        return r;
      }
      auto manager = fresh_manager(wal.value().get());
      r.fsync_p50_ms =
          DurableTrainP50(*manager, size, r.publishes, delta_rungs, &r.error);
      manager->SetDurabilitySink(nullptr);
      if (r.fsync_p50_ms < 0) {
        r.ok = false;
        return r;
      }
      r.log_bytes = wal.value()->log_bytes();
      auto tip = manager->Acquire();
      pre_tip = RenderTip(*tip);
      pre_epoch = manager->epoch();
    }
    auto recovered = RecoverSnapshotManager(dir.path(), WalOptions{}, nullptr);
    if (!recovered.ok()) {
      r.ok = false;
      r.error = recovered.status().message();
      return r;
    }
    RecoveredSystem sys = recovered.take();
    sys.manager->SetDurabilitySink(nullptr);
    r.recovered_batches =
        sys.stats.batches_replayed + sys.stats.batches_skipped;
    r.recovered_epoch = sys.manager->epoch();
    if (r.recovered_epoch != pre_epoch) {
      r.ok = false;
      r.error = "recovered epoch " + std::to_string(r.recovered_epoch) +
                " != pre-shutdown epoch " + std::to_string(pre_epoch);
      return r;
    }
    if (RenderTip(*sys.manager->Acquire()) != pre_tip) {
      r.ok = false;
      r.error = "recovered tip diverged from pre-shutdown tip";
      return r;
    }
  }

  r.wal_overhead =
      r.memory_p50_ms > 0 ? r.wal_p50_ms / r.memory_p50_ms : 0;
  r.fsync_overhead =
      r.memory_p50_ms > 0 ? r.fsync_p50_ms / r.memory_p50_ms : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> sizes = {512, 1024, 2048, 4096};
  size_t publishes = 16;
  size_t delta_rungs = 8;
  size_t threads = 2;
  int duration_ms = 400;
  bool json = false;
  std::string json_path = "BENCH_live.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--sizes") && i + 1 < argc) {
      sizes.clear();
      for (const char* p = argv[++i]; *p;) {
        char* end = nullptr;
        size_t v = static_cast<size_t>(std::strtoul(p, &end, 10));
        if (end == p || v == 0) {
          std::fprintf(stderr, "bad --sizes list (want e.g. 512,2048)\n");
          return 2;
        }
        p = end;
        if (*p == ',') ++p;
        sizes.push_back(v);
      }
    } else if (!std::strcmp(argv[i], "--publishes") && i + 1 < argc) {
      publishes = static_cast<size_t>(std::atol(argv[++i]));
    } else if (!std::strcmp(argv[i], "--delta") && i + 1 < argc) {
      delta_rungs = static_cast<size_t>(std::atol(argv[++i]));
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = static_cast<size_t>(std::atol(argv[++i]));
    } else if (!std::strcmp(argv[i], "--duration-ms") && i + 1 < argc) {
      duration_ms = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--smoke")) {
      sizes = {128, 512};
      publishes = 6;
      duration_ms = 150;
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--sizes <list>] [--publishes <k>] "
                   "[--delta <rungs>] [--threads <n>] [--duration-ms <t>] "
                   "[--smoke] [--json [path]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (publishes == 0 || delta_rungs == 0 || sizes.empty()) {
    std::fprintf(stderr, "need nonzero --publishes/--delta and --sizes\n");
    return 2;
  }

  int failures = 0;
  std::vector<PublishTrainResult> trains;
  for (size_t n : sizes) {
    trains.push_back(RunPublishTrain(n, publishes, delta_rungs, threads));
  }

  std::printf("%-20s %9s %9s %12s %12s %12s %12s %12s %14s %5s\n", "train",
              "rows", "publish#", "p50_ms", "max_ms", "build_p50",
              "freeze_p50", "artifact_p50", "cold_build_ms", "ok");
  for (const PublishTrainResult& t : trains) {
    if (!t.ok) {
      ++failures;
      std::printf("%-20s ERROR: %s\n", t.name.c_str(), t.error.c_str());
      continue;
    }
    std::printf(
        "%-20s %9zu %9zu %12.4f %12.4f %12.4f %12.4f %12.4f %14.3f %5s\n",
        t.name.c_str(), t.final_size * 3, t.publishes, t.publish_p50_ms,
        t.publish_max_ms, t.build_p50_ms, t.freeze_p50_ms, t.artifact_p50_ms,
        t.cold_rebuild_ms, t.ok ? "yes" : "NO");
  }

  // The sublinear gate: growing the database by `size_ratio` must not grow
  // median publish latency anywhere near as much. (Exact O(delta) publish
  // shows a ratio near 1; a full re-index would track the size ratio.)
  bool sublinear = true;
  double latency_ratio = 0, size_ratio = 0;
  if (trains.size() >= 2 && trains.front().ok && trains.back().ok) {
    const PublishTrainResult& small = trains.front();
    const PublishTrainResult& large = trains.back();
    size_ratio = static_cast<double>(large.initial_size) /
                 static_cast<double>(small.initial_size);
    latency_ratio = small.publish_p50_ms > 0
                        ? large.publish_p50_ms / small.publish_p50_ms
                        : 0;
    sublinear = latency_ratio < size_ratio / 2;
    std::printf(
        "publish scaling: size x%.1f -> p50 latency x%.2f (%s)\n",
        size_ratio, latency_ratio,
        sublinear ? "sublinear: incremental re-freeze"
                  : "NOT sublinear — publish is re-indexing the world");
    if (!sublinear) ++failures;
  }

  IngestResult ingest =
      RunIngest(sizes.back(), delta_rungs, threads, duration_ms);
  if (!ingest.ok) {
    ++failures;
    std::printf("%-20s ERROR: %s\n", ingest.name.c_str(),
                ingest.error.c_str());
  } else {
    std::printf(
        "%-20s %zu queries in %zu batches, %.1f queries/sec; %zu publishes "
        "(p50 %.4f ms) advanced epoch %llu -> %llu\n",
        ingest.name.c_str(), ingest.queries, ingest.batches, ingest.qps,
        ingest.publishes, ingest.publish_p50_ms,
        static_cast<unsigned long long>(ingest.first_epoch),
        static_cast<unsigned long long>(ingest.last_epoch));
  }

  DurableResult durable =
      RunDurableOverhead(sizes.back(), publishes, delta_rungs);
  if (!durable.ok) {
    ++failures;
    std::printf("%-20s ERROR: %s\n", durable.name.c_str(),
                durable.error.c_str());
  } else {
    std::printf(
        "%-20s publish p50 %.4f ms in-memory, %.4f ms +wal (x%.2f), "
        "%.4f ms +fsync (x%.2f); %llu log bytes, recovered %zu batch(es) "
        "to epoch %llu\n",
        durable.name.c_str(), durable.memory_p50_ms, durable.wal_p50_ms,
        durable.wal_overhead, durable.fsync_p50_ms, durable.fsync_overhead,
        static_cast<unsigned long long>(durable.log_bytes),
        durable.recovered_batches,
        static_cast<unsigned long long>(durable.recovered_epoch));
  }

  if (json) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"live\",\n  \"host\": " << bench::HostJson()
        << ",\n  \"benchmarks\": [\n";
    for (const PublishTrainResult& t : trains) {
      out << "    {\"name\": \"" << JsonEscape(t.name) << "\", \"ok\": "
          << (t.ok ? "true" : "false") << ", \"rows\": " << t.final_size * 3
          << ", \"publishes\": " << t.publishes
          << ", \"delta_rungs\": " << t.delta_rungs
          << ", \"publish_p50_ms\": " << t.publish_p50_ms
          << ", \"publish_max_ms\": " << t.publish_max_ms
          << ", \"build_p50_ms\": " << t.build_p50_ms
          << ", \"freeze_p50_ms\": " << t.freeze_p50_ms
          << ", \"artifact_p50_ms\": " << t.artifact_p50_ms
          << ", \"cold_rebuild_ms\": " << t.cold_rebuild_ms << "},\n";
    }
    out << "    {\"name\": \"" << JsonEscape(ingest.name) << "\", \"ok\": "
        << (ingest.ok ? "true" : "false")
        << ", \"queries\": " << ingest.queries << ", \"qps\": " << ingest.qps
        << ", \"publishes\": " << ingest.publishes
        << ", \"publish_p50_ms\": " << ingest.publish_p50_ms
        << ", \"first_epoch\": " << ingest.first_epoch
        << ", \"last_epoch\": " << ingest.last_epoch << "}\n  ],\n";
    out << "  \"durable_publish\": {\"name\": \"" << JsonEscape(durable.name)
        << "\", \"ok\": " << (durable.ok ? "true" : "false")
        << ", \"publishes\": " << durable.publishes
        << ", \"delta_rungs\": " << durable.delta_rungs
        << ", \"memory_p50_ms\": " << durable.memory_p50_ms
        << ", \"wal_p50_ms\": " << durable.wal_p50_ms
        << ", \"fsync_p50_ms\": " << durable.fsync_p50_ms
        << ", \"wal_overhead\": " << durable.wal_overhead
        << ", \"fsync_overhead\": " << durable.fsync_overhead
        << ", \"log_bytes\": " << durable.log_bytes
        << ", \"recovered_batches\": " << durable.recovered_batches
        << ", \"recovered_epoch\": " << durable.recovered_epoch << "},\n";
    out << "  \"publish_scaling\": {\"size_ratio\": " << size_ratio
        << ", \"latency_ratio\": " << latency_ratio
        << ", \"sublinear\": " << (sublinear ? "true" : "false") << "}\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}
