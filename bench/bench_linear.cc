// Experiment T4 (Theorem 4, the linear case): for p = e0 U e1.p.e2 the
// query runs in O(h n t) time, with h bounded by the longest e1-path from
// the query constant (statement (2): acyclic e1|a). Three sweeps:
//   - h grows, width fixed   -> iterations track h exactly;
//   - width grows, h fixed   -> nodes grow linearly in the per-level size;
//   - complete binary up-trees -> iterations track the tree depth.
#include <benchmark/benchmark.h>

#include <string>

#include "eval/query.h"
#include "workloads/workloads.h"

namespace {

using namespace binchain;

/// A "wide ladder": h levels; at each level `width` parallel flat rungs.
std::string WideLadder(Database& db, size_t h, size_t width) {
  for (size_t i = 1; i < h; ++i) {
    db.AddFact("up", {"a" + std::to_string(i), "a" + std::to_string(i + 1)});
    db.AddFact("down",
               {"b" + std::to_string(i + 1), "b" + std::to_string(i)});
  }
  for (size_t i = 1; i <= h; ++i) {
    for (size_t w = 0; w < width; ++w) {
      std::string mid = "m" + std::to_string(i) + "_" + std::to_string(w);
      db.AddFact("flat", {"a" + std::to_string(i), mid});
      db.AddFact("down", {mid, "b" + std::to_string(i)});
    }
  }
  return "a1";
}

void RunSg(benchmark::State& state, Database& db, const std::string& source,
           uint64_t* iterations, uint64_t* nodes) {
  QueryEngine engine(&db);
  if (!engine.LoadProgramText(workloads::SgProgramText()).ok()) {
    state.SkipWithError("load failed");
    return;
  }
  std::string q = "sg(" + source + ", Y)";
  for (auto _ : state) {
    auto r = engine.Query(q);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    *iterations = r.value().stats.iterations;
    *nodes = r.value().stats.nodes;
  }
}

void BM_LinearCaseGrowH(benchmark::State& state) {
  Database db;
  size_t h = static_cast<size_t>(state.range(0));
  std::string a = WideLadder(db, h, 4);
  uint64_t iterations = 0, nodes = 0;
  RunSg(state, db, a, &iterations, &nodes);
  state.counters["iterations"] = static_cast<double>(iterations);
  state.counters["h"] = static_cast<double>(h);
  state.counters["nodes"] = static_cast<double>(nodes);
}

void BM_LinearCaseGrowWidth(benchmark::State& state) {
  Database db;
  std::string a = WideLadder(db, 16, static_cast<size_t>(state.range(0)));
  uint64_t iterations = 0, nodes = 0;
  RunSg(state, db, a, &iterations, &nodes);
  state.counters["nodes"] = static_cast<double>(nodes);
}

void BM_LinearCaseUpTree(benchmark::State& state) {
  Database db;
  size_t levels = static_cast<size_t>(state.range(0));
  std::string leaf = workloads::UpTree(db, "up", "t", levels);
  // Mirror the tree downwards and add a flat loop at the root.
  // (Materialize first: AddFact may intern symbols but must not observe a
  // relation mid-iteration if "down" were aliased; "up" is distinct, yet a
  // stable snapshot keeps the intent obvious.)
  std::vector<Tuple> edges(db.Find("up")->tuples().begin(),
                           db.Find("up")->tuples().end());
  for (const Tuple& t : edges) {
    db.AddFact("down", {db.symbols().Name(t[1]), db.symbols().Name(t[0])});
  }
  db.AddFact("flat", {"t1", "t1"});
  uint64_t iterations = 0, nodes = 0;
  RunSg(state, db, leaf, &iterations, &nodes);
  // Theorem 4 (2): iterations bounded by the depth of the up-tree (plus the
  // final empty iteration).
  state.counters["iterations"] = static_cast<double>(iterations);
  state.counters["depth"] = static_cast<double>(levels - 1);
  state.counters["nodes"] = static_cast<double>(nodes);
}

}  // namespace

BENCHMARK(BM_LinearCaseGrowH)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);
BENCHMARK(BM_LinearCaseGrowWidth)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_LinearCaseUpTree)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

BENCHMARK_MAIN();
