// Experiment S4f: the Section-4 flight-connection query (4-ary, first two
// arguments bound). Compares the paper's binding-propagating binary-chain
// transformation against naive, seminaive, magic sets, and the simple-bin
// transformation (no binding propagation). The "fetches" counter shows the
// set of potentially relevant facts each strategy touches.
#include <benchmark/benchmark.h>

#include <string>

#include "baselines/bottom_up.h"
#include "baselines/magic.h"
#include "datalog/parser.h"
#include "transform/binarize.h"
#include "transform/simple_bin.h"
#include "workloads/workloads.h"

namespace {

using namespace binchain;

struct FlightCase {
  Database db;
  Program program;
  Literal query;

  explicit FlightCase(size_t flights) {
    workloads::FlightSpec spec;
    spec.airports = 20;
    spec.flights = flights;
    spec.horizon = flights / 4 + 10;
    spec.seed = 99;
    std::string origin = workloads::BuildFlights(db, spec);
    SymbolId origin_sym = *db.symbols().Find(origin);
    std::string dt;
    for (const Tuple& t : db.Find("flight")->tuples()) {
      if (t[0] == origin_sym) {
        dt = db.symbols().Name(t[1]);
        break;
      }
    }
    program =
        ParseProgram(workloads::FlightProgramText(), db.symbols()).take();
    query = ParseLiteral("cnx(" + origin + ", " + dt + ", D, AT)",
                         db.symbols())
                .take();
  }
};

void BM_FlightTransformed(benchmark::State& state) {
  FlightCase fc(static_cast<size_t>(state.range(0)));
  uint64_t fetches = 0;
  size_t answers = 0;
  for (auto _ : state) {
    fc.db.ResetFetches();
    auto r = EvaluateViaBinarization(fc.program, fc.db, fc.query);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    fetches = fc.db.TotalFetches();
    answers = r.value().tuples.size();
  }
  state.counters["fetches"] = static_cast<double>(fetches);
  state.counters["answers"] = static_cast<double>(answers);
}

void BM_FlightMagic(benchmark::State& state) {
  FlightCase fc(static_cast<size_t>(state.range(0)));
  uint64_t fetches = 0;
  for (auto _ : state) {
    BottomUpStats stats;
    auto r = MagicQuery(fc.program, fc.db, fc.query, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    fetches = stats.fetches;
  }
  state.counters["fetches"] = static_cast<double>(fetches);
}

void BM_FlightSeminaive(benchmark::State& state) {
  FlightCase fc(static_cast<size_t>(state.range(0)));
  uint64_t fetches = 0;
  for (auto _ : state) {
    BottomUpStats stats;
    auto r = SeminaiveQuery(fc.program, fc.db, fc.query, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    fetches = stats.fetches;
  }
  state.counters["fetches"] = static_cast<double>(fetches);
}

void BM_FlightNaive(benchmark::State& state) {
  FlightCase fc(static_cast<size_t>(state.range(0)));
  uint64_t fetches = 0;
  for (auto _ : state) {
    BottomUpStats stats;
    auto r = NaiveQuery(fc.program, fc.db, fc.query, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    fetches = stats.fetches;
  }
  state.counters["fetches"] = static_cast<double>(fetches);
}

void BM_FlightSimpleBin(benchmark::State& state) {
  FlightCase fc(static_cast<size_t>(state.range(0)));
  uint64_t edges = 0;
  for (auto _ : state) {
    SimpleBinStats stats;
    auto r = SimpleBinQuery(fc.program, fc.db, fc.query, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    edges = stats.bin_edges;
  }
  state.counters["bin_edges"] = static_cast<double>(edges);
}

}  // namespace

BENCHMARK(BM_FlightTransformed)->Arg(200)->Arg(400)->Arg(800)->Arg(1600)->MinTime(0.05);
BENCHMARK(BM_FlightMagic)->Arg(200)->Arg(400)->Arg(800)->Arg(1600)->MinTime(0.05);
BENCHMARK(BM_FlightSeminaive)->Arg(200)->Arg(400)->Arg(800)->Arg(1600)->MinTime(0.02);
BENCHMARK(BM_FlightNaive)->Arg(200)->Arg(400)->MinTime(0.02);
// Simple-bin materializes 37M bin edges already at 200 flights and exceeds
// the 50M edge limit at 400 (see EXPERIMENTS.md) — kept small on purpose.
BENCHMARK(BM_FlightSimpleBin)->Arg(100)->Arg(200)->MinTime(0.02);

BENCHMARK_MAIN();
