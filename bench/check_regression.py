#!/usr/bin/env python3
"""CI bench-regression gate.

Compares a smoke-run bench JSON against the committed baseline snapshot and
fails (exit 1) on structural regressions that survive machine-speed noise:

* any benchmark entry with ``ok: false`` (covers result-set divergence
  across thread counts — bench_service folds its identical-results check
  into ``ok``);
* ``bench_service``: within one smoke run, entries of the same batch at
  different thread counts must agree on ``result_hash``, ``tuples`` and
  ``fetches`` (schedule-independence of results and aggregate t-cost);
* ``bench_service``: a batch family whose committed baseline shows zero
  batch fetches (the epoch-shared-artifact effect) must still show zero in
  the smoke run — fetch totals "bouncing back from zero" was the
  regression mode that motivated the artifacts work;
* ``bench_service``: unexpected per-query status codes — throughput
  batches must be all-OK, and the cancellation benchmark must report every
  query as ``deadline_exceeded`` (in-flight enforcement actually fired);
* ``bench_service``: the observability before/after column — the same
  batch with metrics recording off vs on, interleaved within one run so
  machine speed cancels — must stay within ``OBS_OVERHEAD_BOUND``; the
  design target is <=1% (a handful of relaxed atomics per completed
  query), the gate bound is looser only to absorb CI-runner noise;
* ``bench_service``: the answer-cache A/B — the skewed-repeat stream must
  hash identically with the cache on and off (the cache may never change
  an answer), the cache-on side must be at least as fast as cache-off,
  and the publish-heavy invalidation rep must stay selective (publishes
  touching only one base relation retire only the entries it supports);
* ``bench_live``: the publish-scaling sanity flag, when present in both
  files, must not regress from sublinear to superlinear;
* ``bench_live``: the durable-publish block must report ``ok`` (the
  recovered tip renders identical to the pre-shutdown tip) and the
  no-fsync WAL overhead ratio — durable publish over in-memory publish,
  measured within the same run so machine speed cancels — must stay
  within 25% (record framing, CRC and appends staying cheap relative to
  Publish() itself; raw fdatasync latency is hardware and is reported
  but not gated).

Wall-clock numbers are never compared: smoke runs use smaller inputs and
CI machines vary. The gate asserts invariants, not speed.

Usage:  check_regression.py <baseline.json> <smoke.json>
"""

import json
import os
import re
import sys
from collections import defaultdict


def current_cpu_model():
    """Best-effort CPU model string, matching bench_util.h's CpuModel()."""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return ""


def warn_host_mismatch(baseline):
    """Non-fatal: flag a baseline recorded on different hardware.

    The gate itself only checks machine-independent invariants, but the
    numbers humans read next to a failure (wall times, ratios near their
    bounds) are only comparable on like hardware — so say so out loud
    instead of leaving the mismatch to be discovered mid-investigation.
    """
    host = baseline.get("host")
    if not isinstance(host, dict):
        return
    mismatches = []
    nproc = os.cpu_count()
    if host.get("nproc") not in (None, 0) and nproc and host["nproc"] != nproc:
        mismatches.append(f"nproc {host['nproc']} vs {nproc}")
    cpu = current_cpu_model()
    if host.get("cpu") and cpu and host["cpu"] != cpu:
        mismatches.append(f"cpu '{host['cpu']}' vs '{cpu}'")
    if mismatches:
        print(
            "WARNING: baseline host differs from this machine "
            f"({'; '.join(mismatches)}). Invariant checks below are still "
            "valid; absolute timings in the baseline are not comparable.")


def fail(errors):
    for e in errors:
        print(f"REGRESSION: {e}")
    print(f"{len(errors)} bench regression(s) detected")
    sys.exit(1)


def family(name):
    """Batch family: the benchmark name with thread-count and size params
    stripped, so smoke (small n) and baseline (full n) entries match."""
    name = re.sub(r"/threads=\d+$", "", name)
    name = re.sub(r"/n=\d+", "", name)
    name = re.sub(r"/h=\d+", "", name)
    return name


def check_ok_flags(tag, entries, errors):
    for b in entries:
        if not b.get("ok", False):
            errors.append(f"{tag}: benchmark '{b.get('name')}' reports ok=false")


def check_service(baseline, smoke, errors):
    sm = smoke.get("benchmarks", [])
    base = baseline.get("benchmarks", [])
    check_ok_flags("service", sm, errors)

    # Cross-thread-count agreement within the smoke run.
    groups = defaultdict(list)
    for b in sm:
        groups[family(b["name"])].append(b)
    for fam, entries in groups.items():
        for key in ("result_hash", "tuples", "fetches"):
            if key not in entries[0]:
                continue  # older snapshot without the field
            values = {e.get(key) for e in entries}
            if len(values) > 1:
                errors.append(
                    f"service: batch '{fam}' disagrees on {key} across "
                    f"thread counts: {sorted(map(str, values))}")

    # Fetch totals must not bounce back from zero where the baseline
    # established zero (epoch-shared artifacts serving every probe).
    base_zero = {
        family(b["name"])
        for b in base
        if b.get("ok") and b.get("fetches", 1) == 0
    }
    for fam, entries in groups.items():
        if fam not in base_zero:
            continue
        bad = [(e["name"], e.get("fetches", 0))
               for e in entries if e.get("fetches", 0) != 0]
        if bad:
            errors.append(
                f"service: field 'fetches' of batch '{fam}' regressed: "
                f"baseline=0, current={bad}")

    # Observability overhead: metrics on vs off, measured within one run.
    overhead = smoke.get("obs_overhead")
    base_overhead = baseline.get("obs_overhead")
    if overhead is not None:
        if not overhead.get("ok", False):
            errors.append(
                f"service: obs_overhead benchmark reports ok=false "
                f"({overhead.get('name')})")
        else:
            ratio = overhead.get("ratio", 0)
            if ratio > OBS_OVERHEAD_BOUND:
                errors.append(
                    "service: field 'obs_overhead.ratio' regressed: "
                    f"baseline={base_overhead.get('ratio') if base_overhead else 'n/a'}, "
                    f"current={ratio:.4f} (metrics on "
                    f"{overhead.get('wall_on_ms')} ms vs off "
                    f"{overhead.get('wall_off_ms')} ms), bound is "
                    f"x{OBS_OVERHEAD_BOUND} — metrics recording has crept "
                    "into the query hot path")
    elif base_overhead is not None:
        errors.append(
            "service: baseline has an obs_overhead block but the smoke run "
            "produced none")

    # Answer cache: the skewed-repeat stream must answer identically with
    # the cache on, and a cache that slows the repeat-heavy shape down has
    # lost its reason to exist (wall-noise-proof: both sides run
    # interleaved within the same process on the same frozen database).
    skewed = smoke.get("skewed")
    if skewed is not None:
        if not skewed.get("ok", False):
            errors.append(
                f"service: skewed cache benchmark reports ok=false "
                f"({skewed.get('name')})")
        else:
            if not skewed.get("hashes_match", False):
                errors.append(
                    "service: skewed cache benchmark diverged: cache-on "
                    f"hash {skewed.get('result_hash_on')} != cache-off "
                    f"hash {skewed.get('result_hash_off')} — the cache "
                    "changed an answer")
            if skewed.get("qps_on", 0) < skewed.get("qps_off", 0):
                errors.append(
                    "service: field 'skewed.qps_on' regressed below "
                    f"qps_off: on={skewed.get('qps_on'):.1f}, "
                    f"off={skewed.get('qps_off'):.1f} — the answer cache "
                    "costs more than it saves on its home workload")
    elif baseline.get("skewed") is not None:
        errors.append(
            "service: baseline has a skewed cache block but the smoke run "
            "produced none")

    invalidation = smoke.get("cache_invalidation")
    if invalidation is not None:
        if not invalidation.get("ok", False):
            errors.append(
                f"service: cache_invalidation benchmark reports ok=false "
                f"({invalidation.get('name')})")
        elif not invalidation.get("selective", False):
            errors.append(
                "service: cache invalidation lost selectivity: "
                f"{invalidation.get('invalidated')} entries invalidated "
                f"over {invalidation.get('publishes')} publishes, expected "
                f"{invalidation.get('expected_per_publish')} per publish "
                "with every unaffected entry still hitting")
    elif baseline.get("cache_invalidation") is not None:
        errors.append(
            "service: baseline has a cache_invalidation block but the "
            "smoke run produced none")

    # Streamed delivery: the first chunk must land strictly before the
    # full response on the ladder (the structural claim of the data
    # plane — chunks leave the engine mid-fixpoint). Wall-noise-proof:
    # both numbers come from the same queries in the same process.
    streaming = smoke.get("streaming")
    if streaming is not None:
        if not streaming.get("ok", False):
            errors.append(
                f"service: streaming benchmark reports ok=false "
                f"({streaming.get('name')})")
        else:
            first = streaming.get("first_chunk_p50_ms", 0)
            total = streaming.get("total_p50_ms", 0)
            if first >= total:
                errors.append(
                    "service: field 'streaming.first_chunk_p50_ms' "
                    f"regressed: first chunk p50 {first} ms >= full "
                    f"response p50 {total} ms on '{streaming.get('name')}' "
                    "— streamed chunks no longer leave mid-evaluation")
            queries = streaming.get("queries", 0)
            if streaming.get("chunks", 0) < 2 * queries:
                errors.append(
                    "service: streaming benchmark averaged fewer than 2 "
                    f"chunks per query ({streaming.get('chunks')} over "
                    f"{queries}) — incremental delivery collapsed")
    elif baseline.get("streaming") is not None:
        errors.append(
            "service: baseline has a streaming block but the smoke run "
            "produced none")

    # Status codes: throughput batches are all-OK...
    for b in sm:
        status = b.get("status")
        if status is None:
            continue
        unexpected = {k: v for k, v in status.items() if k != "ok" and v != 0}
        if unexpected:
            errors.append(
                f"service: batch '{b['name']}' has non-OK query statuses "
                f"{unexpected}")
    # ...and the cancellation benchmark is all-deadline_exceeded.
    cancel = smoke.get("cancellation")
    if cancel is not None:
        if not cancel.get("ok", False):
            errors.append("service: cancellation benchmark reports ok=false")
        status = cancel.get("status", {})
        queries = cancel.get("queries", 0)
        if status.get("deadline_exceeded", 0) != queries:
            errors.append(
                "service: cancellation benchmark expected "
                f"{queries} deadline_exceeded responses, got {status}")


def check_storage(baseline, smoke, errors):
    del baseline  # smoke sizes differ; only invariants are checked
    check_ok_flags("storage", smoke.get("benchmarks", []), errors)


# Durable publish (WAL attached, fsync off) may cost at most this much
# over in-memory publish, as a within-run p50 ratio.
DURABLE_OVERHEAD_BOUND = 1.25

# Metrics-enabled service throughput may cost at most this much over the
# same batch with recording disabled (within-run best-of-reps ratio). The
# design target is 1.01; the slack absorbs scheduler noise on small CI
# runners, not real overhead.
OBS_OVERHEAD_BOUND = 1.10


def check_live(baseline, smoke, errors):
    check_ok_flags("live", smoke.get("benchmarks", []), errors)
    durable = smoke.get("durable_publish")
    if durable is not None:
        if not durable.get("ok", False):
            errors.append(
                "live: durable-publish benchmark reports ok=false "
                f"({durable.get('name')}): recovery or a publish failed")
        ratio = durable.get("wal_overhead")
        if ratio is not None and ratio > DURABLE_OVERHEAD_BOUND:
            base_durable = baseline.get("durable_publish") or {}
            errors.append(
                "live: field 'durable_publish.wal_overhead' regressed: "
                f"baseline={base_durable.get('wal_overhead', 'n/a')}, "
                f"current=x{ratio:.2f}, bound is "
                f"x{DURABLE_OVERHEAD_BOUND} — WAL appends have crept into "
                "the publish critical path")
    elif baseline.get("durable_publish") is not None:
        errors.append(
            "live: baseline has a durable_publish block but the smoke "
            "run produced none")
    base_scaling = baseline.get("publish_scaling", {})
    smoke_scaling = smoke.get("publish_scaling", {})
    if base_scaling.get("sublinear") and "sublinear" in smoke_scaling:
        if not smoke_scaling["sublinear"]:
            errors.append(
                "live: field 'publish_scaling.sublinear' regressed: "
                f"baseline=true (latency_ratio="
                f"{base_scaling.get('latency_ratio')}), current=false "
                f"(latency_ratio={smoke_scaling.get('latency_ratio')} over "
                f"size_ratio={smoke_scaling.get('size_ratio')})")


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    with open(argv[1]) as f:
        baseline = json.load(f)
    with open(argv[2]) as f:
        smoke = json.load(f)

    kind_b = baseline.get("bench")
    kind_s = smoke.get("bench")
    if kind_b != kind_s:
        fail([f"baseline is a '{kind_b}' snapshot but smoke is '{kind_s}'"])
    warn_host_mismatch(baseline)

    errors = []
    if kind_s == "service":
        check_service(baseline, smoke, errors)
    elif kind_s == "storage":
        check_storage(baseline, smoke, errors)
    elif kind_s == "live":
        check_live(baseline, smoke, errors)
    else:
        errors.append(f"unknown bench kind '{kind_s}'")
    if errors:
        fail(errors)
    n = len(smoke.get("benchmarks", []))
    print(f"bench-regression gate OK: {kind_s} ({n} benchmarks checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
