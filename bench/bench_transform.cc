// Experiment L1: cost and output size of the Lemma 1 transformation itself
// on generated linear binary-chain programs of growing size, plus the
// Section-4 pipeline (adorn + binarize) on n-ary programs. The
// transformation is a compile-time step: this harness documents that it
// stays cheap relative to evaluation.
#include <benchmark/benchmark.h>

#include <string>

#include "datalog/parser.h"
#include "equations/lemma1.h"
#include "transform/adorn.h"
#include "transform/binarize.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace {

using namespace binchain;

/// Generates a layered linear binary-chain program with `npreds` predicates:
/// regular and nonregular rules mixed, references only to earlier layers so
/// recursion classes stay small (mirrors realistic rule sets).
std::string LayeredProgram(size_t npreds, Rng& rng) {
  std::string text;
  for (size_t i = 0; i < npreds; ++i) {
    std::string p = "p" + std::to_string(i);
    std::string b = "b" + std::to_string(i % 5);
    text += p + "(X, Y) :- " + b + "(X, Y).\n";
    // Self-recursive rule, alternating left / right / middle shapes.
    switch (i % 3) {
      case 0:
        text += p + "(X, Z) :- " + b + "(X, Y), " + p + "(Y, Z).\n";
        break;
      case 1:
        text += p + "(X, Z) :- " + p + "(X, Y), " + b + "(Y, Z).\n";
        break;
      default:
        text += p + "(X, Z) :- " + b + "(X, A), " + p + "(A, B), " + b +
                "(B, Z).\n";
        break;
    }
    if (i > 0) {
      std::string q = "p" + std::to_string(rng.Below(i));
      text += p + "(X, Z) :- " + q + "(X, Y), " + b + "(Y, Z).\n";
    }
  }
  return text;
}

void BM_Lemma1Transform(benchmark::State& state) {
  size_t npreds = static_cast<size_t>(state.range(0));
  Rng rng(4711);
  std::string text = LayeredProgram(npreds, rng);
  SymbolTable symbols;
  auto program = ParseProgram(text, symbols);
  if (!program.ok()) {
    state.SkipWithError(program.status().message().c_str());
    return;
  }
  size_t leaves = 0, iterations = 0;
  for (auto _ : state) {
    auto r = TransformToEquations(program.value(), symbols);
    if (!r.ok()) {
      state.SkipWithError(r.status().message().c_str());
      return;
    }
    leaves = 0;
    for (SymbolId p : r.value().final_system.preds()) {
      leaves += LeafCount(r.value().final_system.Rhs(p));
    }
    iterations = r.value().iterations;
    benchmark::DoNotOptimize(leaves);
  }
  state.counters["rules"] = static_cast<double>(program.value().rules.size());
  state.counters["output_leaves"] = static_cast<double>(leaves);
  state.counters["fixpoint_iters"] = static_cast<double>(iterations);
}

void BM_AdornAndBinarize(benchmark::State& state) {
  SymbolTable symbols;
  auto program = ParseProgram(workloads::FlightProgramText(), symbols);
  auto query = ParseLiteral("cnx(p0, 3, D, AT)", symbols);
  if (!program.ok() || !query.ok()) {
    state.SkipWithError("parse failed");
    return;
  }
  size_t views = 0;
  for (auto _ : state) {
    auto adorned = AdornProgram(program.value(), symbols, query.value());
    if (!adorned.ok()) {
      state.SkipWithError(adorned.status().message().c_str());
      return;
    }
    auto bin = Binarize(adorned.value(), symbols);
    if (!bin.ok()) {
      state.SkipWithError(bin.status().message().c_str());
      return;
    }
    views = bin.value().views.size();
    benchmark::DoNotOptimize(bin.value().bin_program.rules.size());
  }
  state.counters["views"] = static_cast<double>(views);
}

}  // namespace

BENCHMARK(BM_Lemma1Transform)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);
BENCHMARK(BM_AdornAndBinarize);

BENCHMARK_MAIN();
