// The regular case (Theorem 3): transitive closure as a regular binary-chain
// program, evaluated by a single graph traversal, compared with the original
// Hunt-Szymanski-Ullman preconstruction on which the paper improves. Shows
// the "potentially relevant facts" factor: HSU materializes every tuple of
// every occurrence, the demand-driven engine only the reachable part.
#include <cstdio>

#include "eval/hsu.h"
#include "eval/query.h"
#include "storage/database.h"
#include "util/rng.h"
#include "workloads/workloads.h"

int main() {
  using namespace binchain;
  Database db;
  Rng rng(2024);
  // A graph with many components: most of it is irrelevant to the query.
  workloads::RandomGraph(db, "e", "v", 4000, 6000, rng);

  QueryEngine engine(&db);
  Status s = engine.LoadProgramText(workloads::PathProgramText());
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  std::printf("equation: path = %s\n\n",
              RexToString(engine.equations().Rhs(*db.symbols().Find("path")),
                          db.symbols())
                  .c_str());

  auto r = engine.Query("path(v0, Y)");
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().message().c_str());
    return 1;
  }
  std::printf("demand-driven: %zu reachable, %llu nodes, %llu arcs, "
              "%llu iterations\n",
              r.value().tuples.size(),
              static_cast<unsigned long long>(r.value().stats.nodes),
              static_cast<unsigned long long>(r.value().stats.arcs),
              static_cast<unsigned long long>(r.value().stats.iterations));

  HsuStats hsu_stats;
  TermId source = engine.views().pool().Unary(*db.symbols().Find("v0"));
  auto h = HsuEvaluate(engine.equations(), engine.views(),
                       *db.symbols().Find("path"), source, &hsu_stats);
  if (!h.ok()) {
    std::fprintf(stderr, "%s\n", h.status().message().c_str());
    return 1;
  }
  std::printf("HSU preconstruction: %llu arcs materialized, %llu nodes "
              "visited, %zu answers\n",
              static_cast<unsigned long long>(hsu_stats.preconstructed_arcs),
              static_cast<unsigned long long>(hsu_stats.visited_nodes),
              h.value().size());
  std::printf("\nanswers agree: %s\n",
              h.value().size() == r.value().tuples.size() ? "yes" : "NO");
  return 0;
}
