// The paper's running example: the same-generation query on the Figure 7
// data samples and the cyclic Figure 8 sample, with the engine's work
// counters printed for each — reproducing the behaviour discussed in
// Section 3 (constant iterations on (a); n iterations with quadratic nodes
// on (b); n iterations with linear nodes on (c); m*n iterations on the
// cyclic sample).
#include <cstdio>
#include <string>

#include "eval/query.h"
#include "storage/database.h"
#include "workloads/workloads.h"

namespace {

void Run(const char* label, binchain::Database& db, const std::string& source,
         const binchain::EvalOptions& options) {
  binchain::QueryEngine engine(&db);
  binchain::Status s =
      engine.LoadProgramText(binchain::workloads::SgProgramText());
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", label, s.message().c_str());
    return;
  }
  auto r = engine.Query("sg(" + source + ", Y)", options);
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", label, r.status().message().c_str());
    return;
  }
  std::printf(
      "%-28s answers=%4zu iterations=%4llu nodes=%6llu arcs=%6llu "
      "fetches=%6llu\n",
      label, r.value().tuples.size(),
      static_cast<unsigned long long>(r.value().stats.iterations),
      static_cast<unsigned long long>(r.value().stats.nodes),
      static_cast<unsigned long long>(r.value().stats.arcs),
      static_cast<unsigned long long>(r.value().fetches));
}

}  // namespace

int main() {
  const size_t n = 64;
  std::printf("same-generation, n = %zu\n", n);

  {
    binchain::Database db;
    std::string a = binchain::workloads::Fig7a(db, n);
    Run("Figure 7(a) double fan", db, a, {});
  }
  {
    binchain::Database db;
    std::string a = binchain::workloads::Fig7b(db, n);
    Run("Figure 7(b) flat-to-top", db, a, {});
  }
  {
    binchain::Database db;
    std::string a = binchain::workloads::Fig7c(db, n);
    Run("Figure 7(c) ladder", db, a, {});
  }
  {
    binchain::Database db;
    std::string a = binchain::workloads::Fig8(db, 5, 7);
    binchain::EvalOptions opt;
    opt.use_cyclic_bound = true;  // |D1| * |D2| = 35 iterations
    Run("Figure 8 cyclic (m=5,n=7)", db, a, opt);
  }
  return 0;
}
