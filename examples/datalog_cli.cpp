// A small command-line Datalog runner over the library:
//
//   ./datalog_cli [--strategy=graph|seminaive|naive|magic|transform]
//                 [--cyclic-bound] [--max-iterations=N] [--threads=N]
//                 [--async] [--deadline-ms=X] [--queue-depth=N]
//                 [--answer-cache-mb=N]
//                 [--live] [--wal=<dir>] [--stats] [--dot] <file.dl>
//
// --answer-cache-mb=N (service and live modes) puts an N-MiB exact-match
// answer cache in front of submission: repeats are served on the caller
// thread, and in live mode publishes invalidate only the entries whose
// supporting relations changed. The REPL `cache` command prints its
// statistics; `cache clear` drops every entry.
//
// The file contains rules, facts, and `?- query.` lines; every query is
// evaluated with the chosen strategy and the answers plus work counters are
// printed. With --stats, service and live modes print the full EvalStats of
// every query (nodes, arcs, iterations, expansions, fetches,
// wide_mask_scans, memo_hits). With --dot the automaton M(e_p) of each queried predicate and
// the equation dependency graph are emitted as Graphviz. With --threads=N
// (graph strategy only) the queries are dispatched as one batch to a
// QueryService over a frozen database snapshot, N workers wide, and the
// batch throughput is reported. --async switches that dispatch to the
// future-based submission API (per-query futures, completion callback);
// --deadline-ms=X gives every query an evaluation budget enforced both at
// pickup and mid-flight (expired traversals unwind with partial answers),
// and --queue-depth=N sets the submission queue's high-water mark past
// which async submissions are shed with kOverloaded.
//
// With --live the file's rules and facts become the genesis epoch of a
// SnapshotManager-backed service, and stdin becomes a load/publish REPL:
//
//   live> +up(a9, a10).      stage a fact for the next publish
//   live> -up(a3, a4).       stage a retraction (tombstone) likewise
//   live> publish            merge staged ops into a new serving epoch
//   live> ?- sg(a1, Y).      query the current epoch
//   live> epoch | pending    inspect the serving state
//   live> metrics            Prometheus exposition of the metrics registry
//   live> cache [clear]      answer-cache statistics / drop every entry
//                            (requires --answer-cache-mb=N)
//   live> recover            show the startup recovery report (--wal)
//   live> quit
//
// Staged facts never touch the serving epoch until `publish`; queries keep
// running (and may be issued from other clients) while a publish builds.
//
// With --wal=<dir> (live mode only) every staged op is written to a
// write-ahead log and each publish is committed to stable storage before
// the epoch swaps in; the .dl file still seeds the genesis epoch, the WAL
// carries everything ingested after it. Restarting with the same directory
// replays the committed batches — the service answers kUnavailable until
// the replay lands back on the pre-crash tip — so `publish`ed epochs
// survive a crash or quit. --hold-recovery keeps that gate closed until
// the REPL `recover` command runs the replay, so probes can observe the
// not-ready window.
//
// With --serve-obs=<port> (live mode only) the process also runs the
// admin-plane HTTP server on loopback: /metrics, /metrics.json, /healthz,
// /readyz, /debug/queries, /debug/epochs, /debug/trace (see
// src/server/admin_endpoints.h). Port 0 picks an ephemeral port; the
// bound port is printed as `[admin] listening on ...`.
#include <sys/stat.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/bottom_up.h"
#include "baselines/magic.h"
#include "cache/answer_cache.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "durability/recovery.h"
#include "eval/dot_export.h"
#include "eval/query.h"
#include "live/snapshot_manager.h"
#include "obs/metrics.h"
#include "server/admin_endpoints.h"
#include "server/admin_server.h"
#include "server/data_server.h"
#include "service/query_service.h"
#include "transform/binarize.h"

namespace {

using namespace binchain;

int Fail(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  return 1;
}

void PrintAnswers(const Database& db, const Literal& query,
                  const std::vector<Tuple>& tuples) {
  std::printf("?- %s  (%zu answers)\n",
              LiteralToString(query, db.symbols()).c_str(), tuples.size());
  size_t shown = 0;
  for (const Tuple& t : tuples) {
    if (shown++ >= 20) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %s\n", TupleToString(t, db.symbols()).c_str());
  }
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kUnsupported: return "UNSUPPORTED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kOverloaded: return "OVERLOADED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

/// Full per-query EvalStats line (service and live modes, --stats).
void PrintEvalStats(const char* tag, const EvalStats& stats,
                    uint64_t fetches) {
  std::printf(
      "  [%s] nodes=%llu arcs=%llu iterations=%llu expansions=%llu "
      "continuations=%llu em_states=%llu fetches=%llu wide_mask_scans=%llu "
      "memo_hits=%llu cancel_checks=%llu%s\n",
      tag, static_cast<unsigned long long>(stats.nodes),
      static_cast<unsigned long long>(stats.arcs),
      static_cast<unsigned long long>(stats.iterations),
      static_cast<unsigned long long>(stats.expansions),
      static_cast<unsigned long long>(stats.continuations),
      static_cast<unsigned long long>(stats.em_states),
      static_cast<unsigned long long>(fetches),
      static_cast<unsigned long long>(stats.wide_mask_scans),
      static_cast<unsigned long long>(stats.memo_hits),
      static_cast<unsigned long long>(stats.cancel_checks),
      stats.hit_iteration_cap ? " (iteration cap hit!)" : "");
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Parses `pred(arg, ..., arg)` with an optional trailing period, without
/// touching any symbol table — the live REPL must not intern into frozen
/// epochs (constants unseen by the current epoch simply yield no answers).
bool ParseNameArgs(const std::string& text, std::string* pred,
                   std::vector<std::string>* args) {
  std::string s = Trim(text);
  if (!s.empty() && s.back() == '.') s = Trim(s.substr(0, s.size() - 1));
  size_t open = s.find('(');
  if (open == std::string::npos || s.back() != ')') return false;
  *pred = Trim(s.substr(0, open));
  if (pred->empty()) return false;
  args->clear();
  std::string inner = s.substr(open + 1, s.size() - open - 2);
  size_t start = 0;
  while (true) {
    size_t comma = inner.find(',', start);
    std::string arg = Trim(comma == std::string::npos
                               ? inner.substr(start)
                               : inner.substr(start, comma - start));
    if (arg.empty()) return false;
    args->push_back(arg);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

bool IsVariableSpelling(const std::string& s) {
  return !s.empty() && (std::isupper(static_cast<unsigned char>(s[0])) ||
                        s[0] == '_');
}

/// --metrics-json=<path>: machine-readable dump of the metrics registry
/// (plus the service's slow-query flight recorder, when a service exists)
/// written on exit, so smoke tests can assert the exposition end to end
/// without scraping REPL output.
int DumpMetricsJson(const std::string& path, const QueryService* service) {
  if (path.empty()) return 0;
  std::ofstream out(path);
  if (!out) return Fail("cannot write metrics dump to " + path);
  out << "{\n\"metrics\": " << obs::Registry::Global().RenderJson();
  if (service != nullptr) {
    out << ",\n\"flight_recorder\": " << service->flight_recorder().RenderJson()
        << "\n";
  }
  out << "}\n";
  return 0;
}

/// The load/publish REPL over a live service. `recovered` carries the
/// startup recovery report when the deployment is durable (--wal), nullptr
/// otherwise. Returns the process exit code.
int RunLiveRepl(SnapshotManager& manager, QueryService& service,
                const QueryOptions& options, bool print_stats,
                const durability::RecoveryStats* recovered,
                const std::string& wal_dir,
                std::function<Status()> finish_recovery) {
  std::printf(
      "[live%s] epoch %llu serving on %zu threads; commands: +fact(...), "
      "-fact(...), publish, ?- query, epoch, pending, metrics, recover, "
      "quit\n",
      wal_dir.empty() ? "" : "/durable",
      static_cast<unsigned long long>(manager.epoch()),
      service.num_threads());
  std::string line;
  while (std::printf("live> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string cmd = Trim(line);
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "epoch") {
      std::printf("epoch %llu\n",
                  static_cast<unsigned long long>(manager.epoch()));
      continue;
    }
    if (cmd == "pending") {
      std::printf("%zu staged fact(s)\n", manager.PendingFacts());
      continue;
    }
    if (cmd == "metrics") {
      // Raw Prometheus text exposition: every line starts with '#' or a
      // metric name, so a scraper can split it from the REPL prompts.
      std::fputs(obs::Registry::Global().RenderPrometheus().c_str(), stdout);
      continue;
    }
    if (cmd == "cache" || cmd == "cache clear") {
      cache::AnswerCache* c = service.answer_cache();
      if (c == nullptr) {
        std::printf(
            "no answer cache; restart with --answer-cache-mb=N to enable\n");
        continue;
      }
      if (cmd == "cache clear") {
        c->Clear();
        std::printf("cache cleared\n");
        continue;
      }
      std::string json;
      c->Snapshot().RenderJson(&json);
      std::printf("%s\n", json.c_str());
      continue;
    }
    if (cmd == "recover") {
      if (finish_recovery) {
        // --hold-recovery: the replay was deferred to this command so the
        // not-ready window is observable (e.g. by /readyz probes).
        Status st = finish_recovery();
        if (!st.ok()) {
          std::printf("recovery FAILED: %s\n", st.message().c_str());
          continue;
        }
        finish_recovery = nullptr;
        std::printf("[wal] recovery finished; serving epoch %llu\n",
                    static_cast<unsigned long long>(manager.epoch()));
        continue;
      }
      if (recovered == nullptr) {
        std::printf("not durable; restart with --wal=<dir> to enable\n");
        continue;
      }
      std::printf(
          "[wal] dir=%s\n"
          "  checkpoint: %s (epoch %llu, %llu facts)\n"
          "  log: %llu record(s) scanned, %llu committed batch(es) "
          "(%llu replayed, %llu skipped as checkpointed)\n"
          "  tail: %s (%llu bytes truncated)\n",
          wal_dir.c_str(), recovered->checkpoint_found ? "found" : "none",
          static_cast<unsigned long long>(recovered->checkpoint_epoch),
          static_cast<unsigned long long>(recovered->checkpoint_facts),
          static_cast<unsigned long long>(recovered->records_scanned),
          static_cast<unsigned long long>(recovered->batches_committed),
          static_cast<unsigned long long>(recovered->batches_replayed),
          static_cast<unsigned long long>(recovered->batches_skipped),
          recovered->tail_truncated ? "truncated (torn/uncommitted)" : "clean",
          static_cast<unsigned long long>(recovered->truncated_bytes));
      continue;
    }
    if (cmd == "publish") {
      PublishStats ps = manager.Publish();
      if (!ps.status.ok()) {
        // A refused durable commit: no epoch swap, the batch stays staged.
        std::printf("publish REFUSED (%s); %zu op(s) re-queued\n",
                    ps.status.message().c_str(), manager.PendingFacts());
        continue;
      }
      std::printf(
          "epoch %llu published in %.3f ms: +%llu facts (%llu duplicate, "
          "%llu rejected), -%llu retracted (%llu missing), %llu new "
          "symbols, %llu relation(s) layered, %llu flattened%s\n",
          static_cast<unsigned long long>(ps.epoch), ps.wall_ms,
          static_cast<unsigned long long>(ps.facts_added),
          static_cast<unsigned long long>(ps.facts_duplicate),
          static_cast<unsigned long long>(ps.facts_rejected),
          static_cast<unsigned long long>(ps.facts_deleted),
          static_cast<unsigned long long>(ps.facts_delete_missing),
          static_cast<unsigned long long>(ps.new_symbols),
          static_cast<unsigned long long>(ps.relations_touched),
          static_cast<unsigned long long>(ps.relations_flattened),
          wal_dir.empty()
              ? ""
              : (", commit " + std::to_string(ps.commit_ms) + " ms").c_str());
      continue;
    }
    if (cmd[0] == '+' || cmd[0] == '-') {
      const bool is_delete = cmd[0] == '-';
      std::string pred;
      std::vector<std::string> args;
      if (!ParseNameArgs(cmd.substr(1), &pred, &args)) {
        std::printf("cannot parse fact; want %cpred(c1, ..., cn).\n",
                    cmd[0]);
        continue;
      }
      bool ground = true;
      for (const std::string& arg : args) {
        if (IsVariableSpelling(arg)) {
          std::printf("facts must be ground: '%s' spells a variable\n",
                      arg.c_str());
          ground = false;
          break;
        }
      }
      if (!ground) continue;
      if (is_delete) {
        manager.DeleteFact(pred, args);
        std::printf("staged retraction (%zu pending)\n",
                    manager.PendingFacts());
      } else {
        manager.AddFact(pred, args);
        std::printf("staged (%zu pending)\n", manager.PendingFacts());
      }
      continue;
    }
    if (cmd.rfind("?-", 0) == 0) {
      std::string pred;
      std::vector<std::string> args;
      if (!ParseNameArgs(cmd.substr(2), &pred, &args) || args.size() != 2) {
        std::printf("cannot parse query; want ?- pred(a, Y).\n");
        continue;
      }
      QueryRequest req;
      req.pred = pred;
      req.options = options;
      if (!IsVariableSpelling(args[0])) req.source = args[0];
      if (!IsVariableSpelling(args[1])) req.target = args[1];
      req.diagonal = IsVariableSpelling(args[0]) && args[0] == args[1];
      QueryResponse resp = service.Eval(req);
      if (!resp.status.ok()) {
        std::printf("ERROR: %s\n", resp.status.message().c_str());
        continue;
      }
      // Any tip at or past the response's epoch can render its symbols
      // (epochs only extend the id space).
      auto tip = manager.Acquire();
      std::printf("(%zu answers @ epoch %llu)\n", resp.tuples.size(),
                  static_cast<unsigned long long>(resp.epoch));
      size_t shown = 0;
      for (const Tuple& t : resp.tuples) {
        if (shown++ >= 20) {
          std::printf("  ...\n");
          break;
        }
        std::printf("  %s\n", TupleToString(t, tip->symbols()).c_str());
      }
      if (print_stats) {
        PrintEvalStats("live", resp.stats, resp.fetches);
      } else {
        std::printf(
            "  [live] nodes=%llu iterations=%llu fetches=%llu "
            "wide_scans=%llu\n",
            static_cast<unsigned long long>(resp.stats.nodes),
            static_cast<unsigned long long>(resp.stats.iterations),
            static_cast<unsigned long long>(resp.fetches),
            static_cast<unsigned long long>(resp.stats.wide_mask_scans));
      }
      continue;
    }
    std::printf(
        "commands: +fact(...), -fact(...), publish, ?- query, epoch, "
        "pending, metrics, cache [clear], recover, quit\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string strategy = "graph";
  bool cyclic_bound = false;
  bool dot = false;
  bool live = false;
  std::string wal_dir;
  bool print_stats = false;
  bool async = false;
  double deadline_ms = 0;
  size_t queue_depth = 0;  // 0 = service default
  size_t max_iterations = 0;
  size_t threads = 0;
  size_t answer_cache_mb = 0;  // --answer-cache-mb=N: 0 keeps the cache off
  std::string metrics_json;  // --metrics-json=<path>: dump registry on exit
  int serve_obs = -1;        // --serve-obs=<port>: admin HTTP server (-1 off)
  int serve_data = -1;       // --serve=<port>: data-plane HTTP server (-1 off)
  double serve_qps = 0;      // --serve-qps=N: per-client rate limit (0 off)
  bool hold_recovery = false;  // --hold-recovery: defer replay to `recover`
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--strategy=", 0) == 0) {
      strategy = arg.substr(11);
    } else if (arg == "--cyclic-bound") {
      cyclic_bound = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--live") {
      live = true;
    } else if (arg.rfind("--wal=", 0) == 0) {
      wal_dir = arg.substr(6);
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg == "--async") {
      async = true;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = std::stod(arg.substr(14));
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      queue_depth = std::stoul(arg.substr(14));
    } else if (arg.rfind("--max-iterations=", 0) == 0) {
      max_iterations = std::stoul(arg.substr(17));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::stoul(arg.substr(10));
    } else if (arg.rfind("--answer-cache-mb=", 0) == 0) {
      answer_cache_mb = std::stoul(arg.substr(18));
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_json = arg.substr(15);
    } else if (arg.rfind("--serve-obs=", 0) == 0) {
      serve_obs = std::stoi(arg.substr(12));
    } else if (arg.rfind("--serve-qps=", 0) == 0) {
      serve_qps = std::stod(arg.substr(12));
    } else if (arg.rfind("--serve=", 0) == 0) {
      serve_data = std::stoi(arg.substr(8));
    } else if (arg == "--hold-recovery") {
      hold_recovery = true;
    } else if (arg == "--help") {
      std::printf(
          "usage: datalog_cli [--strategy=graph|seminaive|naive|magic|"
          "transform] [--cyclic-bound] [--max-iterations=N] [--threads=N] "
          "[--async] [--deadline-ms=X] [--queue-depth=N] "
          "[--answer-cache-mb=N] "
          "[--live] [--wal=<dir>] [--hold-recovery] [--serve-obs=<port>] "
          "[--serve=<port>] [--serve-qps=<N>] "
          "[--metrics-json=<path>] [--stats] [--dot] "
          "<file.dl>\n");
      return 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) return Fail("no input file (see --help)");
  if (async && threads == 0) {
    return Fail("--async requires service mode (--threads=N)");
  }
  if (!wal_dir.empty() && !live) {
    return Fail("--wal requires --live (durability covers published epochs)");
  }
  if (serve_obs >= 0 && !live) {
    // The admin server needs a long-lived process behind it; the live REPL
    // is the only CLI mode with one.
    return Fail("--serve-obs requires --live");
  }
  if (serve_obs > 65535) return Fail("--serve-obs: port out of range");
  if (serve_data >= 0 && !live) {
    // Streaming queries need the live REPL's long-lived service behind
    // them, same as the admin plane.
    return Fail("--serve requires --live");
  }
  if (serve_data > 65535) return Fail("--serve: port out of range");
  if (serve_qps > 0 && serve_data < 0) {
    return Fail("--serve-qps requires --serve (it limits data-plane clients)");
  }
  if (hold_recovery && wal_dir.empty()) {
    return Fail("--hold-recovery requires --wal (there is no replay to hold)");
  }
  // Deadlines and queue depth are service-layer machinery; rejecting them
  // elsewhere beats silently running an unbounded query.
  if ((deadline_ms > 0 || queue_depth > 0) && threads == 0 && !live) {
    return Fail(
        "--deadline-ms/--queue-depth require service mode (--threads=N or "
        "--live)");
  }

  std::ifstream in(path);
  if (!in) return Fail("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();

  if (live) {
    // Live mode: the file seeds the genesis epoch; stdin drives ingestion.
    // With --wal the genesis is instead the recovered pre-crash state (the
    // on-disk checkpoint, with the file's facts folded in by program
    // loading — a fresh directory recovers to the file contents alone).
    auto genesis = std::make_unique<Database>();
    std::unique_ptr<durability::RecoveryManager> recovery;
    if (!wal_dir.empty()) {
      ::mkdir(wal_dir.c_str(), 0777);  // fine if it already exists
      auto loaded = durability::RecoveryManager::Load(wal_dir);
      if (!loaded.ok()) return Fail(loaded.status().message());
      recovery = loaded.take();
      genesis = recovery->BuildGenesis();
    }
    auto parsed = ParseProgram(buffer.str(), genesis->symbols());
    if (!parsed.ok()) return Fail(parsed.status().message());
    Program program = parsed.take();
    Program rules_only = program;
    rules_only.queries.clear();
    QueryOptions options;
    options.use_cyclic_bound = cyclic_bound;
    options.max_iterations = max_iterations;
    options.deadline_ms = deadline_ms;

    SnapshotManager manager(std::move(genesis));
    QueryService::Options opts;
    opts.num_threads = threads;
    if (queue_depth > 0) opts.queue_depth = queue_depth;
    opts.answer_cache_bytes = answer_cache_mb << 20;
    std::unique_ptr<QueryService> service;
    if (recovery != nullptr) {
      service = std::make_unique<QueryService>(&manager, recovery.get(),
                                               rules_only, opts);
    } else {
      service = std::make_unique<QueryService>(&manager, rules_only, opts);
    }
    if (!service->status().ok()) return Fail(service->status().message());

    // The admin plane starts *before* recovery finishes, so /healthz is
    // already 200 (alive) while /readyz still reports 503 (not serving) —
    // the distinction the two probes exist for.
    std::unique_ptr<server::AdminServer> admin;
    if (serve_obs >= 0) {
      server::AdminServerOptions aopts;
      aopts.port = static_cast<uint16_t>(serve_obs);
      admin = std::make_unique<server::AdminServer>(aopts);
      server::RegisterAdminEndpoints(admin.get(), service.get(), &manager);
      if (Status st = admin->Start(); !st.ok()) return Fail(st.message());
      std::printf("[admin] listening on http://127.0.0.1:%u\n",
                  static_cast<unsigned>(admin->port()));
    }

    // The data plane serves POST /v1/query — streamed NDJSON answer
    // chunks with per-client rate limiting (docs/wire_protocol.md).
    std::unique_ptr<server::DataServer> data_server;
    if (serve_data >= 0) {
      server::DataServerOptions dopts;
      dopts.port = static_cast<uint16_t>(serve_data);
      dopts.rate_limit.qps = serve_qps;
      data_server =
          std::make_unique<server::DataServer>(service.get(), dopts);
      if (Status st = data_server->Start(); !st.ok()) {
        return Fail(st.message());
      }
      std::printf("[data] listening on http://127.0.0.1:%u (POST /v1/query)\n",
                  static_cast<unsigned>(data_server->port()));
    }

    durability::RecoveryStats recovery_stats;
    auto finish = [&service, &recovery, &recovery_stats, &manager,
                   &wal_dir]() -> Status {
      // Replays the committed WAL batches and opens the serving gate; the
      // WAL is owned by the service (and drives every publish) from here.
      if (Status st = service->FinishRecovery(); !st.ok()) return st;
      recovery_stats = recovery->stats();
      recovery.reset();
      std::printf(
          "[wal] recovered %s to epoch %llu: %llu batch(es) replayed, "
          "%llu skipped%s\n",
          wal_dir.c_str(), static_cast<unsigned long long>(manager.epoch()),
          static_cast<unsigned long long>(recovery_stats.batches_replayed),
          static_cast<unsigned long long>(recovery_stats.batches_skipped),
          recovery_stats.tail_truncated ? " (torn tail truncated)" : "");
      return Status::Ok();
    };
    std::function<Status()> held_recovery;
    if (recovery != nullptr) {
      if (hold_recovery) {
        // Replay deferred to the REPL `recover` command; until then every
        // submission (and /readyz) reports the closed gate.
        held_recovery = finish;
        std::printf(
            "[wal] recovery held: not serving until `recover` runs\n");
      } else if (Status st = finish(); !st.ok()) {
        return Fail(st.message());
      }
    }

    // The file's own queries run once against the serving tip — unless the
    // recovery gate is still closed (they would all answer kUnavailable).
    auto tip = manager.Acquire();
    if (!service->serving() && !program.queries.empty()) {
      std::printf("[wal] %zu file quer%s skipped while recovery is held\n",
                  program.queries.size(),
                  program.queries.size() == 1 ? "y" : "ies");
      program.queries.clear();
    }
    for (const Literal& q : program.queries) {
      if (q.arity() != 2) return Fail("live queries must be binary");
      QueryRequest req;
      req.pred = tip->symbols().Name(q.predicate);
      if (q.args[0].IsConst()) req.source = tip->symbols().Name(q.args[0].symbol);
      if (q.args[1].IsConst()) req.target = tip->symbols().Name(q.args[1].symbol);
      req.diagonal = q.args[0].IsVar() && q.args[0] == q.args[1];
      req.options = options;
      QueryResponse resp = service->Eval(req);
      if (!resp.status.ok()) return Fail(resp.status.message());
      PrintAnswers(*tip, q, resp.tuples);
      if (print_stats) PrintEvalStats("live", resp.stats, resp.fetches);
    }
    int rc = RunLiveRepl(manager, *service, options, print_stats,
                         wal_dir.empty() ? nullptr : &recovery_stats, wal_dir,
                         std::move(held_recovery));
    if (int mrc = DumpMetricsJson(metrics_json, service.get()); mrc != 0) {
      return mrc;
    }
    return rc;
  }

  Database db;
  auto parsed = ParseProgram(buffer.str(), db.symbols());
  if (!parsed.ok()) return Fail(parsed.status().message());
  Program program = parsed.take();
  if (program.queries.empty()) return Fail("no ?- queries in " + path);

  // Facts are shared by all strategies.
  Program rules_only = program;
  rules_only.queries.clear();

  if (strategy == "graph" && threads > 0) {
    // Service mode: freeze the database and evaluate the queries over the
    // thread pool — as one blocking batch, or through the async
    // future-based submission API with --async.
    QueryService::Options opts;
    opts.num_threads = threads;
    if (queue_depth > 0) opts.queue_depth = queue_depth;
    opts.answer_cache_bytes = answer_cache_mb << 20;
    QueryService service(&db, rules_only, opts);
    if (!service.status().ok()) return Fail(service.status().message());
    QueryOptions options;
    options.use_cyclic_bound = cyclic_bound;
    options.max_iterations = max_iterations;
    options.deadline_ms = deadline_ms;
    std::vector<QueryRequest> batch;
    for (const Literal& q : program.queries) {
      if (q.arity() != 2) return Fail("service queries must be binary");
      QueryRequest req;
      req.pred = db.symbols().Name(q.predicate);
      if (q.args[0].IsConst()) req.source = db.symbols().Name(q.args[0].symbol);
      if (q.args[1].IsConst()) req.target = db.symbols().Name(q.args[1].symbol);
      req.diagonal = q.args[0].IsVar() && q.args[0] == q.args[1];
      req.options = options;
      batch.push_back(std::move(req));
    }
    BatchStats stats;
    std::vector<QueryResponse> responses;
    if (async) {
      // Async submission: per-query futures, aggregates delivered through
      // the completion callback (fired by the worker finishing last).
      BatchHandle handle = service.SubmitBatch(batch, [](const BatchStats& s) {
        std::printf("[async] batch complete: %llu queries, %.3f ms\n",
                    static_cast<unsigned long long>(s.queries), s.wall_ms);
      });
      responses = handle.Take(&stats);
    } else {
      responses = service.EvalBatch(batch, &stats);
    }
    for (size_t i = 0; i < responses.size(); ++i) {
      const QueryResponse& r = responses[i];
      if (!r.status.ok() && !r.partial) {
        std::printf("?- %s  %s: %s\n",
                    LiteralToString(program.queries[i], db.symbols()).c_str(),
                    StatusCodeName(r.status.code()),
                    r.status.message().c_str());
        continue;
      }
      PrintAnswers(db, program.queries[i], r.tuples);
      if (r.partial) {
        std::printf("  [service] %s: partial answer set (%s)\n",
                    StatusCodeName(r.status.code()),
                    r.timed_out ? "deadline expired mid-flight" : "cancelled");
      }
      if (print_stats) {
        PrintEvalStats("service", r.stats, r.fetches);
      } else {
        std::printf(
            "  [service] nodes=%llu arcs=%llu iterations=%llu "
            "fetches=%llu%s\n",
            static_cast<unsigned long long>(r.stats.nodes),
            static_cast<unsigned long long>(r.stats.arcs),
            static_cast<unsigned long long>(r.stats.iterations),
            static_cast<unsigned long long>(r.fetches),
            r.stats.hit_iteration_cap ? " (iteration cap hit!)" : "");
      }
    }
    std::printf(
        "[service%s] %llu queries (%llu failed, %llu timed out, "
        "%llu cancelled, %llu overloaded) on %zu threads: %.3f ms, "
        "%.1f queries/sec\n",
        async ? "/async" : "",
        static_cast<unsigned long long>(stats.queries),
        static_cast<unsigned long long>(stats.failed),
        static_cast<unsigned long long>(stats.timed_out),
        static_cast<unsigned long long>(stats.cancelled),
        static_cast<unsigned long long>(stats.overloaded),
        service.num_threads(), stats.wall_ms,
        stats.wall_ms > 0
            ? 1000.0 * static_cast<double>(stats.queries) / stats.wall_ms
            : 0.0);
    return DumpMetricsJson(metrics_json, &service);
  }

  if (strategy == "graph") {
    QueryEngine engine(&db);
    if (Status s = engine.LoadProgram(rules_only); !s.ok()) {
      return Fail(s.message());
    }
    if (dot) {
      std::printf("%s\n", EquationDependenciesToDot(engine.equations(),
                                                    db.symbols())
                              .c_str());
    }
    EvalOptions options;
    options.use_cyclic_bound = cyclic_bound;
    options.max_iterations = max_iterations;
    for (const Literal& q : program.queries) {
      auto r = engine.Query(q, options);
      if (!r.ok()) return Fail(r.status().message());
      PrintAnswers(db, q, r.value().tuples);
      std::printf(
          "  [graph] nodes=%llu arcs=%llu iterations=%llu fetches=%llu%s\n",
          static_cast<unsigned long long>(r.value().stats.nodes),
          static_cast<unsigned long long>(r.value().stats.arcs),
          static_cast<unsigned long long>(r.value().stats.iterations),
          static_cast<unsigned long long>(r.value().fetches),
          r.value().stats.hit_iteration_cap ? " (iteration cap hit!)" : "");
    }
    return DumpMetricsJson(metrics_json, nullptr);
  }

  // Bottom-up strategies need the facts in the database.
  LoadFactsInto(db, rules_only.facts);
  rules_only.facts.clear();

  for (const Literal& q : program.queries) {
    BottomUpStats stats;
    Result<std::vector<Tuple>> r = Status::Internal("unset");
    if (strategy == "seminaive") {
      r = SeminaiveQuery(rules_only, db, q, &stats);
    } else if (strategy == "naive") {
      r = NaiveQuery(rules_only, db, q, &stats);
    } else if (strategy == "magic") {
      r = MagicQuery(rules_only, db, q, &stats);
    } else if (strategy == "transform") {
      auto t = EvaluateViaBinarization(rules_only, db, q);
      if (!t.ok()) return Fail(t.status().message());
      PrintAnswers(db, q, t.value().tuples);
      std::printf("  [transform] nodes=%llu iterations=%llu chain=%s\n",
                  static_cast<unsigned long long>(t.value().stats.nodes),
                  static_cast<unsigned long long>(t.value().stats.iterations),
                  t.value().is_chain ? "yes" : "no");
      continue;
    } else {
      return Fail("unknown strategy '" + strategy + "'");
    }
    if (!r.ok()) return Fail(r.status().message());
    PrintAnswers(db, q, r.value());
    std::printf("  [%s] firings=%llu tuples=%llu rounds=%llu fetches=%llu\n",
                strategy.c_str(),
                static_cast<unsigned long long>(stats.firings),
                static_cast<unsigned long long>(stats.tuples),
                static_cast<unsigned long long>(stats.rounds),
                static_cast<unsigned long long>(stats.fetches));
  }
  // Engine-only strategies have no service; the registry still dumps (its
  // families just read zero), so scripted callers get a file either way.
  return DumpMetricsJson(metrics_json, nullptr);
}
