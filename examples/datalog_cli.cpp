// A small command-line Datalog runner over the library:
//
//   ./datalog_cli [--strategy=graph|seminaive|naive|magic|transform]
//                 [--cyclic-bound] [--max-iterations=N] [--threads=N]
//                 [--dot] <file.dl>
//
// The file contains rules, facts, and `?- query.` lines; every query is
// evaluated with the chosen strategy and the answers plus work counters are
// printed. With --dot the automaton M(e_p) of each queried predicate and
// the equation dependency graph are emitted as Graphviz. With --threads=N
// (graph strategy only) the queries are dispatched as one batch to a
// QueryService over a frozen database snapshot, N workers wide, and the
// batch throughput is reported.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "baselines/bottom_up.h"
#include "baselines/magic.h"
#include "datalog/parser.h"
#include "datalog/printer.h"
#include "eval/dot_export.h"
#include "eval/query.h"
#include "service/query_service.h"
#include "transform/binarize.h"

namespace {

using namespace binchain;

int Fail(const std::string& msg) {
  std::fprintf(stderr, "error: %s\n", msg.c_str());
  return 1;
}

void PrintAnswers(const Database& db, const Literal& query,
                  const std::vector<Tuple>& tuples) {
  std::printf("?- %s  (%zu answers)\n",
              LiteralToString(query, db.symbols()).c_str(), tuples.size());
  size_t shown = 0;
  for (const Tuple& t : tuples) {
    if (shown++ >= 20) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %s\n", TupleToString(t, db.symbols()).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string strategy = "graph";
  bool cyclic_bound = false;
  bool dot = false;
  size_t max_iterations = 0;
  size_t threads = 0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--strategy=", 0) == 0) {
      strategy = arg.substr(11);
    } else if (arg == "--cyclic-bound") {
      cyclic_bound = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg.rfind("--max-iterations=", 0) == 0) {
      max_iterations = std::stoul(arg.substr(17));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::stoul(arg.substr(10));
    } else if (arg == "--help") {
      std::printf(
          "usage: datalog_cli [--strategy=graph|seminaive|naive|magic|"
          "transform] [--cyclic-bound] [--max-iterations=N] [--threads=N] "
          "[--dot] <file.dl>\n");
      return 0;
    } else {
      path = arg;
    }
  }
  if (path.empty()) return Fail("no input file (see --help)");

  std::ifstream in(path);
  if (!in) return Fail("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();

  Database db;
  auto parsed = ParseProgram(buffer.str(), db.symbols());
  if (!parsed.ok()) return Fail(parsed.status().message());
  Program program = parsed.take();
  if (program.queries.empty()) return Fail("no ?- queries in " + path);

  // Facts are shared by all strategies.
  Program rules_only = program;
  rules_only.queries.clear();

  if (strategy == "graph" && threads > 0) {
    // Service mode: freeze the database and evaluate the queries as one
    // batch over the thread pool.
    QueryService::Options opts;
    opts.num_threads = threads;
    QueryService service(&db, rules_only, opts);
    if (!service.status().ok()) return Fail(service.status().message());
    EvalOptions options;
    options.use_cyclic_bound = cyclic_bound;
    options.max_iterations = max_iterations;
    std::vector<QueryRequest> batch;
    for (const Literal& q : program.queries) {
      if (q.arity() != 2) return Fail("service queries must be binary");
      QueryRequest req;
      req.pred = db.symbols().Name(q.predicate);
      if (q.args[0].IsConst()) req.source = db.symbols().Name(q.args[0].symbol);
      if (q.args[1].IsConst()) req.target = db.symbols().Name(q.args[1].symbol);
      req.diagonal = q.args[0].IsVar() && q.args[0] == q.args[1];
      req.options = options;
      batch.push_back(std::move(req));
    }
    BatchStats stats;
    auto responses = service.EvalBatch(batch, &stats);
    for (size_t i = 0; i < responses.size(); ++i) {
      const QueryResponse& r = responses[i];
      if (!r.status.ok()) {
        std::printf("?- %s  ERROR: %s\n",
                    LiteralToString(program.queries[i], db.symbols()).c_str(),
                    r.status.message().c_str());
        continue;
      }
      PrintAnswers(db, program.queries[i], r.tuples);
      std::printf(
          "  [service] nodes=%llu arcs=%llu iterations=%llu fetches=%llu%s\n",
          static_cast<unsigned long long>(r.stats.nodes),
          static_cast<unsigned long long>(r.stats.arcs),
          static_cast<unsigned long long>(r.stats.iterations),
          static_cast<unsigned long long>(r.fetches),
          r.stats.hit_iteration_cap ? " (iteration cap hit!)" : "");
    }
    std::printf(
        "[service] %llu queries (%llu failed) on %zu threads: %.3f ms, "
        "%.1f queries/sec\n",
        static_cast<unsigned long long>(stats.queries),
        static_cast<unsigned long long>(stats.failed), service.num_threads(),
        stats.wall_ms,
        stats.wall_ms > 0
            ? 1000.0 * static_cast<double>(stats.queries) / stats.wall_ms
            : 0.0);
    return 0;
  }

  if (strategy == "graph") {
    QueryEngine engine(&db);
    if (Status s = engine.LoadProgram(rules_only); !s.ok()) {
      return Fail(s.message());
    }
    if (dot) {
      std::printf("%s\n", EquationDependenciesToDot(engine.equations(),
                                                    db.symbols())
                              .c_str());
    }
    EvalOptions options;
    options.use_cyclic_bound = cyclic_bound;
    options.max_iterations = max_iterations;
    for (const Literal& q : program.queries) {
      auto r = engine.Query(q, options);
      if (!r.ok()) return Fail(r.status().message());
      PrintAnswers(db, q, r.value().tuples);
      std::printf(
          "  [graph] nodes=%llu arcs=%llu iterations=%llu fetches=%llu%s\n",
          static_cast<unsigned long long>(r.value().stats.nodes),
          static_cast<unsigned long long>(r.value().stats.arcs),
          static_cast<unsigned long long>(r.value().stats.iterations),
          static_cast<unsigned long long>(r.value().fetches),
          r.value().stats.hit_iteration_cap ? " (iteration cap hit!)" : "");
    }
    return 0;
  }

  // Bottom-up strategies need the facts in the database.
  LoadFactsInto(db, rules_only.facts);
  rules_only.facts.clear();

  for (const Literal& q : program.queries) {
    BottomUpStats stats;
    Result<std::vector<Tuple>> r = Status::Internal("unset");
    if (strategy == "seminaive") {
      r = SeminaiveQuery(rules_only, db, q, &stats);
    } else if (strategy == "naive") {
      r = NaiveQuery(rules_only, db, q, &stats);
    } else if (strategy == "magic") {
      r = MagicQuery(rules_only, db, q, &stats);
    } else if (strategy == "transform") {
      auto t = EvaluateViaBinarization(rules_only, db, q);
      if (!t.ok()) return Fail(t.status().message());
      PrintAnswers(db, q, t.value().tuples);
      std::printf("  [transform] nodes=%llu iterations=%llu chain=%s\n",
                  static_cast<unsigned long long>(t.value().stats.nodes),
                  static_cast<unsigned long long>(t.value().stats.iterations),
                  t.value().is_chain ? "yes" : "no");
      continue;
    } else {
      return Fail("unknown strategy '" + strategy + "'");
    }
    if (!r.ok()) return Fail(r.status().message());
    PrintAnswers(db, q, r.value());
    std::printf("  [%s] firings=%llu tuples=%llu rounds=%llu fetches=%llu\n",
                strategy.c_str(),
                static_cast<unsigned long long>(stats.firings),
                static_cast<unsigned long long>(stats.tuples),
                static_cast<unsigned long long>(stats.rounds),
                static_cast<unsigned long long>(stats.fetches));
  }
  return 0;
}
