// Reconstructs the structural figures of the paper as text:
//   Figure 1: the automaton M(e_p) for e_p = (b3.b4* U b2.p).b1;
//   Figure 6: the automaton EM(sg, i) growth across iterations (reported via
//             engine statistics);
//   the Lemma 1 worked example: initial and final equation systems.
#include <cstdio>

#include "automata/nfa.h"
#include "datalog/parser.h"
#include "equations/lemma1.h"
#include "eval/query.h"
#include "storage/database.h"
#include "workloads/workloads.h"

int main() {
  using namespace binchain;

  {
    std::printf("=== Figure 1: M(e_p) for e_p = (b3.b4* U b2.p).b1 ===\n");
    SymbolTable symbols;
    SymbolId p = symbols.Intern("p");
    RexPtr e = Rex::Concat2(
        Rex::Union2(
            Rex::Concat2(Rex::Pred(symbols.Intern("b3")),
                         Rex::Star(Rex::Pred(symbols.Intern("b4")))),
            Rex::Concat2(Rex::Pred(symbols.Intern("b2")), Rex::Pred(p))),
        Rex::Pred(symbols.Intern("b1")));
    Nfa m = BuildNfa(e, [&](SymbolId s) { return s == p; });
    std::printf("%s\n", m.ToString(symbols).c_str());
  }

  {
    std::printf("=== Lemma 1 worked example ===\n");
    SymbolTable symbols;
    const char* text =
        "p1(X, Z) :- b(X, Y), p2(Y, Z).\n"
        "p1(X, Z) :- q1(X, Y), p3(Y, Z).\n"
        "p2(X, Z) :- c(X, Y), p1(Y, Z).\n"
        "p2(X, Z) :- d(X, Y), p3(Y, Z).\n"
        "p3(X, Y) :- a(X, Y).\n"
        "p3(X, Z) :- e(X, Y), p2(Y, Z).\n"
        "q1(X, Z) :- a(X, Y), q2(Y, Z).\n"
        "q2(X, Y) :- r2(X, Y).\n"
        "q2(X, Z) :- q1(X, Y), r1(Y, Z).\n"
        "r1(X, Y) :- b(X, Y).\n"
        "r1(X, Y) :- r2(X, Y).\n"
        "r2(X, Z) :- r1(X, Y), c(Y, Z).\n";
    auto program = ParseProgram(text, symbols);
    if (!program.ok()) {
      std::fprintf(stderr, "%s\n", program.status().message().c_str());
      return 1;
    }
    auto r = TransformToEquations(program.value(), symbols);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().message().c_str());
      return 1;
    }
    std::printf("initial system (step 1):\n%s\n",
                r.value().initial.ToString(symbols).c_str());
    std::printf("final system (steps 3-9, %zu iterations):\n%s\n",
                r.value().iterations,
                r.value().final_system.ToString(symbols).c_str());
  }

  {
    std::printf("=== Figures 2/6: EM(sg, i) growth on a 3-level ladder ===\n");
    Database db;
    std::string a = workloads::Fig7c(db, 3);
    QueryEngine engine(&db);
    Status s = engine.LoadProgramText(workloads::SgProgramText());
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    auto r = engine.Query("sg(" + a + ", Y)");
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().message().c_str());
      return 1;
    }
    std::printf(
        "iterations=%llu, machine copies spliced=%llu, final EM states=%llu\n",
        static_cast<unsigned long long>(r.value().stats.iterations),
        static_cast<unsigned long long>(r.value().stats.expansions),
        static_cast<unsigned long long>(r.value().stats.em_states));
    std::printf("answers: %zu (expected: b1)\n", r.value().tuples.size());
  }
  return 0;
}
