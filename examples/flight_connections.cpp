// The Section-4 airline example: the 4-ary cnx predicate is transformed to a
// binary-chain program (bin-cnx~bbff = in-r . bin-cnx~bbff | base-r) whose
// demand views propagate the query bindings (source airport + departure
// time) into the EDB lookups. Prints the generated binary-chain program and
// compares the facts consulted against full seminaive evaluation.
#include <cstdio>

#include "baselines/bottom_up.h"
#include "datalog/parser.h"
#include "storage/database.h"
#include "transform/binarize.h"
#include "workloads/workloads.h"

int main() {
  using namespace binchain;
  Database db;
  workloads::FlightSpec spec;
  spec.airports = 12;
  spec.flights = 400;
  spec.horizon = 80;
  std::string origin = workloads::BuildFlights(db, spec);

  // Pick a real departure time for the query.
  SymbolId origin_sym = *db.symbols().Find(origin);
  std::string dt;
  for (const Tuple& t : db.Find("flight")->tuples()) {
    if (t[0] == origin_sym) {
      dt = db.symbols().Name(t[1]);
      break;
    }
  }

  auto program = ParseProgram(workloads::FlightProgramText(), db.symbols());
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().message().c_str());
    return 1;
  }
  auto query = ParseLiteral("cnx(" + origin + ", " + dt + ", D, AT)",
                            db.symbols());
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().message().c_str());
    return 1;
  }

  std::printf("query: cnx(%s, %s, D, AT)\n\n", origin.c_str(), dt.c_str());

  db.ResetFetches();
  auto transformed = EvaluateViaBinarization(program.value(), db,
                                             query.value());
  if (!transformed.ok()) {
    std::fprintf(stderr, "%s\n", transformed.status().message().c_str());
    return 1;
  }
  uint64_t transformed_fetches = db.TotalFetches();

  std::printf("generated binary-chain program:\n%s\n",
              transformed.value().bin_program_text.c_str());
  std::printf("connections reachable: %zu\n",
              transformed.value().tuples.size());
  for (size_t i = 0; i < transformed.value().tuples.size() && i < 8; ++i) {
    const Tuple& t = transformed.value().tuples[i];
    std::printf("  arrive %-4s at t=%s\n", db.symbols().Name(t[2]).c_str(),
                db.symbols().Name(t[3]).c_str());
  }
  if (transformed.value().tuples.size() > 8) std::printf("  ...\n");

  db.ResetFetches();
  BottomUpStats semi_stats;
  auto semi = SeminaiveQuery(program.value(), db, query.value(), &semi_stats);
  if (!semi.ok()) {
    std::fprintf(stderr, "%s\n", semi.status().message().c_str());
    return 1;
  }
  std::printf(
      "\nEDB fetches  transformed (by demand): %8llu\n"
      "             seminaive (bottom-up):    %8llu\n",
      static_cast<unsigned long long>(transformed_fetches),
      static_cast<unsigned long long>(semi_stats.fetches));
  std::printf("answers agree: %s\n",
              transformed.value().tuples == semi.value() ? "yes" : "NO");
  return 0;
}
