// Quickstart: load a recursive Datalog program, ask a query, print answers.
//
//   $ ./quickstart
//
// Demonstrates the three-step pipeline of the library: parse -> Lemma 1
// equation transformation -> demand-driven graph traversal.
#include <cstdio>

#include "eval/query.h"
#include "storage/database.h"

int main() {
  binchain::Database db;

  // A small genealogy: who is in the same generation as ann?
  //
  //              grandma
  //             /       |
  //          mom       aunt
  //         /   |         |
  //      ann   bob      carol
  db.AddFact("up", {"ann", "mom"});
  db.AddFact("up", {"bob", "mom"});
  db.AddFact("up", {"carol", "aunt"});
  db.AddFact("up", {"mom", "grandma"});
  db.AddFact("up", {"aunt", "grandma"});
  db.AddFact("down", {"grandma", "mom"});
  db.AddFact("down", {"grandma", "aunt"});
  db.AddFact("down", {"mom", "ann"});
  db.AddFact("down", {"mom", "bob"});
  db.AddFact("down", {"aunt", "carol"});
  db.AddFact("flat", {"grandma", "grandma"});
  db.AddFact("flat", {"mom", "mom"});
  db.AddFact("flat", {"aunt", "aunt"});

  binchain::QueryEngine engine(&db);
  binchain::Status s = engine.LoadProgramText(
      "sg(X, Y) :- flat(X, Y).\n"
      "sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).\n");
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.message().c_str());
    return 1;
  }

  std::printf("equation system (Lemma 1):\n%s\n",
              engine.equations().ToString(db.symbols()).c_str());

  auto answer = engine.Query("sg(ann, Y)");
  if (!answer.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 answer.status().message().c_str());
    return 1;
  }
  std::printf("sg(ann, Y):\n");
  for (const binchain::Tuple& t : answer.value().tuples) {
    std::printf("  Y = %s\n", db.symbols().Name(t[1]).c_str());
  }
  std::printf(
      "\nstats: %llu nodes, %llu arc traversals, %llu iterations, "
      "%llu EDB fetches\n",
      static_cast<unsigned long long>(answer.value().stats.nodes),
      static_cast<unsigned long long>(answer.value().stats.arcs),
      static_cast<unsigned long long>(answer.value().stats.iterations),
      static_cast<unsigned long long>(answer.value().fetches));
  return 0;
}
