#include "datalog/lexer.h"

#include <cctype>

namespace binchain {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  size_t i = 0;
  auto advance = [&](size_t k) {
    for (size_t j = 0; j < k; ++j) {
      if (i < src.size() && src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument("lex error at " + std::to_string(line) +
                                   ":" + std::to_string(col) + ": " + msg);
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    int tl = line, tc = col;
    auto push = [&](TokenKind kind, std::string text, size_t len) {
      out.push_back(Token{kind, std::move(text), tl, tc});
      advance(len);
    };
    switch (c) {
      case '(':
        push(TokenKind::kLParen, "(", 1);
        continue;
      case ')':
        push(TokenKind::kRParen, ")", 1);
        continue;
      case ',':
        push(TokenKind::kComma, ",", 1);
        continue;
      case '.':
        push(TokenKind::kPeriod, ".", 1);
        continue;
      default:
        break;
    }
    if (c == ':' && i + 1 < src.size() && src[i + 1] == '-') {
      push(TokenKind::kIf, ":-", 2);
      continue;
    }
    if (c == '?' && i + 1 < src.size() && src[i + 1] == '-') {
      push(TokenKind::kQuery, "?-", 2);
      continue;
    }
    if (c == '<' || c == '>') {
      if (i + 1 < src.size() && src[i + 1] == '=') {
        push(TokenKind::kCompare, std::string(1, c) + "=", 2);
      } else {
        push(TokenKind::kCompare, std::string(1, c), 1);
      }
      continue;
    }
    if (c == '=') {
      push(TokenKind::kCompare, "=", 1);
      continue;
    }
    if (c == '!' && i + 1 < src.size() && src[i + 1] == '=') {
      push(TokenKind::kCompare, "!=", 2);
      continue;
    }
    if (c == '\'') {  // quoted constant
      size_t j = i + 1;
      while (j < src.size() && src[j] != '\'') ++j;
      if (j >= src.size()) return error("unterminated quoted constant");
      std::string text(src.substr(i + 1, j - i - 1));
      push(TokenKind::kLowerIdent, std::move(text), j - i + 1);
      continue;
    }
    if (IsIdentChar(c)) {
      size_t j = i;
      while (j < src.size() && IsIdentChar(src[j])) ++j;
      std::string text(src.substr(i, j - i));
      bool upper = std::isupper(static_cast<unsigned char>(c)) || c == '_';
      push(upper ? TokenKind::kUpperIdent : TokenKind::kLowerIdent,
           std::move(text), j - i);
      continue;
    }
    return error(std::string("unexpected character '") + c + "'");
  }
  out.push_back(Token{TokenKind::kEof, "", line, col});
  return out;
}

}  // namespace binchain
