// Datalog abstract syntax: terms, literals, rules, programs.
//
// Terminology follows the paper (Section 2): a *fact* is a rule with an
// empty body and all-constant head; a *base predicate* appears only in
// facts; a *derived predicate* appears in the head of a rule with a
// nonempty body. Built-in comparison predicates (<, <=, >, >=, =, !=) are
// allowed in bodies under the paper's safety restriction.
#ifndef BINCHAIN_DATALOG_AST_H_
#define BINCHAIN_DATALOG_AST_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/symbol_table.h"

namespace binchain {

/// A term is a variable or a constant; both are interned symbols.
struct Term {
  enum class Kind { kVariable, kConstant };
  Kind kind;
  SymbolId symbol;

  static Term Var(SymbolId s) { return {Kind::kVariable, s}; }
  static Term Const(SymbolId s) { return {Kind::kConstant, s}; }
  bool IsVar() const { return kind == Kind::kVariable; }
  bool IsConst() const { return kind == Kind::kConstant; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.symbol == b.symbol;
  }
};

/// p(t1, ..., tn). Built-in predicates are ordinary literals whose predicate
/// symbol spells a comparison operator.
struct Literal {
  SymbolId predicate = 0;
  std::vector<Term> args;

  size_t arity() const { return args.size(); }
};

/// Built-in comparison support.
bool IsBuiltinName(std::string_view name);
enum class Builtin { kLt, kLe, kGt, kGe, kEq, kNe };
std::optional<Builtin> BuiltinFromName(std::string_view name);

/// head :- body. An empty body with an all-constant head is a fact.
struct Rule {
  Literal head;
  std::vector<Literal> body;

  bool IsFact() const;
};

/// A parsed program: intensional rules, extensional facts, optional queries
/// (`?- p(a, Y).`).
struct Program {
  std::vector<Rule> rules;      // nonempty-body rules (intensional database)
  std::vector<Literal> facts;   // ground atoms (extensional database)
  std::vector<Literal> queries;

  /// Predicates occurring in rule heads (derived predicates), de-duplicated,
  /// in first-appearance order.
  std::vector<SymbolId> DerivedPredicates() const;

  /// Predicates occurring in bodies or facts but never in rule heads.
  /// Built-in comparison predicates are excluded.
  std::vector<SymbolId> BasePredicates(const SymbolTable& symbols) const;
};

}  // namespace binchain

#endif  // BINCHAIN_DATALOG_AST_H_
