#include "datalog/ast.h"

#include <unordered_set>

namespace binchain {

bool IsBuiltinName(std::string_view name) {
  return BuiltinFromName(name).has_value();
}

std::optional<Builtin> BuiltinFromName(std::string_view name) {
  if (name == "<") return Builtin::kLt;
  if (name == "<=") return Builtin::kLe;
  if (name == ">") return Builtin::kGt;
  if (name == ">=") return Builtin::kGe;
  if (name == "=") return Builtin::kEq;
  if (name == "!=") return Builtin::kNe;
  return std::nullopt;
}

bool Rule::IsFact() const {
  if (!body.empty()) return false;
  for (const Term& t : head.args) {
    if (t.IsVar()) return false;
  }
  return true;
}

std::vector<SymbolId> Program::DerivedPredicates() const {
  std::vector<SymbolId> out;
  std::unordered_set<SymbolId> seen;
  for (const Rule& r : rules) {
    if (seen.insert(r.head.predicate).second) out.push_back(r.head.predicate);
  }
  return out;
}

std::vector<SymbolId> Program::BasePredicates(const SymbolTable& symbols) const {
  std::unordered_set<SymbolId> derived;
  for (const Rule& r : rules) derived.insert(r.head.predicate);
  std::vector<SymbolId> out;
  std::unordered_set<SymbolId> seen;
  auto consider = [&](const Literal& lit) {
    if (derived.count(lit.predicate)) return;
    if (IsBuiltinName(symbols.Name(lit.predicate))) return;
    if (seen.insert(lit.predicate).second) out.push_back(lit.predicate);
  };
  for (const Rule& r : rules) {
    for (const Literal& lit : r.body) consider(lit);
  }
  for (const Literal& f : facts) consider(f);
  return out;
}

}  // namespace binchain
