#include "datalog/parser.h"

#include <string>

#include "datalog/lexer.h"

namespace binchain {
namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, SymbolTable& symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  Result<Program> ParseAll() {
    Program program;
    while (!At(TokenKind::kEof)) {
      if (At(TokenKind::kQuery)) {
        Next();
        auto lit = ParseAtom();
        if (!lit.ok()) return lit.status();
        if (auto s = Expect(TokenKind::kPeriod); !s.ok()) return s;
        program.queries.push_back(lit.take());
        continue;
      }
      auto head = ParseAtom();
      if (!head.ok()) return head.status();
      Rule rule;
      rule.head = head.take();
      if (At(TokenKind::kIf)) {
        Next();
        while (true) {
          auto lit = ParseBodyAtom();
          if (!lit.ok()) return lit.status();
          rule.body.push_back(lit.take());
          if (At(TokenKind::kComma)) {
            Next();
            continue;
          }
          break;
        }
      }
      if (auto s = Expect(TokenKind::kPeriod); !s.ok()) return s;
      if (rule.IsFact()) {
        program.facts.push_back(rule.head);
      } else {
        // Note: an empty-body clause with variables (e.g. the reflexivity
        // rule `p(X, X).`) is an intensional rule, not a fact.
        program.rules.push_back(std::move(rule));
      }
    }
    return program;
  }

  Result<Literal> ParseSingleLiteral() {
    auto lit = ParseAtom();
    if (!lit.ok()) return lit.status();
    if (!At(TokenKind::kEof)) return Error("trailing input after literal");
    return lit;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind k) const { return Cur().kind == k; }
  void Next() { ++pos_; }

  Status Error(const std::string& msg) const {
    const Token& t = Cur();
    return Status::InvalidArgument("parse error at " + std::to_string(t.line) +
                                   ":" + std::to_string(t.col) + ": " + msg);
  }

  Status Expect(TokenKind k) {
    if (!At(k)) {
      return Error("unexpected token '" + Cur().text + "'");
    }
    Next();
    return Status::Ok();
  }

  Result<Term> ParseTerm() {
    if (At(TokenKind::kLowerIdent)) {
      Term t = Term::Const(symbols_.Intern(Cur().text));
      Next();
      return t;
    }
    if (At(TokenKind::kUpperIdent)) {
      std::string name = Cur().text;
      if (name == "_") {
        name = "_G" + std::to_string(fresh_counter_++);
      }
      Term t = Term::Var(symbols_.Intern(name));
      Next();
      return t;
    }
    return Error("expected a term, got '" + Cur().text + "'");
  }

  /// predname(t1, ..., tn)
  Result<Literal> ParseAtom() {
    if (!At(TokenKind::kLowerIdent)) {
      return Error("expected a predicate name, got '" + Cur().text + "'");
    }
    Literal lit;
    lit.predicate = symbols_.Intern(Cur().text);
    Next();
    if (auto s = Expect(TokenKind::kLParen); !s.ok()) return s;
    if (!At(TokenKind::kRParen)) {
      while (true) {
        auto t = ParseTerm();
        if (!t.ok()) return t.status();
        lit.args.push_back(t.take());
        if (At(TokenKind::kComma)) {
          Next();
          continue;
        }
        break;
      }
    }
    if (auto s = Expect(TokenKind::kRParen); !s.ok()) return s;
    return lit;
  }

  /// Either an atom or an infix comparison `term OP term`.
  Result<Literal> ParseBodyAtom() {
    // Lookahead: lower ident followed by '(' is an atom; otherwise the token
    // starts a term of an infix comparison.
    if (At(TokenKind::kLowerIdent) &&
        tokens_[pos_ + 1].kind == TokenKind::kLParen) {
      return ParseAtom();
    }
    auto lhs = ParseTerm();
    if (!lhs.ok()) return lhs.status();
    if (!At(TokenKind::kCompare)) {
      return Error("expected comparison operator");
    }
    Literal lit;
    lit.predicate = symbols_.Intern(Cur().text);
    Next();
    auto rhs = ParseTerm();
    if (!rhs.ok()) return rhs.status();
    lit.args.push_back(lhs.take());
    lit.args.push_back(rhs.take());
    return lit;
  }

  std::vector<Token> tokens_;
  SymbolTable& symbols_;
  size_t pos_ = 0;
  int fresh_counter_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view src, SymbolTable& symbols) {
  auto tokens = Lex(src);
  if (!tokens.ok()) return tokens.status();
  Parser parser(tokens.take(), symbols);
  return parser.ParseAll();
}

Result<Literal> ParseLiteral(std::string_view src, SymbolTable& symbols) {
  auto tokens = Lex(src);
  if (!tokens.ok()) return tokens.status();
  Parser parser(tokens.take(), symbols);
  return parser.ParseSingleLiteral();
}

}  // namespace binchain
