// Tokenizer for the Datalog surface syntax:
//
//   sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
//   up(a, b).
//   ?- sg(a, Y).
//   % line comment
//
// Identifiers starting with a lowercase letter or digit (or quoted with
// single quotes) are constants / predicate names; identifiers starting with
// an uppercase letter or '_' are variables. Comparison operators
// <, <=, >, >=, =, != are built-in predicate tokens in infix position.
#ifndef BINCHAIN_DATALOG_LEXER_H_
#define BINCHAIN_DATALOG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace binchain {

enum class TokenKind {
  kLowerIdent,   // constants and predicate names (also quoted, also numbers)
  kUpperIdent,   // variables
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kIf,           // ":-"
  kQuery,        // "?-"
  kCompare,      // one of < <= > >= = !=
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
  int col;
};

/// Tokenizes `src`; fails on unknown characters or unterminated quotes.
Result<std::vector<Token>> Lex(std::string_view src);

}  // namespace binchain

#endif  // BINCHAIN_DATALOG_LEXER_H_
