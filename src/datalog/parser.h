// Recursive-descent parser producing a Program. Comparison built-ins are
// written infix (`AT1 < DT1`) and parsed into ordinary literals whose
// predicate symbol is the operator.
#ifndef BINCHAIN_DATALOG_PARSER_H_
#define BINCHAIN_DATALOG_PARSER_H_

#include <string_view>

#include "datalog/ast.h"
#include "util/status.h"

namespace binchain {

/// Parses Datalog source. All symbols are interned into `symbols`.
Result<Program> ParseProgram(std::string_view src, SymbolTable& symbols);

/// Parses a single literal such as "sg(john, Y)" (no trailing period).
Result<Literal> ParseLiteral(std::string_view src, SymbolTable& symbols);

}  // namespace binchain

#endif  // BINCHAIN_DATALOG_PARSER_H_
