// Pretty-printing of AST nodes back into parseable syntax.
#ifndef BINCHAIN_DATALOG_PRINTER_H_
#define BINCHAIN_DATALOG_PRINTER_H_

#include <string>

#include "datalog/ast.h"

namespace binchain {

std::string TermToString(const Term& t, const SymbolTable& symbols);
std::string LiteralToString(const Literal& lit, const SymbolTable& symbols);
std::string RuleToString(const Rule& r, const SymbolTable& symbols);
std::string ProgramToString(const Program& p, const SymbolTable& symbols);

}  // namespace binchain

#endif  // BINCHAIN_DATALOG_PRINTER_H_
