// Program classification per Section 2 of the paper: recursive / mutually
// recursive predicates, linear rules and programs, binary-chain rules and
// programs, left-/right-linear and regular predicates, safety of built-ins.
#ifndef BINCHAIN_DATALOG_ANALYSIS_H_
#define BINCHAIN_DATALOG_ANALYSIS_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/ast.h"
#include "graph/tarjan.h"
#include "util/status.h"

namespace binchain {

class ProgramAnalysis {
 public:
  ProgramAnalysis(const Program& program, const SymbolTable& symbols);

  bool IsDerived(SymbolId pred) const { return derived_.count(pred) > 0; }
  bool IsBuiltin(SymbolId pred) const { return builtins_.count(pred) > 0; }
  bool IsBase(SymbolId pred) const {
    return !IsDerived(pred) && !IsBuiltin(pred);
  }

  /// Paper definition: p is mutually recursive to q iff each can derive a
  /// set of literals mentioning the other (at least one derivation step).
  /// For p == q this means "p is recursive".
  bool MutuallyRecursive(SymbolId p, SymbolId q) const;

  bool IsRecursivePredicate(SymbolId p) const {
    return MutuallyRecursive(p, p);
  }

  /// A rule is recursive if its head predicate is mutually recursive to some
  /// body predicate.
  bool IsRecursiveRule(const Rule& r) const;

  /// A rule is linear if at most one body literal's predicate is mutually
  /// recursive to the head predicate.
  bool IsLinearRule(const Rule& r) const;

  bool IsLinearProgram() const;
  bool IsRecursiveProgram() const;

  /// Purely syntactic: head p(X1, Xn+1), body p1(X1,X2) ... pn(Xn,Xn+1),
  /// n >= 0, all chain variables distinct. For n = 0 the head is p(X, X).
  static bool IsBinaryChainRule(const Rule& r);

  /// All predicates binary and every intensional rule a binary-chain rule.
  bool IsBinaryChainProgram() const;

  /// Right-linear: no body predicate before the last is mutually recursive
  /// to the head. Left-linear: no body predicate after the first is.
  /// Both require a binary-chain rule.
  bool IsRightLinearRule(const Rule& r) const;
  bool IsLeftLinearRule(const Rule& r) const;

  /// p is right-linear (left-linear) if all rules for predicates mutually
  /// recursive to p are right-linear (left-linear); regular if either.
  /// Non-recursive derived predicates are vacuously regular.
  bool IsRightLinearPredicate(SymbolId p) const;
  bool IsLeftLinearPredicate(SymbolId p) const;
  bool IsRegularPredicate(SymbolId p) const {
    return IsRightLinearPredicate(p) || IsLeftLinearPredicate(p);
  }

  /// Binary-chain program whose derived predicates are all regular.
  bool IsRegularProgram() const;

  /// True if every rule body contains at most one derived literal
  /// (precondition of the Section 4 transformation).
  bool BodyHasAtMostOneDerived() const;

  /// Safety: every head variable occurs in a positive (non-built-in) body
  /// literal, and every built-in argument variable occurs in a non-built-in
  /// body literal (the paper's restriction on unrestricted domains).
  Status CheckSafety() const;

  /// Maximal sets of mutually recursive predicates (only recursive derived
  /// predicates appear; singletons without self-recursion are excluded).
  std::vector<std::vector<SymbolId>> MutualRecursionClasses() const;

 private:
  uint32_t NodeOf(SymbolId pred) const { return node_of_.at(pred); }

  const Program& program_;
  const SymbolTable& symbols_;
  std::unordered_set<SymbolId> derived_;
  std::unordered_set<SymbolId> builtins_;
  std::unordered_map<SymbolId, uint32_t> node_of_;
  std::vector<SymbolId> pred_of_node_;
  SccResult scc_;
};

}  // namespace binchain

#endif  // BINCHAIN_DATALOG_ANALYSIS_H_
