#include "datalog/printer.h"

namespace binchain {

std::string TermToString(const Term& t, const SymbolTable& symbols) {
  return symbols.Name(t.symbol);
}

std::string LiteralToString(const Literal& lit, const SymbolTable& symbols) {
  const std::string& pred = symbols.Name(lit.predicate);
  if (IsBuiltinName(pred) && lit.args.size() == 2) {
    return TermToString(lit.args[0], symbols) + " " + pred + " " +
           TermToString(lit.args[1], symbols);
  }
  std::string out = pred + "(";
  for (size_t i = 0; i < lit.args.size(); ++i) {
    if (i) out += ", ";
    out += TermToString(lit.args[i], symbols);
  }
  out += ")";
  return out;
}

std::string RuleToString(const Rule& r, const SymbolTable& symbols) {
  std::string out = LiteralToString(r.head, symbols);
  if (!r.body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < r.body.size(); ++i) {
      if (i) out += ", ";
      out += LiteralToString(r.body[i], symbols);
    }
  }
  out += ".";
  return out;
}

std::string ProgramToString(const Program& p, const SymbolTable& symbols) {
  std::string out;
  for (const Rule& r : p.rules) {
    out += RuleToString(r, symbols);
    out += "\n";
  }
  for (const Literal& f : p.facts) {
    out += LiteralToString(f, symbols);
    out += ".\n";
  }
  for (const Literal& q : p.queries) {
    out += "?- " + LiteralToString(q, symbols) + ".\n";
  }
  return out;
}

}  // namespace binchain
