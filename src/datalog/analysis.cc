#include "datalog/analysis.h"

#include <algorithm>

namespace binchain {

ProgramAnalysis::ProgramAnalysis(const Program& program,
                                 const SymbolTable& symbols)
    : program_(program), symbols_(symbols) {
  for (const Rule& r : program.rules) derived_.insert(r.head.predicate);
  auto consider = [&](SymbolId pred) {
    if (IsBuiltinName(symbols_.Name(pred))) builtins_.insert(pred);
    if (!node_of_.count(pred)) {
      node_of_.emplace(pred, static_cast<uint32_t>(pred_of_node_.size()));
      pred_of_node_.push_back(pred);
    }
  };
  for (const Rule& r : program.rules) {
    consider(r.head.predicate);
    for (const Literal& lit : r.body) consider(lit.predicate);
  }
  for (const Literal& f : program.facts) consider(f.predicate);

  Digraph g(pred_of_node_.size());
  for (const Rule& r : program.rules) {
    for (const Literal& lit : r.body) {
      g.AddEdge(NodeOf(r.head.predicate), NodeOf(lit.predicate));
    }
  }
  scc_ = ComputeScc(g);
}

bool ProgramAnalysis::MutuallyRecursive(SymbolId p, SymbolId q) const {
  auto ip = node_of_.find(p);
  auto iq = node_of_.find(q);
  if (ip == node_of_.end() || iq == node_of_.end()) return false;
  if (p == q) return scc_.on_cycle[ip->second];
  return scc_.component[ip->second] == scc_.component[iq->second];
}

bool ProgramAnalysis::IsRecursiveRule(const Rule& r) const {
  for (const Literal& lit : r.body) {
    if (MutuallyRecursive(r.head.predicate, lit.predicate)) return true;
  }
  return false;
}

bool ProgramAnalysis::IsLinearRule(const Rule& r) const {
  int count = 0;
  for (const Literal& lit : r.body) {
    if (MutuallyRecursive(r.head.predicate, lit.predicate)) ++count;
  }
  return count <= 1;
}

bool ProgramAnalysis::IsLinearProgram() const {
  return std::all_of(program_.rules.begin(), program_.rules.end(),
                     [&](const Rule& r) { return IsLinearRule(r); });
}

bool ProgramAnalysis::IsRecursiveProgram() const {
  return std::any_of(program_.rules.begin(), program_.rules.end(),
                     [&](const Rule& r) { return IsRecursiveRule(r); });
}

bool ProgramAnalysis::IsBinaryChainRule(const Rule& r) {
  if (r.head.arity() != 2) return false;
  if (!r.head.args[0].IsVar() || !r.head.args[1].IsVar()) return false;
  if (r.body.empty()) {
    // p(X, X) :- .
    return r.head.args[0] == r.head.args[1];
  }
  if (r.head.args[0] == r.head.args[1]) return false;
  // Chain X1 .. X_{n+1}: body[i] = p_i(X_i, X_{i+1}).
  std::vector<Term> chain;
  chain.push_back(r.head.args[0]);
  for (const Literal& lit : r.body) {
    if (lit.arity() != 2) return false;
    if (!lit.args[0].IsVar() || !lit.args[1].IsVar()) return false;
    if (!(lit.args[0] == chain.back())) return false;
    chain.push_back(lit.args[1]);
  }
  if (!(chain.back() == r.head.args[1])) return false;
  // All chain variables distinct.
  for (size_t i = 0; i < chain.size(); ++i) {
    for (size_t j = i + 1; j < chain.size(); ++j) {
      if (chain[i] == chain[j]) return false;
    }
  }
  return true;
}

bool ProgramAnalysis::IsBinaryChainProgram() const {
  for (const Rule& r : program_.rules) {
    if (!IsBinaryChainRule(r)) return false;
  }
  for (const Literal& f : program_.facts) {
    if (f.arity() != 2) return false;
  }
  return true;
}

bool ProgramAnalysis::IsRightLinearRule(const Rule& r) const {
  if (!IsBinaryChainRule(r)) return false;
  for (size_t i = 0; i + 1 < r.body.size(); ++i) {
    if (MutuallyRecursive(r.body[i].predicate, r.head.predicate)) return false;
  }
  return true;
}

bool ProgramAnalysis::IsLeftLinearRule(const Rule& r) const {
  if (!IsBinaryChainRule(r)) return false;
  for (size_t i = 1; i < r.body.size(); ++i) {
    if (MutuallyRecursive(r.body[i].predicate, r.head.predicate)) return false;
  }
  return true;
}

bool ProgramAnalysis::IsRightLinearPredicate(SymbolId p) const {
  for (const Rule& r : program_.rules) {
    if (!MutuallyRecursive(r.head.predicate, p)) continue;
    if (!IsRightLinearRule(r)) return false;
  }
  return true;
}

bool ProgramAnalysis::IsLeftLinearPredicate(SymbolId p) const {
  for (const Rule& r : program_.rules) {
    if (!MutuallyRecursive(r.head.predicate, p)) continue;
    if (!IsLeftLinearRule(r)) return false;
  }
  return true;
}

bool ProgramAnalysis::IsRegularProgram() const {
  if (!IsBinaryChainProgram()) return false;
  for (SymbolId p : program_.DerivedPredicates()) {
    if (!IsRegularPredicate(p)) return false;
  }
  return true;
}

bool ProgramAnalysis::BodyHasAtMostOneDerived() const {
  for (const Rule& r : program_.rules) {
    int count = 0;
    for (const Literal& lit : r.body) {
      if (IsDerived(lit.predicate)) ++count;
    }
    if (count > 1) return false;
  }
  return true;
}

Status ProgramAnalysis::CheckSafety() const {
  for (const Rule& r : program_.rules) {
    std::unordered_set<SymbolId> positive_vars;
    for (const Literal& lit : r.body) {
      if (IsBuiltin(lit.predicate)) continue;
      for (const Term& t : lit.args) {
        if (t.IsVar()) positive_vars.insert(t.symbol);
      }
    }
    for (const Term& t : r.head.args) {
      if (t.IsVar() && !positive_vars.count(t.symbol)) {
        if (r.body.empty() && IsBinaryChainRule(r)) continue;  // p(X, X) :- .
        return Status::InvalidArgument(
            "unsafe rule: head variable '" + symbols_.Name(t.symbol) +
            "' does not occur in a positive body literal");
      }
    }
    for (const Literal& lit : r.body) {
      if (!IsBuiltin(lit.predicate)) continue;
      for (const Term& t : lit.args) {
        if (t.IsVar() && !positive_vars.count(t.symbol)) {
          return Status::InvalidArgument(
              "unsafe built-in: variable '" + symbols_.Name(t.symbol) +
              "' does not occur in a base literal of the same rule");
        }
      }
    }
  }
  return Status::Ok();
}

std::vector<std::vector<SymbolId>> ProgramAnalysis::MutualRecursionClasses()
    const {
  std::vector<std::vector<SymbolId>> out;
  for (const auto& members : scc_.members) {
    std::vector<SymbolId> cls;
    for (uint32_t v : members) {
      SymbolId pred = pred_of_node_[v];
      if (IsDerived(pred) && MutuallyRecursive(pred, pred)) {
        cls.push_back(pred);
      }
    }
    if (!cls.empty()) out.push_back(std::move(cls));
  }
  return out;
}

}  // namespace binchain
