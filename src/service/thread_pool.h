// Fixed-size worker pool with stable worker identities. The query service
// keeps one evaluation context (engine + caches + scratch) per worker, so
// tasks are dispatched as (worker_id, item) pairs: any worker may claim any
// item, but a worker only ever touches its own context. Items are claimed
// from a shared atomic cursor, which load-balances heavy and light queries
// without any per-item queue allocation.
#ifndef BINCHAIN_SERVICE_THREAD_POOL_H_
#define BINCHAIN_SERVICE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "util/function_ref.h"

namespace binchain {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). Workers idle on a
  /// condition variable between jobs.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Runs task(worker_id, index) for every index in [0, count), spreading
  /// indexes over the workers; blocks until all complete. worker_id is in
  /// [0, size()) and identifies the executing worker for the whole call.
  /// A single-item job runs inline on the calling thread as worker 0
  /// (avoiding a full-pool wakeup per one-off task). One job at a time:
  /// ParallelFor itself must not be called concurrently.
  void ParallelFor(size_t count, FunctionRef<void(size_t, size_t)> task);

 private:
  void WorkerLoop(size_t worker_id);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a job
  std::condition_variable done_cv_;   // ParallelFor waits here for drain
  // Borrowed from the ParallelFor argument, which outlives the job (the
  // call blocks until every worker drains).
  const FunctionRef<void(size_t, size_t)>* task_ = nullptr;
  size_t count_ = 0;
  std::atomic<size_t> next_{0};  // shared claim cursor of the active job
  size_t active_ = 0;            // workers still inside the active job
  uint64_t generation_ = 0;      // bumped per job so workers see new work
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace binchain

#endif  // BINCHAIN_SERVICE_THREAD_POOL_H_
