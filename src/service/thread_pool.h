// Fixed-size worker pool with stable worker identities, fed by a bounded
// submission queue. The query service keeps one evaluation context (engine
// + caches + scratch) per worker, so tasks are dispatched as
// (worker_id, task) pairs: any worker may claim any task, but a worker only
// ever touches its own context.
//
// The queue is the service's admission-control surface: TrySubmit fails the
// moment the high-water mark is reached (the caller turns that into
// StatusCode::kOverloaded), while SubmitBlocking waits for room — the
// backpressure path for blocking batch clients. Tasks are claimed FIFO;
// destruction drains the queue (every accepted task runs — cancelled
// queries unwind in microseconds, so a shutdown with a deep queue stays
// prompt) and then joins the workers.
#ifndef BINCHAIN_SERVICE_THREAD_POOL_H_
#define BINCHAIN_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace binchain {

class ThreadPool {
 public:
  /// A unit of work; receives the executing worker's stable id in
  /// [0, size()).
  using Task = std::function<void(size_t worker_id)>;

  /// Spawns `num_threads` workers (clamped to >= 1) over a queue holding at
  /// most `queue_capacity` pending tasks (clamped to >= 1). Workers idle on
  /// a condition variable between tasks.
  ThreadPool(size_t num_threads, size_t queue_capacity);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }
  size_t queue_capacity() const { return capacity_; }

  /// Tasks accepted but not yet claimed by a worker. Advisory — another
  /// thread may change it immediately — but monotone observations hold:
  /// once a submitter sees 0 pending after its own submissions, all of them
  /// have been claimed.
  size_t pending() const;

  /// Enqueues `task` unless the queue is at capacity (or the pool is
  /// shutting down); returns whether the task was accepted. Never blocks:
  /// this is the admission-control path.
  bool TrySubmit(Task task);

  /// Enqueues `task`, waiting for queue room if necessary (backpressure for
  /// blocking clients). Must not be called after destruction has begun.
  void SubmitBlocking(Task task);

 private:
  void WorkerLoop(size_t worker_id);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for tasks
  std::condition_variable space_cv_;  // SubmitBlocking waits here for room
  std::deque<Task> queue_;
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace binchain

#endif  // BINCHAIN_SERVICE_THREAD_POOL_H_
