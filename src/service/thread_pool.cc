#include "service/thread_pool.h"

#include <algorithm>

namespace binchain {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  uint64_t seen_generation = 0;
  while (true) {
    const FunctionRef<void(size_t, size_t)>* task;
    size_t count;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
      task = task_;
      count = count_;
    }
    // Claim items until the cursor runs past the end. Claiming is the only
    // cross-thread interaction inside a job, so cheap queries on one worker
    // naturally absorb more items while an expensive query holds another.
    for (size_t i = next_.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      (*task)(worker_id, i);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t count,
                             FunctionRef<void(size_t, size_t)> task) {
  if (count == 0) return;
  if (count == 1) {
    // Single item: run inline as worker 0 rather than waking the whole
    // pool. No job is active (callers serialize ParallelFor), so worker 0's
    // identity is free to borrow.
    task(0, 0);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  task_ = &task;
  count_ = count;
  next_.store(0, std::memory_order_relaxed);
  active_ = threads_.size();
  ++generation_;
  lock.unlock();
  work_cv_.notify_all();
  lock.lock();
  done_cv_.wait(lock, [&] { return active_ == 0; });
  task_ = nullptr;
}

}  // namespace binchain
