#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

namespace binchain {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : capacity_(std::max<size_t>(1, queue_capacity)) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  // Wake everyone: workers drain what remains of the queue and exit;
  // blocked submitters (there should be none by contract) fail fast.
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool ThreadPool::TrySubmit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ || queue_.size() >= capacity_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::SubmitBlocking(Task task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_cv_.wait(lock, [&] { return stop_ || queue_.size() < capacity_; });
    if (stop_) return;  // shutdown raced a straggling submitter: drop
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::WorkerLoop(size_t worker_id) {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // A slot opened up; let one blocked submitter through.
    space_cv_.notify_one();
    task(worker_id);
  }
}

}  // namespace binchain
