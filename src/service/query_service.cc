#include "service/query_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "eval/eval_artifacts.h"
#include "eval/query.h"
#include "live/snapshot_manager.h"
#include "util/check.h"

namespace binchain {

/// A worker's private evaluation context. Only the cheap mutable scratch
/// lives here (term pool, view registry, both engines' node sets);
/// everything immutable-per-snapshot — the program plan, and the epoch's
/// EvalArtifacts (shared adjacency memos, closure/source caches) — is
/// shared read-only, so workers never synchronize with each other after
/// construction beyond the artifacts' fill-once publication.
struct QueryService::Worker {
  Worker(Database* db, std::shared_ptr<const PreparedProgram> plan)
      : engine(db, std::move(plan)), bound_epoch(db->epoch()) {}
  QueryEngine engine;
  /// Epoch the engine's views currently point at; workers rebind lazily on
  /// the first query they serve after a publish.
  uint64_t bound_epoch;
};

QueryService::QueryService(Database* db, const Program& program,
                           Options options)
    : db_(db) {
  if (!Init(program, options)) return;
  // Snapshot: complete all lazy index work and forbid mutation, making the
  // shared storage safe for the concurrent read phase; then hang the
  // epoch's shared evaluation artifacts off it and point the workers there.
  db_->Freeze();
  AdoptSnapshot(db_);
  if (!init_status_.ok()) return;
  pool_ = std::make_unique<ThreadPool>(workers_.size());
}

QueryService::QueryService(SnapshotManager* live, const Program& program,
                           Options options)
    : db_(live->genesis()), live_(live) {
  if (!Init(program, options)) return;
  // The artifact lifecycle rides the epoch chain: Seal() builds the genesis
  // epoch's artifacts through this hook, and every later Publish() derives
  // the successor's set from the predecessor's in O(delta).
  live_->SetArtifactBuilder(
      [plan = plan_](const Database& epoch,
                     const std::shared_ptr<const SnapshotArtifact>& prev)
          -> std::shared_ptr<const SnapshotArtifact> {
        return EvalArtifacts::BuildFor(
            epoch, plan,
            std::dynamic_pointer_cast<const EvalArtifacts>(prev));
      });
  // Seal instead of a bare freeze: the genesis becomes epoch 0 of the
  // manager's chain, and every batch from here on acquires the tip.
  live_->Seal();
  AdoptSnapshot(db_);
  if (!init_status_.ok()) return;
  pool_ = std::make_unique<ThreadPool>(workers_.size());
}

void QueryService::AdoptSnapshot(Database* db) {
  BINCHAIN_CHECK(db->frozen());
  auto existing =
      std::dynamic_pointer_cast<const EvalArtifacts>(db->artifact());
  if (existing == nullptr ||
      !existing->CompatiblePlan(*plan_, db->symbols())) {
    // No artifacts yet, or artifacts another service built for a different
    // rule set over the same symbols: build our own. Attaching replaces the
    // slot; the other service's workers keep their shared_ptr unharmed.
    db->AttachArtifact(EvalArtifacts::BuildFor(*db, plan_, nullptr));
  }
  for (auto& w : workers_) {
    if (Status s = w->engine.BindSnapshot(*db); !s.ok()) {
      init_status_ = s;
      return;
    }
    w->bound_epoch = db->epoch();
  }
}

bool QueryService::Init(const Program& program, const Options& options) {
  Program prog = program;
  prog.queries.clear();
  if (!prog.facts.empty() && db_->frozen()) {
    init_status_ = Status::FailedPrecondition(
        "cannot load program facts into a frozen database");
    return false;
  }

  // Free-variable spellings for request literals, interned while the table
  // still accepts new symbols.
  if (!db_->symbols().frozen()) {
    var_x_ = db_->symbols().Intern("X");
    var_y_ = db_->symbols().Intern("Y");
    has_free_vars_ = true;
  } else {
    auto x = db_->symbols().Find("X");
    auto y = db_->symbols().Find("Y");
    if (x && y) {
      var_x_ = *x;
      var_y_ = *y;
      has_free_vars_ = true;
    }
  }

  // The mutating phase, once per service rather than once per worker:
  // loads facts, transforms the program, and compiles every machine of
  // both equation systems (interning symbols as needed). Workers then
  // share the immutable plan — their construction is view registration
  // only, so startup cost stays flat as threads grow.
  auto plan = PrepareProgram(db_, std::move(prog), /*compile_machines=*/true);
  if (!plan.ok()) {
    init_status_ = plan.status();
    return false;
  }
  plan_ = plan.take();

  size_t n = options.num_threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>(db_, plan_));
  }
  return true;
}

QueryService::~QueryService() = default;

size_t QueryService::num_threads() const {
  return pool_ ? pool_->size() : 0;
}

Status QueryService::BuildLiteral(const Database& db,
                                  const QueryRequest& request, Literal* out,
                                  bool* empty_ok) const {
  *empty_ok = false;
  auto pred = db.symbols().Find(request.pred);
  if (!pred) {
    return Status::NotFound("unknown predicate '" + request.pred + "'");
  }
  out->predicate = *pred;
  out->args.clear();
  if (request.diagonal &&
      !(request.source.empty() && request.target.empty())) {
    return Status::InvalidArgument(
        "diagonal requests must leave source and target free");
  }
  const std::string* names[2] = {&request.source, &request.target};
  // The diagonal query p(X, X) repeats one variable; otherwise the free
  // positions get distinct variables.
  SymbolId vars[2] = {var_x_, request.diagonal ? var_x_ : var_y_};
  for (int i = 0; i < 2; ++i) {
    if (names[i]->empty()) {
      if (!has_free_vars_) {
        return Status::FailedPrecondition(
            "free-variable queries need variable symbols interned before the "
            "database froze");
      }
      out->args.push_back(Term::Var(vars[i]));
    } else {
      auto c = db.symbols().Find(*names[i]);
      if (!c) {
        // A constant the database has never seen occurs in no tuple: the
        // answer set is empty, which is a result, not an error.
        *empty_ok = true;
        return Status::Ok();
      }
      out->args.push_back(Term::Const(*c));
    }
  }
  return Status::Ok();
}

QueryResponse QueryService::Eval(const QueryRequest& request) {
  return EvalBatch({request})[0];
}

std::vector<QueryResponse> QueryService::EvalBatch(
    const std::vector<QueryRequest>& batch, BatchStats* stats) {
  std::vector<QueryResponse> responses(batch.size());
  if (!init_status_.ok()) {
    for (QueryResponse& r : responses) r.status = init_status_;
    if (stats != nullptr) {
      *stats = BatchStats{};
      stats->queries = batch.size();
      stats->failed = batch.size();
    }
    return responses;
  }

  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  // One epoch per batch: acquired once, so every query of the batch sees
  // the same snapshot even if Publish() swaps the tip mid-batch. The
  // handle pins the epoch (and the storage layers it reads) until the last
  // response is written.
  std::shared_ptr<const Database> epoch_handle;
  const Database* qdb = db_;
  if (live_ != nullptr) {
    epoch_handle = live_->Acquire();
    qdb = epoch_handle.get();
  }
  auto t0 = std::chrono::steady_clock::now();
  auto run_one = [&](size_t worker_id, size_t i) {
    QueryResponse& resp = responses[i];
    // Admission control: a deadline measured from batch dispatch. Expired
    // requests are answered without evaluating (or rebinding) anything.
    if (batch[i].deadline_ms > 0) {
      double elapsed_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      if (elapsed_ms >= batch[i].deadline_ms) {
        resp.timed_out = true;
        resp.epoch = qdb->epoch();
        resp.status = Status::DeadlineExceeded(
            "request deadline expired before evaluation");
        return;
      }
    }
    Worker& w = *workers_[worker_id];
    if (live_ != nullptr && w.bound_epoch != qdb->epoch()) {
      // Epoch bump: re-point this worker's views at the new snapshot.
      // Term pool, compiled machines, and rex cache survive — the epoch
      // extends the same symbol-id space — so this is O(#relations), not a
      // per-query rebuild.
      if (Status s = w.engine.BindSnapshot(*qdb); !s.ok()) {
        resp.status = s;
        return;
      }
      w.bound_epoch = qdb->epoch();
    }
    resp.epoch = qdb->epoch();
    Literal lit;
    bool empty_ok = false;
    if (Status s = BuildLiteral(*qdb, batch[i], &lit, &empty_ok); !s.ok()) {
      resp.status = s;
      return;
    }
    if (empty_ok) return;  // unknown constant: empty answer set
    auto r = w.engine.Query(lit, batch[i].options);
    if (!r.ok()) {
      resp.status = r.status();
      return;
    }
    resp.tuples = std::move(r.value().tuples);
    resp.stats = std::move(r.value().stats);
    resp.fetches = r.value().fetches;
  };
  pool_->ParallelFor(batch.size(), run_one);
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->queries = batch.size();
    stats->wall_ms = wall_ms;
    stats->epoch = qdb->epoch();
    for (const QueryResponse& r : responses) {
      if (!r.status.ok()) {
        ++stats->failed;
        if (r.timed_out) ++stats->timed_out;
        continue;
      }
      stats->tuples += r.tuples.size();
      stats->fetches += r.fetches;
      stats->total.nodes += r.stats.nodes;
      stats->total.arcs += r.stats.arcs;
      stats->total.iterations += r.stats.iterations;
      stats->total.expansions += r.stats.expansions;
      stats->total.continuations += r.stats.continuations;
      stats->total.em_states += r.stats.em_states;
      stats->total.fetches += r.stats.fetches;
      stats->total.wide_mask_scans += r.stats.wide_mask_scans;
      stats->total.memo_hits += r.stats.memo_hits;
      stats->total.hit_iteration_cap |= r.stats.hit_iteration_cap;
    }
  }
  return responses;
}

}  // namespace binchain
