#include "service/query_service.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "cache/answer_cache.h"
#include "datalog/printer.h"
#include "eval/answer_sink.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "eval/eval_artifacts.h"
#include "eval/query.h"
#include "live/snapshot_manager.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "util/check.h"

namespace binchain {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// FNV-1a over the canonical program rendering: the answer cache's
/// program fingerprint. Two services prepared over the same rendered
/// program derive the same keys (the same CompatiblePlan currency that
/// lets a second service adopt an epoch's artifacts).
uint64_t FingerprintProgram(const std::string& rendered) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : rendered) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Wraps a request's streaming sink for one evaluation: counts delivered
/// chunks (QueryTrace::chunks) on the way through. Stack-local in RunOne.
class CountingSink : public AnswerSink {
 public:
  explicit CountingSink(AnswerSink* inner) : inner_(inner) {}
  uint64_t chunks = 0;
  void OnAnswers(const Tuple* tuples, size_t count,
                 const SymbolTable& symbols) override {
    if (count == 0) return;
    ++chunks;
    inner_->OnAnswers(tuples, count, symbols);
  }

 private:
  AnswerSink* inner_;
};

}  // namespace

/// Cached pointers into the global metrics registry plus the per-service
/// flight recorder. Registered once at construction (the registry is
/// idempotent, so two services in one process share the counters); every
/// later touch is a pointer chase + relaxed atomic, never a registry
/// lookup. The engine family is folded here, at the completion seam, from
/// the EvalStats each query already collected — the traversal loops
/// themselves carry zero new instrumentation.
struct ServiceObs {
  explicit ServiceObs(const QueryServiceOptions& options)
      : enabled(options.record_metrics),
        recorder(options.flight_recorder_capacity,
                 options.flight_recorder_min_ms) {
    obs::Registry& r = obs::Registry::Global();
    queries = r.GetCounter("binchain_service_queries_total",
                           "Queries completed, all dispositions");
    answers = r.GetCounter(
        "binchain_service_answers_total",
        "Answer tuples produced across successful queries");
    failed = r.GetCounter("binchain_service_failed_total",
                          "Queries completed with a non-OK status");
    shed = r.GetCounter(
        "binchain_service_shed_total",
        "Queries shed at admission (submission queue at high-water mark)");
    timed_out = r.GetCounter(
        "binchain_service_timeout_total",
        "Queries whose deadline expired, while queued or mid-flight");
    cancelled = r.GetCounter(
        "binchain_service_cancelled_total",
        "Queries cancelled through their future (or by dropping it)");
    latency_ms = r.GetHistogram("binchain_service_latency_ms",
                                "Query latency, submission to completion");
    queue_wait_ms =
        r.GetHistogram("binchain_service_queue_wait_ms",
                       "Time from submission to worker pickup");
    queue_depth = r.GetGauge(
        "binchain_service_queue_depth",
        "Tasks accepted into the submission queue but not yet claimed");
    engine_iterations =
        r.GetCounter("binchain_engine_iterations_total",
                     "Fixpoint iterations across all evaluations");
    engine_nodes = r.GetCounter(
        "binchain_engine_node_expansions_total",
        "(state, term) nodes inserted by traversals");
    engine_expansions = r.GetCounter(
        "binchain_engine_machine_expansions_total",
        "Derived-transition machine splices (EM(p, i) growth steps)");
    engine_fetches = r.GetCounter("binchain_engine_fetches_total",
                                  "EDB tuple retrievals");
    engine_memo_hits =
        r.GetCounter("binchain_engine_memo_hits_total",
                     "Hits on the epoch's shared closure/adjacency memos");
    engine_cancel_checks =
        r.GetCounter("binchain_engine_cancel_checks_total",
                     "Cancellation polls observed by traversals");
  }

  /// QueryServiceOptions::record_metrics: false turns the completion-seam
  /// recording and the queue-depth gauge into no-ops (bench overhead A/B).
  const bool enabled;
  std::atomic<uint64_t> next_query_id{1};
  obs::FlightRecorder recorder;
  /// JSONL sink for slow spans (disabled unless slow_query_log_path was
  /// set). Written *off* the batch completion lock — see CompleteQuery.
  obs::SlowQueryLog slow_log;
  obs::Counter* queries;
  obs::Counter* answers;
  obs::Counter* failed;
  obs::Counter* shed;
  obs::Counter* timed_out;
  obs::Counter* cancelled;
  obs::Histogram* latency_ms;
  obs::Histogram* queue_wait_ms;
  obs::Gauge* queue_depth;
  obs::Counter* engine_iterations;
  obs::Counter* engine_nodes;
  obs::Counter* engine_expansions;
  obs::Counter* engine_fetches;
  obs::Counter* engine_memo_hits;
  obs::Counter* engine_cancel_checks;
};

/// Per-batch shared state: the completion rendezvous (mutex + condvar over
/// `remaining`), the order-independent aggregates folded in as queries
/// land, the epoch pin, and the completion callback the last finisher
/// fires. Single submissions are one-query batches, so every query has
/// exactly one of these behind it.
struct BatchShared {
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = 0;  // queries not yet completed (guarded by mu)
  BatchStats stats;      // folded under mu; final once remaining hits 0
  BatchCallback on_complete;  // moved out and invoked by the last finisher
  std::chrono::steady_clock::time_point t0;  // submission time
  uint64_t start_us = 0;  // t0 on the shared span clock (obs::SteadyNowUs)
  /// Live mode: pins the acquired epoch (and every storage layer it reads)
  /// until the batch's last response is written.
  std::shared_ptr<const Database> epoch_handle;
  const Database* db = nullptr;  // the epoch all queries evaluate against
  /// The owning service's instruments; raw because the service destructor
  /// drains every batch before its members die.
  ServiceObs* obs = nullptr;
  /// Claim cursor for the blocking-batch runner path (see EvalBatch).
  std::atomic<size_t> next{0};
  /// Future-based submissions have waiters per query, so every completion
  /// broadcasts; the blocking-batch path waits only for the whole batch,
  /// so only the last completion needs to.
  bool notify_each = true;
};

/// One submitted query: the request (frozen at submission), the token the
/// future and the evaluating worker share, and the response slot. `done`
/// and `response` hand-off is guarded by the batch mutex.
struct AsyncQueryState {
  QueryRequest request;
  CancelToken token;
  QueryResponse response;
  bool done = false;  // guarded by batch->mu
  /// Whether a worker picked the query up (RunOne ran). Shed and
  /// cancelled-while-queued requests never set this; their span charges the
  /// whole lifetime to queue wait.
  bool ran = false;
  std::shared_ptr<BatchShared> batch;

  /// Exact-match key (QueryService::RequestKey). Empty when neither the
  /// cache nor in-batch dedup applies to this submission.
  std::string cache_key;
  /// This query leads a single-flight: FinishEval (or the shed path) must
  /// FinishFlight and fan the outcome out to the parked waiters.
  bool flight_leader = false;
  /// The response replays an answer that was evaluated elsewhere (cache
  /// hit, single-flight waiter, dedup follower): CompleteQuery skips the
  /// engine_* registry fold — that work was accounted when it actually ran
  /// — and MaybeCacheInsert never re-inserts it.
  bool replayed = false;
  /// EvalBatch only: completed at submission (cache hit) or owned by an
  /// in-batch dedup leader; claim-cursor runners pass it over.
  bool skip = false;
  /// In-batch dedup: identical requests of one batch attach here and the
  /// leader's FinishEval fans its answer out to them. Both fields are
  /// guarded by batch->mu; once fanout_started is set attachment is over
  /// and late duplicates submit themselves.
  bool fanout_started = false;
  std::vector<std::shared_ptr<AsyncQueryState>> followers;
};

namespace {

/// Replays an already-materialized answer set to the request's streaming
/// sink as one chunk (cache hits, single-flight waiters, dedup followers):
/// streaming consumers still receive every tuple, just without incremental
/// boundaries — the answer existed in full before this request saw it.
void ReplayToSink(AsyncQueryState& q) {
  if (q.request.sink == nullptr || q.response.tuples.empty()) return;
  q.response.trace.chunks = 1;
  q.request.sink->OnAnswers(q.response.tuples.data(),
                            q.response.tuples.size(),
                            q.batch->db->symbols());
}

}  // namespace

// ----------------------------------------------------------- QueryFuture

QueryFuture::QueryFuture(std::shared_ptr<AsyncQueryState> state)
    : state_(std::move(state)) {}

QueryFuture::QueryFuture(QueryFuture&& other) noexcept
    : state_(std::move(other.state_)) {}

QueryFuture& QueryFuture::operator=(QueryFuture&& other) noexcept {
  if (this != &other) {
    if (state_ != nullptr) state_->token.Cancel();
    state_ = std::move(other.state_);
  }
  return *this;
}

QueryFuture::~QueryFuture() {
  // An abandoned result is demand nobody wants: dropping the future
  // cancels the query so the engine stops paying for it. The worker still
  // completes the state (it holds its own reference); the response is
  // simply never read.
  if (state_ != nullptr) state_->token.Cancel();
}

bool QueryFuture::Ready() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(state_->batch->mu);
  return state_->done;
}

void QueryFuture::Wait() const {
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->batch->mu);
  state_->batch->cv.wait(lock, [&] { return state_->done; });
}

bool QueryFuture::WaitFor(double ms) const {
  if (state_ == nullptr) return false;
  std::unique_lock<std::mutex> lock(state_->batch->mu);
  return state_->batch->cv.wait_for(
      lock, std::chrono::duration<double, std::milli>(ms),
      [&] { return state_->done; });
}

void QueryFuture::Cancel() {
  if (state_ != nullptr) state_->token.Cancel();
}

QueryResponse QueryFuture::Take() {
  BINCHAIN_CHECK(state_ != nullptr);
  QueryResponse out;
  {
    std::unique_lock<std::mutex> lock(state_->batch->mu);
    state_->batch->cv.wait(lock, [&] { return state_->done; });
    out = std::move(state_->response);
  }
  state_.reset();
  return out;
}

// ----------------------------------------------------------- BatchHandle

BatchHandle::BatchHandle(BatchHandle&&) noexcept = default;
BatchHandle& BatchHandle::operator=(BatchHandle&&) noexcept = default;
// Per-future drop semantics do the cancelling of whatever was not taken.
BatchHandle::~BatchHandle() = default;

void BatchHandle::Wait() const {
  if (shared_ == nullptr) return;
  std::unique_lock<std::mutex> lock(shared_->mu);
  shared_->cv.wait(lock, [&] { return shared_->remaining == 0; });
}

void BatchHandle::Cancel() {
  for (QueryFuture& f : futures_) f.Cancel();
}

std::vector<QueryResponse> BatchHandle::Take(BatchStats* stats) {
  Wait();
  std::vector<QueryResponse> out(futures_.size());
  for (size_t i = 0; i < futures_.size(); ++i) {
    if (futures_[i].valid()) out[i] = futures_[i].Take();
  }
  if (stats != nullptr) {
    *stats = BatchStats{};
    if (shared_ != nullptr) {
      std::lock_guard<std::mutex> lock(shared_->mu);
      *stats = shared_->stats;
    }
  }
  futures_.clear();
  shared_.reset();
  return out;
}

// ---------------------------------------------------------- QueryService

/// A worker's private evaluation context. Only the cheap mutable scratch
/// lives here (term pool, view registry, both engines' node sets);
/// everything immutable-per-snapshot — the program plan, and the epoch's
/// EvalArtifacts (shared adjacency memos, closure/source caches) — is
/// shared read-only, so workers never synchronize with each other after
/// construction beyond the artifacts' fill-once publication.
struct QueryService::Worker {
  Worker(Database* db, std::shared_ptr<const PreparedProgram> plan)
      : engine(db, std::move(plan)), bound_epoch(db->epoch()) {}
  QueryEngine engine;
  /// Epoch the engine's views currently point at; workers rebind lazily on
  /// the first query they serve after a publish.
  uint64_t bound_epoch;
};

QueryService::QueryService(Database* db, const Program& program,
                           Options options)
    : db_(db) {
  if (!Init(program, options)) return;
  // Snapshot: complete all lazy index work and forbid mutation, making the
  // shared storage safe for the concurrent read phase; then hang the
  // epoch's shared evaluation artifacts off it and point the workers there.
  db_->Freeze();
  AdoptSnapshot(db_);
  if (!init_status_.ok()) return;
  pool_ = std::make_unique<ThreadPool>(workers_.size(), queue_depth_);
}

QueryService::QueryService(SnapshotManager* live, const Program& program,
                           Options options)
    : db_(live->genesis()), live_(live) {
  if (!Init(program, options)) return;
  // The artifact lifecycle rides the epoch chain: Seal() builds the genesis
  // epoch's artifacts through this hook, and every later Publish() derives
  // the successor's set from the predecessor's in O(delta). The refresh
  // outcome is folded into the live metric family here because this lambda
  // is the one place that sees eval-layer artifacts from the live pipeline
  // (live/ itself cannot depend on eval/).
  struct ArtifactObs {
    obs::Counter* reused;
    obs::Counter* extended;
    obs::Counter* rebuilt;
    obs::Counter* derived_reused;
    obs::Counter* derived_invalidated;
  };
  auto artifact_obs = std::make_shared<ArtifactObs>();
  {
    obs::Registry& r = obs::Registry::Global();
    artifact_obs->reused =
        r.GetCounter("binchain_live_artifact_adjacency_reused_total",
                     "Adjacency memos shared by pointer across a publish");
    artifact_obs->extended =
        r.GetCounter("binchain_live_artifact_adjacency_extended_total",
                     "Adjacency memos extended with an O(delta) layer");
    artifact_obs->rebuilt = r.GetCounter(
        "binchain_live_artifact_adjacency_rebuilt_total",
        "Adjacency memos rebuilt (new, flattened, or retraction-shrunk "
        "relations)");
    artifact_obs->derived_reused =
        r.GetCounter("binchain_live_artifact_derived_reused_total",
                     "Closure/source cells carried over unchanged");
    artifact_obs->derived_invalidated =
        r.GetCounter("binchain_live_artifact_derived_invalidated_total",
                     "Closure/source cells invalidated by a publish");
  }
  live_->SetArtifactBuilder(
      [plan = plan_, artifact_obs](
          const Database& epoch,
          const std::shared_ptr<const SnapshotArtifact>& prev)
          -> std::shared_ptr<const SnapshotArtifact> {
        auto built = EvalArtifacts::BuildFor(
            epoch, plan,
            std::dynamic_pointer_cast<const EvalArtifacts>(prev));
        if (built != nullptr) {
          const EvalArtifacts::RefreshStats& rs = built->refresh_stats();
          artifact_obs->reused->Inc(rs.adjacency_reused);
          artifact_obs->extended->Inc(rs.adjacency_extended);
          artifact_obs->rebuilt->Inc(rs.adjacency_rebuilt +
                                     rs.adjacency_shrunk);
          artifact_obs->derived_reused->Inc(rs.derived_reused);
          artifact_obs->derived_invalidated->Inc(rs.derived_invalidated);
        }
        return built;
      });
  // The answer cache invalidates through the same layering seam: live/
  // cannot depend on cache/, so the manager just calls back with the new
  // tip and the sweep (support-set re-validation, selective by
  // construction) runs here. The listener owns a shared_ptr so a publish
  // racing service teardown sweeps a still-alive cache.
  if (answer_cache_ != nullptr) {
    live_->SetPublishListener([cache = answer_cache_](const Database& tip) {
      cache->OnPublish(tip);
    });
  }
  // Seal instead of a bare freeze: the genesis becomes epoch 0 of the
  // manager's chain, and every batch from here on acquires the tip.
  live_->Seal();
  AdoptSnapshot(db_);
  if (!init_status_.ok()) return;
  pool_ = std::make_unique<ThreadPool>(workers_.size(), queue_depth_);
}

QueryService::QueryService(SnapshotManager* live,
                           durability::RecoveryManager* recovery,
                           const Program& program, Options options)
    : QueryService(live, program, options) {
  BINCHAIN_CHECK(recovery != nullptr);
  recovery_ = recovery;
  // Close the serving gate: the sealed genesis is only the checkpoint
  // state. Until FinishRecovery() replays the committed WAL batches, a
  // query could observe an epoch older than what the pre-crash service
  // already acknowledged — kUnavailable, never a stale answer.
  serving_.store(false, std::memory_order_release);
}

Status QueryService::FinishRecovery(
    const durability::WalOptions& wal_options) {
  if (!init_status_.ok()) return init_status_;
  if (recovery_ == nullptr) {
    return Status::FailedPrecondition(
        "FinishRecovery: service was not constructed in recovery mode");
  }
  durability::RecoveryManager* recovery = recovery_;
  recovery_ = nullptr;  // single-shot
  // Replay runs with no sink attached: every batch re-published here is
  // already in the log, and re-appending would duplicate the history.
  if (Status st = recovery->Replay(live_); !st.ok()) return st;
  auto wal = recovery->OpenWal(wal_options);
  if (!wal.ok()) return wal.status();
  wal_ = wal.take();
  live_->SetDurabilitySink(wal_.get());
  serving_.store(true, std::memory_order_release);
  return Status::Ok();
}

Status QueryService::FinishRecovery() {
  return FinishRecovery(durability::WalOptions{});
}

Status QueryService::AdmissionStatus() const {
  if (!init_status_.ok()) return init_status_;
  if (!serving_.load(std::memory_order_acquire)) {
    return Status::Unavailable(
        "service is recovering (WAL replay in progress)");
  }
  return Status::Ok();
}

void QueryService::AdoptSnapshot(Database* db) {
  BINCHAIN_CHECK(db->frozen());
  auto existing =
      std::dynamic_pointer_cast<const EvalArtifacts>(db->artifact());
  if (existing == nullptr ||
      !existing->CompatiblePlan(*plan_, db->symbols())) {
    // No artifacts yet, or artifacts another service built for a different
    // rule set over the same symbols: build our own. Attaching replaces the
    // slot; the other service's workers keep their shared_ptr unharmed.
    db->AttachArtifact(EvalArtifacts::BuildFor(*db, plan_, nullptr));
  }
  for (auto& w : workers_) {
    if (Status s = w->engine.BindSnapshot(*db); !s.ok()) {
      init_status_ = s;
      return;
    }
    w->bound_epoch = db->epoch();
  }
}

bool QueryService::Init(const Program& program, const Options& options) {
  queue_depth_ = options.queue_depth > 0 ? options.queue_depth : 1024;
  // Instruments first, even on failed construction: submissions against a
  // failed service still complete (with init_status_) and record spans.
  obs_ = std::make_unique<ServiceObs>(options);
  if (!options.slow_query_log_path.empty()) {
    Status s = obs_->slow_log.Open(options.slow_query_log_path,
                                   options.slow_query_log_min_ms,
                                   options.slow_query_log_sample);
    if (!s.ok()) {
      init_status_ = s;
      return false;
    }
  }
  Program prog = program;
  prog.queries.clear();
  if (!prog.facts.empty() && db_->frozen()) {
    init_status_ = Status::FailedPrecondition(
        "cannot load program facts into a frozen database");
    return false;
  }

  // Free-variable spellings for request literals, interned while the table
  // still accepts new symbols.
  if (!db_->symbols().frozen()) {
    var_x_ = db_->symbols().Intern("X");
    var_y_ = db_->symbols().Intern("Y");
    has_free_vars_ = true;
  } else {
    auto x = db_->symbols().Find("X");
    auto y = db_->symbols().Find("Y");
    if (x && y) {
      var_x_ = *x;
      var_y_ = *y;
      has_free_vars_ = true;
    }
  }

  // The mutating phase, once per service rather than once per worker:
  // loads facts, transforms the program, and compiles every machine of
  // both equation systems (interning symbols as needed). Workers then
  // share the immutable plan — their construction is view registration
  // only, so startup cost stays flat as threads grow.
  auto plan = PrepareProgram(db_, std::move(prog), /*compile_machines=*/true);
  if (!plan.ok()) {
    init_status_ = plan.status();
    return false;
  }
  plan_ = plan.take();

  if (options.answer_cache_bytes > 0) {
    // Key prefix = the plan fingerprint over the same canonical program
    // rendering CompatiblePlan compares, so keys from a service with a
    // different rule set can never collide into this cache's entries.
    const uint64_t fp =
        FingerprintProgram(ProgramToString(plan_->program, db_->symbols()));
    answer_cache_ =
        std::make_shared<cache::AnswerCache>(options.answer_cache_bytes, fp);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fp));
    cache_key_prefix_.assign(buf);
    cache_key_prefix_ += '\x1f';
  }

  size_t n = options.num_threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>(db_, plan_));
  }
  return true;
}

QueryService::~QueryService() {
  // Detach the publish listener before members die: the manager outlives
  // the service by contract, and without this every later publish would
  // keep sweeping a cache nobody reads (the listener's shared_ptr keeps it
  // alive, so it is waste, not unsafety).
  if (live_ != nullptr && answer_cache_ != nullptr) {
    live_->SetPublishListener(nullptr);
  }
}

size_t QueryService::num_threads() const {
  return pool_ ? pool_->size() : 0;
}

size_t QueryService::pending() const {
  return pool_ ? pool_->pending() : 0;
}

const obs::FlightRecorder& QueryService::flight_recorder() const {
  return obs_->recorder;
}

Status QueryService::BuildLiteral(const Database& db,
                                  const QueryRequest& request, Literal* out,
                                  bool* empty_ok) const {
  *empty_ok = false;
  auto pred = db.symbols().Find(request.pred);
  if (!pred) {
    return Status::NotFound("unknown predicate '" + request.pred + "'");
  }
  out->predicate = *pred;
  out->args.clear();
  if (request.diagonal &&
      !(request.source.empty() && request.target.empty())) {
    return Status::InvalidArgument(
        "diagonal requests must leave source and target free");
  }
  const std::string* names[2] = {&request.source, &request.target};
  // The diagonal query p(X, X) repeats one variable; otherwise the free
  // positions get distinct variables.
  SymbolId vars[2] = {var_x_, request.diagonal ? var_x_ : var_y_};
  for (int i = 0; i < 2; ++i) {
    if (names[i]->empty()) {
      if (!has_free_vars_) {
        return Status::FailedPrecondition(
            "free-variable queries need variable symbols interned before the "
            "database froze");
      }
      out->args.push_back(Term::Var(vars[i]));
    } else {
      auto c = db.symbols().Find(*names[i]);
      if (!c) {
        // A constant the database has never seen occurs in no tuple: the
        // answer set is empty, which is a result, not an error.
        *empty_ok = true;
        return Status::Ok();
      }
      out->args.push_back(Term::Const(*c));
    }
  }
  return Status::Ok();
}

void QueryService::RunOne(size_t worker_id, AsyncQueryState& q) {
  QueryResponse& resp = q.response;
  const Database* qdb = q.batch->db;
  resp.epoch = qdb->epoch();
  // Span: the time up to this pickup was queue wait; everything after is
  // eval (CompleteQuery derives eval_ms from the completion timestamp, so
  // the hot path pays exactly one extra clock read here).
  q.ran = true;
  resp.trace.queue_wait_ms = MsSince(q.batch->t0);
  // Token check at pickup: a request cancelled or expired while queued is
  // answered without evaluating (or rebinding) anything.
  if (q.token.cancelled()) {
    resp.cancelled = true;
    resp.status = Status::Cancelled("request cancelled before evaluation");
    return;
  }
  if (q.token.Expired()) {
    resp.timed_out = true;
    resp.status = Status::DeadlineExceeded(
        "request deadline expired before evaluation");
    return;
  }
  Worker& w = *workers_[worker_id];
  if (live_ != nullptr && w.bound_epoch != qdb->epoch()) {
    // Epoch bump: re-point this worker's views at the batch's snapshot.
    // Term pool, compiled machines, and rex cache survive — the epoch
    // extends the same symbol-id space — so this is O(#relations), not a
    // per-query rebuild.
    if (Status s = w.engine.BindSnapshot(*qdb); !s.ok()) {
      resp.status = s;
      return;
    }
    w.bound_epoch = qdb->epoch();
  }
  Literal lit;
  bool empty_ok = false;
  if (Status s = BuildLiteral(*qdb, q.request, &lit, &empty_ok); !s.ok()) {
    resp.status = s;
    return;
  }
  resp.trace.pred = lit.predicate;
  if (!lit.args.empty() && lit.args[0].IsConst()) {
    resp.trace.source = lit.args[0].symbol;
  }
  if (empty_ok) return;  // unknown constant: empty answer set
  // Thread the token and the streaming sink into the engine: the traversal
  // polls the token at decimated cancellation points (unwinding with a
  // partial answer set when it trips) and flushes newly derived answer
  // chunks to the sink at those same points.
  EvalOptions options = q.request.options.ToEvalOptions();
  options.cancel = &q.token;
  CountingSink counting(q.request.sink);
  if (q.request.sink != nullptr) options.sink = &counting;
  auto r = w.engine.Query(lit, options);
  resp.trace.chunks = counting.chunks;
  if (!r.ok()) {
    resp.status = r.status();
    return;
  }
  resp.tuples = std::move(r.value().tuples);
  resp.stats = std::move(r.value().stats);
  resp.fetches = r.value().fetches;
  if (resp.stats.cancelled) {
    // Mid-flight unwind. The tuples gathered so far are true answers, just
    // possibly not all of them; the marker keeps anyone from mistaking the
    // prefix for the complete set. Cancellation wins the tie over the
    // deadline: an explicit Cancel() is the stronger, caller-driven signal.
    resp.partial = true;
    if (q.token.cancelled()) {
      resp.cancelled = true;
      resp.status =
          Status::Cancelled("request cancelled mid-flight; partial answers");
    } else {
      resp.timed_out = true;
      resp.status = Status::DeadlineExceeded(
          "request deadline expired mid-flight; partial answers");
    }
  }
}

std::string QueryService::RequestKey(const QueryRequest& req) const {
  // Fingerprint prefix, then every request field that selects a distinct
  // answer set, '\x1f'-separated (the separator cannot occur in interned
  // spellings' role here — pred/source/target are caller strings, and a
  // '\x1f' inside one still keys deterministically, just conservatively).
  std::string key;
  key.reserve(cache_key_prefix_.size() + req.pred.size() +
              req.source.size() + req.target.size() + 16);
  key += cache_key_prefix_;
  key += req.pred;
  key += '\x1f';
  key += req.source;
  key += '\x1f';
  key += req.target;
  key += '\x1f';
  key += req.diagonal ? 'D' : '-';
  key += req.options.use_cyclic_bound ? 'c' : '-';
  key += req.options.disable_closure_sharing ? 'n' : '-';
  key += '\x1f';
  key += std::to_string(req.options.max_iterations);
  return key;
}

bool QueryService::TryServeFromCache(AsyncQueryState& q) {
  if (answer_cache_ == nullptr) return false;
  auto ans = answer_cache_->Lookup(q.cache_key, *q.batch->db);
  if (ans == nullptr) return false;
  QueryResponse& r = q.response;
  r.tuples = ans->tuples;
  r.stats = ans->stats;
  r.fetches = ans->fetches;
  r.epoch = q.batch->db->epoch();
  r.trace.cache_hit = true;
  // Trace identity fields, resolved read-only (both resolve iff the
  // original evaluation resolved them — a key match implies the same
  // spellings).
  if (auto p = q.batch->db->symbols().Find(q.request.pred)) r.trace.pred = *p;
  if (!q.request.source.empty()) {
    if (auto c = q.batch->db->symbols().Find(q.request.source)) {
      r.trace.source = *c;
    }
  }
  q.replayed = true;
  ReplayToSink(q);
  CompleteQuery(q);
  // Safe to read the closed span here: the hit completed on the caller
  // thread before any future was handed out, so no waiter can move the
  // response yet.
  answer_cache_->ObserveHitLatency(r.trace.total_ms);
  return true;
}

void QueryService::MaybeCacheInsert(AsyncQueryState& q) {
  if (answer_cache_ == nullptr || !q.ran || q.replayed) return;
  const QueryResponse& r = q.response;
  // Only complete, successful evaluations: partial prefixes and failures
  // are about *this* request's budget, not the answer set.
  if (!r.status.ok() || r.partial) return;
  const Database& db = *q.batch->db;
  auto pred = db.symbols().Find(q.request.pred);
  if (!pred) return;
  // Support set: the transitive base (EDB) predicates this query's
  // evaluation can read — the same single-source-of-truth dependency data
  // EvalArtifacts invalidates by. Pinning the relation handles makes the
  // later pointer comparisons ABA-safe. An unknown-constant empty answer
  // gets the same deps: it stays valid exactly while its relations do.
  std::vector<SymbolId> base =
      TransitiveBasePreds(plan_->lemma1.final_system, *pred);
  std::vector<cache::SupportDep> deps;
  deps.reserve(base.size());
  for (SymbolId p : base) {
    cache::SupportDep d;
    d.pred = p;
    d.rel = db.FindSharedById(p);
    d.dead_mutations = d.rel != nullptr ? d.rel->dead_mutations() : 0;
    deps.push_back(std::move(d));
  }
  auto ans = std::make_shared<cache::CachedAnswer>();
  ans->tuples = r.tuples;
  ans->stats = r.stats;
  ans->fetches = r.fetches;
  ans->result_hash = cache::AnswerCache::HashTuples(r.tuples);
  answer_cache_->Insert(q.cache_key, std::move(deps), std::move(ans),
                        db.epoch());
}

void QueryService::FanOutOne(size_t worker_id, const AsyncQueryState& leader,
                             AsyncQueryState& w) {
  QueryResponse& r = w.response;
  r.epoch = w.batch->db->epoch();
  // The recipient's own token rules first — a replayed answer must not
  // resurrect a request its caller already cancelled or deadlined.
  if (w.token.cancelled()) {
    r.cancelled = true;
    r.status = Status::Cancelled("request cancelled before evaluation");
    return;
  }
  if (w.token.Expired()) {
    r.timed_out = true;
    r.status = Status::DeadlineExceeded(
        "request deadline expired before evaluation");
    return;
  }
  if (leader.response.status.ok()) {
    const QueryResponse& lr = leader.response;
    r.tuples = lr.tuples;
    r.stats = lr.stats;
    r.fetches = lr.fetches;
    r.trace.pred = lr.trace.pred;
    r.trace.source = lr.trace.source;
    r.trace.collapsed = true;
    w.replayed = true;
    ReplayToSink(w);
    return;
  }
  // The leader failed (cancelled, deadlined, errored) — its failure is its
  // own, not this request's. Evaluate for real, inline on this worker.
  RunOne(worker_id, w);
}

void QueryService::FinishEval(size_t worker_id, AsyncQueryState& q) {
  MaybeCacheInsert(q);
  // In-batch dedup fan-out. Take the follower list once, under the batch
  // lock (the submitting thread may still be attaching), then replay
  // outside it; from here on late duplicates submit themselves.
  std::vector<std::shared_ptr<AsyncQueryState>> followers;
  {
    std::lock_guard<std::mutex> lock(q.batch->mu);
    q.fanout_started = true;
    followers.swap(q.followers);
  }
  for (auto& f : followers) {
    if (answer_cache_ != nullptr) answer_cache_->NoteCollapsed();
    FanOutOne(worker_id, q, *f);
    MaybeCacheInsert(*f);  // no-op unless the leader failed and f ran
    CompleteQuery(*f);
  }
  // Single-flight fan-out: waiters parked by other submissions while this
  // evaluation was in flight. A waiter can itself be some batch's dedup
  // leader, so it gets the full FinishEval treatment (recursion is bounded:
  // waiters never lead flights, and followers never have followers).
  if (q.flight_leader) {
    q.flight_leader = false;
    auto waiters =
        answer_cache_->FinishFlight(q.cache_key, q.batch->db->epoch());
    for (auto& vw : waiters) {
      auto w = std::static_pointer_cast<AsyncQueryState>(vw);
      FanOutOne(worker_id, q, *w);
      FinishEval(worker_id, *w);
      CompleteQuery(*w);
    }
  }
}

void QueryService::DispatchOrShed(std::shared_ptr<AsyncQueryState> state) {
  ThreadPool::Task task = [this, state](size_t worker_id) {
    if (obs_->enabled) obs_->queue_depth->Add(-1);  // claimed
    RunOne(worker_id, *state);
    FinishEval(worker_id, *state);
    CompleteQuery(*state);
  };
  // Increment-before-submit so a worker's claim-time decrement (which can
  // run the instant TrySubmit accepts) never observes the gauge low.
  if (obs_->enabled) obs_->queue_depth->Add(1);
  if (pool_->TrySubmit(std::move(task))) return;
  if (obs_->enabled) obs_->queue_depth->Add(-1);  // never enqueued
  // Admission control: the queue is at its high-water mark. Shed this
  // request immediately — an honest kOverloaded now beats an unbounded
  // queue that deadlines everything later.
  AsyncQueryState& q = *state;
  q.response.status =
      Status::Overloaded("submission queue at high-water mark (" +
                         std::to_string(queue_depth_) + " pending)");
  q.response.epoch = q.batch->db->epoch();
  // Dedup followers share the verdict (pre-cache behavior: each duplicate
  // would have hit the same full queue); flight waiters were admitted
  // independently, so the dissolved flight re-dispatches each on its own.
  std::vector<std::shared_ptr<AsyncQueryState>> followers;
  {
    std::lock_guard<std::mutex> lock(q.batch->mu);
    q.fanout_started = true;
    followers.swap(q.followers);
  }
  for (auto& f : followers) {
    f->response.status = q.response.status;
    f->response.epoch = q.response.epoch;
    CompleteQuery(*f);
  }
  if (q.flight_leader) {
    q.flight_leader = false;
    auto waiters =
        answer_cache_->FinishFlight(q.cache_key, q.batch->db->epoch());
    for (auto& vw : waiters) {
      DispatchOrShed(std::static_pointer_cast<AsyncQueryState>(vw));
    }
  }
  CompleteQuery(q);
}

void QueryService::CompleteQuery(AsyncQueryState& q) {
  BatchShared& b = *q.batch;
  BatchCallback callback;
  BatchStats aggregates;
  bool last = false;
  /// Copy of the closed span for the slow-query log, taken under the lock
  /// (once a waiter is notified it may move the response out) but written
  /// after it — the sink does file I/O, which must never extend the
  /// completion critical section.
  obs::QueryTrace slow_copy;
  bool log_slow = false;
  {
    std::lock_guard<std::mutex> lock(b.mu);
    q.done = true;
    QueryResponse& r = q.response;
    // Close the span. Every query gets a complete one — a request shed at
    // admission or cancelled while queued never ran, so its whole lifetime
    // was queue wait and eval_ms stays 0.
    obs::QueryTrace& t = r.trace;
    t.start_us = b.start_us;
    t.total_ms = MsSince(b.t0);
    if (q.ran) {
      t.eval_ms = std::max(0.0, t.total_ms - t.queue_wait_ms);
    } else {
      t.queue_wait_ms = t.total_ms;
    }
    t.iterations = r.stats.iterations;
    t.expansions = r.stats.expansions;
    t.fetches = r.fetches;
    t.memo_hits = r.stats.memo_hits;
    t.cancel_checks = r.stats.cancel_checks;
    t.answers = r.tuples.size();
    t.epoch = r.epoch;
    t.timed_out = r.timed_out;
    t.cancelled = r.cancelled;
    t.shed = r.status.code() == StatusCode::kOverloaded;
    // Record while still holding b.mu, *before* the remaining-decrement
    // below can unblock a waiter: anyone who observes the query complete
    // (EvalBatch returning, Take() succeeding) is then guaranteed to see
    // its metrics in the registry and its span in the recorder. ~15
    // relaxed increments plus one recorder mutex, once per query — the
    // same order of work as the batch bookkeeping this lock already
    // covers.
    if (ServiceObs* o = b.obs) {
      o->queries->Inc();
      if (!r.status.ok()) o->failed->Inc();
      if (t.shed) o->shed->Inc();
      if (t.timed_out) o->timed_out->Inc();
      if (t.cancelled) o->cancelled->Inc();
      o->answers->Inc(t.answers);
      o->latency_ms->Observe(t.total_ms);
      o->queue_wait_ms->Observe(t.queue_wait_ms);
      // Replayed responses (cache hits, single-flight waiters, dedup
      // followers) carry the original evaluation's effort counters so batch
      // totals stay byte-identical — but that work already hit the engine_*
      // family when it actually ran; folding it again would double-count.
      if (!q.replayed) {
        o->engine_iterations->Inc(t.iterations);
        o->engine_nodes->Inc(r.stats.nodes);
        o->engine_expansions->Inc(t.expansions);
        o->engine_fetches->Inc(t.fetches);
        o->engine_memo_hits->Inc(t.memo_hits);
        o->engine_cancel_checks->Inc(t.cancel_checks);
      }
      o->recorder.Record(t);
      if (o->slow_log.enabled()) {
        slow_copy = t;
        log_slow = true;
      }
    }
    BatchStats& s = b.stats;
    if (!r.status.ok()) {
      ++s.failed;
      if (r.timed_out) ++s.timed_out;
      if (r.cancelled) ++s.cancelled;
      if (r.status.code() == StatusCode::kOverloaded) ++s.overloaded;
    } else {
      s.tuples += r.tuples.size();
      s.fetches += r.fetches;
      s.total.nodes += r.stats.nodes;
      s.total.arcs += r.stats.arcs;
      s.total.iterations += r.stats.iterations;
      s.total.expansions += r.stats.expansions;
      s.total.continuations += r.stats.continuations;
      s.total.em_states += r.stats.em_states;
      s.total.fetches += r.stats.fetches;
      s.total.wide_mask_scans += r.stats.wide_mask_scans;
      s.total.memo_hits += r.stats.memo_hits;
      s.total.cancel_checks += r.stats.cancel_checks;
      s.total.hit_iteration_cap |= r.stats.hit_iteration_cap;
      // Elementwise: entry i = answers known after iteration i, summed over
      // the batch. A query that converged earlier contributes its final
      // count to the later entries (its curve continues flat), which keeps
      // the sum order-independent and makes the last entry equal s.tuples.
      const auto& api = r.stats.answers_per_iteration;
      auto& acc = s.total.answers_per_iteration;
      if (!api.empty()) {
        if (api.size() > acc.size()) {
          const uint64_t tail = acc.empty() ? 0 : acc.back();
          acc.resize(api.size(), tail);
        }
        for (size_t i = 0; i < acc.size(); ++i) {
          acc[i] += i < api.size() ? api[i] : api.back();
        }
      }
    }
    if (--b.remaining == 0) {
      last = true;
      s.wall_ms = MsSince(b.t0);
      callback = std::move(b.on_complete);
      aggregates = s;
    }
  }
  if (b.notify_each || last) b.cv.notify_all();
  // Outside the lock: the sink applies its own threshold/sampling and
  // appends one JSONL line; the callback may wait on other futures or
  // submit follow-up work (but must not block on this service's queue).
  if (log_slow) b.obs->slow_log.MaybeRecord(slow_copy);
  if (last && callback) callback(aggregates);
}

std::shared_ptr<BatchShared> QueryService::MakeBatchShared(size_t queries) {
  auto shared = std::make_shared<BatchShared>();
  shared->start_us = obs::SteadyNowUs();
  shared->t0 = std::chrono::steady_clock::now();
  shared->obs = obs_->enabled ? obs_.get() : nullptr;
  shared->remaining = queries;
  shared->stats.queries = queries;
  // One epoch per batch, acquired once at submission: every query of the
  // batch sees the same snapshot even if Publish() swaps the tip while the
  // batch drains. The shared state pins the epoch until the last response
  // lands.
  const Database* qdb = db_;
  if (init_status_.ok() && live_ != nullptr) {
    shared->epoch_handle = live_->Acquire();
    qdb = shared->epoch_handle.get();
  }
  shared->db = qdb;
  shared->stats.epoch = qdb->epoch();
  return shared;
}

BatchHandle QueryService::SubmitShared(std::vector<QueryRequest> batch,
                                       BatchCallback on_complete) {
  BatchHandle handle;
  auto shared = MakeBatchShared(batch.size());
  shared->on_complete = std::move(on_complete);
  handle.shared_ = shared;
  if (batch.empty()) {
    if (shared->on_complete) {
      BatchCallback cb = std::move(shared->on_complete);
      cb(shared->stats);
    }
    return handle;
  }

  handle.futures_.reserve(batch.size());
  const Status admit = AdmissionStatus();
  // Keys are needed for the cache and for in-batch dedup; with the cache
  // off and a single-query batch neither applies and key-building is
  // skipped entirely (the pre-cache hot path).
  const bool want_keys = answer_cache_ != nullptr || batch.size() > 1;
  // In-batch dedup: the first submission of each distinct key evaluates,
  // identical later ones attach to it as followers and replay its answer
  // (Fig8-style overlap batches stop paying per-duplicate traversals).
  std::unordered_map<std::string, std::shared_ptr<AsyncQueryState>> leaders;
  for (QueryRequest& req : batch) {
    auto state = std::make_shared<AsyncQueryState>();
    state->batch = shared;
    state->response.trace.query_id =
        obs_->next_query_id.fetch_add(1, std::memory_order_relaxed);
    // The deadline clock starts at submission: time spent queued counts
    // against the request's budget, so queue delay cannot launder an
    // expired request into a fresh one.
    if (req.options.deadline_ms > 0) {
      state->token.SetDeadlineAfter(req.options.deadline_ms);
    }
    state->request = std::move(req);
    handle.futures_.push_back(QueryFuture(state));
    if (!admit.ok()) {
      // Admission precedes every cache path: a recovering service answers
      // kUnavailable even for answers it has cached.
      state->response.status = admit;
      state->response.epoch = shared->db->epoch();
      CompleteQuery(*state);
      continue;
    }
    if (want_keys) state->cache_key = RequestKey(state->request);
    // Cache fast path: a hit completes on this thread, right here — no
    // queue traffic, no worker handoff.
    if (TryServeFromCache(*state)) continue;
    if (batch.size() > 1) {
      auto [it, fresh] = leaders.try_emplace(state->cache_key, state);
      if (!fresh) {
        bool attached = false;
        {
          std::lock_guard<std::mutex> lock(shared->mu);
          if (!it->second->fanout_started) {
            it->second->followers.push_back(state);
            attached = true;
          }
        }
        if (attached) continue;
        // The leader already finished (workers are fast, batches are
        // long): this duplicate just submits itself.
      }
    }
    // Single-flight: concurrent identical misses across batches collapse
    // onto one in-flight evaluation. Joined waiters are fanned out by the
    // leader's FinishEval; an epoch-mismatched flight leaves this request
    // standalone (a cached answer must never cross epochs).
    if (answer_cache_ != nullptr) {
      const auto decision = answer_cache_->JoinFlight(
          state->cache_key, shared->db->epoch(), state);
      if (decision == cache::AnswerCache::FlightDecision::kJoined) continue;
      if (decision == cache::AnswerCache::FlightDecision::kLeader) {
        state->flight_leader = true;
      }
    }
    DispatchOrShed(std::move(state));
  }
  return handle;
}

QueryFuture QueryService::Submit(QueryRequest request) {
  std::vector<QueryRequest> one;
  one.push_back(std::move(request));
  BatchHandle handle = SubmitShared(std::move(one), nullptr);
  // Moving the future out disarms the handle's drop-cancellation; the
  // batch state stays alive behind the future.
  return std::move(handle.futures_[0]);
}

BatchHandle QueryService::SubmitBatch(std::vector<QueryRequest> batch,
                                      BatchCallback on_complete) {
  return SubmitShared(std::move(batch), std::move(on_complete));
}

QueryResponse QueryService::Eval(const QueryRequest& request) {
  return EvalBatch({request})[0];
}

std::vector<QueryResponse> QueryService::EvalBatch(
    const std::vector<QueryRequest>& batch, BatchStats* stats) {
  const size_t n = batch.size();
  auto shared = MakeBatchShared(n);
  shared->notify_each = false;  // no per-query waiters on this path
  std::vector<QueryResponse> responses(n);
  if (n > 0) {
    // One state per query in a single allocation. The array owner is a
    // shared_ptr for two reasons: dedup followers are handed to their
    // leader as aliasing shared_ptrs into this array (still zero extra
    // allocations), and runners capture the owner so a late claim-loop
    // pass over pre-completed (skipped) indexes can never outlive the
    // states. The cv wait below still synchronizes with the last
    // CompleteQuery before responses are moved out.
    std::shared_ptr<AsyncQueryState[]> states(new AsyncQueryState[n]);
    for (size_t i = 0; i < n; ++i) {
      states[i].batch = shared;
      states[i].response.trace.query_id =
          obs_->next_query_id.fetch_add(1, std::memory_order_relaxed);
      if (batch[i].options.deadline_ms > 0) {
        states[i].token.SetDeadlineAfter(batch[i].options.deadline_ms);
      }
      states[i].request = batch[i];
    }
    if (const Status admit = AdmissionStatus(); !admit.ok()) {
      for (size_t i = 0; i < n; ++i) {
        states[i].response.status = admit;
        states[i].response.epoch = shared->db->epoch();
        CompleteQuery(states[i]);
      }
    } else {
      // Cache lookups and in-batch dedup, resolved up front on the calling
      // thread (runners have not been launched, so no locking subtleties):
      // hits complete immediately, duplicates attach to their leader, and
      // both are marked for the claim loop to pass over. No single-flight
      // on this path — blocking batches pay no per-query queue traffic, so
      // the flight table's cross-batch rendezvous is not worth its lock
      // here (documented in the cache header).
      size_t live = n;
      if (answer_cache_ != nullptr || n > 1) {
        std::unordered_map<std::string, size_t> leaders;
        for (size_t i = 0; i < n; ++i) {
          states[i].cache_key = RequestKey(states[i].request);
          if (TryServeFromCache(states[i])) {
            states[i].skip = true;
            --live;
            continue;
          }
          if (n > 1) {
            auto [it, fresh] = leaders.try_emplace(states[i].cache_key, i);
            if (!fresh) {
              states[it->second].followers.push_back(
                  std::shared_ptr<AsyncQueryState>(states, &states[i]));
              states[i].skip = true;
              --live;
            }
          }
        }
      }
      // Claim-cursor runners instead of one queued closure per query: the
      // blocking path enqueues at most one task per worker, and workers
      // claim batch indexes from the shared cursor (self-balancing, FIFO).
      // Per-query heap/queue traffic stays off this hot path; backpressure
      // comes from SubmitBlocking when other batches own the queue.
      size_t runners = std::min(workers_.size(), live);
      for (size_t r = 0; r < runners; ++r) {
        pool_->SubmitBlocking([this, shared, states, n](size_t worker_id) {
          AsyncQueryState* raw = states.get();
          for (size_t i = shared->next.fetch_add(1, std::memory_order_relaxed);
               i < n;
               i = shared->next.fetch_add(1, std::memory_order_relaxed)) {
            if (raw[i].skip) continue;
            RunOne(worker_id, raw[i]);
            FinishEval(worker_id, raw[i]);
            CompleteQuery(raw[i]);
          }
        });
      }
      std::unique_lock<std::mutex> lock(shared->mu);
      shared->cv.wait(lock, [&] { return shared->remaining == 0; });
    }
    for (size_t i = 0; i < n; ++i) {
      responses[i] = std::move(states[i].response);
    }
  }
  if (stats != nullptr) {
    std::lock_guard<std::mutex> lock(shared->mu);
    *stats = shared->stats;
  }
  return responses;
}

}  // namespace binchain
