#include "service/query_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "eval/query.h"
#include "util/check.h"

namespace binchain {

/// A worker's private evaluation context. Everything mutable during query
/// evaluation lives here (term pool, view registry with its memo and rex
/// caches, both engines' machines and scratch), so workers never
/// synchronize with each other after construction.
struct QueryService::Worker {
  explicit Worker(Database* db) : engine(db) {}
  QueryEngine engine;
};

QueryService::QueryService(Database* db, const Program& program,
                           Options options)
    : db_(db) {
  Program prog = program;
  prog.queries.clear();
  if (!prog.facts.empty()) {
    if (db_->frozen()) {
      init_status_ = Status::FailedPrecondition(
          "cannot load program facts into a frozen database");
      return;
    }
    LoadFactsInto(*db_, prog.facts);
    prog.facts.clear();
  }

  // Free-variable spellings for request literals, interned while the table
  // still accepts new symbols.
  if (!db_->symbols().frozen()) {
    var_x_ = db_->symbols().Intern("X");
    var_y_ = db_->symbols().Intern("Y");
    has_free_vars_ = true;
  } else {
    auto x = db_->symbols().Find("X");
    auto y = db_->symbols().Find("Y");
    if (x && y) {
      var_x_ = *x;
      var_y_ = *y;
      has_free_vars_ = true;
    }
  }

  size_t n = options.num_threads;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());

  // Context construction is the mutating phase: program transformation and
  // machine compilation intern symbols, so it runs sequentially here. The
  // first worker interns every fresh name; the rest resolve to the same
  // ids.
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>(db_);
    if (Status s = w->engine.LoadProgram(prog); !s.ok()) {
      init_status_ = s;
      return;
    }
    if (Status s = w->engine.PrepareAll(); !s.ok()) {
      init_status_ = s;
      return;
    }
    workers_.push_back(std::move(w));
  }

  // Snapshot: complete all lazy index work and forbid mutation, making the
  // shared storage safe for the concurrent read phase.
  db_->Freeze();
  pool_ = std::make_unique<ThreadPool>(n);
}

QueryService::~QueryService() = default;

size_t QueryService::num_threads() const {
  return pool_ ? pool_->size() : 0;
}

Status QueryService::BuildLiteral(const QueryRequest& request, Literal* out,
                                  bool* empty_ok) const {
  *empty_ok = false;
  auto pred = db_->symbols().Find(request.pred);
  if (!pred) {
    return Status::NotFound("unknown predicate '" + request.pred + "'");
  }
  out->predicate = *pred;
  out->args.clear();
  if (request.diagonal &&
      !(request.source.empty() && request.target.empty())) {
    return Status::InvalidArgument(
        "diagonal requests must leave source and target free");
  }
  const std::string* names[2] = {&request.source, &request.target};
  // The diagonal query p(X, X) repeats one variable; otherwise the free
  // positions get distinct variables.
  SymbolId vars[2] = {var_x_, request.diagonal ? var_x_ : var_y_};
  for (int i = 0; i < 2; ++i) {
    if (names[i]->empty()) {
      if (!has_free_vars_) {
        return Status::FailedPrecondition(
            "free-variable queries need variable symbols interned before the "
            "database froze");
      }
      out->args.push_back(Term::Var(vars[i]));
    } else {
      auto c = db_->symbols().Find(*names[i]);
      if (!c) {
        // A constant the database has never seen occurs in no tuple: the
        // answer set is empty, which is a result, not an error.
        *empty_ok = true;
        return Status::Ok();
      }
      out->args.push_back(Term::Const(*c));
    }
  }
  return Status::Ok();
}

QueryResponse QueryService::Eval(const QueryRequest& request) {
  return EvalBatch({request})[0];
}

std::vector<QueryResponse> QueryService::EvalBatch(
    const std::vector<QueryRequest>& batch, BatchStats* stats) {
  std::vector<QueryResponse> responses(batch.size());
  if (!init_status_.ok()) {
    for (QueryResponse& r : responses) r.status = init_status_;
    if (stats != nullptr) {
      *stats = BatchStats{};
      stats->queries = batch.size();
      stats->failed = batch.size();
    }
    return responses;
  }

  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  auto t0 = std::chrono::steady_clock::now();
  auto run_one = [&](size_t worker_id, size_t i) {
    QueryResponse& resp = responses[i];
    Literal lit;
    bool empty_ok = false;
    if (Status s = BuildLiteral(batch[i], &lit, &empty_ok); !s.ok()) {
      resp.status = s;
      return;
    }
    if (empty_ok) return;  // unknown constant: empty answer set
    auto r = workers_[worker_id]->engine.Query(lit, batch[i].options);
    if (!r.ok()) {
      resp.status = r.status();
      return;
    }
    resp.tuples = std::move(r.value().tuples);
    resp.stats = std::move(r.value().stats);
    resp.fetches = r.value().fetches;
  };
  pool_->ParallelFor(batch.size(), run_one);
  double wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->queries = batch.size();
    stats->wall_ms = wall_ms;
    for (const QueryResponse& r : responses) {
      if (!r.status.ok()) {
        ++stats->failed;
        continue;
      }
      stats->tuples += r.tuples.size();
      stats->fetches += r.fetches;
      stats->total.nodes += r.stats.nodes;
      stats->total.arcs += r.stats.arcs;
      stats->total.iterations += r.stats.iterations;
      stats->total.expansions += r.stats.expansions;
      stats->total.continuations += r.stats.continuations;
      stats->total.em_states += r.stats.em_states;
      stats->total.fetches += r.stats.fetches;
      stats->total.hit_iteration_cap |= r.stats.hit_iteration_cap;
    }
  }
  return responses;
}

}  // namespace binchain
