// Concurrent query service: async submission over a frozen database
// snapshot. The paper's engine answers one p(a, Y) query at a time; this
// layer turns it into a reusable service in the sense of the QSQ-style
// evaluator frameworks — it owns a fixed thread pool fed by a bounded
// submission queue, one evaluation context per worker (QueryEngine with its
// own term pool, view registry and reset-and-reuse scratch), and the freeze
// step that makes the shared storage safe to read concurrently. The
// program-derived artifacts — the Lemma 1 equation system, the inverted
// system, and every compiled machine M(e_p) — are built once and shared
// read-only by all workers, so startup cost no longer scales with the
// thread count.
//
// Submission is future-based: Submit() enqueues one query and returns a
// QueryFuture; SubmitBatch() enqueues a whole batch and returns a
// BatchHandle with per-query futures plus an optional completion callback
// that fires (on the worker that finishes last) with the batch aggregates.
// The queue has a configurable high-water mark: submissions past it are
// answered immediately with StatusCode::kOverloaded instead of queueing
// without bound. The blocking Eval/EvalBatch calls share the same
// lifecycle (states, tokens, aggregates) but dispatch as claim-cursor
// runner tasks — at most one per worker — with backpressure (waiting for
// queue room) rather than shedding, so batch clients keep their
// all-queries-answered contract and pay no per-query queue traffic.
//
// Every request carries a CancelToken for its whole lifetime: a deadline
// armed at submission, and a flag flipped by QueryFuture::Cancel() (or by
// dropping the future unconsumed). A queued request whose token trips is
// answered without evaluating; an in-flight one unwinds at the engine's
// next cancellation point with kDeadlineExceeded/kCancelled and whatever
// partial answer set the traversal had gathered (QueryResponse::partial).
//
// Construction performs every mutating step up front, on the calling
// thread: program facts are loaded, the shared plan transforms the program
// and compiles all machines (interning whatever symbols that needs), the
// database is frozen, and the epoch's EvalArtifacts set — snapshot-owned
// adjacency memos, closure and candidate-source caches — is built and
// attached to it. From then on workers only read shared state (plan +
// artifacts); everything they write — term pools, engine scratch, the
// thread-local counters — is worker-private or fill-once-with-publication,
// so batches scale with cores and results are byte-identical to sequential
// evaluation.
//
// Live mode: constructed over a SnapshotManager instead of a bare
// database, the service serves a *sequence* of epochs. Every batch
// acquires the current epoch handle once at submission, so all its queries
// see one consistent snapshot even while Publish() swaps the tip mid-batch;
// workers re-point their views at a submission's epoch on first use after
// an epoch bump (cheap — nothing program-derived is rebuilt).
#ifndef BINCHAIN_SERVICE_QUERY_SERVICE_H_
#define BINCHAIN_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "eval/engine.h"
#include "eval/query.h"
#include "obs/trace.h"
#include "service/thread_pool.h"
#include "storage/database.h"
#include "util/cancel_token.h"
#include "util/status.h"

namespace binchain {

class SnapshotManager;
namespace cache {
class AnswerCache;
}  // namespace cache
namespace durability {
class RecoveryManager;
class Wal;
struct WalOptions;
}  // namespace durability

/// Evaluation knobs of one query — the single option surface every entry
/// path shares: the wire JSON's "options" object, the CLI's flags, and
/// in-process callers all construct this one type (there used to be three
/// overlapping shapes: a service-level deadline field, an embedded
/// engine-level EvalOptions, and ad-hoc per-caller plumbing). Plain
/// aggregate initialization works; the chained setters exist so call
/// sites can build a request as one expression.
struct QueryOptions {
  /// Evaluation budget in milliseconds, measured from submission. Enforced
  /// twice: a request whose deadline has already passed when a worker picks
  /// it up is answered without evaluating, and an in-flight traversal whose
  /// deadline passes unwinds at the engine's next cancellation point with a
  /// partial answer set. Either way the response carries kDeadlineExceeded
  /// and timed_out. <= 0 disables the deadline.
  double deadline_ms = 0;
  /// Hard cap on fixpoint iterations; 0 = none (see EvalOptions).
  size_t max_iterations = 0;
  /// Compute the |D1| * |D2| cyclic termination bound (Figure 8 data).
  bool use_cyclic_bound = false;
  /// Force per-source evaluation for all-free queries (the ablation).
  bool disable_closure_sharing = false;

  QueryOptions& set_deadline_ms(double v) {
    deadline_ms = v;
    return *this;
  }
  QueryOptions& set_max_iterations(size_t v) {
    max_iterations = v;
    return *this;
  }
  QueryOptions& set_use_cyclic_bound(bool v) {
    use_cyclic_bound = v;
    return *this;
  }
  QueryOptions& set_disable_closure_sharing(bool v) {
    disable_closure_sharing = v;
    return *this;
  }

  /// Projection onto the engine-level knobs. The deadline stays at the
  /// service layer (it becomes the request token's deadline); the sink is
  /// threaded separately (the service wraps it to count chunks).
  EvalOptions ToEvalOptions() const {
    EvalOptions o;
    o.max_iterations = max_iterations;
    o.use_cyclic_bound = use_cyclic_bound;
    o.disable_closure_sharing = disable_closure_sharing;
    return o;
  }
};

/// One query, by name: `pred(source, target)` with an empty string standing
/// for a free variable. All binding patterns of Section 3 are reachable:
/// {pred, "a", ""} is p(a, Y); {pred, "", "b"} is p(X, b) (inverted
/// system); {pred, "a", "b"} is the membership test; {pred, "", ""} is the
/// all-pairs query, or the diagonal p(X, X) when `diagonal` is set.
///
/// The canonical request type: the data plane's JSON body, the CLI, and
/// in-process callers all decode/construct exactly this struct.
struct QueryRequest {
  std::string pred;
  std::string source;  // empty => first argument free
  std::string target;  // empty => second argument free
  /// Both arguments are the same free variable (p(X, X)). Requires empty
  /// source and target.
  bool diagonal = false;
  QueryOptions options;
  /// Streaming: when set, newly derived answer chunks are delivered to
  /// this sink *while the evaluation runs* (on the worker thread), shaped
  /// per the binding pattern; QueryResponse::tuples still carries the
  /// complete sorted set at the end. Replayed answers (cache hits,
  /// single-flight waiters, dedup followers) arrive as one chunk.
  /// Borrowed: must stay alive until the response is observable (the
  /// future completed / the blocking call returned). Never part of the
  /// request's cache identity.
  AnswerSink* sink = nullptr;

  QueryRequest& set_pred(std::string v) {
    pred = std::move(v);
    return *this;
  }
  QueryRequest& set_source(std::string v) {
    source = std::move(v);
    return *this;
  }
  QueryRequest& set_target(std::string v) {
    target = std::move(v);
    return *this;
  }
  QueryRequest& set_diagonal(bool v) {
    diagonal = v;
    return *this;
  }
  QueryRequest& set_options(QueryOptions v) {
    options = v;
    return *this;
  }
  QueryRequest& set_sink(AnswerSink* v) {
    sink = v;
    return *this;
  }
};

struct QueryResponse {
  Status status = Status::Ok();
  std::vector<Tuple> tuples;  // sorted, deduplicated SymbolId pairs
  EvalStats stats;
  uint64_t fetches = 0;  // EDB retrievals, counted on the worker thread
  /// Epoch id of the snapshot this query evaluated against (0 unless the
  /// service runs in live mode and epochs have advanced).
  uint64_t epoch = 0;
  /// The request's deadline expired — before evaluation started (tuples
  /// empty, no work done) or mid-flight (see `partial`). status carries
  /// kDeadlineExceeded.
  bool timed_out = false;
  /// The request was cancelled through its future (Cancel() or drop);
  /// status carries kCancelled.
  bool cancelled = false;
  /// The traversal was unwound mid-flight: `tuples` is a valid but possibly
  /// incomplete prefix of the answer set (every tuple reported is a true
  /// answer). Only ever set together with timed_out or cancelled.
  bool partial = false;
  /// The query's completed trace span: queue wait vs eval wall time, the
  /// evaluator's effort counters, the epoch, and the terminal disposition.
  /// Filled for every response, including queries shed at admission or
  /// cancelled while queued (those have eval_ms == 0).
  obs::QueryTrace trace;
};

/// Order-independent aggregates over one batch: every field is a sum (or
/// OR) of per-query values, so the totals are identical for any thread
/// count and any scheduling. Result sets are always schedule-independent.
/// Fetch counts are too, now for a stronger reason: probes over the
/// epoch-shared artifacts (adjacency memos, closure caches) cost zero
/// fetches for *every* worker — the artifact builds themselves are
/// accounted at the artifact layer, never against whichever query happened
/// to trigger them. The exception remains demand-join views, whose body
/// enumerations do fetch: the worker that fills a shared demand entry pays
/// its fetches, later probes are free, so per-query fetch counts for
/// non-chain programs depend on scheduling (totals still converge).
/// EvalStats::memo_hits totals are deterministic up to the handful of
/// fill-once cells (closure / source caches): the filling query reports
/// one fewer hit than a replaying one. Failed queries (cancelled, timed
/// out, shed) contribute to their counters but never to the work totals —
/// cancellation timing is inherently nondeterministic.
struct BatchStats {
  uint64_t queries = 0;
  uint64_t failed = 0;   // responses with !status.ok(), timeouts included
  uint64_t timed_out = 0;  // of failed: deadline expired (before or mid-flight)
  uint64_t cancelled = 0;  // of failed: future cancelled or dropped
  uint64_t overloaded = 0;  // of failed: shed at the submission queue
  uint64_t tuples = 0;   // answers over all successful queries
  uint64_t fetches = 0;
  uint64_t epoch = 0;    // snapshot the whole batch evaluated against
  /// Scalar fields summed; answers_per_iteration is the *elementwise* sum
  /// over the batch's successful queries (entry i = answers known after
  /// iteration i, totalled across queries), so its last entry matches
  /// `tuples` and the growth curve stays schedule-independent.
  EvalStats total;
  double wall_ms = 0;    // batch wall time (submission to last completion)
};

/// Service configuration (namespace-scope so it can appear in default
/// arguments of QueryService members).
struct QueryServiceOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  size_t num_threads = 0;
  /// High-water mark of the submission queue: pending (accepted, not yet
  /// claimed) requests past this are shed with kOverloaded on the async
  /// paths; the blocking paths wait for room instead.
  size_t queue_depth = 1024;
  /// Slow-query flight recorder: spans of the last `flight_recorder_capacity`
  /// queries whose total latency reached `flight_recorder_min_ms` are
  /// retained for post-hoc inspection (see QueryService::flight_recorder).
  /// The default threshold of 0 retains every query's span.
  size_t flight_recorder_capacity = obs::kSpanRingCapacity;
  double flight_recorder_min_ms = 0;
  /// When false, completed queries skip the registry counters/histograms,
  /// the queue-depth gauge, and the flight recorder (response traces are
  /// still filled). The off position exists for the before/after overhead
  /// column in bench_service; production keeps it on.
  bool record_metrics = true;
  /// Structured slow-query log: when non-empty, completed queries whose
  /// total latency reaches `slow_query_log_min_ms` are appended to this
  /// file as JSONL (one `{"unix_ms": ..., "trace": {...}}` object per
  /// line), downsampled to every `slow_query_log_sample`-th qualifying
  /// span (1 = log them all). The write happens off the completion lock,
  /// after the response is already observable. An unwritable path fails
  /// construction (check status()).
  ///
  /// New options append here: callers aggregate-initialize this struct.
  std::string slow_query_log_path;
  double slow_query_log_min_ms = 0;
  uint64_t slow_query_log_sample = 1;
  /// Answer-cache byte budget; 0 (the default) disables the cache
  /// entirely — no lookups, no single-flight table, behavior identical to
  /// pre-cache builds. When set, exact-match repeats are served on the
  /// caller thread (bypassing the submission queue), concurrent identical
  /// misses collapse onto one evaluation, and publishes invalidate only
  /// the entries whose supporting relations changed (see
  /// cache::AnswerCache).
  size_t answer_cache_bytes = 0;
};

class QueryService;
struct AsyncQueryState;  // one submitted query (opaque; query_service.cc)
struct BatchShared;      // per-batch aggregates + completion (opaque)
struct ServiceObs;       // cached registry instruments (opaque)

/// Handle to one submitted query. Move-only; the result must be claimed
/// with Take() (or the future dropped, which *cancels* the query — an
/// abandoned result is demand nobody wants, so the engine stops paying for
/// it). Safe to wait from any thread; Cancel() is safe from any thread at
/// any time.
class QueryFuture {
 public:
  QueryFuture() = default;
  QueryFuture(QueryFuture&&) noexcept;
  QueryFuture& operator=(QueryFuture&&) noexcept;
  QueryFuture(const QueryFuture&) = delete;
  QueryFuture& operator=(const QueryFuture&) = delete;
  /// Dropping an unconsumed future cancels the query (cooperatively: a
  /// queued query is answered kCancelled without evaluating, an in-flight
  /// one unwinds at its next cancellation point; the response is discarded
  /// when it lands).
  ~QueryFuture();

  bool valid() const { return state_ != nullptr; }
  /// True once the response is ready (never blocks).
  bool Ready() const;
  /// Blocks until the response is ready.
  void Wait() const;
  /// Blocks up to `ms`; returns whether the response became ready.
  bool WaitFor(double ms) const;
  /// Requests cooperative cancellation; the future still completes (with
  /// kCancelled, or normally if evaluation already passed its last
  /// cancellation point).
  void Cancel();
  /// Blocks until ready and moves the response out; the future becomes
  /// invalid.
  QueryResponse Take();

 private:
  friend class QueryService;
  explicit QueryFuture(std::shared_ptr<AsyncQueryState> state);
  std::shared_ptr<AsyncQueryState> state_;
};

/// Invoked exactly once per SubmitBatch, by the worker completing the
/// batch's last query (or inline when every query was shed/failed at
/// submission). Runs on a worker thread: keep it cheap and do not call
/// back into blocking service methods from it.
using BatchCallback = std::function<void(const BatchStats&)>;

/// Handle to a submitted batch: per-query futures plus batch-level wait /
/// take / cancel. Move-only; dropping the handle cancels every query whose
/// future was neither taken out nor individually consumed.
class BatchHandle {
 public:
  BatchHandle() = default;
  BatchHandle(BatchHandle&&) noexcept;
  BatchHandle& operator=(BatchHandle&&) noexcept;
  BatchHandle(const BatchHandle&) = delete;
  BatchHandle& operator=(const BatchHandle&) = delete;
  ~BatchHandle();

  size_t size() const { return futures_.size(); }
  /// Per-query future, indexed like the submitted batch. May be moved out
  /// for individual waiting; Take() then reports a default (moved-from)
  /// response at that index.
  QueryFuture& future(size_t i) { return futures_[i]; }

  /// Blocks until every query of the batch completed.
  void Wait() const;
  /// Requests cooperative cancellation of every query in the batch.
  void Cancel();
  /// Blocks until completion and moves all responses out (indexed like the
  /// submitted batch); optionally reports the batch aggregates. The handle
  /// becomes empty.
  std::vector<QueryResponse> Take(BatchStats* stats = nullptr);

 private:
  friend class QueryService;
  std::shared_ptr<BatchShared> shared_;
  std::vector<QueryFuture> futures_;
};

class QueryService {
 public:
  using Options = QueryServiceOptions;

  /// Loads `program` (rules and facts) against `db`, builds the shared
  /// plan plus one evaluation context per worker, then freezes the
  /// database. Check status() before issuing queries. If `db` is already
  /// frozen, the program must carry no facts and must intern no new
  /// symbols (i.e. an identical program was prepared against the database
  /// before it froze).
  QueryService(Database* db, const Program& program, Options options = {});

  /// Live mode: same preparation against `live`'s genesis database, then
  /// seals the manager (the genesis becomes the first served epoch).
  /// Queries always evaluate against the manager's current tip; publishes
  /// may run concurrently with batches. `live` must outlive the service
  /// and must not be sealed yet.
  QueryService(SnapshotManager* live, const Program& program,
               Options options = {});

  /// Durable live mode with crash recovery: `live` must be constructed
  /// over `recovery`'s BuildGenesis() and still unsealed. The constructor
  /// prepares and seals exactly like live mode, but the serving gate stays
  /// *closed*: every submission is answered kUnavailable until
  /// FinishRecovery() has replayed the committed WAL batches — readers
  /// must never observe an epoch older than the pre-crash tip. `recovery`
  /// is borrowed and must stay alive until FinishRecovery returns.
  QueryService(SnapshotManager* live, durability::RecoveryManager* recovery,
               const Program& program, Options options = {});

  /// Replays the recovered batches through the manager's publish pipeline,
  /// opens the WAL (owned by the service from here on), attaches it as the
  /// manager's durability sink, and opens the serving gate. Call once,
  /// from the startup thread, after the recovery constructor succeeded; on
  /// failure the gate stays closed and the status is also what every
  /// submission reports.
  Status FinishRecovery(const durability::WalOptions& wal_options);
  Status FinishRecovery();

  /// Drains the submission queue (cancelled work unwinds promptly) and
  /// joins the workers. Outstanding futures complete before destruction
  /// returns.
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Construction outcome; queries on a failed service return this status.
  const Status& status() const { return init_status_; }

  size_t num_threads() const;
  /// Requests accepted into the submission queue but not yet claimed by a
  /// worker (advisory; see ThreadPool::pending).
  size_t pending() const;
  /// The database the service was prepared against (the genesis epoch in
  /// live mode — later epochs are reached through the manager).
  const Database& database() const { return *db_; }
  /// Spans of recent queries whose latency reached the configured
  /// flight-recorder threshold (oldest first via Snapshot()).
  const obs::FlightRecorder& flight_recorder() const;

  /// Whether the service currently accepts queries: construction
  /// succeeded and the recovery gate (if any) has opened. This is the
  /// /readyz predicate on the admin plane — liveness without readiness is
  /// exactly the window between the recovery constructor and
  /// FinishRecovery().
  bool serving() const {
    return init_status_.ok() && serving_.load(std::memory_order_acquire);
  }

  /// The WAL this service owns in durable live mode (nullptr otherwise or
  /// before FinishRecovery()). Read-only peek for the admin plane's
  /// /debug/epochs; the manager keeps driving writes through its sink.
  const durability::Wal* wal() const { return wal_.get(); }

  /// The answer cache, or nullptr when Options::answer_cache_bytes was 0.
  /// Thread-safe (internally sharded); exposed for /debug/cache, the CLI's
  /// `cache` command, and tests.
  cache::AnswerCache* answer_cache() const { return answer_cache_.get(); }

  /// Async submission: enqueues the request and returns immediately. If
  /// the queue is at its high-water mark the future is already completed
  /// with kOverloaded (admission control); a failed service completes it
  /// with status(). The request's deadline starts now.
  QueryFuture Submit(QueryRequest request);

  /// Async batch submission: every request is enqueued (admission applies
  /// per query — shed queries complete immediately with kOverloaded while
  /// the rest proceed), all against one epoch acquired now. `on_complete`,
  /// if given, fires once with the aggregates when the last query lands.
  BatchHandle SubmitBatch(std::vector<QueryRequest> batch,
                          BatchCallback on_complete = nullptr);

  /// Evaluates one query, blocking until the response (backpressure
  /// instead of shedding when the queue is full).
  QueryResponse Eval(const QueryRequest& request);

  /// Evaluates a batch, blocking; the response vector is indexed like
  /// `batch`. Dispatched as claim-cursor runner tasks (at most one per
  /// worker) rather than per-query submissions, so large blocking batches
  /// pay no per-query queue traffic and never shed; deadlines and
  /// EvalStats semantics are identical to the async path. Safe to call
  /// from multiple client threads — batches queue FIFO.
  std::vector<QueryResponse> EvalBatch(const std::vector<QueryRequest>& batch,
                                       BatchStats* stats = nullptr);

 private:
  struct Worker;

  /// Shared construction tail: plan + workers. Returns false on failure
  /// (init_status_ is set).
  bool Init(const Program& program, const Options& options);

  /// Post-freeze tail: ensures the (frozen) snapshot carries an
  /// EvalArtifacts set — adopting one already attached (a second service
  /// over the same frozen database and, per the constructor contract, the
  /// same program), building and attaching otherwise — then rebinds every
  /// worker to it.
  void AdoptSnapshot(Database* db);

  /// Resolves a request to a query literal without interning: unknown
  /// predicates fail, unknown constants report "no answers" through
  /// `empty_ok`. Read-only, callable from workers; resolves against the
  /// epoch the batch acquired.
  Status BuildLiteral(const Database& db, const QueryRequest& request,
                      Literal* out, bool* empty_ok) const;

  /// Per-batch shared state (completion rendezvous, aggregates, epoch
  /// pin), with the epoch acquired now.
  std::shared_ptr<BatchShared> MakeBatchShared(size_t queries);

  /// Async submission tail: wraps `batch` into future states under one
  /// BatchHandle, one queued task per query, shedding with kOverloaded
  /// past the high-water mark. (The blocking EvalBatch does not go through
  /// here — it enqueues claim-cursor runner tasks instead, keeping
  /// per-query queue/allocation traffic off the batch hot path.)
  BatchHandle SubmitShared(std::vector<QueryRequest> batch,
                           BatchCallback on_complete);

  /// Evaluates one claimed query on worker `worker_id`'s context, writing
  /// the response into its state.
  void RunOne(size_t worker_id, AsyncQueryState& q);
  /// Marks `q` done, folds it into the batch aggregates, and fires the
  /// completion callback if it was the batch's last query.
  static void CompleteQuery(AsyncQueryState& q);

  /// Canonical exact-match key of a request against the prepared program:
  /// the plan fingerprint plus every request field that selects a distinct
  /// answer set (pred, source, target, diagonal, and the QueryOptions
  /// value fields). Deadline, sink, and cancel state are deliberately
  /// excluded — they select *when* a request fails or *how* its answer is
  /// delivered, never *what* it answers.
  std::string RequestKey(const QueryRequest& request) const;

  /// Cache fast path, called on the submission thread after admission
  /// passed and q.batch is bound. On a hit: fills the response from the
  /// cached answer (trace.cache_hit set), completes the query on the
  /// caller thread, and returns true — the request never touches the
  /// queue. Returns false on miss or when the cache is off.
  bool TryServeFromCache(AsyncQueryState& q);

  /// Inserts q's answer into the cache when it is cacheable: a complete,
  /// successful evaluation that actually ran here (replayed responses are
  /// the cache's own output, never re-inserted). Support set = the
  /// transitive base predicates of the queried predicate, pinned from the
  /// batch's epoch.
  void MaybeCacheInsert(AsyncQueryState& q);

  /// Post-evaluation fan-out seam, run on the worker right after RunOne
  /// (before CompleteQuery): cache insert, then replay the answer to this
  /// query's in-batch dedup followers and single-flight waiters. Each
  /// recipient's own token is honored (cancelled/expired recipients get
  /// their own failure), and if the leader itself failed the recipients
  /// are evaluated for real, inline on this worker.
  void FinishEval(size_t worker_id, AsyncQueryState& q);

  /// One fan-out recipient: replay `leader`'s answer into `w`
  /// (trace.collapsed), or evaluate `w` inline when its token tripped is
  /// moot — token failures answer without work, leader failures evaluate.
  void FanOutOne(size_t worker_id, const AsyncQueryState& leader,
                 AsyncQueryState& w);

  /// Async dispatch tail shared by SubmitShared and the flight-dissolve
  /// path: enqueues the evaluate/fan-out/complete task, or sheds with
  /// kOverloaded past the high-water mark — draining the query's dedup
  /// followers and re-dispatching its flight waiters so nobody waits on a
  /// leader that never ran.
  void DispatchOrShed(std::shared_ptr<AsyncQueryState> state);

  /// Admission gate shared by every submission path: init_status_ when
  /// construction failed, kUnavailable while the recovery gate is closed,
  /// OK otherwise.
  Status AdmissionStatus() const;

  Database* db_;
  SnapshotManager* live_ = nullptr;
  durability::RecoveryManager* recovery_ = nullptr;  // until FinishRecovery
  std::unique_ptr<durability::Wal> wal_;  // owned sink in durable live mode
  /// False between the recovery constructor and a successful
  /// FinishRecovery(): submissions are answered kUnavailable, because the
  /// tip has not caught up to the pre-crash state yet.
  std::atomic<bool> serving_{true};
  Status init_status_ = Status::Ok();
  SymbolId var_x_ = 0, var_y_ = 0;  // free-variable symbols, interned early
  bool has_free_vars_ = false;
  std::shared_ptr<const PreparedProgram> plan_;  // shared by all workers
  std::vector<std::unique_ptr<Worker>> workers_;
  size_t queue_depth_ = 1024;  // submission-queue high-water mark
  /// Cached pointers into obs::Registry::Global() plus the per-service
  /// flight recorder; batches carry a raw pointer to this. Declared before
  /// pool_ so destruction joins the workers (who record spans in
  /// CompleteQuery) before the instruments die.
  std::unique_ptr<ServiceObs> obs_;
  /// Exact-match answer cache (nullptr when disabled). shared_ptr because
  /// the snapshot manager's publish listener captures it — a publish
  /// racing service teardown sweeps a still-alive cache. Declared before
  /// pool_ so workers (who insert and fan out) join first.
  std::shared_ptr<cache::AnswerCache> answer_cache_;
  /// RequestKey prefix: the plan fingerprint as 16 hex chars + separator,
  /// precomputed once in Init.
  std::string cache_key_prefix_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace binchain

#endif  // BINCHAIN_SERVICE_QUERY_SERVICE_H_
