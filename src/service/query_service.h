// Concurrent query service: batch evaluation over a frozen database
// snapshot. The paper's engine answers one p(a, Y) query at a time; this
// layer turns it into a reusable service in the sense of the QSQ-style
// evaluator frameworks — it owns a fixed thread pool, one evaluation
// context per worker (QueryEngine with its own term pool, view registry and
// reset-and-reuse scratch), and the freeze step that makes the shared
// storage safe to read concurrently. The program-derived artifacts — the
// Lemma 1 equation system, the inverted system, and every compiled machine
// M(e_p) — are built once and shared read-only by all workers, so startup
// cost no longer scales with the thread count.
//
// Construction performs every mutating step up front, on the calling
// thread: program facts are loaded, the shared plan transforms the program
// and compiles all machines (interning whatever symbols that needs), the
// database is frozen, and the epoch's EvalArtifacts set — snapshot-owned
// adjacency memos, closure and candidate-source caches — is built and
// attached to it. From then on workers only read shared state (plan +
// artifacts); everything they write — term pools, engine scratch, the
// thread-local counters — is worker-private or fill-once-with-publication,
// so batches scale with cores and results are byte-identical to sequential
// evaluation.
//
// Live mode: constructed over a SnapshotManager instead of a bare
// database, the service serves a *sequence* of epochs. Every batch
// acquires the current epoch handle once, so all its queries see one
// consistent snapshot even while Publish() swaps the tip mid-batch;
// workers re-point their views at the new epoch on first use after an
// epoch bump (cheap — nothing program-derived is rebuilt).
#ifndef BINCHAIN_SERVICE_QUERY_SERVICE_H_
#define BINCHAIN_SERVICE_QUERY_SERVICE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "eval/engine.h"
#include "eval/query.h"
#include "service/thread_pool.h"
#include "storage/database.h"
#include "util/status.h"

namespace binchain {

class SnapshotManager;

/// One query, by name: `pred(source, target)` with an empty string standing
/// for a free variable. All binding patterns of Section 3 are reachable:
/// {pred, "a", ""} is p(a, Y); {pred, "", "b"} is p(X, b) (inverted
/// system); {pred, "a", "b"} is the membership test; {pred, "", ""} is the
/// all-pairs query, or the diagonal p(X, X) when `diagonal` is set.
struct QueryRequest {
  std::string pred;
  std::string source;  // empty => first argument free
  std::string target;  // empty => second argument free
  /// Both arguments are the same free variable (p(X, X)). Requires empty
  /// source and target.
  bool diagonal = false;
  /// Evaluation budget in milliseconds, measured from batch dispatch
  /// (admission control, first slice): a request whose deadline has already
  /// passed when a worker picks it up returns a timed-out response instead
  /// of evaluating. <= 0 disables the deadline. Requests admitted before
  /// the deadline run to completion — the engine is not interrupted
  /// mid-traversal.
  double deadline_ms = 0;
  EvalOptions options;
};

struct QueryResponse {
  Status status = Status::Ok();
  std::vector<Tuple> tuples;  // sorted, deduplicated SymbolId pairs
  EvalStats stats;
  uint64_t fetches = 0;  // EDB retrievals, counted on the worker thread
  /// Epoch id of the snapshot this query evaluated against (0 unless the
  /// service runs in live mode and epochs have advanced).
  uint64_t epoch = 0;
  /// The request's deadline expired before evaluation started; status
  /// carries kDeadlineExceeded and no evaluation work was done.
  bool timed_out = false;
};

/// Order-independent aggregates over one batch: every field is a sum (or
/// OR) of per-query values, so the totals are identical for any thread
/// count and any scheduling. Result sets are always schedule-independent.
/// Fetch counts are too, now for a stronger reason: probes over the
/// epoch-shared artifacts (adjacency memos, closure caches) cost zero
/// fetches for *every* worker — the artifact builds themselves are
/// accounted at the artifact layer, never against whichever query happened
/// to trigger them. The exception remains demand-join views, whose body
/// enumerations do fetch: the worker that fills a shared demand entry pays
/// its fetches, later probes are free, so per-query fetch counts for
/// non-chain programs depend on scheduling (totals still converge).
/// EvalStats::memo_hits totals are deterministic up to the handful of
/// fill-once cells (closure / source caches): the filling query reports
/// one fewer hit than a replaying one.
struct BatchStats {
  uint64_t queries = 0;
  uint64_t failed = 0;   // responses with !status.ok(), timeouts included
  uint64_t timed_out = 0;  // of failed: requests expired before evaluating
  uint64_t tuples = 0;   // answers over all successful queries
  uint64_t fetches = 0;
  uint64_t epoch = 0;    // snapshot the whole batch evaluated against
  EvalStats total;       // scalar fields summed; answers_per_iteration unused
  double wall_ms = 0;    // batch wall time (dispatch to last completion)
};

/// Service configuration (namespace-scope so it can appear in default
/// arguments of QueryService members).
struct QueryServiceOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  size_t num_threads = 0;
};

class QueryService {
 public:
  using Options = QueryServiceOptions;

  /// Loads `program` (rules and facts) against `db`, builds the shared
  /// plan plus one evaluation context per worker, then freezes the
  /// database. Check status() before issuing queries. If `db` is already
  /// frozen, the program must carry no facts and must intern no new
  /// symbols (i.e. an identical program was prepared against the database
  /// before it froze).
  QueryService(Database* db, const Program& program, Options options = {});

  /// Live mode: same preparation against `live`'s genesis database, then
  /// seals the manager (the genesis becomes the first served epoch).
  /// Queries always evaluate against the manager's current tip; publishes
  /// may run concurrently with batches. `live` must outlive the service
  /// and must not be sealed yet.
  QueryService(SnapshotManager* live, const Program& program,
               Options options = {});

  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Construction outcome; queries on a failed service return this status.
  const Status& status() const { return init_status_; }

  size_t num_threads() const;
  /// The database the service was prepared against (the genesis epoch in
  /// live mode — later epochs are reached through the manager).
  const Database& database() const { return *db_; }

  /// Evaluates one query on the pool (blocking).
  QueryResponse Eval(const QueryRequest& request);

  /// Evaluates a batch across the pool; the response vector is indexed like
  /// `batch`. Blocking; safe to call from multiple client threads (batches
  /// are serialized onto the one pool).
  std::vector<QueryResponse> EvalBatch(const std::vector<QueryRequest>& batch,
                                       BatchStats* stats = nullptr);

 private:
  struct Worker;

  /// Shared construction tail: plan + workers. Returns false on failure
  /// (init_status_ is set).
  bool Init(const Program& program, const Options& options);

  /// Post-freeze tail: ensures the (frozen) snapshot carries an
  /// EvalArtifacts set — adopting one already attached (a second service
  /// over the same frozen database and, per the constructor contract, the
  /// same program), building and attaching otherwise — then rebinds every
  /// worker to it.
  void AdoptSnapshot(Database* db);

  /// Resolves a request to a query literal without interning: unknown
  /// predicates fail, unknown constants report "no answers" through
  /// `empty_ok`. Read-only, callable from workers; resolves against the
  /// epoch the batch acquired.
  Status BuildLiteral(const Database& db, const QueryRequest& request,
                      Literal* out, bool* empty_ok) const;

  Database* db_;
  SnapshotManager* live_ = nullptr;
  Status init_status_ = Status::Ok();
  SymbolId var_x_ = 0, var_y_ = 0;  // free-variable symbols, interned early
  bool has_free_vars_ = false;
  std::shared_ptr<const PreparedProgram> plan_;  // shared by all workers
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<ThreadPool> pool_;
  std::mutex batch_mu_;  // one batch on the pool at a time
};

}  // namespace binchain

#endif  // BINCHAIN_SERVICE_QUERY_SERVICE_H_
