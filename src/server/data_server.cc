#include "server/data_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "eval/answer_sink.h"
#include "obs/metrics.h"
#include "service/query_service.h"
#include "storage/symbol_table.h"
#include "storage/tuple.h"

namespace binchain {
namespace server {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Wire name of a terminal status, used in the trailer and error bodies.
const char* StatusWireName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kUnsupported: return "unsupported";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kOverloaded: return "overloaded";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ------------------------------------------------------------ JSON input
//
// A deliberately small recursive-descent parser for the request body —
// objects, strings (with the escapes EscapeJson emits), numbers, bools,
// null, and arrays (parsed, but no request field wants one). Depth is
// bounded; anything malformed fails the whole parse and the request is
// answered 400. Not a general JSON library and not trying to be one: the
// body grammar is fixed by docs/wire_protocol.md.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue* Get(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, /*depth=*/0)) return false;
    SkipWs();
    return p_ == end_;  // trailing garbage is an error
  }

 private:
  static constexpr int kMaxDepth = 16;

  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r')) {
      ++p_;
    }
  }

  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - p_) < n || std::strncmp(p_, lit, n) != 0) {
      return false;
    }
    p_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth || p_ == end_) return false;
    switch (*p_) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->b = true;
        return Literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->b = false;
        return Literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return Literal("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++p_;  // '{'
    SkipWs();
    if (p_ < end_ && *p_ == '}') {
      ++p_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (p_ == end_ || *p_ != '"' || !ParseString(&key)) return false;
      SkipWs();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      SkipWs();
      if (!ParseValue(&out->obj[key], depth + 1)) return false;
      SkipWs();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++p_;  // '['
    SkipWs();
    if (p_ < end_ && *p_ == ']') {
      ++p_;
      return true;
    }
    for (;;) {
      SkipWs();
      out->arr.emplace_back();
      if (!ParseValue(&out->arr.back(), depth + 1)) return false;
      SkipWs();
      if (p_ == end_) return false;
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return false;
    }
  }

  /// Consumes exactly four hex digits (the XXXX of a \uXXXX escape).
  bool ParseHex4(unsigned* out) {
    if (end_ - p_ < 4) return false;
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char h = *p_++;
      v <<= 4;
      if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
      else return false;
    }
    *out = v;
    return true;
  }

  bool ParseString(std::string* out) {
    ++p_;  // opening quote
    while (p_ < end_) {
      char c = *p_++;
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) return false;
      char esc = *p_++;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          unsigned cp;
          if (!ParseHex4(&cp)) return false;
          // UTF-16 escapes: a high surrogate must be immediately followed
          // by a \uDC00-\uDFFF low surrogate, and the pair combines into
          // one supplementary code point. Encoding the halves separately
          // would produce CESU-8 (invalid UTF-8) that flows into symbol
          // lookups and response echoes, so unpaired halves are rejected
          // and the request answered 400.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (end_ - p_ < 2 || p_[0] != '\\' || p_[1] != 'u') return false;
            p_ += 2;
            unsigned lo;
            if (!ParseHex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // low surrogate with no preceding high half
          }
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else if (cp < 0x10000) {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ < end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                         *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                         *p_ == '+')) {
      if (*p_ >= '0' && *p_ <= '9') digits = true;
      ++p_;
    }
    if (!digits) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->num = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }

  const char* p_;
  const char* end_;
};

/// Decodes the wire body into the canonical QueryRequest (sink left
/// unset). Returns a non-OK status with a client-facing message on any
/// shape violation; unknown top-level keys are rejected so typos fail
/// loudly instead of silently evaluating something else.
Status DecodeQueryBody(const std::string& body, QueryRequest* out,
                       bool* stream, std::string* client_id) {
  JsonValue root;
  if (!JsonParser(body).Parse(&root) ||
      root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("body is not a JSON object");
  }
  auto want_string = [](const JsonValue* v) {
    return v != nullptr && v->kind == JsonValue::Kind::kString;
  };
  auto want_bool = [](const JsonValue* v) {
    return v != nullptr && v->kind == JsonValue::Kind::kBool;
  };
  auto want_number = [](const JsonValue* v) {
    return v != nullptr && v->kind == JsonValue::Kind::kNumber;
  };

  for (const auto& [key, value] : root.obj) {
    if (key == "pred" || key == "source" || key == "target" ||
        key == "client_id") {
      if (value.kind != JsonValue::Kind::kString) {
        return Status::InvalidArgument("\"" + key + "\" must be a string");
      }
    } else if (key == "diagonal" || key == "stream") {
      if (value.kind != JsonValue::Kind::kBool) {
        return Status::InvalidArgument("\"" + key + "\" must be a boolean");
      }
    } else if (key == "options") {
      if (value.kind != JsonValue::Kind::kObject) {
        return Status::InvalidArgument("\"options\" must be an object");
      }
    } else {
      return Status::InvalidArgument("unknown field \"" + key + "\"");
    }
  }

  const JsonValue* pred = root.Get("pred");
  if (!want_string(pred) || pred->str.empty()) {
    return Status::InvalidArgument("\"pred\" (non-empty string) is required");
  }
  out->pred = pred->str;
  if (const JsonValue* v = root.Get("source"); want_string(v)) {
    out->source = v->str;
  }
  if (const JsonValue* v = root.Get("target"); want_string(v)) {
    out->target = v->str;
  }
  if (const JsonValue* v = root.Get("diagonal"); want_bool(v)) {
    out->diagonal = v->b;
  }
  if (out->diagonal && (!out->source.empty() || !out->target.empty())) {
    return Status::InvalidArgument(
        "\"diagonal\" requires free source and target");
  }
  if (const JsonValue* v = root.Get("stream"); want_bool(v)) *stream = v->b;
  if (const JsonValue* v = root.Get("client_id"); want_string(v)) {
    *client_id = v->str;
  }

  if (const JsonValue* opts = root.Get("options")) {
    for (const auto& [key, value] : opts->obj) {
      if (key == "deadline_ms") {
        if (!want_number(&value) || value.num < 0) {
          return Status::InvalidArgument(
              "\"options.deadline_ms\" must be a non-negative number");
        }
        out->options.deadline_ms = value.num;
      } else if (key == "max_iterations") {
        if (!want_number(&value) || value.num < 0) {
          return Status::InvalidArgument(
              "\"options.max_iterations\" must be a non-negative number");
        }
        // The parser accepts any non-negative double (1e300, say), and
        // casting a value past the size_t range is UB — clamp at the
        // type's ceiling first; either way the budget is effectively
        // unbounded.
        constexpr double kSizeCeiling =
            static_cast<double>(std::numeric_limits<size_t>::max());
        out->options.max_iterations =
            value.num >= kSizeCeiling ? std::numeric_limits<size_t>::max()
                                      : static_cast<size_t>(value.num);
      } else if (key == "use_cyclic_bound") {
        if (!want_bool(&value)) {
          return Status::InvalidArgument(
              "\"options.use_cyclic_bound\" must be a boolean");
        }
        out->options.use_cyclic_bound = value.b;
      } else if (key == "disable_closure_sharing") {
        if (!want_bool(&value)) {
          return Status::InvalidArgument(
              "\"options.disable_closure_sharing\" must be a boolean");
        }
        out->options.disable_closure_sharing = value.b;
      } else {
        return Status::InvalidArgument("unknown field \"options." + key +
                                       "\"");
      }
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------- answer stream

/// Hand-off buffer between the evaluating worker (the sink's producer
/// side) and the HTTP handler draining lines to the socket. `done` is set
/// by the batch completion callback — strictly after the last sink call,
/// so `done && lines.empty()` means the stream is complete.
///
/// Lifetime: always heap-owned through a shared_ptr held by the handler,
/// the sink, AND the completion callback, and every producer-side notify
/// happens with `mu` held. Both halves close the same race: the handler
/// can wake (spuriously, or off an earlier notify), see `done`, and
/// return — if the callback notified after unlocking a stack-owned
/// state, it would then touch a destroyed mu/cv. Shared ownership keeps
/// the state alive past the handler's return; notifying under the lock
/// means the predicate cannot become observable before the notify has
/// finished.
struct StreamState {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> lines;
  bool done = false;
};

/// Renders each answer chunk as one NDJSON line. Runs on the evaluating
/// worker thread; shares ownership of the stream state (see above).
class NdjsonSink : public AnswerSink {
 public:
  explicit NdjsonSink(std::shared_ptr<StreamState> state)
      : state_(std::move(state)) {}

  void OnAnswers(const Tuple* tuples, size_t count,
                 const SymbolTable& symbols) override {
    std::string line = "{\"tuples\": [";
    for (size_t i = 0; i < count; ++i) {
      if (i > 0) line += ", ";
      line += "[\"";
      line += EscapeJson(symbols.Name(tuples[i][0]));
      line += "\", \"";
      line += EscapeJson(symbols.Name(tuples[i][1]));
      line += "\"]";
    }
    line += "]}\n";
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->lines.push_back(std::move(line));
    state_->cv.notify_one();
  }

 private:
  std::shared_ptr<StreamState> state_;
};

/// The stream's final NDJSON line: terminal status, epoch, and the
/// evaluation's effort counters. `chunks` counts the answer lines (the
/// trailer itself excluded), matching QueryTrace::chunks.
std::string RenderTrailer(const QueryResponse& resp) {
  char ms[64];
  std::string out = "{\"trailer\": {\"status\": \"";
  out += StatusWireName(resp.status.code());
  out += "\"";
  if (!resp.status.ok()) {
    out += ", \"message\": \"" + EscapeJson(resp.status.message()) + "\"";
  }
  out += ", \"epoch\": " + std::to_string(resp.epoch);
  out += ", \"answers\": " + std::to_string(resp.tuples.size());
  out += ", \"chunks\": " + std::to_string(resp.trace.chunks);
  out += resp.timed_out ? ", \"timed_out\": true" : ", \"timed_out\": false";
  out += resp.cancelled ? ", \"cancelled\": true" : ", \"cancelled\": false";
  out += resp.partial ? ", \"partial\": true" : ", \"partial\": false";
  out += ", \"stats\": {\"nodes\": " + std::to_string(resp.stats.nodes);
  out += ", \"iterations\": " + std::to_string(resp.stats.iterations);
  out += ", \"fetches\": " + std::to_string(resp.fetches) + "}";
  std::snprintf(ms, sizeof(ms), "%.3f", resp.trace.eval_ms);
  out += std::string(", \"eval_ms\": ") + ms;
  std::snprintf(ms, sizeof(ms), "%.3f", resp.trace.total_ms);
  out += std::string(", \"total_ms\": ") + ms;
  out += "}}\n";
  return out;
}

// ------------------------------------------------------- response framing

bool SendResponseHead(int fd, int status, bool keep_alive, bool chunked,
                      size_t content_length, int retry_after_s) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     ReasonPhrase(status) +
                     "\r\nContent-Type: application/x-ndjson\r\n";
  if (chunked) {
    head += "Transfer-Encoding: chunked\r\n";
  } else {
    head += "Content-Length: " + std::to_string(content_length) + "\r\n";
  }
  if (retry_after_s > 0) {
    head += "Retry-After: " + std::to_string(retry_after_s) + "\r\n";
  }
  head += keep_alive ? "Connection: keep-alive\r\n\r\n"
                     : "Connection: close\r\n\r\n";
  return SendAll(fd, head.data(), head.size());
}

/// One HTTP chunk: hex size line, payload, CRLF.
bool SendChunk(int fd, const std::string& payload) {
  char size_line[32];
  int n = std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                        payload.size());
  std::string frame;
  frame.reserve(payload.size() + n + 2);
  frame.append(size_line, static_cast<size_t>(n));
  frame.append(payload);
  frame.append("\r\n");
  return SendAll(fd, frame.data(), frame.size());
}

bool SendLastChunk(int fd) { return SendAll(fd, "0\r\n\r\n", 5); }

// ---------------------------------------------------------------- admission

/// The peer-aggregate layer's budget: the per-identity limits scaled by
/// `multiplier` (burst resolved the way RateLimiter itself resolves it).
/// A non-positive multiplier disables the layer — qps 0 admits everything.
RateLimiterOptions PeerLayerLimits(const RateLimiterOptions& base,
                                   double multiplier) {
  RateLimiterOptions peer = base;
  if (base.qps <= 0 || multiplier <= 0) {
    peer.qps = 0;
    return peer;
  }
  peer.qps = base.qps * multiplier;
  peer.burst =
      (base.burst > 0 ? base.burst : std::max(base.qps, 1.0)) * multiplier;
  return peer;
}

}  // namespace

DataServer::DataServer(QueryService* service, DataServerOptions options)
    : options_(std::move(options)),
      service_(service),
      limiter_(options_.rate_limit),
      peer_limiter_(PeerLayerLimits(options_.rate_limit,
                                    options_.peer_qps_multiplier)) {
  obs::Registry& reg = obs::Registry::Global();
  m_requests_ = reg.GetCounter("binchain_dataplane_requests_total",
                               "Data-plane HTTP requests decoded and routed");
  m_streamed_ = reg.GetCounter(
      "binchain_dataplane_streamed_total",
      "Data-plane queries answered with chunked streaming responses");
  m_chunks_ = reg.GetCounter(
      "binchain_dataplane_chunks_total",
      "Answer chunks written to data-plane sockets (trailers excluded)");
  m_rate_limited_ = reg.GetCounter(
      "binchain_dataplane_rate_limited_total",
      "Data-plane requests answered 429 by the per-client token bucket");
  m_overloaded_ = reg.GetCounter(
      "binchain_dataplane_overloaded_total",
      "Data-plane requests answered 503 (service shed or not serving)");
  m_errors_ = reg.GetCounter(
      "binchain_dataplane_errors_total",
      "Data-plane requests answered with a non-2xx status or dropped");
  m_active_connections_ =
      reg.GetGauge("binchain_dataplane_active_connections",
                   "Data-plane connections currently held by a handler");
  m_request_ms_ = reg.GetHistogram(
      "binchain_dataplane_request_ms",
      "Data-plane request wall time, decode to last byte written");
  m_first_chunk_ms_ = reg.GetHistogram(
      "binchain_dataplane_first_chunk_ms",
      "Decode-to-first-answer-chunk latency of streamed data-plane queries");
}

DataServer::~DataServer() { Stop(); }

Status DataServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("data server already running");
  }
  Result<int> opened = OpenListenSocket(options_.bind_address, options_.port,
                                        options_.accept_backlog, &port_);
  if (!opened.ok()) return opened.status();
  listen_fd_.store(opened.value(), std::memory_order_release);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  size_t n = options_.handler_threads == 0 ? 1 : options_.handler_threads;
  handler_threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  return Status::Ok();
}

void DataServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (int queued : conn_queue_) close(queued);
  conn_queue_.clear();
  port_ = 0;
}

void DataServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    timeval tv{};
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (conn_queue_.size() < options_.queue_capacity) {
        conn_queue_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      errors_.fetch_add(1, std::memory_order_relaxed);
      m_errors_->Inc();
      SendBareStatus(fd, 503, /*retry_after_s=*/1);
      close(fd);
    }
  }
}

void DataServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !conn_queue_.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (conn_queue_.empty()) return;
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    m_active_connections_->Add(1);
    ServeConnection(fd);
    close(fd);
    m_active_connections_->Add(-1);
  }
}

void DataServer::ServeConnection(int fd) {
  // Peer identity once per connection: the key of the peer-aggregate
  // admission bucket and the trust scope for any claimed client id.
  std::string peer = "unknown";
  sockaddr_in sa{};
  socklen_t sa_len = sizeof(sa);
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&sa), &sa_len) == 0 &&
      sa.sin_family == AF_INET) {
    char buf[INET_ADDRSTRLEN] = {0};
    if (inet_ntop(AF_INET, &sa.sin_addr, buf, sizeof(buf)) != nullptr) {
      peer = buf;
    }
  }

  std::string carry;  // bytes read past the previous request's end
  for (size_t served = 0; served < options_.max_requests_per_connection;
       ++served) {
    if (!running_.load(std::memory_order_acquire)) return;
    if (!ServeOne(fd, peer, &carry)) return;
  }
}

bool DataServer::ServeOne(int fd, const std::string& peer,
                          std::string* carry) {
  // Read the request head (tolerating bytes of it already in *carry from
  // the previous read).
  size_t head_end;
  size_t sep_len = 4;
  char buf[4096];
  for (;;) {
    sep_len = 4;
    head_end = carry->find("\r\n\r\n");
    if (head_end == std::string::npos) {
      head_end = carry->find("\n\n");
      sep_len = 2;
    }
    if (head_end != std::string::npos) break;
    if (carry->size() > options_.max_request_bytes) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      m_errors_->Inc();
      SendBareStatus(fd, 431);
      return false;
    }
    ssize_t r = recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      // Clean EOF between keep-alive requests is the normal way a client
      // ends the conversation — only a mid-request cut counts as an error.
      if (!carry->empty()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        m_errors_->Inc();
      }
      return false;
    }
    carry->append(buf, static_cast<size_t>(r));
  }

  HttpRequest req;
  bool parsed = ParseRequestHead(carry->substr(0, head_end), &req);
  carry->erase(0, head_end + sep_len);
  if (!parsed) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    m_errors_->Inc();
    SendBareStatus(fd, 400);
    return false;
  }

  // Keep-alive is the HTTP/1.1 default; HTTP/1.0 must opt in. The
  // connection budget caps reuse regardless.
  std::string connection;
  if (auto it = req.headers.find("connection"); it != req.headers.end()) {
    connection = it->second;
    for (char& c : connection) c = static_cast<char>(std::tolower(c));
  }
  bool keep_alive = req.version == "HTTP/1.1" ? connection != "close"
                                              : connection == "keep-alive";

  if (req.path != "/v1/query") {
    errors_.fetch_add(1, std::memory_order_relaxed);
    m_errors_->Inc();
    std::string body = "{\"error\": \"no handler for " +
                       EscapeJson(req.path) + "\"}\n";
    if (!SendResponseHead(fd, 404, keep_alive, /*chunked=*/false, body.size(),
                          0) ||
        !SendAll(fd, body.data(), body.size())) {
      return false;
    }
    return keep_alive;
  }
  if (req.method != "POST") {
    errors_.fetch_add(1, std::memory_order_relaxed);
    m_errors_->Inc();
    SendBareStatus(fd, 405);
    return false;
  }

  // The body needs a declared length: this server does not decode chunked
  // request bodies, and reading to EOF would break keep-alive.
  auto cl = req.headers.find("content-length");
  if (cl == req.headers.end()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    m_errors_->Inc();
    SendBareStatus(fd, 411);
    return false;
  }
  char* cl_end = nullptr;
  unsigned long long body_len = std::strtoull(cl->second.c_str(), &cl_end, 10);
  if (cl_end == cl->second.c_str() || (cl_end != nullptr && *cl_end != '\0')) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    m_errors_->Inc();
    SendBareStatus(fd, 400);
    return false;
  }
  if (body_len > options_.max_body_bytes) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    m_errors_->Inc();
    // The body is never read, so the connection cannot be reused.
    SendBareStatus(fd, 413);
    return false;
  }

  // A client waiting on 100-continue before sending the body would
  // otherwise deadlock against our body read.
  if (auto it = req.headers.find("expect");
      it != req.headers.end() &&
      it->second.find("100-continue") != std::string::npos) {
    const char kContinue[] = "HTTP/1.1 100 Continue\r\n\r\n";
    if (!SendAll(fd, kContinue, sizeof(kContinue) - 1)) return false;
  }

  while (carry->size() < body_len) {
    ssize_t r = recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      errors_.fetch_add(1, std::memory_order_relaxed);
      m_errors_->Inc();
      return false;
    }
    carry->append(buf, static_cast<size_t>(r));
  }
  req.body = carry->substr(0, body_len);
  carry->erase(0, body_len);

  return HandleQuery(fd, req, peer, keep_alive) && keep_alive;
}

bool DataServer::HandleQuery(int fd, const HttpRequest& req,
                             const std::string& peer, bool keep_alive) {
  auto t0 = std::chrono::steady_clock::now();
  m_requests_->Inc();
  requests_.fetch_add(1, std::memory_order_relaxed);

  auto send_error = [&](int status, const Status& why,
                        int retry_after_s) -> bool {
    errors_.fetch_add(1, std::memory_order_relaxed);
    m_errors_->Inc();
    std::string body = "{\"error\": \"" + EscapeJson(why.message()) +
                       "\", \"status\": \"" + StatusWireName(why.code()) +
                       "\"}\n";
    if (!SendResponseHead(fd, status, keep_alive, /*chunked=*/false,
                          body.size(), retry_after_s) ||
        !SendAll(fd, body.data(), body.size())) {
      return false;
    }
    m_request_ms_->Observe(MsSince(t0));
    return true;
  };

  QueryRequest query;
  bool stream = true;
  std::string client_id;
  if (Status st = DecodeQueryBody(req.body, &query, &stream, &client_id);
      !st.ok()) {
    return send_error(400, st, 0);
  }

  // Identity precedence: explicit body field, then header, then peer
  // address — so proxied clients can be told apart when they cooperate,
  // and are lumped per proxy when they do not.
  if (client_id.empty()) {
    if (auto it = req.headers.find("x-client-id"); it != req.headers.end()) {
      client_id = it->second;
    }
  }
  if (client_id.empty()) client_id = peer;

  // Two bucket layers, peer first. The claimed identity is an
  // unauthenticated string, so it only ever *refines* the peer's budget:
  // identity buckets are keyed (peer, client_id) — one peer cannot spend
  // another's tokens by borrowing its id — and the peer-aggregate bucket
  // is charged for every request regardless of the id presented, so
  // rotating a fresh client_id per request cannot mint unlimited full
  // buckets (each mint costs a peer token) or evict honest clients'
  // buckets faster than the peer budget allows.
  RateLimiter::Decision admit = peer_limiter_.TryAcquire(peer);
  if (admit.allowed) admit = limiter_.TryAcquire(peer + "|" + client_id);
  if (!admit.allowed) {
    m_rate_limited_->Inc();
    int retry_s = static_cast<int>(std::ceil(admit.retry_after_s));
    if (retry_s < 1) retry_s = 1;
    return send_error(
        429, Status::Overloaded("client \"" + client_id + "\" rate-limited"),
        retry_s);
  }

  auto state = std::make_shared<StreamState>();
  NdjsonSink sink(state);
  query.sink = &sink;

  std::vector<QueryRequest> batch;
  batch.push_back(std::move(query));
  BatchHandle handle =
      service_->SubmitBatch(std::move(batch), [state](const BatchStats&) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->done = true;
        state->cv.notify_all();
      });
  QueryFuture& future = handle.future(0);

  // Wait for the first event: an answer chunk (the stream is live — commit
  // to 200) or completion with nothing emitted (failures and empty answer
  // sets — the terminal status can still pick the HTTP status line).
  bool done_first = false;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock,
                   [&state] { return !state->lines.empty() || state->done; });
    done_first = state->done && state->lines.empty();
  }

  if (done_first) {
    QueryResponse resp = future.Take();
    StatusCode code = resp.status.code();
    if (code == StatusCode::kOverloaded || code == StatusCode::kUnavailable) {
      m_overloaded_->Inc();
      return send_error(503, resp.status, /*retry_after_s=*/1);
    }
    if (code == StatusCode::kNotFound) return send_error(404, resp.status, 0);
    if (code == StatusCode::kInvalidArgument ||
        code == StatusCode::kUnsupported) {
      return send_error(400, resp.status, 0);
    }
    // Admitted and evaluated (ok, or expired/cancelled before any flush):
    // 200, with the whole story in the trailer.
    std::string body = RenderTrailer(resp);
    if (stream) {
      if (!SendResponseHead(fd, 200, keep_alive, /*chunked=*/true, 0, 0) ||
          !SendChunk(fd, body) || !SendLastChunk(fd)) {
        return false;
      }
      m_streamed_->Inc();
    } else {
      if (!SendResponseHead(fd, 200, keep_alive, /*chunked=*/false,
                            body.size(), 0) ||
          !SendAll(fd, body.data(), body.size())) {
        return false;
      }
    }
    m_request_ms_->Observe(MsSince(t0));
    return true;
  }

  if (!stream) {
    // Buffered mode: let the evaluation finish, then frame the exact same
    // NDJSON lines as one Content-Length body. Byte-identical to the
    // streamed payload by construction — same sink, same renderer.
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait(lock, [&state] { return state->done; });
    }
    QueryResponse resp = future.Take();
    std::string body;
    for (const std::string& line : state->lines) body += line;
    m_chunks_->Inc(state->lines.size());
    body += RenderTrailer(resp);
    if (!SendResponseHead(fd, 200, keep_alive, /*chunked=*/false, body.size(),
                          0) ||
        !SendAll(fd, body.data(), body.size())) {
      return false;
    }
    m_request_ms_->Observe(MsSince(t0));
    return true;
  }

  // Streaming: commit to 200 + chunked and relay lines as they land. On
  // any write failure the client is gone — cancel the query, then drain
  // to completion so the sink is provably idle before it leaves scope.
  bool write_ok = SendResponseHead(fd, 200, keep_alive, /*chunked=*/true, 0, 0);
  bool first_chunk = true;
  std::deque<std::string> ready;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->cv.wait(lock,
                     [&state] { return !state->lines.empty() || state->done; });
      ready.swap(state->lines);
      if (ready.empty() && state->done) break;
    }
    for (const std::string& line : ready) {
      if (!write_ok) break;
      write_ok = SendChunk(fd, line);
      if (write_ok && first_chunk) {
        first_chunk = false;
        m_first_chunk_ms_->Observe(MsSince(t0));
      }
      if (write_ok) m_chunks_->Inc();
    }
    ready.clear();
    if (!write_ok) {
      future.Cancel();
      {
        std::unique_lock<std::mutex> lock(state->mu);
        state->cv.wait(lock, [&state] { return state->done; });
      }
      break;
    }
  }
  QueryResponse resp = future.Take();
  if (!write_ok) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    m_errors_->Inc();
    return false;
  }
  if (!SendChunk(fd, RenderTrailer(resp)) || !SendLastChunk(fd)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    m_errors_->Inc();
    return false;
  }
  m_streamed_->Inc();
  m_request_ms_->Observe(MsSince(t0));
  return true;
}

}  // namespace server
}  // namespace binchain
