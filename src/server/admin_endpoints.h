// The binchain admin-plane route table: binds the observability payloads
// the process already renders (Prometheus exposition, flight-recorder
// JSON, Chrome traces, epoch/WAL state) to paths on an AdminServer.
//
// Endpoints:
//   /metrics        Prometheus 0.0.4 text exposition (the scrape target)
//   /metrics.json   the same registry as machine-readable JSON
//   /healthz        liveness: 200 whenever the process answers at all
//   /readyz         readiness: 200 once QueryService::serving(), 503
//                   before (recovery gate closed, or failed construction)
//   /debug/queries  flight-recorder spans, newest-capacity window, JSON
//   /debug/epochs   serving epoch, pending delta, WAL state, recent
//                   publish-pipeline spans
//   /debug/cache    answer-cache statistics (hit rate, residency,
//                   invalidations); {"enabled": false} when the service
//                   runs without a cache
//   /debug/trace    Chrome trace-event JSON over query + publish spans
//                   (?last=N limits each ring to its N most recent)
#ifndef BINCHAIN_SERVER_ADMIN_ENDPOINTS_H_
#define BINCHAIN_SERVER_ADMIN_ENDPOINTS_H_

#include "server/admin_server.h"

namespace binchain {

class QueryService;
class SnapshotManager;

namespace server {

/// Registers every admin route on `srv`. `service` must outlive the
/// server; `live` may be nullptr (frozen-database services: /debug/epochs
/// then reports the prepared snapshot only and /debug/trace carries query
/// spans alone). Call before Start().
void RegisterAdminEndpoints(AdminServer* srv, const QueryService* service,
                            const SnapshotManager* live);

}  // namespace server
}  // namespace binchain

#endif  // BINCHAIN_SERVER_ADMIN_ENDPOINTS_H_
