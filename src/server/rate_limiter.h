// Per-client token-bucket rate limiting for the data plane.
//
// The data plane serves queries, and queries are expensive in a way the
// admin plane's string renders are not: one hot client replaying a
// fixpoint-heavy request in a loop can starve every other caller's
// worker time. RateLimiter is the admission valve in front of the query
// service: each key gets an independent token bucket refilled at `qps`
// tokens per second up to `burst`. The limiter is key-agnostic; the
// data plane runs two instances — a peer-aggregate layer keyed by the
// socket's peer address, charged first, and an identity layer keyed
// (peer, client_id), so a client-chosen id refines the peer's budget
// but can never escape it or evict other peers' buckets at will. A
// request that finds a bucket empty is answered 429 with a Retry-After
// computed from the actual deficit — the earliest instant a retry can
// succeed — so well-behaved clients back off exactly as long as needed
// and no longer.
//
// Thread-safe: TryAcquire takes one mutex. The data plane calls it once
// per request on handler threads, far from any evaluation hot path.
#ifndef BINCHAIN_SERVER_RATE_LIMITER_H_
#define BINCHAIN_SERVER_RATE_LIMITER_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

namespace binchain {
namespace server {

struct RateLimiterOptions {
  /// Sustained tokens (requests) per second granted to each client
  /// identity. <= 0 disables limiting entirely: every acquire succeeds.
  double qps = 0;
  /// Bucket capacity — the burst a client can spend instantly after an
  /// idle period. <= 0 defaults to max(qps, 1), i.e. about one second of
  /// sustained rate.
  double burst = 0;
  /// Bound on tracked client identities. At the cap, admitting a new
  /// identity evicts the fullest existing bucket (the client who would
  /// miss its state the least — a full bucket reconstructs losslessly).
  size_t max_clients = 4096;
};

class RateLimiter {
 public:
  struct Decision {
    bool allowed = true;
    /// On denial: seconds until the bucket will hold a full token again.
    /// Callers round up for the integral Retry-After header.
    double retry_after_s = 0;
  };

  explicit RateLimiter(RateLimiterOptions options = {});

  /// Spends one token from `client_id`'s bucket at the current wall
  /// (steady) clock.
  Decision TryAcquire(const std::string& client_id);

  /// Clock-explicit overload for deterministic tests: `now_s` is seconds
  /// on any monotone clock (only differences matter). Callers must use a
  /// consistent clock per limiter.
  Decision TryAcquire(const std::string& client_id, double now_s);

  bool enabled() const { return options_.qps > 0; }
  size_t tracked_clients() const;

 private:
  struct Bucket {
    double tokens = 0;
    double last_refill_s = 0;
  };

  const RateLimiterOptions options_;
  const double burst_;  // resolved: options_.burst defaulted to max(qps, 1)
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace server
}  // namespace binchain

#endif  // BINCHAIN_SERVER_RATE_LIMITER_H_
