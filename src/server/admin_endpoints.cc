#include "server/admin_endpoints.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "cache/answer_cache.h"
#include "durability/wal.h"
#include "live/snapshot_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/query_service.h"

namespace binchain {
namespace server {

namespace {

/// Keeps the `n` most recent entries (the rings snapshot oldest-first).
template <typename T>
void KeepLast(std::vector<T>* v, size_t n) {
  if (v->size() > n) v->erase(v->begin(), v->end() - n);
}

size_t ParseLast(const HttpRequest& req, size_t fallback) {
  auto it = req.params.find("last");
  if (it == req.params.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  unsigned long long n = std::strtoull(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return static_cast<size_t>(n);
}

}  // namespace

void RegisterAdminEndpoints(AdminServer* srv, const QueryService* service,
                            const SnapshotManager* live) {
  srv->Handle("/metrics", [](const HttpRequest&) {
    HttpResponse resp;
    // The version parameter is part of the exposition-format contract;
    // Prometheus content-negotiates on it.
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = obs::Registry::Global().RenderPrometheus();
    return resp;
  });

  srv->Handle("/metrics.json", [](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = obs::Registry::Global().RenderJson();
    return resp;
  });

  // Liveness and readiness are distinct probes on purpose: a process
  // mid-recovery is alive (do not restart it — replay would start over)
  // but not ready (do not route queries to it).
  srv->Handle("/healthz", [](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "ok\n";
    return resp;
  });

  srv->Handle("/readyz", [service](const HttpRequest&) {
    HttpResponse resp;
    if (service->serving()) {
      resp.body = "ready\n";
    } else {
      resp.status = 503;
      resp.body = service->status().ok()
                      ? "recovery in progress\n"
                      : "service failed: " + service->status().message() + "\n";
    }
    return resp;
  });

  srv->Handle("/debug/queries", [service](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = service->flight_recorder().RenderJson();
    resp.body.push_back('\n');
    return resp;
  });

  srv->Handle("/debug/epochs", [service, live](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = "application/json";
    std::string& b = resp.body;
    b.append("{\n  \"serving\": ")
        .append(service->serving() ? "true" : "false");
    if (live != nullptr) {
      b.append(",\n  \"epoch\": ").append(std::to_string(live->epoch()));
      b.append(",\n  \"pending_facts\": ")
          .append(std::to_string(live->PendingFacts()));
    } else {
      b.append(",\n  \"epoch\": ")
          .append(std::to_string(service->database().epoch()));
    }
    if (const durability::Wal* wal = service->wal()) {
      b.append(",\n  \"wal\": {\"log_bytes\": ")
          .append(std::to_string(wal->log_bytes()))
          .append(", \"checkpoints_written\": ")
          .append(std::to_string(wal->checkpoints_written()))
          .append(", \"poisoned\": ")
          .append(wal->poisoned().ok() ? "false" : "true")
          .append("}");
    }
    if (live != nullptr) {
      b.append(",\n  \"publishes\": ");
      live->publish_recorder().RenderJson(&b);
    }
    b.append("\n}\n");
    return resp;
  });

  srv->Handle("/debug/cache", [service](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = "application/json";
    if (const cache::AnswerCache* c = service->answer_cache()) {
      resp.body.append("{\n  \"enabled\": true,\n  \"stats\": ");
      c->Snapshot().RenderJson(&resp.body);
      resp.body.append("\n}\n");
    } else {
      resp.body = "{\n  \"enabled\": false\n}\n";
    }
    return resp;
  });

  srv->Handle("/debug/trace", [service, live](const HttpRequest& req) {
    HttpResponse resp;
    resp.content_type = "application/json";
    std::vector<obs::QueryTrace> queries =
        service->flight_recorder().Snapshot();
    std::vector<obs::PublishTrace> publishes;
    if (live != nullptr) publishes = live->publish_recorder().Snapshot();
    // ?last=N bounds *each* ring: the N most recent queries plus the N
    // most recent publishes, so neither side can crowd the other out.
    size_t last = ParseLast(req, obs::kSpanRingCapacity);
    KeepLast(&queries, last);
    KeepLast(&publishes, last);
    obs::RenderChromeTrace(queries, publishes, &resp.body);
    return resp;
  });
}

}  // namespace server
}  // namespace binchain
