#include "server/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace binchain {
namespace server {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

/// Minimal percent-decoding for query parameter values ('+' => space).
std::string UrlDecode(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(in[i + 1]), lo = hex(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

void ParseQueryString(const std::string& qs, HttpRequest* req) {
  size_t pos = 0;
  while (pos < qs.size()) {
    size_t amp = qs.find('&', pos);
    if (amp == std::string::npos) amp = qs.size();
    std::string pair = qs.substr(pos, amp - pos);
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) req->params[UrlDecode(pair)] = "";
    } else {
      req->params[UrlDecode(pair.substr(0, eq))] =
          UrlDecode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
}

/// Writes the whole buffer, tolerating short sends. MSG_NOSIGNAL: a
/// client that hung up mid-response must surface as EPIPE, not SIGPIPE.
bool SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

/// Plain fixed responses for connections the handler pool never sees
/// (accept-queue overflow, oversized heads, parse failures).
void SendBareStatus(int fd, int status) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     ReasonPhrase(status) +
                     "\r\nContent-Length: 0\r\nConnection: close\r\n\r\n";
  SendAll(fd, head.data(), head.size());
}

}  // namespace

AdminServer::AdminServer(AdminServerOptions options)
    : options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(const std::string& path, HttpHandler handler) {
  handlers_[path] = std::move(handler);
}

Status AdminServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("admin server already running");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Internal(std::string("bind: ") + std::strerror(errno));
    close(fd);
    return s;
  }
  if (listen(fd, options_.accept_backlog) != 0) {
    Status s = Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(fd);
    return s;
  }
  // Resolve an ephemeral bind (option port 0) to the kernel's pick.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    close(fd);
    return s;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  size_t n = options_.handler_threads == 0 ? 1 : options_.handler_threads;
  handler_threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  return Status::Ok();
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock the accept loop: shutdown makes the blocking accept() return
  // with an error on every platform; close releases the port.
  int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  // Connections accepted but never served: close without answering.
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (int fd : conn_queue_) close(fd);
  conn_queue_.clear();
  port_ = 0;
}

void AdminServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;  // Stop() already took the socket away
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down (or it broke); either way, done.
      return;
    }
    // Slowloris guard: every read and write on this connection gets the
    // configured timeout. A stalled client errors out of recv/send and
    // the handler drops it — it cannot pin a pool thread indefinitely.
    timeval tv{};
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (conn_queue_.size() < options_.queue_capacity) {
        conn_queue_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Burst past the hand-off queue: shed on the accept thread itself,
      // mirroring the query service's kOverloaded admission control.
      errors_.fetch_add(1, std::memory_order_relaxed);
      SendBareStatus(fd, 503);
      close(fd);
    }
  }
}

void AdminServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !conn_queue_.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (conn_queue_.empty()) return;  // shutdown with nothing left to do
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    ServeConnection(fd);
    close(fd);
  }
}

void AdminServer::ServeConnection(int fd) {
  // Read the request head: everything up to the blank line, capped at
  // max_request_bytes. The admin plane is GET-only, so any body a client
  // sends past the head is simply never read.
  std::string head;
  head.reserve(512);
  bool complete = false;
  char buf[1024];
  while (head.size() <= options_.max_request_bytes) {
    ssize_t r = recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      // Timeout (slowloris), reset, or EOF before the head completed:
      // nothing worth answering.
      errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    head.append(buf, static_cast<size_t>(r));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }
  if (!complete) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    SendBareStatus(fd, 431);
    return;
  }

  // Request line: METHOD SP target SP version.
  size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) line_end = head.find('\n');
  std::string line = head.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    SendBareStatus(fd, 400);
    return;
  }
  std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    errors_.fetch_add(1, std::memory_order_relaxed);
    SendBareStatus(fd, 405);
    return;
  }

  HttpRequest req;
  size_t qmark = target.find('?');
  req.path = target.substr(0, qmark);
  if (qmark != std::string::npos) {
    ParseQueryString(target.substr(qmark + 1), &req);
  }

  auto it = handlers_.find(req.path);
  if (it == handlers_.end()) {
    // WriteResponse counts the non-2xx into errors_.
    HttpResponse not_found;
    not_found.status = 404;
    not_found.body = "no handler for " + req.path + "\n";
    WriteResponse(fd, not_found);
    return;
  }
  WriteResponse(fd, it->second(req));
}

void AdminServer::WriteResponse(int fd, const HttpResponse& resp) {
  std::string out;
  out.reserve(resp.body.size() + 160);
  out.append("HTTP/1.1 ")
      .append(std::to_string(resp.status))
      .append(" ")
      .append(ReasonPhrase(resp.status))
      .append("\r\nContent-Type: ")
      .append(resp.content_type)
      .append("\r\nContent-Length: ")
      .append(std::to_string(resp.body.size()))
      .append("\r\nConnection: close\r\n\r\n")
      .append(resp.body);
  SendAll(fd, out.data(), out.size());
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (resp.status < 200 || resp.status >= 300) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace server
}  // namespace binchain
