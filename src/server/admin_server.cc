#include "server/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace binchain {
namespace server {

// Wire helpers (ReasonPhrase, UrlDecode, ParseQueryString, SendAll,
// SendBareStatus, OpenListenSocket) are shared with the data plane and
// live in http_common.cc.

AdminServer::AdminServer(AdminServerOptions options)
    : options_(std::move(options)) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(const std::string& path, HttpHandler handler) {
  handlers_[path] = std::move(handler);
}

Status AdminServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("admin server already running");
  }
  Result<int> opened = OpenListenSocket(options_.bind_address, options_.port,
                                        options_.accept_backlog, &port_);
  if (!opened.ok()) return opened.status();
  listen_fd_.store(opened.value(), std::memory_order_release);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  size_t n = options_.handler_threads == 0 ? 1 : options_.handler_threads;
  handler_threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    handler_threads_.emplace_back([this] { HandlerLoop(); });
  }
  return Status::Ok();
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Unblock the accept loop: shutdown makes the blocking accept() return
  // with an error on every platform; close releases the port.
  int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  // Connections accepted but never served: close without answering.
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (int fd : conn_queue_) close(fd);
  conn_queue_.clear();
  port_ = 0;
}

void AdminServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;  // Stop() already took the socket away
    int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shut the listener down (or it broke); either way, done.
      return;
    }
    // Slowloris guard: every read and write on this connection gets the
    // configured timeout. A stalled client errors out of recv/send and
    // the handler drops it — it cannot pin a pool thread indefinitely.
    timeval tv{};
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (conn_queue_.size() < options_.queue_capacity) {
        conn_queue_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Burst past the hand-off queue: shed on the accept thread itself,
      // mirroring the query service's kOverloaded admission control. The
      // Retry-After tells scrapers the overload is momentary — the queue
      // drains in well under a second once the burst passes.
      errors_.fetch_add(1, std::memory_order_relaxed);
      SendBareStatus(fd, 503, /*retry_after_s=*/1);
      close(fd);
    }
  }
}

void AdminServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !conn_queue_.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (conn_queue_.empty()) return;  // shutdown with nothing left to do
      fd = conn_queue_.front();
      conn_queue_.pop_front();
    }
    ServeConnection(fd);
    close(fd);
  }
}

void AdminServer::ServeConnection(int fd) {
  // Read the request head: everything up to the blank line, capped at
  // max_request_bytes. The admin plane is GET-only, so any body a client
  // sends past the head is simply never read.
  std::string head;
  head.reserve(512);
  bool complete = false;
  char buf[1024];
  while (head.size() <= options_.max_request_bytes) {
    ssize_t r = recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      // Timeout (slowloris), reset, or EOF before the head completed:
      // nothing worth answering.
      errors_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    head.append(buf, static_cast<size_t>(r));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }
  if (!complete) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    SendBareStatus(fd, 431);
    return;
  }

  HttpRequest req;
  if (!ParseRequestHead(head, &req)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    SendBareStatus(fd, 400);
    return;
  }
  if (req.method != "GET") {
    errors_.fetch_add(1, std::memory_order_relaxed);
    SendBareStatus(fd, 405);
    return;
  }

  auto it = handlers_.find(req.path);
  if (it == handlers_.end()) {
    // WriteResponse counts the non-2xx into errors_.
    HttpResponse not_found;
    not_found.status = 404;
    not_found.body = "no handler for " + req.path + "\n";
    WriteResponse(fd, not_found);
    return;
  }
  WriteResponse(fd, it->second(req));
}

void AdminServer::WriteResponse(int fd, const HttpResponse& resp) {
  std::string out;
  out.reserve(resp.body.size() + 160);
  out.append("HTTP/1.1 ")
      .append(std::to_string(resp.status))
      .append(" ")
      .append(ReasonPhrase(resp.status))
      .append("\r\nContent-Type: ")
      .append(resp.content_type)
      .append("\r\nContent-Length: ")
      .append(std::to_string(resp.body.size()));
  if (resp.retry_after_s > 0) {
    out.append("\r\nRetry-After: ").append(std::to_string(resp.retry_after_s));
  }
  out.append("\r\nConnection: close\r\n\r\n").append(resp.body);
  SendAll(fd, out.data(), out.size());
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (resp.status < 200 || resp.status >= 300) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace server
}  // namespace binchain
