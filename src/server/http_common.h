// Shared HTTP/1.1 plumbing for the process's two server planes.
//
// AdminServer (GET-only observability socket) and DataServer (streaming
// query plane) speak the same minimal dialect of HTTP: a blocking POSIX
// socket, a request head parsed by hand, and hand-assembled response
// framing. This header is the one copy of that dialect — status reason
// phrases, percent-decoding, query-string and header parsing, short-send
// tolerant writes, and the listener bring-up sequence — so the two planes
// cannot drift apart on wire details (a 429's Retry-After must mean the
// same thing whichever socket emitted it).
//
// Everything here is connection-scoped and stateless: no locks, no
// globals. The servers own their sockets and threading; these helpers
// only read and write byte streams they are handed.
#ifndef BINCHAIN_SERVER_HTTP_COMMON_H_
#define BINCHAIN_SERVER_HTTP_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "util/status.h"

namespace binchain {
namespace server {

/// A parsed request head plus (for the data plane) its body. The admin
/// plane fills method/path/params and ignores the rest; the data plane
/// additionally reads headers (names lowercased at parse time, values
/// trimmed) and the Content-Length body.
struct HttpRequest {
  std::string method;   ///< verb as sent ("GET", "POST", ...)
  std::string path;     ///< target with the query string stripped
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  /// Decoded query parameters (`?last=25` => params["last"] == "25";
  /// bare keys map to "").
  std::map<std::string, std::string> params;
  /// Header fields, names lowercased ("content-length", "x-client-id").
  /// Repeated fields keep the last value — none of the headers either
  /// plane reads are list-valued.
  std::map<std::string, std::string> headers;
  std::string body;  ///< filled by the data plane's body read, else empty
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// When > 0, the response carries `Retry-After: <n>` — set on 429
  /// (rate-limited) and 503 (shed) so well-behaved clients back off for a
  /// bounded, server-chosen interval instead of hammering.
  int retry_after_s = 0;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Canonical reason phrase for every status either plane emits.
const char* ReasonPhrase(int status);

/// Minimal percent-decoding for query parameter values ('+' => space).
std::string UrlDecode(const std::string& in);

/// Parses `a=1&b=c%20d` into *params (decoded; bare keys map to "").
void ParseQueryString(const std::string& qs,
                      std::map<std::string, std::string>* params);

/// Parses a full request head (request line + header fields, excluding
/// the terminating blank line — the caller splits the byte stream).
/// Fills method/path/version/params/headers; returns false on a
/// malformed request line (the caller answers 400).
bool ParseRequestHead(const std::string& head, HttpRequest* req);

/// Writes the whole buffer, tolerating short sends. MSG_NOSIGNAL: a
/// client that hung up mid-response must surface as EPIPE, not SIGPIPE.
bool SendAll(int fd, const char* data, size_t n);

/// Plain fixed response for connections a handler never sees
/// (accept-queue overflow, oversized heads, parse failures). Always
/// closes the HTTP exchange (`Connection: close`); a positive
/// retry_after_s adds the back-off header (503 sheds, 429 limits).
void SendBareStatus(int fd, int status, int retry_after_s = 0);

/// socket/bind/listen bring-up shared by both planes: binds
/// `bind_address:port` (port 0 picks an ephemeral port), listens with
/// `backlog`, and reports the resolved port through *bound_port. Returns
/// the listening fd, or a Status describing which step failed (the fd is
/// closed on every failure path).
Result<int> OpenListenSocket(const std::string& bind_address, uint16_t port,
                             int backlog, uint16_t* bound_port);

}  // namespace server
}  // namespace binchain

#endif  // BINCHAIN_SERVER_HTTP_COMMON_H_
