#include "server/http_common.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace binchain {
namespace server {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default:  return "Unknown";
  }
}

std::string UrlDecode(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out.push_back(' ');
    } else if (in[i] == '%' && i + 2 < in.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(in[i + 1]), lo = hex(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(in[i]);
    }
  }
  return out;
}

void ParseQueryString(const std::string& qs,
                      std::map<std::string, std::string>* params) {
  size_t pos = 0;
  while (pos < qs.size()) {
    size_t amp = qs.find('&', pos);
    if (amp == std::string::npos) amp = qs.size();
    std::string pair = qs.substr(pos, amp - pos);
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      if (!pair.empty()) (*params)[UrlDecode(pair)] = "";
    } else {
      (*params)[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
}

namespace {

std::string TrimSpace(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

bool ParseRequestHead(const std::string& head, HttpRequest* req) {
  // Request line: METHOD SP target SP version.
  size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) line_end = head.find('\n');
  if (line_end == std::string::npos) line_end = head.size();
  std::string line = head.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  req->method = line.substr(0, sp1);
  req->version = TrimSpace(line.substr(sp2 + 1));
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req->method.empty() || target.empty()) return false;

  size_t qmark = target.find('?');
  req->path = target.substr(0, qmark);
  if (qmark != std::string::npos) {
    ParseQueryString(target.substr(qmark + 1), &req->params);
  }

  // Header fields: `Name: value` per line, names lowercased. Tolerates
  // bare-\n line endings the same way the head read loop does.
  size_t pos = line_end;
  while (pos < head.size()) {
    if (head[pos] == '\r') ++pos;
    if (pos < head.size() && head[pos] == '\n') ++pos;
    size_t eol = head.find('\n', pos);
    if (eol == std::string::npos) eol = head.size();
    std::string field = head.substr(pos, eol - pos);
    pos = eol;
    size_t colon = field.find(':');
    if (colon == std::string::npos) continue;  // blank line or junk: skip
    std::string name = TrimSpace(field.substr(0, colon));
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    if (!name.empty()) {
      req->headers[name] = TrimSpace(field.substr(colon + 1));
    }
  }
  return true;
}

bool SendAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

void SendBareStatus(int fd, int status, int retry_after_s) {
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     ReasonPhrase(status) + "\r\nContent-Length: 0\r\n";
  if (retry_after_s > 0) {
    head += "Retry-After: " + std::to_string(retry_after_s) + "\r\n";
  }
  head += "Connection: close\r\n\r\n";
  SendAll(fd, head.data(), head.size());
}

Result<int> OpenListenSocket(const std::string& bind_address, uint16_t port,
                             int backlog, uint16_t* bound_port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad bind address '" + bind_address + "'");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Internal(std::string("bind: ") + std::strerror(errno));
    close(fd);
    return s;
  }
  if (listen(fd, backlog) != 0) {
    Status s = Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(fd);
    return s;
  }
  // Resolve an ephemeral bind (port 0) to the kernel's pick.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status s =
        Status::Internal(std::string("getsockname: ") + std::strerror(errno));
    close(fd);
    return s;
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

}  // namespace server
}  // namespace binchain
