// Admin-plane HTTP server: the process's observability socket.
//
// ROADMAP item 1 ("make it a server") splits naturally into two planes.
// The *data* plane — streaming answers, rate limiting, retry-after — needs
// design work (chunk sinks threaded through the engine). The *admin*
// plane does not: every payload already exists as a string renderer
// (RenderPrometheus, flight-recorder JSON, Chrome traces), so what is
// missing is only a socket that speaks enough HTTP/1.1 for curl,
// Prometheus, and kubelet-style probes. AdminServer is that socket, and
// deliberately nothing more:
//
//  * GET only, one request per connection (`Connection: close`), no
//    keep-alive, no TLS, no chunked bodies. Scrapers and probes retry;
//    none of them need connection reuse against a process-local port.
//  * Dependency-free: POSIX sockets under a std::thread accept loop and
//    a small handler pool. No event loop — handler concurrency equals
//    pool size, which is plenty for scrape traffic and keeps slow
//    clients from ever touching the query service's threads.
//  * Defensive by construction: bounded request size (oversized heads are
//    answered 431 and dropped), SO_RCVTIMEO/SO_SNDTIMEO on every accepted
//    connection (a slowloris client times out and is closed, it cannot
//    pin a handler forever), bounded hand-off queue (bursts past it are
//    answered 503 by the accept thread itself).
//
// Routing is exact-match on the path (query params are parsed off and
// handed to the handler). Handlers run on pool threads concurrently with
// each other and with everything else in the process, so they must only
// touch thread-safe state — the registry, the span rings and the service
// accessors they serve all are.
#ifndef BINCHAIN_SERVER_ADMIN_SERVER_H_
#define BINCHAIN_SERVER_ADMIN_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/http_common.h"
#include "util/status.h"

namespace binchain {
namespace server {

struct AdminServerOptions {
  /// Address to bind. The default stays loopback-only: the admin plane
  /// exposes internals and has no auth, so exposing it wider is an
  /// explicit operator decision.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Threads serving parsed requests. Scrape + probe traffic is light;
  /// two threads mean a slow scrape never blocks a readiness probe.
  size_t handler_threads = 2;
  /// Hard cap on the request head (request line + headers). Anything
  /// larger is answered 431 and the connection dropped.
  size_t max_request_bytes = 8192;
  /// Per-connection socket send/receive timeout. A client that neither
  /// finishes its request nor drains the response within this window is
  /// closed (slowloris guard).
  int io_timeout_ms = 5000;
  /// listen(2) backlog.
  int accept_backlog = 16;
  /// Accepted connections waiting for a handler. The accept thread
  /// answers 503 beyond this instead of queueing without bound.
  size_t queue_capacity = 64;
};

// HttpRequest / HttpResponse / HttpHandler live in http_common.h — one
// wire vocabulary shared with the data plane (DataServer).

class AdminServer {
 public:
  explicit AdminServer(AdminServerOptions options = {});
  /// Stops and joins if still running.
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers `handler` for exact-match `path` (no patterns; query
  /// strings are stripped before matching). Call before Start().
  void Handle(const std::string& path, HttpHandler handler);

  /// Binds, listens, and launches the accept + handler threads. On OK the
  /// socket is live and port() reports the bound port.
  Status Start();

  /// Shuts the listener down and joins every thread. In-flight responses
  /// finish; queued-but-unserved connections are closed. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves option port 0 to the kernel's pick); 0
  /// before a successful Start().
  uint16_t port() const { return port_; }

  /// Requests answered, by outcome. `errors` counts every non-2xx plus
  /// dropped connections (timeout, oversized, parse failure).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t request_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandlerLoop();
  /// Reads, parses, dispatches and answers one connection, then closes it.
  void ServeConnection(int fd);
  /// Best-effort write of a full response; counts into the atomics.
  void WriteResponse(int fd, const HttpResponse& resp);

  const AdminServerOptions options_;
  std::map<std::string, HttpHandler> handlers_;  // frozen at Start()

  /// Atomic: Stop() swaps it to -1 (then shuts the socket down) while the
  /// accept loop is still blocked reading it for the next accept(2).
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> conn_queue_;  // accepted fds awaiting a handler

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace server
}  // namespace binchain

#endif  // BINCHAIN_SERVER_ADMIN_SERVER_H_
