#include "server/rate_limiter.h"

#include <algorithm>
#include <chrono>

namespace binchain {
namespace server {

namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RateLimiter::RateLimiter(RateLimiterOptions options)
    : options_(options),
      burst_(options.burst > 0 ? options.burst
                               : std::max(options.qps, 1.0)) {}

RateLimiter::Decision RateLimiter::TryAcquire(const std::string& client_id) {
  return TryAcquire(client_id, SteadyNowSeconds());
}

RateLimiter::Decision RateLimiter::TryAcquire(const std::string& client_id,
                                              double now_s) {
  if (options_.qps <= 0) return Decision{};

  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(client_id);
  if (it == buckets_.end()) {
    if (buckets_.size() >= options_.max_clients) {
      // Evict the fullest bucket: a full (idle) bucket carries no debt, so
      // dropping it loses nothing — if that client returns it starts full
      // again, exactly the state we deleted.
      auto victim = buckets_.begin();
      for (auto b = buckets_.begin(); b != buckets_.end(); ++b) {
        if (b->second.tokens > victim->second.tokens) victim = b;
      }
      buckets_.erase(victim);
    }
    it = buckets_.emplace(client_id, Bucket{burst_, now_s}).first;
  }

  Bucket& bucket = it->second;
  // Refill for the elapsed interval; a non-monotone caller clock (tests
  // replaying timestamps) simply refills nothing.
  double elapsed = now_s - bucket.last_refill_s;
  if (elapsed > 0) {
    bucket.tokens = std::min(burst_, bucket.tokens + elapsed * options_.qps);
    bucket.last_refill_s = now_s;
  }

  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return Decision{};
  }
  Decision denied;
  denied.allowed = false;
  denied.retry_after_s = (1.0 - bucket.tokens) / options_.qps;
  return denied;
}

size_t RateLimiter::tracked_clients() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buckets_.size();
}

}  // namespace server
}  // namespace binchain
