// Data-plane HTTP server: the process's query socket.
//
// The admin plane (AdminServer) serves strings that already exist; the
// data plane serves *evaluations* — requests that run for milliseconds to
// seconds and produce answer sets of unknown size. That difference drives
// every design choice here:
//
//  * POST /v1/query with a JSON body decoding to the canonical
//    QueryRequest (the same struct the CLI and in-process callers build —
//    one option surface, documented in docs/wire_protocol.md).
//  * Streaming by default: the response is NDJSON answer chunks under
//    chunked transfer encoding, delivered *while the fixpoint runs*. The
//    handler threads an AnswerSink through the request the same way the
//    CancelToken is threaded, so the first chunk leaves the socket at the
//    engine's first flush point, strictly before evaluation completes on
//    multi-iteration workloads. A final trailer line carries the terminal
//    status, epoch, and EvalStats. `"stream": false` buffers the same
//    lines into one Content-Length response — byte-identical payload, no
//    incremental delivery.
//  * Keep-alive: queries are request/response conversations, so (unlike
//    the admin plane) connections are reused up to
//    max_requests_per_connection; chunked framing makes each response
//    self-delimiting.
//  * Admission control in layers: token buckets (RateLimiter — a
//    peer-aggregate bucket charged first, then a per-identity bucket
//    keyed (peer, client_id), so a client-chosen id can never escape its
//    peer's budget) answering 429 with a computed Retry-After, and the
//    query service's own queue high-water mark surfacing as
//    503 + Retry-After.
//    A request that passes admission is answered 200 even if evaluation
//    later fails — the terminal status travels in the trailer, because
//    the HTTP status line has already been sent by then.
//
// Threading mirrors AdminServer: a std::thread accept loop hands
// connections to a small handler pool over a bounded queue. A handler
// blocks on its query's chunks, so handler_threads bounds concurrent
// HTTP-driven evaluations — set it below the service's worker count to
// keep in-process callers from starving.
#ifndef BINCHAIN_SERVER_DATA_SERVER_H_
#define BINCHAIN_SERVER_DATA_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/http_common.h"
#include "server/rate_limiter.h"
#include "util/status.h"

namespace binchain {

class QueryService;

namespace obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

namespace server {

struct DataServerOptions {
  /// Loopback by default, like the admin plane: exposing an unauthenticated
  /// query socket wider is an explicit operator decision.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Handler threads — the bound on concurrent HTTP-driven queries (each
  /// handler blocks on one query's stream at a time).
  size_t handler_threads = 4;
  /// Cap on the request head (request line + headers); larger heads are
  /// answered 431 and the connection dropped.
  size_t max_request_bytes = 64 * 1024;
  /// Cap on the JSON body; a Content-Length past this is answered 413.
  size_t max_body_bytes = 1024 * 1024;
  /// Per-connection socket send/receive timeout (slowloris guard). Also
  /// bounds how long a dead client can stall a streaming handler.
  int io_timeout_ms = 10000;
  /// listen(2) backlog.
  int accept_backlog = 64;
  /// Accepted connections waiting for a handler; past this the accept
  /// thread sheds with 503 + Retry-After.
  size_t queue_capacity = 256;
  /// Keep-alive budget: requests served on one connection before the
  /// server closes it (`Connection: close` on the last response).
  size_t max_requests_per_connection = 256;
  /// Per-client admission (defaults to disabled: qps 0). Identity buckets
  /// are keyed (peer address, claimed client id) — a client id is an
  /// unauthenticated claim, so it refines the peer's budget rather than
  /// escaping it.
  RateLimiterOptions rate_limit;
  /// The aggregate budget one peer address gets across all client ids it
  /// presents, as a multiple of the per-client limits (qps and burst both
  /// scale). Charged before the identity bucket, so rotating client ids
  /// cannot mint fresh buckets faster than this. <= 0 disables the peer
  /// layer (e.g. when everything arrives via one trusted proxy that
  /// vouches for its ids). Ignored while rate_limit.qps <= 0.
  double peer_qps_multiplier = 16;
};

class DataServer {
 public:
  /// `service` is borrowed and must outlive the server (Stop() joins every
  /// handler before returning, so no request outlives either).
  explicit DataServer(QueryService* service, DataServerOptions options = {});
  ~DataServer();
  DataServer(const DataServer&) = delete;
  DataServer& operator=(const DataServer&) = delete;

  /// Binds, listens, and launches the accept + handler threads.
  Status Start();
  /// Shuts the listener down and joins every thread. In-flight streams
  /// finish (their queries complete or get cancelled by client drop);
  /// queued-but-unserved connections are closed. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves option port 0); 0 before a successful Start().
  uint16_t port() const { return port_; }

  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t request_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandlerLoop();
  /// Serves up to max_requests_per_connection requests on one connection,
  /// then closes it. Returns when the client hangs up, errors, or asks
  /// `Connection: close`.
  void ServeConnection(int fd);
  /// One request/response exchange. Returns whether the connection is
  /// still healthy enough for another request.
  bool ServeOne(int fd, const std::string& peer, std::string* carry);
  /// Parses, admits, submits, and streams (or buffers) one query.
  bool HandleQuery(int fd, const HttpRequest& req, const std::string& peer,
                   bool keep_alive);

  const DataServerOptions options_;
  QueryService* const service_;
  RateLimiter limiter_;       // per (peer, client_id) identity buckets
  RateLimiter peer_limiter_;  // per-peer aggregate layer, charged first

  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::vector<std::thread> handler_threads_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> conn_queue_;  // accepted fds awaiting a handler

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};

  /// binchain_dataplane_* instruments, registered at construction.
  obs::Counter* m_requests_;
  obs::Counter* m_streamed_;
  obs::Counter* m_chunks_;
  obs::Counter* m_rate_limited_;
  obs::Counter* m_overloaded_;
  obs::Counter* m_errors_;
  obs::Gauge* m_active_connections_;
  obs::Histogram* m_request_ms_;
  obs::Histogram* m_first_chunk_ms_;
};

}  // namespace server
}  // namespace binchain

#endif  // BINCHAIN_SERVER_DATA_SERVER_H_
