#include "workloads/workloads.h"

namespace binchain {
namespace workloads {
namespace {

std::string N(const std::string& prefix, size_t i) {
  return prefix + std::to_string(i);
}

}  // namespace

const char* SgProgramText() {
  return "sg(X, Y) :- flat(X, Y).\n"
         "sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).\n";
}

std::string Fig7a(Database& db, size_t n) {
  for (size_t i = 1; i <= n; ++i) {
    db.AddFact("up", {"a", N("b", i)});
    db.AddFact("up", {N("b", i), "c"});
    db.AddFact("down", {"c2", N("d", i)});
    db.AddFact("down", {N("d", i), N("e", i)});
  }
  db.AddFact("flat", {"c", "c2"});
  return "a";
}

std::string Fig7b(Database& db, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    db.AddFact("up", {N("a", i), N("a", i + 1)});
    db.AddFact("down", {N("b", i + 1), N("b", i)});
  }
  for (size_t k = 1; k <= n; ++k) {
    db.AddFact("flat", {N("a", k), N("b", n)});
  }
  return "a1";
}

std::string Fig7c(Database& db, size_t n) {
  for (size_t i = 1; i < n; ++i) {
    db.AddFact("up", {N("a", i), N("a", i + 1)});
    db.AddFact("down", {N("b", i + 1), N("b", i)});
  }
  for (size_t i = 1; i <= n; ++i) {
    db.AddFact("flat", {N("a", i), N("b", i)});
  }
  return "a1";
}

std::string Fig8(Database& db, size_t m, size_t n) {
  for (size_t i = 1; i <= m; ++i) {
    db.AddFact("up", {N("a", i), N("a", i % m + 1)});
  }
  for (size_t i = 1; i <= n; ++i) {
    // down(b_i, b_{i-1}) cyclically: walking down decrements the index.
    size_t prev = (i == 1) ? n : i - 1;
    db.AddFact("down", {N("b", i), N("b", prev)});
  }
  db.AddFact("flat", {N("a", m), N("b", n)});
  return "a1";
}

std::string Chain(Database& db, const std::string& rel,
                  const std::string& prefix, size_t len) {
  for (size_t i = 1; i < len; ++i) {
    db.AddFact(rel, {N(prefix, i), N(prefix, i + 1)});
  }
  return N(prefix, 1);
}

std::string UpTree(Database& db, const std::string& rel,
                   const std::string& prefix, size_t levels) {
  // Nodes numbered heap-style: node i has parent i/2; edges child -> parent.
  size_t total = (1u << levels) - 1;
  for (size_t i = 2; i <= total; ++i) {
    db.AddFact(rel, {N(prefix, i), N(prefix, i / 2)});
  }
  return N(prefix, total);  // a leaf
}

void RandomGraph(Database& db, const std::string& rel,
                 const std::string& prefix, size_t nodes, size_t edges,
                 Rng& rng) {
  for (size_t i = 0; i < edges; ++i) {
    size_t u = rng.Below(nodes);
    size_t v = rng.Below(nodes);
    db.AddFact(rel, {N(prefix, u), N(prefix, v)});
  }
}

void RandomDag(Database& db, const std::string& rel,
               const std::string& prefix, size_t nodes, size_t edges,
               Rng& rng) {
  for (size_t k = 0; k < edges; ++k) {
    size_t i = rng.Below(nodes - 1);
    size_t j = i + 1 + rng.Below(nodes - 1 - i);
    db.AddFact(rel, {N(prefix, i), N(prefix, j)});
  }
}

const char* PathProgramText() {
  return "path(X, Y) :- e(X, Y).\n"
         "path(X, Z) :- e(X, Y), path(Y, Z).\n";
}

std::string BuildFlights(Database& db, const FlightSpec& spec) {
  Rng rng(spec.seed);
  for (size_t i = 0; i < spec.flights; ++i) {
    size_t s = rng.Below(spec.airports);
    size_t d = rng.Below(spec.airports);
    if (d == s) d = (d + 1) % spec.airports;
    size_t dt = rng.Below(spec.horizon);
    size_t at = dt + 1 + rng.Below(5);
    db.AddFact("flight", {N("p", s), std::to_string(dt), N("p", d),
                          std::to_string(at)});
    db.AddFact("is-deptime", {std::to_string(dt)});
  }
  return "p0";
}

const char* FlightProgramText() {
  return "cnx(S, DT, D, AT) :- flight(S, DT, D, AT).\n"
         "cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, "
         "is-deptime(DT1), cnx(D1, DT1, D, AT).\n";
}

const char* AlternatingProgramText() {
  return "p(X, Y) :- b0(X, Y).\n"
         "p(X, Y) :- b1(X, Z), p(Y, Z).\n";
}

const char* NonChainProgramText() {
  return "p(X, Y) :- b0(X, Y).\n"
         "p(X, Y) :- b1(X, Y), p(Y, Z).\n";
}

}  // namespace workloads
}  // namespace binchain
