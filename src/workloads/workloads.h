// Parametric workload generators for the paper's evaluation section:
// the three same-generation samples of Figure 7, the cyclic sample of
// Figure 8, random graphs for the regular case (Theorem 3), ladders/chains
// for the linear case (Theorem 4), the airline-flight database of Section 4,
// and the Naughton-style alternating-binding program.
#ifndef BINCHAIN_WORKLOADS_WORKLOADS_H_
#define BINCHAIN_WORKLOADS_WORKLOADS_H_

#include <string>

#include "storage/database.h"
#include "util/rng.h"

namespace binchain {
namespace workloads {

/// The same-generation program (Section 3):
///   sg(X, Y) :- flat(X, Y).
///   sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
const char* SgProgramText();

/// Figure 7 (a) rebuilt as a "double fan": up: a -> b_i -> c (fan n);
/// flat: c -> c2; down: c2 -> d_i -> e_i. Constant iterations, Theta(n)
/// nodes for the graph-traversal algorithm; Theta(n^2) for magic sets.
/// Returns the query constant ("a").
std::string Fig7a(Database& db, size_t n);

/// Figure 7 (b): up-chain a_1 -> ... -> a_n, flat(a_k, b_n) for every k,
/// down-chain b_n -> ... -> b_1. n iterations and Theta(n^2) nodes: term
/// b_j appears on j-1 levels. Returns the query constant ("a1").
std::string Fig7b(Database& db, size_t n);

/// Figure 7 (c): the ladder. up-chain, one flat rung per level,
/// down-chain. n iterations, Theta(n) nodes: every b_i gives rise to one
/// node. Returns the query constant ("a1").
std::string Fig7c(Database& db, size_t n);

/// Figure 8: up-cycle of length m, down-cycle of length n,
/// flat(a_m, b_n). For gcd(m, n) = 1 the full answer requires m*n
/// iterations. Returns the query constant ("a1").
std::string Fig8(Database& db, size_t m, size_t n);

/// A plain chain u_1 -> ... -> u_len in relation `rel` with node prefix
/// `prefix`; returns the first node name.
std::string Chain(Database& db, const std::string& rel,
                  const std::string& prefix, size_t len);

/// Complete binary tree of `levels` levels in `rel`, edges child -> parent
/// (pointing at the root); returns the root name. Used for Theorem 4.
std::string UpTree(Database& db, const std::string& rel,
                   const std::string& prefix, size_t levels);

/// Random directed graph: `edges` uniform edges over `nodes` nodes named
/// <prefix><i>.
void RandomGraph(Database& db, const std::string& rel,
                 const std::string& prefix, size_t nodes, size_t edges,
                 Rng& rng);

/// Random DAG: edges only from lower- to higher-numbered nodes. Acyclic base
/// relations guarantee termination of the traversal (Theorem 4 (2)).
void RandomDag(Database& db, const std::string& rel,
               const std::string& prefix, size_t nodes, size_t edges,
               Rng& rng);

/// Transitive-closure program over base relation e (right-linear, regular):
///   path(X, Y) :- e(X, Y).
///   path(X, Z) :- e(X, Y), path(Y, Z).
const char* PathProgramText();

/// The Section-4 airline database: `flights` random flights over `airports`
/// airports and integer times in [0, horizon); is-deptime facts for every
/// departure time. Returns the query source airport ("p0").
struct FlightSpec {
  size_t airports = 10;
  size_t flights = 100;
  size_t horizon = 100;
  uint64_t seed = 42;
};
std::string BuildFlights(Database& db, const FlightSpec& spec);

/// The flight-connection program (Section 4):
///   cnx(S, DT, D, AT) :- flight(S, DT, D, AT).
///   cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1,
///                        is-deptime(DT1), cnx(D1, DT1, D, AT).
const char* FlightProgramText();

/// Naughton's alternating-binding program (Section 4 example):
///   p(X, Y) :- b0(X, Y).
///   p(X, Y) :- b1(X, Z), p(Y, Z).
const char* AlternatingProgramText();

/// The paper's non-chain example (end of Section 4): with b1(a,b), b0(b,c)
/// the transformed program would over-answer; used to exercise the chain
/// detector.
///   p(X, Y) :- b0(X, Y).
///   p(X, Y) :- b1(X, Y), p(Y, Z).
const char* NonChainProgramText();

}  // namespace workloads
}  // namespace binchain

#endif  // BINCHAIN_WORKLOADS_WORKLOADS_H_
