// Section 4: transformation of an adorned n-ary linear program into a
// binary-chain program over the view predicates bin-p^a, base-r, in-r and
// out-r:
//
//   bin-p^a(U, V) :- base-r(U, V).                      (base-only rule r)
//   bin-p^a(U, V) :- in-r(U, U1), bin-q^d(U1, V1), out-r(V1, V).
//
// where
//   base-r(t(Xb), t(Xf)) :- b_1(Y1), ..., b_n(Yn).
//   in-r  (t(Xb), t(Zb)) :- b_1(Y1), ..., b_i(Yi).
//   out-r (t(Zf), t(Xf)) :- b_{i+1}(Y_{i+1}), ..., b_n(Yn).
//
// Trivial in-r / out-r (empty body, identical argument tuples) are omitted
// from the chain, exactly as in the paper's examples. The tuples t(...) are
// interned as tuple terms; the views are evaluated *by demand* during the
// graph traversal, so the query bindings restrict the facts consulted.
//
// The transformation is sound for all linear programs in the special form
// (Lemma 5) and complete precisely for chain programs (Lemma 6, Theorem 7);
// Binarize reports whether the chain condition holds.
#ifndef BINCHAIN_TRANSFORM_BINARIZE_H_
#define BINCHAIN_TRANSFORM_BINARIZE_H_

#include <memory>
#include <string>
#include <vector>

#include "datalog/ast.h"
#include "eval/engine.h"
#include "eval/relation_view.h"
#include "storage/database.h"
#include "transform/adorn.h"
#include "util/status.h"

namespace binchain {

struct ViewDefinition {
  SymbolId name;                  // base-r / in-r / out-r mangled symbol
  std::vector<Literal> body;      // base literals + built-ins
  std::vector<SymbolId> input_vars;   // variables bound by the source term
  std::vector<Term> output_terms;     // projected output (vars or consts)
};

struct BinarizedProgram {
  Program bin_program;            // binary-chain rules over bin/view preds
  std::vector<ViewDefinition> views;
  SymbolId query_pred = 0;        // bin-q^a
  Tuple query_input;              // t(constants at bound positions)
  std::vector<size_t> bound_positions;  // of the original query literal
  std::vector<size_t> free_positions;
  bool is_chain = false;          // Lemma 6 chain condition
};

/// Builds the binary-chain program for `adorned` (which must come from
/// AdornProgram on the same original program).
Result<BinarizedProgram> Binarize(const AdornedProgram& adorned,
                                  SymbolTable& symbols);

/// End-to-end evaluation of an n-ary query through the Section-4 pipeline:
/// adorn -> binarize -> Lemma 1 -> graph traversal. Answers are full tuples
/// of the original query predicate. Fails with kUnsupported if the adorned
/// program is not a chain program (the transformation would be unsound)
/// unless `allow_non_chain` is set (for demonstrating Lemma 5's
/// containment direction).
struct TransformedQueryResult {
  std::vector<Tuple> tuples;
  EvalStats stats;
  bool is_chain = false;
  std::string bin_program_text;   // for inspection / documentation
};
Result<TransformedQueryResult> EvaluateViaBinarization(
    const Program& program, Database& db, const Literal& query,
    const EvalOptions& options = {}, bool allow_non_chain = false);

}  // namespace binchain

#endif  // BINCHAIN_TRANSFORM_BINARIZE_H_
