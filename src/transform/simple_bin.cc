#include "transform/simple_bin.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "datalog/analysis.h"
#include "eval/join.h"
#include "storage/term_pool.h"

namespace binchain {

Result<std::vector<Tuple>> SimpleBinQuery(const Program& program, Database& db,
                                          const Literal& query,
                                          SimpleBinStats* stats,
                                          size_t edge_limit) {
  SimpleBinStats local;
  SimpleBinStats& st = (stats != nullptr) ? *stats : local;
  st = SimpleBinStats{};

  ProgramAnalysis analysis(program, db.symbols());
  if (!analysis.BodyHasAtMostOneDerived()) {
    return Status::Unsupported(
        "the simple bin transformation requires at most one derived literal "
        "per body");
  }
  if (auto s = analysis.CheckSafety(); !s.ok()) return s;

  // Active domain (constants of the EDB), for variables not covered by base
  // literals.
  std::vector<SymbolId> domain;
  {
    std::unordered_set<SymbolId> seen;
    for (const std::string& name : db.relation_names()) {
      const Relation* rel = db.Find(name);
      for (const Tuple& t : rel->tuples()) {
        for (SymbolId c : t) {
          if (seen.insert(c).second) domain.push_back(c);
        }
      }
    }
  }

  TermPool pool;
  TermId root = pool.InternTuple(Tuple{});  // the symbol "0"
  auto literal_node = [&](SymbolId pred, const Tuple& args) {
    Tuple node;
    node.push_back(pred);
    node.insert(node.end(), args.begin(), args.end());
    return pool.InternTuple(node);
  };

  std::unordered_map<TermId, std::vector<TermId>> succ;
  RelationResolver resolve = [&](SymbolId pred) {
    return db.Find(db.symbols().Name(pred));
  };

  Status overflow = Status::Ok();
  for (const Rule& r : program.rules) {
    const Literal* derived = nullptr;
    std::vector<Literal> bases;
    for (const Literal& lit : r.body) {
      if (analysis.IsDerived(lit.predicate)) {
        derived = &lit;
      } else {
        bases.push_back(lit);
      }
    }
    // Variables needing active-domain expansion.
    std::unordered_set<SymbolId> covered;
    for (const Literal& lit : bases) {
      if (analysis.IsBuiltin(lit.predicate)) continue;
      for (const Term& t : lit.args) {
        if (t.IsVar()) covered.insert(t.symbol);
      }
    }
    std::vector<SymbolId> uncovered;
    {
      std::unordered_set<SymbolId> want;
      auto add_vars = [&](const Literal& lit) {
        for (const Term& t : lit.args) {
          if (t.IsVar() && !covered.count(t.symbol)) want.insert(t.symbol);
        }
      };
      add_vars(r.head);
      if (derived != nullptr) add_vars(*derived);
      uncovered.assign(want.begin(), want.end());
      std::sort(uncovered.begin(), uncovered.end());
    }

    std::function<void(size_t, Binding&)> expand = [&](size_t i, Binding& b) {
      if (!overflow.ok()) return;
      if (i == uncovered.size()) {
        Tuple head_args = InstantiateHead(r.head, b);
        TermId to = literal_node(r.head.predicate, head_args);
        TermId from = root;
        if (derived != nullptr) {
          from = literal_node(derived->predicate, InstantiateHead(*derived, b));
        }
        succ[from].push_back(to);
        if (++st.bin_edges > edge_limit) {
          overflow = Status::Unsupported(
              "simple bin transformation exceeded the edge limit "
              "(active-domain blowup)");
        }
        return;
      }
      for (SymbolId c : domain) {
        b[uncovered[i]] = c;
        expand(i + 1, b);
        b.erase(uncovered[i]);
      }
    };

    Binding binding;
    Status s = EnumerateMatches(resolve, db.symbols(), bases, binding,
                                [&](const Binding&) {
                                  Binding b = binding;
                                  expand(0, b);
                                });
    if (!s.ok()) return s;
    if (!overflow.ok()) return overflow;
  }

  // Reachability from 0; answers are reachable query-predicate literals.
  std::unordered_set<TermId> seen{root};
  std::vector<TermId> stack{root};
  std::vector<Tuple> answers;
  while (!stack.empty()) {
    TermId v = stack.back();
    stack.pop_back();
    ++st.visited_nodes;
    auto it = succ.find(v);
    if (it == succ.end()) continue;
    for (TermId w : it->second) {
      if (!seen.insert(w).second) continue;
      stack.push_back(w);
      const Tuple& node = pool.Get(w);
      if (!node.empty() && node[0] == query.predicate) {
        Tuple args(node.begin() + 1, node.end());
        bool match = args.size() == query.args.size();
        for (size_t i = 0; i < args.size() && match; ++i) {
          if (query.args[i].IsConst() && query.args[i].symbol != args[i]) {
            match = false;
          }
        }
        if (match) answers.push_back(std::move(args));
      }
    }
  }
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

}  // namespace binchain
