// The "simple" transformation the paper describes before its own (Section 4,
// after Jagadish et al. [9] / Naughton [15]): represent a linear program as
// a single binary relation over instantiated literals,
//
//   bin(q(c_z), p(c_x)) :- b_1(Y1), ..., b_n(Yn)    (rules with derived q)
//   bin(0,      p(c_x)) :- b_1(Y1), ..., b_n(Yn)    (base-only rules)
//
// compute the *whole* relation bin bottom-up with standard joins, and answer
// the query as the set of literals reachable from 0 in bin+. This simulates
// naive bottom-up evaluation and ignores query bindings — the baseline the
// paper's binding-propagating transformation improves on.
#ifndef BINCHAIN_TRANSFORM_SIMPLE_BIN_H_
#define BINCHAIN_TRANSFORM_SIMPLE_BIN_H_

#include <vector>

#include "datalog/ast.h"
#include "storage/database.h"
#include "util/status.h"

namespace binchain {

struct SimpleBinStats {
  uint64_t bin_edges = 0;      // materialized bin tuples (the full relation)
  uint64_t visited_nodes = 0;  // literals reached from 0
};

/// Variables of the head / derived literal not covered by the base literals
/// are expanded over the active domain; evaluation aborts with kUnsupported
/// once `edge_limit` edges have been materialized.
Result<std::vector<Tuple>> SimpleBinQuery(const Program& program, Database& db,
                                          const Literal& query,
                                          SimpleBinStats* stats,
                                          size_t edge_limit = 50000000);

}  // namespace binchain

#endif  // BINCHAIN_TRANSFORM_SIMPLE_BIN_H_
