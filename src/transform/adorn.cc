#include "transform/adorn.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "datalog/analysis.h"

namespace binchain {

size_t Adornment::BoundCount() const {
  size_t n = 0;
  for (bool b : bound) n += b ? 1 : 0;
  return n;
}

std::string Adornment::ToString() const {
  std::string s;
  for (bool b : bound) s += b ? 'b' : 'f';
  return s;
}

std::string AdornedName(const AdornedPredicate& ap,
                        const SymbolTable& symbols) {
  return symbols.Name(ap.pred) + "~" + ap.adornment.ToString();
}

namespace {

std::unordered_set<SymbolId> VarsOf(const Literal& lit) {
  std::unordered_set<SymbolId> out;
  for (const Term& t : lit.args) {
    if (t.IsVar()) out.insert(t.symbol);
  }
  return out;
}

bool SharesVar(const std::unordered_set<SymbolId>& a,
               const std::unordered_set<SymbolId>& b) {
  for (SymbolId v : a) {
    if (b.count(v)) return true;
  }
  return false;
}

struct AdornKey {
  SymbolId pred;
  std::string adornment;
  bool operator==(const AdornKey& o) const {
    return pred == o.pred && adornment == o.adornment;
  }
};
struct AdornKeyHash {
  size_t operator()(const AdornKey& k) const {
    return std::hash<std::string>()(k.adornment) ^ (k.pred * 2654435761u);
  }
};

}  // namespace

Result<AdornedProgram> AdornProgram(const Program& program,
                                    const SymbolTable& symbols,
                                    const Literal& query) {
  ProgramAnalysis analysis(program, symbols);
  if (!analysis.BodyHasAtMostOneDerived()) {
    return Status::Unsupported(
        "adornment requires at most one derived literal per rule body");
  }
  if (!analysis.IsDerived(query.predicate)) {
    return Status::InvalidArgument("query predicate is not derived");
  }

  AdornedProgram out;
  out.query_literal = query;
  out.query.pred = query.predicate;
  for (const Term& t : query.args) {
    out.query.adornment.bound.push_back(t.IsConst());
  }

  std::deque<AdornedPredicate> worklist{out.query};
  std::unordered_set<AdornKey, AdornKeyHash> done;

  while (!worklist.empty()) {
    AdornedPredicate ap = worklist.front();
    worklist.pop_front();
    AdornKey key{ap.pred, ap.adornment.ToString()};
    if (!done.insert(key).second) continue;

    for (const Rule& r : program.rules) {
      if (r.head.predicate != ap.pred) continue;
      if (r.head.arity() != ap.adornment.bound.size()) {
        return Status::InvalidArgument("query/rule arity mismatch");
      }
      for (const Term& t : r.head.args) {
        if (t.IsConst()) {
          return Status::Unsupported(
              "adornment does not support constants in rule heads");
        }
      }
      AdornedRule ar;
      ar.head = ap;
      ar.head_literal = r.head;

      // Partition body literals: the (single) derived literal vs base ones.
      std::vector<Literal> base_lits;
      bool has_derived = false;
      Literal derived_lit;
      for (const Literal& lit : r.body) {
        if (analysis.IsDerived(lit.predicate)) {
          has_derived = true;
          derived_lit = lit;
        } else {
          base_lits.push_back(lit);
        }
      }

      if (!has_derived) {
        ar.prefix = base_lits;
        out.rules.push_back(std::move(ar));
        continue;
      }

      // Bound head variables.
      std::unordered_set<SymbolId> bound_vars;
      for (size_t i = 0; i < r.head.args.size(); ++i) {
        if (ap.adornment.bound[i] && r.head.args[i].IsVar()) {
          bound_vars.insert(r.head.args[i].symbol);
        }
      }

      // Prefix = base literals transitively connected (via shared variables
      // among base literals) to a bound head variable; suffix = the rest.
      // By construction no prefix literal shares a variable with a suffix
      // literal (condition (2)).
      std::vector<std::unordered_set<SymbolId>> vars;
      vars.reserve(base_lits.size());
      for (const Literal& lit : base_lits) vars.push_back(VarsOf(lit));
      std::vector<bool> in_prefix(base_lits.size(), false);
      bool changed = true;
      while (changed) {
        changed = false;
        for (size_t i = 0; i < base_lits.size(); ++i) {
          if (in_prefix[i]) continue;
          bool connect = SharesVar(vars[i], bound_vars);
          for (size_t j = 0; j < base_lits.size() && !connect; ++j) {
            if (in_prefix[j] && SharesVar(vars[i], vars[j])) connect = true;
          }
          if (connect) {
            in_prefix[i] = true;
            changed = true;
          }
        }
      }
      for (size_t i = 0; i < base_lits.size(); ++i) {
        (in_prefix[i] ? ar.prefix : ar.suffix).push_back(base_lits[i]);
      }

      // Condition (3): prefix literals form one connected set.
      if (!ar.prefix.empty()) {
        std::vector<std::unordered_set<SymbolId>> pv;
        for (const Literal& lit : ar.prefix) pv.push_back(VarsOf(lit));
        std::vector<bool> reach(ar.prefix.size(), false);
        reach[0] = true;
        bool grow = true;
        while (grow) {
          grow = false;
          for (size_t i = 0; i < ar.prefix.size(); ++i) {
            if (reach[i]) continue;
            for (size_t j = 0; j < ar.prefix.size(); ++j) {
              if (reach[j] && SharesVar(pv[i], pv[j])) {
                reach[i] = true;
                grow = true;
                break;
              }
            }
          }
        }
        ar.prefix_connected =
            std::all_of(reach.begin(), reach.end(), [](bool b) { return b; });
      }

      // Condition (5): the derived literal's adornment marks as bound the
      // positions filled by prefix variables, bound head variables, or
      // constants.
      std::unordered_set<SymbolId> known = bound_vars;
      for (const Literal& lit : ar.prefix) {
        for (const Term& t : lit.args) {
          if (t.IsVar()) known.insert(t.symbol);
        }
      }
      ar.has_derived = true;
      ar.derived = derived_lit;
      ar.derived_adorned.pred = derived_lit.predicate;
      for (const Term& t : derived_lit.args) {
        bool b = t.IsConst() || known.count(t.symbol) > 0;
        ar.derived_adorned.adornment.bound.push_back(b);
      }
      AdornKey dkey{ar.derived_adorned.pred,
                    ar.derived_adorned.adornment.ToString()};
      if (!done.count(dkey)) worklist.push_back(ar.derived_adorned);
      out.rules.push_back(std::move(ar));
    }
  }
  return out;
}

bool IsChainProgram(const AdornedProgram& adorned) {
  // Note: condition (3) (a single connected prefix) is diagnostic only; a
  // prefix made of several groups, each anchored at bound head variables,
  // is still evaluated correctly (e.g. the bb-adorned same-generation
  // query). Equivalence (Lemma 6) needs only the variable-disjointness
  // condition below.
  for (const AdornedRule& r : adorned.rules) {
    if (!r.has_derived) continue;
    // Free head variables.
    std::unordered_set<SymbolId> free_head;
    for (size_t i = 0; i < r.head_literal.args.size(); ++i) {
      if (!r.head.adornment.bound[i] && r.head_literal.args[i].IsVar()) {
        free_head.insert(r.head_literal.args[i].symbol);
      }
    }
    for (const Literal& lit : r.prefix) {
      for (const Term& t : lit.args) {
        if (t.IsVar() && free_head.count(t.symbol)) return false;
      }
    }
  }
  return true;
}

}  // namespace binchain
