#include "transform/binarize.h"

#include <algorithm>

#include "datalog/printer.h"
#include "equations/lemma1.h"
#include "util/check.h"

namespace binchain {
namespace {

/// Head-argument subsequences at bound / free positions.
std::vector<Term> ArgsAt(const Literal& lit, const Adornment& a, bool bound) {
  std::vector<Term> out;
  for (size_t i = 0; i < lit.args.size(); ++i) {
    if (a.bound[i] == bound) out.push_back(lit.args[i]);
  }
  return out;
}

std::vector<SymbolId> AsVars(const std::vector<Term>& terms, bool* all_vars) {
  std::vector<SymbolId> out;
  *all_vars = true;
  for (const Term& t : terms) {
    if (!t.IsVar()) {
      *all_vars = false;
      continue;
    }
    out.push_back(t.symbol);
  }
  return out;
}

bool SameVarSequence(const std::vector<Term>& a, const std::vector<Term>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].IsVar() || !b[i].IsVar() || a[i].symbol != b[i].symbol) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<BinarizedProgram> Binarize(const AdornedProgram& adorned,
                                  SymbolTable& symbols) {
  BinarizedProgram out;
  out.is_chain = IsChainProgram(adorned);

  SymbolId var_u = symbols.Intern("U");
  SymbolId var_u1 = symbols.Intern("U1");
  SymbolId var_v1 = symbols.Intern("V1");
  SymbolId var_v = symbols.Intern("V");

  auto bin_name = [&](const AdornedPredicate& ap) {
    return symbols.Intern("bin~" + AdornedName(ap, symbols));
  };

  size_t rule_index = 0;
  for (const AdornedRule& r : adorned.rules) {
    std::string rule_tag =
        AdornedName(r.head, symbols) + "~r" + std::to_string(rule_index++);
    SymbolId head_bin = bin_name(r.head);

    std::vector<Term> xb = ArgsAt(r.head_literal, r.head.adornment, true);
    std::vector<Term> xf = ArgsAt(r.head_literal, r.head.adornment, false);
    bool all_vars = true;
    std::vector<SymbolId> xb_vars = AsVars(xb, &all_vars);
    if (!all_vars) {
      return Status::Unsupported("constants in rule heads are not supported");
    }

    if (!r.has_derived) {
      // base-r(t(Xb), t(Xf)) :- body;  bin-p(U, V) :- base-r(U, V).
      ViewDefinition view;
      view.name = symbols.Intern("base~" + rule_tag);
      view.body = r.prefix;  // all base literals live in the prefix
      view.input_vars = xb_vars;
      view.output_terms = xf;
      out.views.push_back(std::move(view));

      Rule bin_rule;
      bin_rule.head =
          Literal{head_bin, {Term::Var(var_u), Term::Var(var_v)}};
      bin_rule.body.push_back(
          Literal{out.views.back().name,
                  {Term::Var(var_u), Term::Var(var_v)}});
      out.bin_program.rules.push_back(std::move(bin_rule));
      continue;
    }

    std::vector<Term> zb = ArgsAt(r.derived, r.derived_adorned.adornment, true);
    std::vector<Term> zf =
        ArgsAt(r.derived, r.derived_adorned.adornment, false);
    bool zf_vars_ok = true;
    std::vector<SymbolId> zf_vars = AsVars(zf, &zf_vars_ok);
    if (!zf_vars_ok) {
      return Status::Internal(
          "constant at a free position of an adorned literal");
    }

    bool trivial_in = r.prefix.empty() && SameVarSequence(xb, zb);
    bool trivial_out = r.suffix.empty() && SameVarSequence(zf, xf);

    SymbolId in_name = 0, out_name = 0;
    if (!trivial_in) {
      ViewDefinition view;
      view.name = symbols.Intern("in~" + rule_tag);
      view.body = r.prefix;
      view.input_vars = xb_vars;
      view.output_terms = zb;
      in_name = view.name;
      out.views.push_back(std::move(view));
    }
    if (!trivial_out) {
      ViewDefinition view;
      view.name = symbols.Intern("out~" + rule_tag);
      view.body = r.suffix;
      view.input_vars = zf_vars;
      view.output_terms = xf;
      out_name = view.name;
      out.views.push_back(std::move(view));
    }

    // bin-p(U, V) :- [in-r(U, U1)], bin-q(U1, V1), [out-r(V1, V)].
    Rule bin_rule;
    bin_rule.head = Literal{head_bin, {Term::Var(var_u), Term::Var(var_v)}};
    Term left = Term::Var(var_u);
    Term right = Term::Var(var_v);
    Term mid_left = trivial_in ? left : Term::Var(var_u1);
    Term mid_right = trivial_out ? right : Term::Var(var_v1);
    if (!trivial_in) {
      bin_rule.body.push_back(Literal{in_name, {left, mid_left}});
    }
    bin_rule.body.push_back(
        Literal{bin_name(r.derived_adorned), {mid_left, mid_right}});
    if (!trivial_out) {
      bin_rule.body.push_back(Literal{out_name, {mid_right, right}});
    }
    out.bin_program.rules.push_back(std::move(bin_rule));
  }

  // Query translation: bin-q^a(t(constants), t(Yf)).
  out.query_pred = bin_name(adorned.query);
  for (size_t i = 0; i < adorned.query_literal.args.size(); ++i) {
    if (adorned.query.adornment.bound[i]) {
      out.bound_positions.push_back(i);
      out.query_input.push_back(adorned.query_literal.args[i].symbol);
    } else {
      out.free_positions.push_back(i);
    }
  }
  return out;
}

Result<TransformedQueryResult> EvaluateViaBinarization(
    const Program& program, Database& db, const Literal& query,
    const EvalOptions& options, bool allow_non_chain) {
  auto adorned = AdornProgram(program, db.symbols(), query);
  if (!adorned.ok()) return adorned.status();
  auto bin = Binarize(adorned.value(), db.symbols());
  if (!bin.ok()) return bin.status();
  const BinarizedProgram& bp = bin.value();
  if (!bp.is_chain && !allow_non_chain) {
    return Status::Unsupported(
        "the adorned program is not a chain program; the binary-chain "
        "transformation would not be equivalent (Lemma 6)");
  }

  auto eqs = TransformToEquations(bp.bin_program, db.symbols());
  if (!eqs.ok()) return eqs.status();

  ViewRegistry views(&db.symbols());
  std::vector<DemandJoinView*> view_ptrs;
  for (const ViewDefinition& vd : bp.views) {
    auto view = std::make_unique<DemandJoinView>(
        &db, &views.pool(), vd.body, vd.input_vars, vd.output_terms);
    view_ptrs.push_back(view.get());
    views.Register(vd.name, std::move(view));
  }

  Engine engine(&eqs.value().final_system, &views);
  TransformedQueryResult result;
  result.is_chain = bp.is_chain;
  result.bin_program_text = ProgramToString(bp.bin_program, db.symbols());

  TermId source = views.pool().InternTuple(bp.query_input);
  auto answers = engine.EvalFrom(bp.query_pred, source, options, &result.stats);
  if (!answers.ok()) return answers.status();
  for (DemandJoinView* v : view_ptrs) {
    if (!v->status().ok()) return v->status();
  }

  for (TermId y : answers.value()) {
    const Tuple& free_vals = views.pool().Get(y);
    BINCHAIN_CHECK(free_vals.size() == bp.free_positions.size());
    Tuple full(query.args.size(), 0);
    for (size_t i = 0; i < bp.bound_positions.size(); ++i) {
      full[bp.bound_positions[i]] = bp.query_input[i];
    }
    for (size_t i = 0; i < bp.free_positions.size(); ++i) {
      full[bp.free_positions[i]] = free_vals[i];
    }
    result.tuples.push_back(std::move(full));
  }
  std::sort(result.tuples.begin(), result.tuples.end());
  result.tuples.erase(
      std::unique(result.tuples.begin(), result.tuples.end()),
      result.tuples.end());
  return result;
}

}  // namespace binchain
