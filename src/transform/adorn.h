// Adorned-program construction (Section 4, following Beeri-Ramakrishnan
// sideways information passing): starting from the query's binding pattern,
// every derived predicate occurrence is annotated with a bound/free
// adornment, and each rule body is split around its (single) derived literal
// into a prefix of base literals connected to the bound head variables and a
// suffix of the remaining base literals — conditions (1)-(5) of the paper.
#ifndef BINCHAIN_TRANSFORM_ADORN_H_
#define BINCHAIN_TRANSFORM_ADORN_H_

#include <string>
#include <vector>

#include "datalog/ast.h"
#include "util/status.h"

namespace binchain {

struct Adornment {
  std::vector<bool> bound;  // one flag per argument position

  size_t BoundCount() const;
  std::string ToString() const;  // e.g. "bbff"

  friend bool operator==(const Adornment& a, const Adornment& b) {
    return a.bound == b.bound;
  }
};

struct AdornedPredicate {
  SymbolId pred;
  Adornment adornment;

  friend bool operator==(const AdornedPredicate& a, const AdornedPredicate& b) {
    return a.pred == b.pred && a.adornment == b.adornment;
  }
};

/// One adorned rule. The body is reordered as
///   prefix base literals (incl. built-ins), derived literal, suffix.
struct AdornedRule {
  AdornedPredicate head;
  Literal head_literal;            // original head (variables)
  std::vector<Literal> prefix;     // b_1 ... b_i
  bool has_derived = false;
  Literal derived;                 // q(Z)
  AdornedPredicate derived_adorned;  // q^d
  std::vector<Literal> suffix;     // b_{i+1} ... b_n

  /// True if the prefix literals form a single connected component among the
  /// base literals (condition (3)); multiple disconnected groups each
  /// touching bound variables violate it.
  bool prefix_connected = true;
};

struct AdornedProgram {
  AdornedPredicate query;
  Literal query_literal;
  std::vector<AdornedRule> rules;
};

/// Builds the adorned program for `program` under `query`'s binding pattern.
/// Requires a linear program in the paper's special form: at most one
/// derived literal per rule body.
Result<AdornedProgram> AdornProgram(const Program& program,
                                    const SymbolTable& symbols,
                                    const Literal& query);

/// The paper's chain condition (Lemma 6 / Theorem 7): in every adorned rule
/// with a derived literal, the variables of the prefix literals are disjoint
/// from the head variables designated free. Only chain programs are
/// faithfully evaluated by the binary-chain transformation.
bool IsChainProgram(const AdornedProgram& adorned);

/// Name mangling used when adorned predicates materialize as relations:
/// "sg" + bf -> "sg~bf".
std::string AdornedName(const AdornedPredicate& ap, const SymbolTable& symbols);

}  // namespace binchain

#endif  // BINCHAIN_TRANSFORM_ADORN_H_
