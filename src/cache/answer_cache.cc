#include "cache/answer_cache.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace binchain {
namespace cache {

namespace {

uint64_t Fnv1a(const void* data, size_t n, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

void CacheSnapshot::RenderJson(std::string* out) const {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"hits\": %llu, \"misses\": %llu, \"hit_rate\": %.4f, "
      "\"inserts\": %llu, \"evictions\": %llu, \"invalidations\": %llu, "
      "\"collapsed\": %llu, \"entries\": %llu, \"bytes\": %llu, "
      "\"max_bytes\": %llu, \"program_fingerprint\": \"0x%016llx\"}",
      static_cast<unsigned long long>(hits),
      static_cast<unsigned long long>(misses), HitRate(),
      static_cast<unsigned long long>(inserts),
      static_cast<unsigned long long>(evictions),
      static_cast<unsigned long long>(invalidations),
      static_cast<unsigned long long>(collapsed),
      static_cast<unsigned long long>(entries),
      static_cast<unsigned long long>(bytes),
      static_cast<unsigned long long>(max_bytes),
      static_cast<unsigned long long>(program_fingerprint));
  out->append(buf);
}

/// One cached answer plus the metadata validation and eviction need. Map
/// values are stable (unordered_map nodes), so the LRU lists hold plain
/// Entry pointers.
struct AnswerCache::Entry {
  std::string key;  // owned here; the map keys by string_view into it
  std::shared_ptr<const CachedAnswer> answer;
  std::vector<SupportDep> deps;
  /// Epoch the support set last validated clean against — the lookup
  /// fast path (stamp == batch epoch skips the per-dep walk).
  uint64_t validated_epoch = 0;
  size_t bytes = 0;
  bool in_protected = false;  // which LRU segment holds lru_it
  std::list<Entry*>::iterator lru_it;
};

/// One lock-striped slice of the key space: its own map and its own
/// segmented LRU, sized against max_bytes / kShards.
struct AnswerCache::Shard {
  std::mutex mu;
  std::unordered_map<std::string, Entry> entries;
  std::list<Entry*> probation;    // front = most recent
  std::list<Entry*> protected_;   // front = most recent
  size_t bytes = 0;
};

AnswerCache::AnswerCache(size_t max_bytes, uint64_t program_fingerprint)
    : max_bytes_(max_bytes == 0 ? 1 : max_bytes),
      fingerprint_(program_fingerprint),
      shards_(new Shard[kShards]) {
  obs::Registry& r = obs::Registry::Global();
  m_hits_ = r.GetCounter("binchain_cache_hits_total",
                         "Answer-cache lookups served from a valid entry");
  m_misses_ = r.GetCounter(
      "binchain_cache_misses_total",
      "Answer-cache lookups that missed (stale entries included)");
  m_inserts_ = r.GetCounter("binchain_cache_inserts_total",
                            "Answers materialized into the cache");
  m_evictions_ = r.GetCounter(
      "binchain_cache_evictions_total",
      "Entries evicted by the segmented-LRU byte cap");
  m_invalidations_ = r.GetCounter(
      "binchain_cache_invalidations_total",
      "Entries dropped because a supporting relation changed");
  m_collapsed_ = r.GetCounter(
      "binchain_cache_collapsed_total",
      "Identical concurrent misses coalesced onto an in-flight evaluation");
  m_bytes_ = r.GetGauge("binchain_cache_bytes",
                        "Resident answer-cache bytes (all caches)");
  m_entries_ = r.GetGauge("binchain_cache_entries",
                          "Resident answer-cache entries (all caches)");
  m_hit_latency_ = r.GetHistogram(
      "binchain_cache_hit_latency_ms",
      "Latency of cache-hit responses, submission to completion");
}

AnswerCache::~AnswerCache() {
  // Return this cache's residency to the global gauges: they aggregate
  // across caches, and a died-with-entries cache must not pin them high.
  Clear();
}

void AnswerCache::ObserveHitLatency(double ms) { m_hit_latency_->Observe(ms); }

uint64_t AnswerCache::HashTuples(const std::vector<Tuple>& tuples) {
  uint64_t h = 1469598103934665603ull;
  uint64_t n = tuples.size();
  h = Fnv1a(&n, sizeof(n), h);
  for (const Tuple& t : tuples) {
    for (SymbolId c : t) h = Fnv1a(&c, sizeof(c), h);
  }
  return h;
}

AnswerCache::Shard& AnswerCache::ShardFor(const std::string& key) {
  uint64_t h = Fnv1a(key.data(), key.size(), 1469598103934665603ull);
  return shards_[h % kShards];
}

bool AnswerCache::Valid(const Entry& e, const Database& db) {
  for (const SupportDep& d : e.deps) {
    const Relation* now = db.FindById(d.pred);
    if (now != d.rel.get()) return false;
    if (now != nullptr && now->dead_mutations() != d.dead_mutations) {
      // Defensive: copy-on-write already replaces the object on every
      // retraction, but the counter check keeps the invalidation rule
      // honest against any future in-place dead-set mutation.
      return false;
    }
  }
  return true;
}

size_t AnswerCache::EntryBytes(const std::string& key, const Entry& e) {
  size_t bytes = sizeof(Entry) + key.size() + sizeof(CachedAnswer);
  bytes += e.deps.size() * sizeof(SupportDep);
  if (e.answer != nullptr) {
    bytes += e.answer->tuples.size() * sizeof(Tuple);
    for (const Tuple& t : e.answer->tuples) bytes += t.size() * sizeof(SymbolId);
  }
  return bytes;
}

void AnswerCache::EraseLocked(Shard& s, Entry* e) {
  if (e->in_protected) {
    s.protected_.erase(e->lru_it);
  } else {
    s.probation.erase(e->lru_it);
  }
  s.bytes -= e->bytes;
  m_bytes_->Add(-static_cast<int64_t>(e->bytes));
  m_entries_->Add(-1);
  // Local copy: e->key lives inside the node erase() destroys.
  const std::string key = e->key;
  s.entries.erase(key);
}

void AnswerCache::EvictLocked(Shard& s) {
  const size_t cap = max_bytes_ / kShards;
  while (s.bytes > cap && !(s.probation.empty() && s.protected_.empty())) {
    Entry* victim =
        !s.probation.empty() ? s.probation.back() : s.protected_.back();
    EraseLocked(s, victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    m_evictions_->Inc();
  }
}

std::shared_ptr<const CachedAnswer> AnswerCache::Lookup(
    const std::string& key, const Database& db) {
  Shard& s = ShardFor(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.entries.find(key);
  if (it == s.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    m_misses_->Inc();
    return nullptr;
  }
  Entry& e = it->second;
  if (e.validated_epoch != db.epoch()) {
    if (!Valid(e, db)) {
      EraseLocked(s, &e);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      m_invalidations_->Inc();
      misses_.fetch_add(1, std::memory_order_relaxed);
      m_misses_->Inc();
      return nullptr;
    }
    e.validated_epoch = db.epoch();
  }
  // Segmented-LRU promotion: a probation re-hit earns protected status; a
  // protected hit just refreshes recency.
  if (e.in_protected) {
    s.protected_.splice(s.protected_.begin(), s.protected_, e.lru_it);
  } else {
    s.probation.erase(e.lru_it);
    s.protected_.push_front(&e);
    e.lru_it = s.protected_.begin();
    e.in_protected = true;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  m_hits_->Inc();
  return e.answer;
}

void AnswerCache::Insert(const std::string& key, std::vector<SupportDep> deps,
                         std::shared_ptr<const CachedAnswer> answer,
                         uint64_t epoch) {
  Shard& s = ShardFor(key);
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.entries.count(key) != 0) return;  // racing identical insert: keep first
  Entry e;
  e.key = key;
  e.answer = std::move(answer);
  e.deps = std::move(deps);
  e.validated_epoch = epoch;
  e.bytes = EntryBytes(key, e);
  if (e.bytes > max_bytes_ / kShards) return;  // larger than its whole shard
  auto it = s.entries.emplace(key, std::move(e)).first;
  Entry& stored = it->second;
  s.probation.push_front(&stored);
  stored.lru_it = s.probation.begin();
  s.bytes += stored.bytes;
  m_bytes_->Add(static_cast<int64_t>(stored.bytes));
  m_entries_->Add(1);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  m_inserts_->Inc();
  EvictLocked(s);
}

void AnswerCache::OnPublish(const Database& tip) {
  for (size_t i = 0; i < kShards; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lock(s.mu);
    for (auto it = s.entries.begin(); it != s.entries.end();) {
      Entry& e = it->second;
      ++it;  // EraseLocked invalidates e's iterator, not the successor
      if (Valid(e, tip)) {
        e.validated_epoch = tip.epoch();
      } else {
        EraseLocked(s, &e);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        m_invalidations_->Inc();
      }
    }
  }
}

AnswerCache::FlightDecision AnswerCache::JoinFlight(
    const std::string& key, uint64_t epoch, std::shared_ptr<void> waiter) {
  std::lock_guard<std::mutex> lock(flight_mu_);
  auto it = flights_.find(key);
  if (it == flights_.end()) {
    Flight f;
    f.epoch = epoch;
    flights_.emplace(key, std::move(f));
    return FlightDecision::kLeader;
  }
  if (it->second.epoch != epoch) {
    // A leader is mid-evaluation on another epoch (publish raced the
    // batch); its answer would be wrong for this epoch, so evaluate
    // independently rather than stall behind it.
    return FlightDecision::kStandalone;
  }
  it->second.waiters.push_back(std::move(waiter));
  collapsed_.fetch_add(1, std::memory_order_relaxed);
  m_collapsed_->Inc();
  return FlightDecision::kJoined;
}

std::vector<std::shared_ptr<void>> AnswerCache::FinishFlight(
    const std::string& key, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(flight_mu_);
  auto it = flights_.find(key);
  if (it == flights_.end() || it->second.epoch != epoch) return {};
  std::vector<std::shared_ptr<void>> waiters =
      std::move(it->second.waiters);
  flights_.erase(it);
  return waiters;
}

void AnswerCache::NoteCollapsed() {
  collapsed_.fetch_add(1, std::memory_order_relaxed);
  m_collapsed_->Inc();
}

void AnswerCache::Clear() {
  for (size_t i = 0; i < kShards; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lock(s.mu);
    m_bytes_->Add(-static_cast<int64_t>(s.bytes));
    m_entries_->Add(-static_cast<int64_t>(s.entries.size()));
    s.probation.clear();
    s.protected_.clear();
    s.entries.clear();
    s.bytes = 0;
  }
}

CacheSnapshot AnswerCache::Snapshot() const {
  CacheSnapshot snap;
  snap.hits = hits_.load(std::memory_order_relaxed);
  snap.misses = misses_.load(std::memory_order_relaxed);
  snap.inserts = inserts_.load(std::memory_order_relaxed);
  snap.evictions = evictions_.load(std::memory_order_relaxed);
  snap.invalidations = invalidations_.load(std::memory_order_relaxed);
  snap.collapsed = collapsed_.load(std::memory_order_relaxed);
  snap.max_bytes = max_bytes_;
  snap.program_fingerprint = fingerprint_;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lock(s.mu);
    snap.entries += s.entries.size();
    snap.bytes += s.bytes;
  }
  return snap;
}

}  // namespace cache
}  // namespace binchain
