// Sharded exact-match answer cache for the query service.
//
// Results are immutable within an epoch, and under a skewed workload the
// same chain queries arrive over and over: the cache stores one
// materialized answer set per (program fingerprint, predicate, binding)
// key so a repeat is served on the caller thread in microseconds instead
// of paying the full queue + traversal round trip. Three load-bearing
// mechanisms:
//
//  * Epoch-scoped invalidation. Every entry records its *support set* —
//    the base (EDB) relations the query's evaluation can read, the same
//    TransitiveBasePreds dependency data EvalArtifacts uses — as pinned
//    shared_ptr<const Relation> handles plus their dead_mutations
//    counters. A lookup (or the publish-time sweep) re-validates the
//    entry against the batch's epoch by pointer equality: copy-on-write
//    guarantees any insert or retraction replaces the Relation object, so
//    pointer-shared relations keep their entries alive across publishes
//    and only entries whose support actually changed are dropped. The
//    shared_ptr pin makes the comparison ABA-safe (the old object cannot
//    be freed and its address reused while the entry holds it).
//
//  * Single-flight collapsing. Concurrent identical misses on one epoch
//    coalesce onto one in-flight evaluation: the first miss registers a
//    flight and evaluates; later misses park their (type-erased) waiter
//    state on the flight instead of submitting N redundant traversals.
//    The finishing leader takes the waiters back and fans the answer out,
//    each waiter still honoring its own deadline/cancel token.
//
//  * Bounded memory. Segmented LRU (probation -> protected) per shard
//    with per-entry byte accounting against a fixed cap: a new entry
//    lands in probation, a re-hit promotes it, eviction drains probation
//    tails first so one burst of one-shot queries cannot flush the
//    protected working set.
//
// Thread safety: every public method is safe from any thread. Shards are
// independently locked; the flight table has its own lock. Nothing here
// blocks on evaluation — the cache only stores finished answers.
#ifndef BINCHAIN_CACHE_ANSWER_CACHE_H_
#define BINCHAIN_CACHE_ANSWER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "eval/engine.h"
#include "storage/database.h"

namespace binchain {
namespace obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

namespace cache {

/// One materialized answer, shared between the cache and every response
/// replaying it (responses copy the tuples out; the shared_ptr only keeps
/// the entry's data alive past a concurrent eviction).
struct CachedAnswer {
  std::vector<Tuple> tuples;  // sorted, deduplicated — verbatim engine output
  EvalStats stats;            // replayed verbatim so batch totals stay
                              // byte-identical cache-on vs cache-off
  uint64_t fetches = 0;
  uint64_t result_hash = 0;  // FNV-1a over the tuples (see HashTuples)
};

/// One supporting relation of a cached entry: the relation object the
/// answer was computed from, pinned. `rel` may be null (the predicate had
/// no EDB relation at fill time — e.g. an unknown-constant empty answer);
/// the entry then stays valid exactly while the predicate remains absent.
struct SupportDep {
  SymbolId pred = 0;
  std::shared_ptr<const Relation> rel;
  uint64_t dead_mutations = 0;
};

/// Point-in-time cache statistics for /debug/cache, the CLI `cache`
/// command, and tests. Counters are per-cache (the process-wide
/// binchain_cache_* registry family aggregates across services).
struct CacheSnapshot {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;  // entries dropped by support-set changes
  uint64_t collapsed = 0;      // waiters coalesced onto in-flight leaders
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t max_bytes = 0;
  uint64_t program_fingerprint = 0;

  /// hits / (hits + misses), 0 when idle.
  double HitRate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  /// One JSON object (no trailing newline), appended to *out.
  void RenderJson(std::string* out) const;
};

class AnswerCache {
 public:
  /// `max_bytes` caps the summed per-entry byte accounting (keys, tuples,
  /// support sets, bookkeeping); must be > 0 — a service that wants no
  /// cache simply constructs none. `program_fingerprint` identifies the
  /// prepared program the keys were derived under (recorded in every key;
  /// see QueryService::CacheKey).
  AnswerCache(size_t max_bytes, uint64_t program_fingerprint);
  ~AnswerCache();  // out-of-line: Shard is incomplete here
  AnswerCache(const AnswerCache&) = delete;
  AnswerCache& operator=(const AnswerCache&) = delete;

  /// Exact-match lookup, validated against `db` (the epoch the requesting
  /// batch pinned). A stale entry — any support relation's pointer or
  /// dead_mutations counter differing in `db` — is dropped and reported
  /// as a miss. Returns the shared answer or nullptr.
  std::shared_ptr<const CachedAnswer> Lookup(const std::string& key,
                                             const Database& db);

  /// Inserts (or keeps — first writer wins on a racing double insert) the
  /// answer under `key` with its support set, accounted against the byte
  /// cap. `epoch` is the epoch the answer was computed on. Entries larger
  /// than the whole cache are not stored.
  void Insert(const std::string& key, std::vector<SupportDep> deps,
              std::shared_ptr<const CachedAnswer> answer, uint64_t epoch);

  /// Publish-time sweep: re-validates every entry against the new serving
  /// tip, dropping exactly the entries whose support set changed and
  /// re-stamping the survivors. Selective by construction — a publish
  /// that touched relation R invalidates only R-supported entries.
  /// Lookups self-validate too, so the swap -> sweep window is safe; the
  /// sweep's job is to release stale pins promptly and keep the
  /// invalidation counter meaningful per publish.
  void OnPublish(const Database& tip);

  /// Single-flight admission for a miss on (key, epoch).
  enum class FlightDecision {
    kLeader,      // no flight existed: caller must evaluate and finish it
    kJoined,      // waiter parked on the in-flight leader; do not evaluate
    kStandalone,  // a flight exists for a *different* epoch: evaluate
                  // independently, no flight bookkeeping
  };
  FlightDecision JoinFlight(const std::string& key, uint64_t epoch,
                            std::shared_ptr<void> waiter);

  /// Ends the flight the caller leads and returns its parked waiters (the
  /// caller fans the result out to them). Always call after kLeader, on
  /// every exit path — success, failure, or shed — or waiters leak.
  std::vector<std::shared_ptr<void>> FinishFlight(const std::string& key,
                                                  uint64_t epoch);

  /// Bumps the collapsed counters for one fanned-out waiter (in-batch
  /// dedup followers, counted at fan-out rather than join time).
  void NoteCollapsed();

  /// Records one cache-hit response latency into
  /// binchain_cache_hit_latency_ms.
  void ObserveHitLatency(double ms);

  /// Drops every entry (counters survive; flights are untouched).
  void Clear();

  CacheSnapshot Snapshot() const;
  uint64_t program_fingerprint() const { return fingerprint_; }
  size_t max_bytes() const { return max_bytes_; }

  /// FNV-1a over (count, symbols) of a tuple set — the stored
  /// result_hash, for /debug/cache and bench cross-checks.
  static uint64_t HashTuples(const std::vector<Tuple>& tuples);

 private:
  struct Entry;
  struct Shard;
  static constexpr size_t kShards = 8;

  Shard& ShardFor(const std::string& key);
  /// True when every dep still matches `db` (pointer + dead_mutations).
  static bool Valid(const Entry& e, const Database& db);
  /// Approximate resident footprint of one entry.
  static size_t EntryBytes(const std::string& key, const Entry& e);
  /// Unlinks + erases `e` from `s` (caller holds the shard lock).
  void EraseLocked(Shard& s, Entry* e);
  /// Evicts probation tails, then protected tails, until the shard is
  /// within its share of the byte cap.
  void EvictLocked(Shard& s);

  const size_t max_bytes_;
  const uint64_t fingerprint_;
  std::unique_ptr<Shard[]> shards_;

  struct Flight {
    uint64_t epoch = 0;
    std::vector<std::shared_ptr<void>> waiters;
  };
  std::mutex flight_mu_;
  std::unordered_map<std::string, Flight> flights_;

  // Per-cache counters (Snapshot) ...
  std::atomic<uint64_t> hits_{0}, misses_{0}, inserts_{0}, evictions_{0},
      invalidations_{0}, collapsed_{0};
  // ... mirrored into the process-wide binchain_cache_* registry family.
  obs::Counter* m_hits_;
  obs::Counter* m_misses_;
  obs::Counter* m_inserts_;
  obs::Counter* m_evictions_;
  obs::Counter* m_invalidations_;
  obs::Counter* m_collapsed_;
  obs::Gauge* m_bytes_;
  obs::Gauge* m_entries_;
  obs::Histogram* m_hit_latency_;
};

}  // namespace cache
}  // namespace binchain

#endif  // BINCHAIN_CACHE_ANSWER_CACHE_H_
