// Interning of *graph terms*. In the binary-chain engine a node is a pair
// (automaton state, term). For plain binary programs a term is one constant;
// after the Section-4 transformation a term is a tuple of constants, e.g.
// t(S, DT). The TermPool interns both shapes into dense TermIds so the
// traversal engine is oblivious to term structure.
#ifndef BINCHAIN_STORAGE_TERM_POOL_H_
#define BINCHAIN_STORAGE_TERM_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/tuple.h"

namespace binchain {

using TermId = uint32_t;

class TermPool {
 public:
  TermPool() = default;

  /// Interns a 1-constant term. Unary terms are the traversal hot path
  /// (every EDB edge enumeration interns its endpoint), so they resolve
  /// through a dense SymbolId-indexed cache instead of the tuple map.
  TermId Unary(SymbolId c) {
    if (c < unary_cache_.size() && unary_cache_[c] != kNoTerm) {
      return unary_cache_[c];
    }
    TermId id = InternTuple(Tuple{c});
    if (c >= unary_cache_.size()) unary_cache_.resize(c + 1, kNoTerm);
    unary_cache_[c] = id;
    return id;
  }

  /// Interns a constant-vector term (possibly empty: the Section-4 "t()"
  /// term produced when no arguments are bound/free).
  TermId InternTuple(const Tuple& t);

  const Tuple& Get(TermId id) const { return terms_[id]; }

  /// For 1-constant terms, the constant itself.
  SymbolId AsUnary(TermId id) const { return terms_[id][0]; }

  size_t size() const { return terms_.size(); }

 private:
  static constexpr TermId kNoTerm = 0xffffffffu;

  std::vector<Tuple> terms_;
  std::unordered_map<Tuple, TermId, TupleHash> index_;
  std::vector<TermId> unary_cache_;  // SymbolId -> TermId of its unary term
};

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_TERM_POOL_H_
