#include "storage/database.h"

#include <algorithm>

#include "util/check.h"

namespace binchain {

std::unique_ptr<Database> Database::BeginDelta(
    const std::shared_ptr<const Database>& base) {
  BINCHAIN_CHECK(base != nullptr);
  BINCHAIN_CHECK(base->frozen_);
  auto next = std::make_unique<Database>();
  next->epoch_ = base->epoch_ + 1;

  // Extend the symbol-id space: every id interned in any earlier epoch
  // keeps its meaning; only genuinely new spellings will be interned. The
  // flatten policy bounds lookup cost the same way Relation::Extend does.
  std::shared_ptr<const SymbolTable> base_syms = base->symbols_;
  if (Relation::ShouldFlatten(base_syms->chain_depth() + 1,
                              base_syms->size() - base_syms->root_size(),
                              base_syms->root_size(), kMaxSymbolChainDepth,
                              kFlattenMinSymbols)) {
    base_syms->FlattenInto(next->symbols_.get());
  } else {
    next->symbols_->ChainTo(std::move(base_syms));
  }

  // Share every relation; copy-on-write happens on first insert.
  next->relations_ = base->relations_;
  next->by_id_ = base->by_id_;
  next->names_ = base->names_;
  for (const std::string& name : next->names_) next->borrowed_.insert(name);
  return next;
}

Relation* Database::MutableRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) return nullptr;
  if (borrowed_.erase(name) > 0) {
    BINCHAIN_CHECK(!frozen_);
    it->second = Relation::Extend(it->second);
    auto id = symbols_->Find(name);
    BINCHAIN_CHECK(id.has_value());
    by_id_[*id] = it->second.get();
  }
  return it->second.get();
}

Relation& Database::GetOrCreate(std::string_view pred, size_t arity) {
  std::string key(pred);
  auto it = relations_.find(key);
  if (it != relations_.end()) {
    BINCHAIN_CHECK(it->second->arity() == arity);
    return *MutableRelation(key);
  }
  BINCHAIN_CHECK(!frozen_);
  auto rel = std::make_shared<Relation>(arity);
  Relation& ref = *rel;
  relations_.emplace(key, std::move(rel));
  by_id_.emplace(symbols_->Intern(pred), &ref);
  names_.push_back(key);
  return ref;
}

const Relation* Database::Find(std::string_view pred) const {
  auto it = relations_.find(std::string(pred));
  return it == relations_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const Relation> Database::FindSharedById(
    SymbolId pred) const {
  if (by_id_.find(pred) == by_id_.end()) return nullptr;
  auto it = relations_.find(symbols_->Name(pred));
  return it == relations_.end() ? nullptr : it->second;
}

Relation* Database::FindMutable(std::string_view pred) {
  return MutableRelation(std::string(pred));
}

bool Database::AddFact(std::string_view pred,
                       std::initializer_list<std::string_view> args) {
  Relation& rel = GetOrCreate(pred, args.size());
  Tuple t;
  t.reserve(args.size());
  for (std::string_view a : args) t.push_back(symbols_->Intern(a));
  return rel.Insert(t);
}

bool Database::AddFact(std::string_view pred,
                       const std::vector<std::string>& args) {
  Relation& rel = GetOrCreate(pred, args.size());
  Tuple t;
  t.reserve(args.size());
  for (const std::string& a : args) t.push_back(symbols_->Intern(a));
  return rel.Insert(t);
}

namespace {

/// Shared DeleteFact body over any arg range yielding string_views.
template <typename Args>
bool DeleteFactImpl(Database* db, const SymbolTable& symbols,
                    std::string_view pred, const Args& args, size_t nargs) {
  const Relation* rel = db->Find(pred);
  if (rel == nullptr || rel->arity() != nargs) return false;
  Tuple t;
  t.reserve(nargs);
  for (const auto& a : args) {
    auto id = symbols.Find(a);
    if (!id) return false;  // unknown constant: the fact cannot be present
    t.push_back(*id);
  }
  // Probe before copy-on-write: deleting an absent fact must not give the
  // epoch a delta layer.
  if (!rel->Contains(t)) return false;
  return db->FindMutable(pred)->Delete(t);
}

}  // namespace

bool Database::DeleteFact(std::string_view pred,
                          std::initializer_list<std::string_view> args) {
  return DeleteFactImpl(this, *symbols_, pred, args, args.size());
}

bool Database::DeleteFact(std::string_view pred,
                          const std::vector<std::string>& args) {
  return DeleteFactImpl(this, *symbols_, pred, args, args.size());
}

void Database::Freeze() {
  if (frozen_) return;
  // Layers inherited from the base epoch are frozen already; freezing only
  // what this epoch owns keeps Freeze O(delta) and, just as important,
  // write-free on storage that concurrent readers of older epochs hold.
  if (!symbols_->frozen()) symbols_->Freeze();
  for (auto& [name, rel] : relations_) {
    if (!rel->frozen()) rel->Freeze();
  }
  frozen_ = true;
}

void Database::Thaw() {
  // Artifacts describe the frozen contents; stale ones must not survive a
  // mutation window.
  artifact_.reset();
  // Borrowed layers belong to older epochs that may still be serving —
  // that goes for a re-shared symbol table exactly as for relations.
  if (!symbols_borrowed_) symbols_->Thaw();
  for (auto& [name, rel] : relations_) {
    if (borrowed_.count(name) == 0) rel->Thaw();
  }
  frozen_ = false;
}

void Database::PruneEmptyDeltas() {
  BINCHAIN_CHECK(!frozen_);
  for (auto& [name, rel] : relations_) {
    if (borrowed_.count(name) > 0) continue;
    // A layer that inserted nothing but *edited tombstones* is not empty —
    // its dead-set delta is the change — so the prune additionally requires
    // the mutation counter to match the base's. (Counting mutations, not
    // set size: a resurrect+delete pair keeps the cardinality while
    // changing the membership.)
    if (rel->base() != nullptr && rel->local_size() == 0 &&
        rel->dead_mutations() == rel->base()->dead_mutations()) {
      // Frozen base layers are immutable; re-sharing one as this epoch's
      // relation is read-only from here on (borrowed_ guards mutation).
      rel = std::const_pointer_cast<Relation>(rel->base());
      auto id = symbols_->Find(name);
      BINCHAIN_CHECK(id.has_value());
      by_id_[*id] = rel.get();
      borrowed_.insert(name);
    }
  }
  if (symbols_->local_size() == 0 && symbols_->base() != nullptr) {
    symbols_ = std::const_pointer_cast<SymbolTable>(symbols_->base());
    symbols_borrowed_ = true;
  }
}

uint64_t Database::TotalFetches() const {
  uint64_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel->fetch_count();
  return total;
}

void Database::ResetFetches() {
  for (auto& [name, rel] : relations_) rel->ResetFetchCount();
}

}  // namespace binchain
