#include "storage/database.h"

#include "util/check.h"

namespace binchain {

Relation& Database::GetOrCreate(std::string_view pred, size_t arity) {
  std::string key(pred);
  auto it = relations_.find(key);
  if (it != relations_.end()) {
    BINCHAIN_CHECK(it->second->arity() == arity);
    return *it->second;
  }
  BINCHAIN_CHECK(!frozen_);
  auto rel = std::make_unique<Relation>(arity);
  Relation& ref = *rel;
  relations_.emplace(key, std::move(rel));
  by_id_.emplace(symbols_.Intern(pred), &ref);
  names_.push_back(key);
  return ref;
}

const Relation* Database::Find(std::string_view pred) const {
  auto it = relations_.find(std::string(pred));
  return it == relations_.end() ? nullptr : it->second.get();
}

Relation* Database::FindMutable(std::string_view pred) {
  auto it = relations_.find(std::string(pred));
  return it == relations_.end() ? nullptr : it->second.get();
}

void Database::AddFact(std::string_view pred,
                       std::initializer_list<std::string_view> args) {
  Relation& rel = GetOrCreate(pred, args.size());
  Tuple t;
  t.reserve(args.size());
  for (std::string_view a : args) t.push_back(symbols_.Intern(a));
  rel.Insert(t);
}

void Database::AddFact(std::string_view pred,
                       const std::vector<std::string>& args) {
  Relation& rel = GetOrCreate(pred, args.size());
  Tuple t;
  t.reserve(args.size());
  for (const std::string& a : args) t.push_back(symbols_.Intern(a));
  rel.Insert(t);
}

void Database::Freeze() {
  if (frozen_) return;
  symbols_.Freeze();
  for (auto& [name, rel] : relations_) rel->Freeze();
  frozen_ = true;
}

uint64_t Database::TotalFetches() const {
  uint64_t total = 0;
  for (const auto& [name, rel] : relations_) total += rel->fetch_count();
  return total;
}

void Database::ResetFetches() {
  for (auto& [name, rel] : relations_) rel->ResetFetchCount();
}

}  // namespace binchain
