// An n-ary relation: deduplicated tuple store with lazily built hash indexes
// for arbitrary bound-column masks. This is the "extensional database"
// retrieval mechanism the paper assumes (constant-time tuple access).
//
// Storage layout: all tuples live in one contiguous SymbolId arena, row i at
// arena[i*arity .. (i+1)*arity). Rows are handed out as TupleRef views — no
// per-tuple allocation, no copy on probe. Deduplication and the per-mask
// indexes are open-addressed tables over row ids whose hashes are computed
// directly from arena data, so neither insert nor probe materializes a key
// tuple. Indexes stay lazy: they absorb appended rows on next use
// (`indexed_upto` catch-up), preserving the paper's pay-as-you-go cost
// model.
#ifndef BINCHAIN_STORAGE_RELATION_H_
#define BINCHAIN_STORAGE_RELATION_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "storage/tuple.h"

namespace binchain {

/// Forward view over the rows of a Relation; iteration yields TupleRef.
/// (Compatible with `for (const Tuple& t : rel.tuples())`: the reference
/// binds to a lifetime-extended materialized temporary.)
class RowRange {
 public:
  class const_iterator {
   public:
    using value_type = TupleRef;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;
    using pointer = const TupleRef*;
    using reference = TupleRef;

    const_iterator(const SymbolId* base, size_t arity, size_t idx)
        : base_(base), arity_(arity), idx_(idx) {}
    TupleRef operator*() const {
      return TupleRef(base_ + idx_ * arity_, arity_);
    }
    const_iterator& operator++() {
      ++idx_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const const_iterator& o) const { return idx_ != o.idx_; }

   private:
    const SymbolId* base_;
    size_t arity_;
    size_t idx_;
  };

  RowRange(const SymbolId* base, size_t arity, size_t rows)
      : base_(base), arity_(arity), rows_(rows) {}

  const_iterator begin() const { return const_iterator(base_, arity_, 0); }
  const_iterator end() const { return const_iterator(base_, arity_, rows_); }
  size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  TupleRef operator[](size_t i) const {
    return TupleRef(base_ + i * arity_, arity_);
  }

 private:
  const SymbolId* base_;
  size_t arity_;
  size_t rows_;
};

/// Mutable set of same-arity tuples. Insertion preserves first-seen order
/// (tuples are addressed by dense row id), duplicates are ignored.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  RowRange tuples() const { return RowRange(arena_.data(), arity_, num_rows_); }
  TupleRef tuple(size_t i) const { return Row(static_cast<uint32_t>(i)); }

  /// Inserts `t`; returns true if it was new. Invalidates no indexes
  /// (indexes absorb appended tuples on next use).
  bool Insert(TupleRef t);

  bool Contains(TupleRef t) const;

  /// Enumerates rows matching `key` on the columns of `mask` (bit i set =>
  /// column i must equal key[i]; other key positions are ignored).
  /// `fn` receives a TupleRef per match (valid for the duration of the
  /// callback; also binds to `const Tuple&` by materializing a copy).
  /// Builds the mask's index on first use. Statically dispatched: the
  /// visitor type is known at the call site, so the per-tuple call inlines.
  template <typename Fn>
  void ForEachMatch(uint32_t mask, TupleRef key, Fn&& fn) const {
    if (mask == 0) {  // full scan, no index needed
      for (size_t r = 0; r < num_rows_; ++r) {
        ++fetches_;
        fn(Row(static_cast<uint32_t>(r)));
      }
      return;
    }
    const MaskIndex& idx = IndexFor(mask);
    for (uint32_t row = FindHead(idx, mask, key); row != kNoRow;
         row = idx.next[row]) {
      ++fetches_;
      fn(Row(row));
    }
  }

  /// Number of single-tuple retrievals served (the paper's `t`-cost unit).
  uint64_t fetch_count() const { return fetches_; }
  void ResetFetchCount() { fetches_ = 0; }

 private:
  static constexpr uint32_t kNoRow = 0xffffffffu;

  /// Open-addressed index for one bound-column mask. `slots`/`tails` hold
  /// the first/last row of each distinct key's chain; `next` threads rows
  /// sharing a key in insertion order.
  struct MaskIndex {
    uint32_t mask = 0;
    std::vector<uint32_t> slots;
    std::vector<uint32_t> tails;
    std::vector<uint32_t> next;
    size_t indexed_upto = 0;  // rows [0, indexed_upto) are indexed
    size_t used = 0;          // distinct keys (load-factor control)
  };

  TupleRef Row(uint32_t r) const {
    return TupleRef(arena_.data() + static_cast<size_t>(r) * arity_, arity_);
  }

  uint64_t HashMasked(uint32_t mask, const SymbolId* t) const;
  bool MaskedEquals(uint32_t mask, uint32_t row, const SymbolId* key) const;

  MaskIndex& IndexFor(uint32_t mask) const;
  void IndexInsert(MaskIndex& idx, uint32_t row) const;
  void IndexGrow(MaskIndex& idx, size_t rows_done) const;
  uint32_t FindHead(const MaskIndex& idx, uint32_t mask, TupleRef key) const;

  void DedupGrow();

  size_t arity_;
  size_t num_rows_ = 0;
  std::vector<SymbolId> arena_;    // row-major tuple storage
  std::vector<uint32_t> dedup_;    // open-addressed row set over full tuples
  size_t dedup_used_ = 0;
  // Few masks per relation: linear scan beats hashing. A deque keeps
  // MaskIndex references stable while nested ForEachMatch calls (recursive
  // joins) lazily create indexes for other masks.
  mutable std::deque<MaskIndex> indexes_;
  mutable uint64_t fetches_ = 0;
};

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_RELATION_H_
