// An n-ary relation: deduplicated tuple store with lazily built hash indexes
// for arbitrary bound-column masks. This is the "extensional database"
// retrieval mechanism the paper assumes (constant-time tuple access).
#ifndef BINCHAIN_STORAGE_RELATION_H_
#define BINCHAIN_STORAGE_RELATION_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/tuple.h"

namespace binchain {

/// Mutable set of same-arity tuples. Insertion preserves first-seen order
/// (tuples are addressed by dense index), duplicates are ignored.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }

  /// Inserts `t`; returns true if it was new. Invalidates no indexes
  /// (indexes absorb appended tuples on next use).
  bool Insert(const Tuple& t);

  bool Contains(const Tuple& t) const { return set_.count(t) > 0; }

  /// Enumerates tuples matching `key` on the columns of `mask` (bit i set =>
  /// column i must equal key[i]; other key positions are ignored).
  /// `fn` receives the matching tuple. Builds the mask's index on first use.
  void ForEachMatch(uint32_t mask, const Tuple& key,
                    const std::function<void(const Tuple&)>& fn) const;

  /// Number of single-tuple retrievals served (the paper's `t`-cost unit).
  uint64_t fetch_count() const { return fetches_; }
  void ResetFetchCount() { fetches_ = 0; }

 private:
  struct MaskIndex {
    std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> buckets;
    size_t indexed_upto = 0;  // tuples_[0..indexed_upto) are in buckets
  };

  Tuple KeyFor(uint32_t mask, const Tuple& t) const;
  MaskIndex& IndexFor(uint32_t mask) const;

  size_t arity_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> set_;
  mutable std::unordered_map<uint32_t, MaskIndex> indexes_;
  mutable uint64_t fetches_ = 0;
};

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_RELATION_H_
