// An n-ary relation: deduplicated tuple store with lazily built hash indexes
// for arbitrary bound-column masks. This is the "extensional database"
// retrieval mechanism the paper assumes (constant-time tuple access).
//
// Storage layout: all tuples live in one contiguous SymbolId arena, row i at
// arena[i*arity .. (i+1)*arity). Rows are handed out as TupleRef views — no
// per-tuple allocation, no copy on probe. Deduplication and the per-mask
// indexes are open-addressed tables over row ids whose hashes are computed
// directly from arena data, so neither insert nor probe materializes a key
// tuple. Indexes stay lazy: they absorb appended rows on next use
// (`indexed_upto` catch-up), preserving the paper's pay-as-you-go cost
// model.
//
// Delta layering (live-update subsystem): a Relation may be an *extension*
// of a frozen base relation (Relation::Extend). The extension stores only
// its own delta rows; global row ids [0, base->size()) resolve through the
// base chain, ids above it into the local arena. Probes (ForEachMatch,
// Contains) consult the base first, then the local layer, so enumeration
// order stays global insertion order. Base layers are immutable — an
// extension never writes through its base — which is what lets consecutive
// database epochs share unchanged storage. Chains are kept shallow by
// Extend's flatten policy (see kMaxChainDepth / kFlattenMinRows).
//
// Tombstone retraction: Delete(t) never rewrites the arena or any index —
// it records the tuple's *global row id* in this layer's dead set, and
// every read entry point (Contains, ForEachMatch, tuples()) filters dead
// rows at emission. The set is cumulative: Extend copies the base's dead
// set into the new layer, so a probe consults exactly one set (the top
// layer's) no matter how deep the chain, and older epochs keep serving
// their own (smaller) sets untouched. Keying by row id rather than tuple
// content makes delete-then-reinsert exact: Insert of a tombstoned tuple
// *resurrects* the existing physical row (erases the tombstone) instead of
// appending a duplicate, so row-id arithmetic — base_size() offsets, index
// chains, the CSR memos above — never sees two rows with one content.
// Flatten() drops dead rows for good (the compaction path), and size()
// deliberately stays physical so layer offsets keep their meaning;
// live_size() reports the serving cardinality.
//
// Concurrency: a Relation is single-writer until Freeze(). Freeze eagerly
// completes every lazy index (and pre-builds all bound-column masks for
// small arities), after which the read path — ForEachMatch, Contains,
// tuples() — touches no shared mutable state: lazy catch-up is disabled and
// fetch accounting moves to a thread-local counter, so any number of
// threads may probe a frozen relation concurrently. Thaw() re-opens a
// frozen relation for inserts (single-writer again); a later Freeze()
// completes only the index work for the appended rows (`indexed_upto`
// catch-up), not a rebuild. Thaw requires that no concurrent reader is
// still probing the relation — epochs that need old readers to survive use
// Extend() instead.
#ifndef BINCHAIN_STORAGE_RELATION_H_
#define BINCHAIN_STORAGE_RELATION_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "storage/tuple.h"
#include "util/check.h"

namespace binchain {

/// Forward view over the rows of a Relation; iteration yields TupleRef.
/// (Compatible with `for (const Tuple& t : rel.tuples())`: the reference
/// binds to a lifetime-extended materialized temporary.) A range covers the
/// whole base chain of a layered relation as a short run of contiguous
/// segments, bottom (oldest rows) first. A range built over a relation with
/// tombstones carries the (borrowed) dead set and skips dead rows during
/// iteration; size() then reports live rows only.
class RowRange {
 public:
  struct Segment {
    const SymbolId* base = nullptr;
    size_t rows = 0;
    size_t global_start = 0;  // global row id of this segment's first row
  };
  /// Base chain depth is bounded by Relation's flatten policy; one extra
  /// slot for the local layer.
  static constexpr size_t kMaxSegments = 10;

  class const_iterator {
   public:
    using value_type = TupleRef;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;
    using pointer = const TupleRef*;
    using reference = TupleRef;

    const_iterator(const RowRange* range, size_t seg, size_t idx)
        : range_(range), seg_(seg), idx_(idx) {
      SkipFiltered();
    }
    TupleRef operator*() const {
      const Segment& s = range_->segs_[seg_];
      return TupleRef(s.base + idx_ * range_->arity_, range_->arity_);
    }
    const_iterator& operator++() {
      ++idx_;
      SkipFiltered();
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return seg_ == o.seg_ && idx_ == o.idx_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    /// Advances past empty segments and tombstoned rows to the next live
    /// position (or end).
    void SkipFiltered() {
      while (seg_ < range_->num_segs_) {
        const Segment& s = range_->segs_[seg_];
        if (idx_ >= s.rows) {
          ++seg_;
          idx_ = 0;
          continue;
        }
        if (range_->dead_ != nullptr &&
            range_->dead_->count(
                static_cast<uint32_t>(s.global_start + idx_)) > 0) {
          ++idx_;
          continue;
        }
        break;
      }
      if (seg_ >= range_->num_segs_) idx_ = 0;  // canonical end position
    }
    const RowRange* range_;
    size_t seg_;
    size_t idx_;
  };

  /// Single-segment range. Every id in `dead` (borrowed; may be null) must
  /// fall inside [0, rows) — the contract Relation::tuples() guarantees by
  /// construction (a dead set only names rows of its own chain).
  RowRange(const SymbolId* base, size_t arity, size_t rows,
           const std::unordered_set<uint32_t>* dead = nullptr)
      : arity_(arity), dead_(dead) {
    segs_[0] = Segment{base, rows, 0};
    num_segs_ = 1;
    rows_ = rows;
  }
  /// Multi-segment range; `Append` segments bottom-first. Global row ids
  /// are assigned contiguously in append order, matching a chain walked
  /// bottom (oldest) first.
  explicit RowRange(size_t arity,
                    const std::unordered_set<uint32_t>* dead = nullptr)
      : arity_(arity), dead_(dead) {}
  void Append(const SymbolId* base, size_t rows) {
    BINCHAIN_CHECK(num_segs_ < kMaxSegments);
    segs_[num_segs_++] = Segment{base, rows, rows_};
    rows_ += rows;
  }

  const_iterator begin() const { return const_iterator(this, 0, 0); }
  const_iterator end() const { return const_iterator(this, num_segs_, 0); }
  /// Live rows (physical rows minus tombstones).
  size_t size() const {
    return rows_ - (dead_ == nullptr ? 0 : dead_->size());
  }
  bool empty() const { return size() == 0; }
  /// The i-th *live* row. O(1) without tombstones; with a dead set it
  /// degrades to a forward scan — fine for the diagnostic/test call sites,
  /// while the hot paths all iterate.
  TupleRef operator[](size_t i) const {
    if (dead_ == nullptr) {
      for (size_t s = 0; s < num_segs_; ++s) {
        if (i < segs_[s].rows) {
          return TupleRef(segs_[s].base + i * arity_, arity_);
        }
        i -= segs_[s].rows;
      }
      BINCHAIN_CHECK(false);
      return TupleRef(nullptr, 0);
    }
    for (const_iterator it = begin(); it != end(); ++it) {
      if (i == 0) return *it;
      --i;
    }
    BINCHAIN_CHECK(false);
    return TupleRef(nullptr, 0);
  }

 private:
  Segment segs_[kMaxSegments];
  size_t num_segs_ = 0;
  size_t arity_;
  size_t rows_ = 0;  // physical rows appended (dead rows included)
  const std::unordered_set<uint32_t>* dead_ = nullptr;  // borrowed
};

/// Mutable set of same-arity tuples. Insertion preserves first-seen order
/// (tuples are addressed by dense row id), duplicates are ignored.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  /// Delta extension of a frozen base: the new relation answers for every
  /// base row plus whatever is inserted into it, while storing (and later
  /// indexing) only the delta. When the accumulated deltas of `base`'s
  /// chain have grown past the flatten policy, returns a flattened
  /// standalone copy instead so probe cost and chain depth stay bounded
  /// (the O(total) copy is amortized against the rows that forced it).
  /// The result is unfrozen; `base` is shared, never copied, never written.
  static std::shared_ptr<Relation> Extend(std::shared_ptr<const Relation> base);

  /// A standalone (chain-free), unfrozen relation holding every row of this
  /// chain in global row order. For arities above kEagerFreezeArity the
  /// copy rebuilds an index for every mask any layer of the chain had
  /// indexed, so a later Freeze() cannot demote previously indexed probes
  /// to wide fallback scans.
  std::shared_ptr<Relation> Flatten() const;

  size_t arity() const { return arity_; }
  /// Physical rows of the whole chain, tombstoned rows included — the
  /// row-id space every layer offset and memo is expressed in. Serving
  /// cardinality is live_size().
  size_t size() const { return base_rows_ + num_rows_; }
  bool empty() const { return size() == 0; }

  /// Rows this chain actually serves (physical minus tombstoned).
  size_t live_size() const { return size() - dead_count(); }
  /// Tombstoned rows visible through this layer (cumulative over the
  /// chain; an older epoch's layer reports its own, smaller count).
  size_t dead_count() const { return dead_ == nullptr ? 0 : dead_->size(); }
  /// True if global row `row` is tombstoned as seen from this layer.
  bool RowDead(size_t row) const {
    return dead_ != nullptr &&
           dead_->count(static_cast<uint32_t>(row)) > 0;
  }
  /// Monotone count of tombstone-set edits over the chain's history
  /// (deletes *and* resurrections; inherited cumulatively like the set
  /// itself). Equal counts between a layer and its base prove the two dead
  /// sets are identical — the guard memo chaining needs, where dead_count()
  /// alone would be fooled by a resurrect+delete pair that keeps the
  /// cardinality while changing the membership.
  uint64_t dead_mutations() const { return dead_mutations_; }

  /// Rows inherited from the base chain (0 for standalone relations).
  size_t base_size() const { return base_rows_; }
  /// Rows stored in this layer only.
  size_t local_size() const { return num_rows_; }
  /// Layers above the standalone bottom of the chain.
  size_t chain_depth() const { return base_ ? base_->chain_depth() + 1 : 0; }
  /// Size of the standalone bottom layer (the last flatten point).
  size_t root_rows() const { return base_ ? base_->root_rows() : num_rows_; }
  const std::shared_ptr<const Relation>& base() const { return base_; }

  /// Live rows of the whole chain in global insertion order (tombstoned
  /// rows are skipped during iteration).
  RowRange tuples() const {
    const DeadSet* dead = DeadOrNull();
    if (base_ == nullptr) {
      return RowRange(arena_.data(), arity_, num_rows_, dead);
    }
    RowRange range(arity_, dead);
    AppendSegments(&range);
    return range;
  }
  /// *Physical* row `i` of the whole chain, in global insertion order —
  /// tombstones are not consulted (callers indexing the row-id space, e.g.
  /// the CSR memo builds, pair this with RowDead()).
  TupleRef tuple(size_t i) const {
    return i < base_rows_ ? base_->tuple(i)
                          : Row(static_cast<uint32_t>(i - base_rows_));
  }

  /// Inserts `t`; returns true if it was new anywhere in the chain. A
  /// tuple whose physical row is tombstoned is *resurrected* (the
  /// tombstone is erased, no row appended) and reported as new.
  /// Invalidates no indexes (indexes absorb appended tuples on next use).
  /// Aborts after Freeze().
  bool Insert(TupleRef t);

  /// Tombstones `t`'s row in this layer's dead set; returns true if the
  /// tuple was present and live (false: absent, or already tombstoned).
  /// The arena, the dedup table and every index are untouched — readers
  /// filter at emission. Aborts after Freeze(); base layers are never
  /// written (older epochs keep serving the row).
  bool Delete(TupleRef t);

  bool Contains(TupleRef t) const;

  /// Completes all lazy index work and forbids further mutation, making
  /// every read entry point safe for concurrent callers. Existing indexes
  /// are caught up to the last row; for arities up to kEagerFreezeArity
  /// every nonempty bound-column mask is pre-built so no query can demand a
  /// missing index later (wider relations fall back to a read-only filtered
  /// scan for masks never probed before the freeze — counted in
  /// ThreadWideScanCount). After Thaw()+Insert, a second Freeze() only
  /// indexes the appended rows (indexed_upto catch-up), never rebuilds.
  void Freeze();
  bool frozen() const { return frozen_; }

  /// Re-opens a frozen relation for inserts. Only this layer is thawed;
  /// base layers (if any) stay frozen and are never written. The caller
  /// must guarantee no concurrent reader still probes this relation —
  /// intended for exclusively-owned databases between serving windows.
  void Thaw() { frozen_ = false; }

  /// Enumerates rows matching `key` on the columns of `mask` (bit i set =>
  /// column i must equal key[i]; other key positions are ignored), base
  /// chain first so matches arrive in global insertion order.
  /// `fn` receives a TupleRef per match (valid for the duration of the
  /// callback; also binds to `const Tuple&` by materializing a copy).
  /// Builds the mask's index on first use; once frozen, never mutates —
  /// concurrent calls are safe. Statically dispatched: the visitor type is
  /// known at the call site, so the per-tuple call inlines.
  template <typename Fn>
  void ForEachMatch(uint32_t mask, TupleRef key, Fn&& fn) const {
    // The top layer's cumulative dead set filters the whole chain; layers
    // never consult their own (a base layer probed through an extension
    // must honor tombstones the extension added above it).
    MatchChain(mask, key, fn, DeadOrNull());
  }

  /// Number of single-tuple retrievals served (the paper's `t`-cost unit).
  /// Only advanced while unfrozen; frozen relations account fetches in the
  /// per-thread counter below instead.
  uint64_t fetch_count() const { return fetches_; }
  void ResetFetchCount() { fetches_ = 0; }

  /// Fetches served to the calling thread by *frozen* relations (all of
  /// them — the counter is global per thread, which is what a per-query
  /// delta needs). Complements fetch_count(): exactly one of the two moves
  /// per retrieval, so `TotalFetches() + ThreadFetchCount()` deltas count
  /// every fetch in both modes.
  static uint64_t ThreadFetchCount() { return tls_fetches_; }

  /// Read-only fallback scans taken by this thread because a frozen
  /// relation was probed on a mask it never indexed before the freeze (only
  /// possible for arity > kEagerFreezeArity). Each ForEachMatch that takes
  /// the scan path counts one per layer scanned. Surfaced per query as
  /// EvalStats::wide_mask_scans so silent index regressions are visible.
  static uint64_t ThreadWideScanCount() { return tls_wide_scans_; }

  /// Largest arity for which Freeze() pre-builds every mask index.
  static constexpr size_t kEagerFreezeArity = 4;

  /// Extend() flattens when the chain would exceed this many layers above
  /// the standalone bottom. Must stay below RowRange::kMaxSegments.
  static constexpr size_t kMaxChainDepth = 8;
  /// ... or when the chain's accumulated delta rows reach
  /// max(root_rows, kFlattenMinRows) — a doubling rule, so the O(total)
  /// flatten is amortized O(1) per delta row.
  static constexpr size_t kFlattenMinRows = 256;

  /// The shared amortization rule behind both caps, also used by the
  /// symbol-table compaction in Database::BeginDelta so the two policies
  /// can never drift apart: flatten a chain `depth` layers deep holding
  /// `delta` accumulated entries over a standalone bottom of `root`
  /// entries when it is deeper than `max_depth` or the delta has reached
  /// max(root, min_delta).
  static bool ShouldFlatten(size_t depth, size_t delta, size_t root,
                            size_t max_depth, size_t min_delta) {
    return depth > max_depth || delta >= std::max(root, min_delta);
  }

 private:
  static constexpr uint32_t kNoRow = 0xffffffffu;

  /// Tombstoned global row ids, as seen from this layer (cumulative: an
  /// extension starts from a copy of its base's set). Null when the chain
  /// has never seen a Delete — the common case, kept null so every hot
  /// path's filter is one pointer test.
  using DeadSet = std::unordered_set<uint32_t>;

  const DeadSet* DeadOrNull() const {
    return (dead_ != nullptr && !dead_->empty()) ? dead_.get() : nullptr;
  }

  /// ForEachMatch body with the top layer's dead set threaded through the
  /// chain recursion; each layer filters its local rows by global id
  /// (base_rows_ + local row). Skipped dead rows count no fetch: the
  /// chain's observable cost equals a freshly built relation without the
  /// deleted facts.
  template <typename Fn>
  void MatchChain(uint32_t mask, TupleRef key, Fn&& fn,
                  const DeadSet* dead) const {
    if (base_ != nullptr) base_->MatchChain(mask, key, fn, dead);
    auto alive = [&](uint32_t r) {
      return dead == nullptr ||
             dead->count(static_cast<uint32_t>(base_rows_ + r)) == 0;
    };
    if (mask == 0) {  // full scan, no index needed
      for (size_t r = 0; r < num_rows_; ++r) {
        if (!alive(static_cast<uint32_t>(r))) continue;
        CountFetch();
        fn(Row(static_cast<uint32_t>(r)));
      }
      return;
    }
    const MaskIndex* idx;
    if (frozen_) {
      idx = FrozenIndex(mask);
      if (idx == nullptr) {  // mask never indexed pre-freeze: read-only scan
        ++tls_wide_scans_;
        for (size_t r = 0; r < num_rows_; ++r) {
          if (MaskedEquals(mask, static_cast<uint32_t>(r), key.data()) &&
              alive(static_cast<uint32_t>(r))) {
            CountFetch();
            fn(Row(static_cast<uint32_t>(r)));
          }
        }
        return;
      }
    } else {
      idx = &IndexFor(mask);
    }
    for (uint32_t row = FindHead(*idx, mask, key); row != kNoRow;
         row = idx->next[row]) {
      if (!alive(row)) continue;
      CountFetch();
      fn(Row(row));
    }
  }

  /// Open-addressed index for one bound-column mask. `slots`/`tails` hold
  /// the first/last row of each distinct key's chain; `next` threads rows
  /// sharing a key in insertion order. Rows here are *local* (this layer's
  /// arena); each layer of a chain indexes only its own rows.
  struct MaskIndex {
    uint32_t mask = 0;
    std::vector<uint32_t> slots;
    std::vector<uint32_t> tails;
    std::vector<uint32_t> next;
    size_t indexed_upto = 0;  // rows [0, indexed_upto) are indexed
    size_t used = 0;          // distinct keys (load-factor control)
  };

  explicit Relation(std::shared_ptr<const Relation> base)
      : arity_(base->arity()),
        base_rows_(base->size()),
        base_(std::move(base)) {
    BINCHAIN_CHECK(base_->frozen());
    // Cumulative tombstones: start from the base's dead set so probes
    // through this layer consult exactly one set. The copy is O(dead),
    // charged to the deletes that created it; the base's own set stays
    // frozen for its epoch's readers.
    if (base_->dead_ != nullptr && !base_->dead_->empty()) {
      dead_ = std::make_unique<DeadSet>(*base_->dead_);
    }
    dead_mutations_ = base_->dead_mutations_;
  }

  TupleRef Row(uint32_t r) const {
    return TupleRef(arena_.data() + static_cast<size_t>(r) * arity_, arity_);
  }

  void AppendSegments(RowRange* range) const {
    if (base_ != nullptr) base_->AppendSegments(range);
    range->Append(arena_.data(), num_rows_);
  }

  void CountFetch() const {
    if (frozen_) {
      ++tls_fetches_;  // thread-local: no shared write on the frozen path
    } else {
      ++fetches_;
    }
  }

  /// Read-only index lookup for the frozen path; nullptr if the mask was
  /// never indexed before the freeze.
  const MaskIndex* FrozenIndex(uint32_t mask) const {
    for (const MaskIndex& ix : indexes_) {
      if (ix.mask == mask) {
        BINCHAIN_DCHECK(ix.indexed_upto == num_rows_);
        return &ix;
      }
    }
    return nullptr;
  }

  uint64_t HashMasked(uint32_t mask, const SymbolId* t) const;
  bool MaskedEquals(uint32_t mask, uint32_t row, const SymbolId* key) const;

  /// Physical lookup: global row id of `t` anywhere in the chain,
  /// tombstones ignored; kNoRow if the tuple was never inserted. Read-only
  /// (safe on frozen base layers).
  uint32_t FindRowRaw(TupleRef t) const;

  MaskIndex& IndexFor(uint32_t mask) const;
  void IndexInsert(MaskIndex& idx, uint32_t row) const;
  void IndexGrow(MaskIndex& idx, size_t rows_done) const;
  uint32_t FindHead(const MaskIndex& idx, uint32_t mask, TupleRef key) const;

  void DedupGrow();

  size_t arity_;
  size_t num_rows_ = 0;              // local rows (this layer's arena)
  size_t base_rows_ = 0;             // rows answered by the base chain
  std::shared_ptr<const Relation> base_;  // frozen; null for standalone
  std::vector<SymbolId> arena_;    // row-major tuple storage (local rows)
  /// Cumulative tombstoned global row ids (see DeadSet); null until the
  /// first Delete reaches this chain. Immutable once frozen.
  std::unique_ptr<DeadSet> dead_;
  uint64_t dead_mutations_ = 0;    // see dead_mutations()
  std::vector<uint32_t> dedup_;    // open-addressed row set over full tuples
  size_t dedup_used_ = 0;
  // Few masks per relation: linear scan beats hashing. A deque keeps
  // MaskIndex references stable while nested ForEachMatch calls (recursive
  // joins) lazily create indexes for other masks.
  mutable std::deque<MaskIndex> indexes_;
  mutable uint64_t fetches_ = 0;
  bool frozen_ = false;
  inline static thread_local uint64_t tls_fetches_ = 0;
  inline static thread_local uint64_t tls_wide_scans_ = 0;
};

static_assert(Relation::kMaxChainDepth + 1 < RowRange::kMaxSegments,
              "RowRange must fit every layer of a maximal chain");

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_RELATION_H_
