// An n-ary relation: deduplicated tuple store with lazily built hash indexes
// for arbitrary bound-column masks. This is the "extensional database"
// retrieval mechanism the paper assumes (constant-time tuple access).
//
// Storage layout: all tuples live in one contiguous SymbolId arena, row i at
// arena[i*arity .. (i+1)*arity). Rows are handed out as TupleRef views — no
// per-tuple allocation, no copy on probe. Deduplication and the per-mask
// indexes are open-addressed tables over row ids whose hashes are computed
// directly from arena data, so neither insert nor probe materializes a key
// tuple. Indexes stay lazy: they absorb appended rows on next use
// (`indexed_upto` catch-up), preserving the paper's pay-as-you-go cost
// model.
//
// Concurrency: a Relation is single-writer until Freeze(). Freeze eagerly
// completes every lazy index (and pre-builds all bound-column masks for
// small arities), after which the read path — ForEachMatch, Contains,
// tuples() — touches no shared mutable state: lazy catch-up is disabled and
// fetch accounting moves to a thread-local counter, so any number of
// threads may probe a frozen relation concurrently.
#ifndef BINCHAIN_STORAGE_RELATION_H_
#define BINCHAIN_STORAGE_RELATION_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "storage/tuple.h"
#include "util/check.h"

namespace binchain {

/// Forward view over the rows of a Relation; iteration yields TupleRef.
/// (Compatible with `for (const Tuple& t : rel.tuples())`: the reference
/// binds to a lifetime-extended materialized temporary.)
class RowRange {
 public:
  class const_iterator {
   public:
    using value_type = TupleRef;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;
    using pointer = const TupleRef*;
    using reference = TupleRef;

    const_iterator(const SymbolId* base, size_t arity, size_t idx)
        : base_(base), arity_(arity), idx_(idx) {}
    TupleRef operator*() const {
      return TupleRef(base_ + idx_ * arity_, arity_);
    }
    const_iterator& operator++() {
      ++idx_;
      return *this;
    }
    bool operator==(const const_iterator& o) const { return idx_ == o.idx_; }
    bool operator!=(const const_iterator& o) const { return idx_ != o.idx_; }

   private:
    const SymbolId* base_;
    size_t arity_;
    size_t idx_;
  };

  RowRange(const SymbolId* base, size_t arity, size_t rows)
      : base_(base), arity_(arity), rows_(rows) {}

  const_iterator begin() const { return const_iterator(base_, arity_, 0); }
  const_iterator end() const { return const_iterator(base_, arity_, rows_); }
  size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  TupleRef operator[](size_t i) const {
    return TupleRef(base_ + i * arity_, arity_);
  }

 private:
  const SymbolId* base_;
  size_t arity_;
  size_t rows_;
};

/// Mutable set of same-arity tuples. Insertion preserves first-seen order
/// (tuples are addressed by dense row id), duplicates are ignored.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  size_t arity() const { return arity_; }
  size_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  RowRange tuples() const { return RowRange(arena_.data(), arity_, num_rows_); }
  TupleRef tuple(size_t i) const { return Row(static_cast<uint32_t>(i)); }

  /// Inserts `t`; returns true if it was new. Invalidates no indexes
  /// (indexes absorb appended tuples on next use). Aborts after Freeze().
  bool Insert(TupleRef t);

  bool Contains(TupleRef t) const;

  /// Completes all lazy index work and forbids further mutation, making
  /// every read entry point safe for concurrent callers. Existing indexes
  /// are caught up to the last row; for arities up to kEagerFreezeArity
  /// every nonempty bound-column mask is pre-built so no query can demand a
  /// missing index later (wider relations fall back to a read-only filtered
  /// scan for masks never probed before the freeze). One-way.
  void Freeze();
  bool frozen() const { return frozen_; }

  /// Enumerates rows matching `key` on the columns of `mask` (bit i set =>
  /// column i must equal key[i]; other key positions are ignored).
  /// `fn` receives a TupleRef per match (valid for the duration of the
  /// callback; also binds to `const Tuple&` by materializing a copy).
  /// Builds the mask's index on first use; once frozen, never mutates —
  /// concurrent calls are safe. Statically dispatched: the visitor type is
  /// known at the call site, so the per-tuple call inlines.
  template <typename Fn>
  void ForEachMatch(uint32_t mask, TupleRef key, Fn&& fn) const {
    if (mask == 0) {  // full scan, no index needed
      for (size_t r = 0; r < num_rows_; ++r) {
        CountFetch();
        fn(Row(static_cast<uint32_t>(r)));
      }
      return;
    }
    const MaskIndex* idx;
    if (frozen_) {
      idx = FrozenIndex(mask);
      if (idx == nullptr) {  // mask never indexed pre-freeze: read-only scan
        for (size_t r = 0; r < num_rows_; ++r) {
          if (MaskedEquals(mask, static_cast<uint32_t>(r), key.data())) {
            CountFetch();
            fn(Row(static_cast<uint32_t>(r)));
          }
        }
        return;
      }
    } else {
      idx = &IndexFor(mask);
    }
    for (uint32_t row = FindHead(*idx, mask, key); row != kNoRow;
         row = idx->next[row]) {
      CountFetch();
      fn(Row(row));
    }
  }

  /// Number of single-tuple retrievals served (the paper's `t`-cost unit).
  /// Only advanced while unfrozen; frozen relations account fetches in the
  /// per-thread counter below instead.
  uint64_t fetch_count() const { return fetches_; }
  void ResetFetchCount() { fetches_ = 0; }

  /// Fetches served to the calling thread by *frozen* relations (all of
  /// them — the counter is global per thread, which is what a per-query
  /// delta needs). Complements fetch_count(): exactly one of the two moves
  /// per retrieval, so `TotalFetches() + ThreadFetchCount()` deltas count
  /// every fetch in both modes.
  static uint64_t ThreadFetchCount() { return tls_fetches_; }

  /// Largest arity for which Freeze() pre-builds every mask index.
  static constexpr size_t kEagerFreezeArity = 4;

 private:
  static constexpr uint32_t kNoRow = 0xffffffffu;

  /// Open-addressed index for one bound-column mask. `slots`/`tails` hold
  /// the first/last row of each distinct key's chain; `next` threads rows
  /// sharing a key in insertion order.
  struct MaskIndex {
    uint32_t mask = 0;
    std::vector<uint32_t> slots;
    std::vector<uint32_t> tails;
    std::vector<uint32_t> next;
    size_t indexed_upto = 0;  // rows [0, indexed_upto) are indexed
    size_t used = 0;          // distinct keys (load-factor control)
  };

  TupleRef Row(uint32_t r) const {
    return TupleRef(arena_.data() + static_cast<size_t>(r) * arity_, arity_);
  }

  void CountFetch() const {
    if (frozen_) {
      ++tls_fetches_;  // thread-local: no shared write on the frozen path
    } else {
      ++fetches_;
    }
  }

  /// Read-only index lookup for the frozen path; nullptr if the mask was
  /// never indexed before the freeze.
  const MaskIndex* FrozenIndex(uint32_t mask) const {
    for (const MaskIndex& ix : indexes_) {
      if (ix.mask == mask) {
        BINCHAIN_DCHECK(ix.indexed_upto == num_rows_);
        return &ix;
      }
    }
    return nullptr;
  }

  uint64_t HashMasked(uint32_t mask, const SymbolId* t) const;
  bool MaskedEquals(uint32_t mask, uint32_t row, const SymbolId* key) const;

  MaskIndex& IndexFor(uint32_t mask) const;
  void IndexInsert(MaskIndex& idx, uint32_t row) const;
  void IndexGrow(MaskIndex& idx, size_t rows_done) const;
  uint32_t FindHead(const MaskIndex& idx, uint32_t mask, TupleRef key) const;

  void DedupGrow();

  size_t arity_;
  size_t num_rows_ = 0;
  std::vector<SymbolId> arena_;    // row-major tuple storage
  std::vector<uint32_t> dedup_;    // open-addressed row set over full tuples
  size_t dedup_used_ = 0;
  // Few masks per relation: linear scan beats hashing. A deque keeps
  // MaskIndex references stable while nested ForEachMatch calls (recursive
  // joins) lazily create indexes for other masks.
  mutable std::deque<MaskIndex> indexes_;
  mutable uint64_t fetches_ = 0;
  bool frozen_ = false;
  inline static thread_local uint64_t tls_fetches_ = 0;
};

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_RELATION_H_
