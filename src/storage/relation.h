// An n-ary relation: deduplicated tuple store with lazily built hash indexes
// for arbitrary bound-column masks. This is the "extensional database"
// retrieval mechanism the paper assumes (constant-time tuple access).
//
// Storage layout: all tuples live in one contiguous SymbolId arena, row i at
// arena[i*arity .. (i+1)*arity). Rows are handed out as TupleRef views — no
// per-tuple allocation, no copy on probe. Deduplication and the per-mask
// indexes are open-addressed tables over row ids whose hashes are computed
// directly from arena data, so neither insert nor probe materializes a key
// tuple. Indexes stay lazy: they absorb appended rows on next use
// (`indexed_upto` catch-up), preserving the paper's pay-as-you-go cost
// model.
//
// Delta layering (live-update subsystem): a Relation may be an *extension*
// of a frozen base relation (Relation::Extend). The extension stores only
// its own delta rows; global row ids [0, base->size()) resolve through the
// base chain, ids above it into the local arena. Probes (ForEachMatch,
// Contains) consult the base first, then the local layer, so enumeration
// order stays global insertion order. Base layers are immutable — an
// extension never writes through its base — which is what lets consecutive
// database epochs share unchanged storage. Chains are kept shallow by
// Extend's flatten policy (see kMaxChainDepth / kFlattenMinRows).
//
// Concurrency: a Relation is single-writer until Freeze(). Freeze eagerly
// completes every lazy index (and pre-builds all bound-column masks for
// small arities), after which the read path — ForEachMatch, Contains,
// tuples() — touches no shared mutable state: lazy catch-up is disabled and
// fetch accounting moves to a thread-local counter, so any number of
// threads may probe a frozen relation concurrently. Thaw() re-opens a
// frozen relation for inserts (single-writer again); a later Freeze()
// completes only the index work for the appended rows (`indexed_upto`
// catch-up), not a rebuild. Thaw requires that no concurrent reader is
// still probing the relation — epochs that need old readers to survive use
// Extend() instead.
#ifndef BINCHAIN_STORAGE_RELATION_H_
#define BINCHAIN_STORAGE_RELATION_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "storage/tuple.h"
#include "util/check.h"

namespace binchain {

/// Forward view over the rows of a Relation; iteration yields TupleRef.
/// (Compatible with `for (const Tuple& t : rel.tuples())`: the reference
/// binds to a lifetime-extended materialized temporary.) A range covers the
/// whole base chain of a layered relation as a short run of contiguous
/// segments, bottom (oldest rows) first.
class RowRange {
 public:
  struct Segment {
    const SymbolId* base = nullptr;
    size_t rows = 0;
  };
  /// Base chain depth is bounded by Relation's flatten policy; one extra
  /// slot for the local layer.
  static constexpr size_t kMaxSegments = 10;

  class const_iterator {
   public:
    using value_type = TupleRef;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;
    using pointer = const TupleRef*;
    using reference = TupleRef;

    const_iterator(const RowRange* range, size_t seg, size_t idx)
        : range_(range), seg_(seg), idx_(idx) {
      SkipEmpty();
    }
    TupleRef operator*() const {
      const Segment& s = range_->segs_[seg_];
      return TupleRef(s.base + idx_ * range_->arity_, range_->arity_);
    }
    const_iterator& operator++() {
      ++idx_;
      if (idx_ >= range_->segs_[seg_].rows) {
        ++seg_;
        idx_ = 0;
        SkipEmpty();
      }
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return seg_ == o.seg_ && idx_ == o.idx_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    void SkipEmpty() {
      while (seg_ < range_->num_segs_ && range_->segs_[seg_].rows == 0) {
        ++seg_;
      }
    }
    const RowRange* range_;
    size_t seg_;
    size_t idx_;
  };

  RowRange(const SymbolId* base, size_t arity, size_t rows) : arity_(arity) {
    segs_[0] = Segment{base, rows};
    num_segs_ = 1;
    rows_ = rows;
  }
  /// Multi-segment range; `Append` segments bottom-first.
  explicit RowRange(size_t arity) : arity_(arity) {}
  void Append(const SymbolId* base, size_t rows) {
    BINCHAIN_CHECK(num_segs_ < kMaxSegments);
    segs_[num_segs_++] = Segment{base, rows};
    rows_ += rows;
  }

  const_iterator begin() const { return const_iterator(this, 0, 0); }
  const_iterator end() const { return const_iterator(this, num_segs_, 0); }
  size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  TupleRef operator[](size_t i) const {
    for (size_t s = 0; s < num_segs_; ++s) {
      if (i < segs_[s].rows) {
        return TupleRef(segs_[s].base + i * arity_, arity_);
      }
      i -= segs_[s].rows;
    }
    BINCHAIN_CHECK(false);
    return TupleRef(nullptr, 0);
  }

 private:
  Segment segs_[kMaxSegments];
  size_t num_segs_ = 0;
  size_t arity_;
  size_t rows_ = 0;
};

/// Mutable set of same-arity tuples. Insertion preserves first-seen order
/// (tuples are addressed by dense row id), duplicates are ignored.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity) {}

  /// Delta extension of a frozen base: the new relation answers for every
  /// base row plus whatever is inserted into it, while storing (and later
  /// indexing) only the delta. When the accumulated deltas of `base`'s
  /// chain have grown past the flatten policy, returns a flattened
  /// standalone copy instead so probe cost and chain depth stay bounded
  /// (the O(total) copy is amortized against the rows that forced it).
  /// The result is unfrozen; `base` is shared, never copied, never written.
  static std::shared_ptr<Relation> Extend(std::shared_ptr<const Relation> base);

  /// A standalone (chain-free), unfrozen relation holding every row of this
  /// chain in global row order. For arities above kEagerFreezeArity the
  /// copy rebuilds an index for every mask any layer of the chain had
  /// indexed, so a later Freeze() cannot demote previously indexed probes
  /// to wide fallback scans.
  std::shared_ptr<Relation> Flatten() const;

  size_t arity() const { return arity_; }
  size_t size() const { return base_rows_ + num_rows_; }
  bool empty() const { return size() == 0; }

  /// Rows inherited from the base chain (0 for standalone relations).
  size_t base_size() const { return base_rows_; }
  /// Rows stored in this layer only.
  size_t local_size() const { return num_rows_; }
  /// Layers above the standalone bottom of the chain.
  size_t chain_depth() const { return base_ ? base_->chain_depth() + 1 : 0; }
  /// Size of the standalone bottom layer (the last flatten point).
  size_t root_rows() const { return base_ ? base_->root_rows() : num_rows_; }
  const std::shared_ptr<const Relation>& base() const { return base_; }

  RowRange tuples() const {
    if (base_ == nullptr) {
      return RowRange(arena_.data(), arity_, num_rows_);
    }
    RowRange range(arity_);
    AppendSegments(&range);
    return range;
  }
  /// Row `i` of the whole chain, in global insertion order.
  TupleRef tuple(size_t i) const {
    return i < base_rows_ ? base_->tuple(i)
                          : Row(static_cast<uint32_t>(i - base_rows_));
  }

  /// Inserts `t`; returns true if it was new anywhere in the chain.
  /// Invalidates no indexes (indexes absorb appended tuples on next use).
  /// Aborts after Freeze().
  bool Insert(TupleRef t);

  bool Contains(TupleRef t) const;

  /// Completes all lazy index work and forbids further mutation, making
  /// every read entry point safe for concurrent callers. Existing indexes
  /// are caught up to the last row; for arities up to kEagerFreezeArity
  /// every nonempty bound-column mask is pre-built so no query can demand a
  /// missing index later (wider relations fall back to a read-only filtered
  /// scan for masks never probed before the freeze — counted in
  /// ThreadWideScanCount). After Thaw()+Insert, a second Freeze() only
  /// indexes the appended rows (indexed_upto catch-up), never rebuilds.
  void Freeze();
  bool frozen() const { return frozen_; }

  /// Re-opens a frozen relation for inserts. Only this layer is thawed;
  /// base layers (if any) stay frozen and are never written. The caller
  /// must guarantee no concurrent reader still probes this relation —
  /// intended for exclusively-owned databases between serving windows.
  void Thaw() { frozen_ = false; }

  /// Enumerates rows matching `key` on the columns of `mask` (bit i set =>
  /// column i must equal key[i]; other key positions are ignored), base
  /// chain first so matches arrive in global insertion order.
  /// `fn` receives a TupleRef per match (valid for the duration of the
  /// callback; also binds to `const Tuple&` by materializing a copy).
  /// Builds the mask's index on first use; once frozen, never mutates —
  /// concurrent calls are safe. Statically dispatched: the visitor type is
  /// known at the call site, so the per-tuple call inlines.
  template <typename Fn>
  void ForEachMatch(uint32_t mask, TupleRef key, Fn&& fn) const {
    if (base_ != nullptr) base_->ForEachMatch(mask, key, fn);
    if (mask == 0) {  // full scan, no index needed
      for (size_t r = 0; r < num_rows_; ++r) {
        CountFetch();
        fn(Row(static_cast<uint32_t>(r)));
      }
      return;
    }
    const MaskIndex* idx;
    if (frozen_) {
      idx = FrozenIndex(mask);
      if (idx == nullptr) {  // mask never indexed pre-freeze: read-only scan
        ++tls_wide_scans_;
        for (size_t r = 0; r < num_rows_; ++r) {
          if (MaskedEquals(mask, static_cast<uint32_t>(r), key.data())) {
            CountFetch();
            fn(Row(static_cast<uint32_t>(r)));
          }
        }
        return;
      }
    } else {
      idx = &IndexFor(mask);
    }
    for (uint32_t row = FindHead(*idx, mask, key); row != kNoRow;
         row = idx->next[row]) {
      CountFetch();
      fn(Row(row));
    }
  }

  /// Number of single-tuple retrievals served (the paper's `t`-cost unit).
  /// Only advanced while unfrozen; frozen relations account fetches in the
  /// per-thread counter below instead.
  uint64_t fetch_count() const { return fetches_; }
  void ResetFetchCount() { fetches_ = 0; }

  /// Fetches served to the calling thread by *frozen* relations (all of
  /// them — the counter is global per thread, which is what a per-query
  /// delta needs). Complements fetch_count(): exactly one of the two moves
  /// per retrieval, so `TotalFetches() + ThreadFetchCount()` deltas count
  /// every fetch in both modes.
  static uint64_t ThreadFetchCount() { return tls_fetches_; }

  /// Read-only fallback scans taken by this thread because a frozen
  /// relation was probed on a mask it never indexed before the freeze (only
  /// possible for arity > kEagerFreezeArity). Each ForEachMatch that takes
  /// the scan path counts one per layer scanned. Surfaced per query as
  /// EvalStats::wide_mask_scans so silent index regressions are visible.
  static uint64_t ThreadWideScanCount() { return tls_wide_scans_; }

  /// Largest arity for which Freeze() pre-builds every mask index.
  static constexpr size_t kEagerFreezeArity = 4;

  /// Extend() flattens when the chain would exceed this many layers above
  /// the standalone bottom. Must stay below RowRange::kMaxSegments.
  static constexpr size_t kMaxChainDepth = 8;
  /// ... or when the chain's accumulated delta rows reach
  /// max(root_rows, kFlattenMinRows) — a doubling rule, so the O(total)
  /// flatten is amortized O(1) per delta row.
  static constexpr size_t kFlattenMinRows = 256;

  /// The shared amortization rule behind both caps, also used by the
  /// symbol-table compaction in Database::BeginDelta so the two policies
  /// can never drift apart: flatten a chain `depth` layers deep holding
  /// `delta` accumulated entries over a standalone bottom of `root`
  /// entries when it is deeper than `max_depth` or the delta has reached
  /// max(root, min_delta).
  static bool ShouldFlatten(size_t depth, size_t delta, size_t root,
                            size_t max_depth, size_t min_delta) {
    return depth > max_depth || delta >= std::max(root, min_delta);
  }

 private:
  static constexpr uint32_t kNoRow = 0xffffffffu;

  /// Open-addressed index for one bound-column mask. `slots`/`tails` hold
  /// the first/last row of each distinct key's chain; `next` threads rows
  /// sharing a key in insertion order. Rows here are *local* (this layer's
  /// arena); each layer of a chain indexes only its own rows.
  struct MaskIndex {
    uint32_t mask = 0;
    std::vector<uint32_t> slots;
    std::vector<uint32_t> tails;
    std::vector<uint32_t> next;
    size_t indexed_upto = 0;  // rows [0, indexed_upto) are indexed
    size_t used = 0;          // distinct keys (load-factor control)
  };

  explicit Relation(std::shared_ptr<const Relation> base)
      : arity_(base->arity()),
        base_rows_(base->size()),
        base_(std::move(base)) {
    BINCHAIN_CHECK(base_->frozen());
  }

  TupleRef Row(uint32_t r) const {
    return TupleRef(arena_.data() + static_cast<size_t>(r) * arity_, arity_);
  }

  void AppendSegments(RowRange* range) const {
    if (base_ != nullptr) base_->AppendSegments(range);
    range->Append(arena_.data(), num_rows_);
  }

  void CountFetch() const {
    if (frozen_) {
      ++tls_fetches_;  // thread-local: no shared write on the frozen path
    } else {
      ++fetches_;
    }
  }

  /// Read-only index lookup for the frozen path; nullptr if the mask was
  /// never indexed before the freeze.
  const MaskIndex* FrozenIndex(uint32_t mask) const {
    for (const MaskIndex& ix : indexes_) {
      if (ix.mask == mask) {
        BINCHAIN_DCHECK(ix.indexed_upto == num_rows_);
        return &ix;
      }
    }
    return nullptr;
  }

  uint64_t HashMasked(uint32_t mask, const SymbolId* t) const;
  bool MaskedEquals(uint32_t mask, uint32_t row, const SymbolId* key) const;

  MaskIndex& IndexFor(uint32_t mask) const;
  void IndexInsert(MaskIndex& idx, uint32_t row) const;
  void IndexGrow(MaskIndex& idx, size_t rows_done) const;
  uint32_t FindHead(const MaskIndex& idx, uint32_t mask, TupleRef key) const;

  void DedupGrow();

  size_t arity_;
  size_t num_rows_ = 0;              // local rows (this layer's arena)
  size_t base_rows_ = 0;             // rows answered by the base chain
  std::shared_ptr<const Relation> base_;  // frozen; null for standalone
  std::vector<SymbolId> arena_;    // row-major tuple storage (local rows)
  std::vector<uint32_t> dedup_;    // open-addressed row set over full tuples
  size_t dedup_used_ = 0;
  // Few masks per relation: linear scan beats hashing. A deque keeps
  // MaskIndex references stable while nested ForEachMatch calls (recursive
  // joins) lazily create indexes for other masks.
  mutable std::deque<MaskIndex> indexes_;
  mutable uint64_t fetches_ = 0;
  bool frozen_ = false;
  inline static thread_local uint64_t tls_fetches_ = 0;
  inline static thread_local uint64_t tls_wide_scans_ = 0;
};

static_assert(Relation::kMaxChainDepth + 1 < RowRange::kMaxSegments,
              "RowRange must fit every layer of a maximal chain");

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_RELATION_H_
