#include "storage/tuple.h"

namespace binchain {

std::string TupleToString(TupleRef t, const SymbolTable& symbols) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i) out += ", ";
    out += symbols.Name(t[i]);
  }
  out += ")";
  return out;
}

}  // namespace binchain
