// String interning. Every constant, variable name and predicate name in the
// system is a 32-bit id into a SymbolTable; all joins and graph traversals
// operate on ids only.
#ifndef BINCHAIN_STORAGE_SYMBOL_TABLE_H_
#define BINCHAIN_STORAGE_SYMBOL_TABLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace binchain {

using SymbolId = uint32_t;

/// Append-only interner mapping strings <-> dense 32-bit ids.
/// Symbols whose spelling lexes as a decimal integer additionally carry the
/// parsed value, which the built-in comparison predicates use.
///
/// Delta layering (live-update subsystem): a table may extend a frozen base
/// table (ChainTo). Ids [0, base->size()) resolve through the base chain;
/// fresh spellings intern into the local layer with ids continuing the
/// global sequence — so successive database epochs *extend* one id space
/// instead of re-interning, and every id minted in epoch N means the same
/// thing in every later epoch. Base layers are immutable; chains are kept
/// shallow by the epoch publisher's flatten policy (see chain_depth()).
///
/// Thread safety: not synchronized. After Freeze() the table is immutable —
/// Intern of an existing spelling degenerates to a lookup and is safe from
/// concurrent readers; interning a *new* spelling aborts. Thaw() re-opens
/// the local layer for interning (single-writer, no concurrent readers).
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Interns `s`, returning its id (existing anywhere in the chain, or
  /// fresh in the local layer). Aborts on a fresh spelling after Freeze().
  SymbolId Intern(std::string_view s);

  /// Forbids further interning. Reversible via Thaw(); part of
  /// Database::Freeze().
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }
  /// Re-opens the local layer for interning. The caller must guarantee no
  /// concurrent reader still uses the table.
  void Thaw() { frozen_ = false; }

  /// Turns this (empty, unfrozen) table into a delta layer over `base`.
  /// `base` must be frozen; its ids keep resolving unchanged.
  void ChainTo(std::shared_ptr<const SymbolTable> base);

  /// Copies the whole chain into a standalone (chain-free) layer in id
  /// order; ids are preserved. Used by the epoch publisher's compaction.
  void FlattenInto(SymbolTable* out) const;

  /// Layers above the standalone bottom of the chain.
  size_t chain_depth() const { return base_ ? base_->chain_depth() + 1 : 0; }
  /// Symbols interned into this layer only.
  size_t local_size() const { return names_.size(); }
  /// Size of the standalone bottom layer (the last flatten point).
  size_t root_size() const { return base_ ? base_->root_size() : names_.size(); }
  const std::shared_ptr<const SymbolTable>& base() const { return base_; }

  /// Returns the id of `s` if already interned anywhere in the chain.
  std::optional<SymbolId> Find(std::string_view s) const;

  const std::string& Name(SymbolId id) const {
    return id < base_size_ ? base_->Name(id) : names_[id - base_size_];
  }

  /// Parsed integer value when the symbol spells a decimal integer.
  std::optional<int64_t> IntValue(SymbolId id) const {
    return id < base_size_ ? base_->IntValue(id) : ints_[id - base_size_];
  }

  size_t size() const { return base_size_ + names_.size(); }

 private:
  std::shared_ptr<const SymbolTable> base_;  // frozen; null for standalone
  SymbolId base_size_ = 0;
  std::vector<std::string> names_;
  std::vector<std::optional<int64_t>> ints_;
  std::unordered_map<std::string, SymbolId> index_;  // spelling -> global id
  bool frozen_ = false;
};

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_SYMBOL_TABLE_H_
