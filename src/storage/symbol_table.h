// String interning. Every constant, variable name and predicate name in the
// system is a 32-bit id into a SymbolTable; all joins and graph traversals
// operate on ids only.
#ifndef BINCHAIN_STORAGE_SYMBOL_TABLE_H_
#define BINCHAIN_STORAGE_SYMBOL_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace binchain {

using SymbolId = uint32_t;

/// Append-only interner mapping strings <-> dense 32-bit ids.
/// Symbols whose spelling lexes as a decimal integer additionally carry the
/// parsed value, which the built-in comparison predicates use.
///
/// Thread safety: not synchronized. After Freeze() the table is immutable —
/// Intern of an existing spelling degenerates to a lookup and is safe from
/// concurrent readers; interning a *new* spelling aborts.
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Interns `s`, returning its id (existing or fresh). Aborts on a fresh
  /// spelling after Freeze().
  SymbolId Intern(std::string_view s);

  /// Forbids further interning. One-way; part of Database::Freeze().
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Returns the id of `s` if already interned.
  std::optional<SymbolId> Find(std::string_view s) const;

  const std::string& Name(SymbolId id) const { return names_[id]; }

  /// Parsed integer value when the symbol spells a decimal integer.
  std::optional<int64_t> IntValue(SymbolId id) const { return ints_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<std::optional<int64_t>> ints_;
  std::unordered_map<std::string, SymbolId> index_;
  bool frozen_ = false;
};

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_SYMBOL_TABLE_H_
