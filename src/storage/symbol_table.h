// String interning. Every constant, variable name and predicate name in the
// system is a 32-bit id into a SymbolTable; all joins and graph traversals
// operate on ids only.
#ifndef BINCHAIN_STORAGE_SYMBOL_TABLE_H_
#define BINCHAIN_STORAGE_SYMBOL_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace binchain {

using SymbolId = uint32_t;

/// Append-only interner mapping strings <-> dense 32-bit ids.
/// Symbols whose spelling lexes as a decimal integer additionally carry the
/// parsed value, which the built-in comparison predicates use.
class SymbolTable {
 public:
  SymbolTable() = default;

  /// Interns `s`, returning its id (existing or fresh).
  SymbolId Intern(std::string_view s);

  /// Returns the id of `s` if already interned.
  std::optional<SymbolId> Find(std::string_view s) const;

  const std::string& Name(SymbolId id) const { return names_[id]; }

  /// Parsed integer value when the symbol spells a decimal integer.
  std::optional<int64_t> IntValue(SymbolId id) const { return ints_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::vector<std::optional<int64_t>> ints_;
  std::unordered_map<std::string, SymbolId> index_;
};

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_SYMBOL_TABLE_H_
