#include "storage/relation.h"

#include <algorithm>

#include "util/check.h"

namespace binchain {
namespace {

uint64_t HashSpan(const SymbolId* d, size_t n) {
  return TupleHash{}(TupleRef(d, n));
}

}  // namespace

uint64_t Relation::HashMasked(uint32_t mask, const SymbolId* t) const {
  uint64_t h = TupleHash::kOffset;
  for (size_t i = 0; i < arity_; ++i) {
    if (mask & (1u << i)) {
      h ^= t[i];
      h *= TupleHash::kPrime;
    }
  }
  return h;
}

bool Relation::MaskedEquals(uint32_t mask, uint32_t row,
                            const SymbolId* key) const {
  const SymbolId* r = arena_.data() + static_cast<size_t>(row) * arity_;
  for (size_t i = 0; i < arity_; ++i) {
    if ((mask & (1u << i)) && r[i] != key[i]) return false;
  }
  return true;
}

void Relation::DedupGrow() {
  size_t cap = dedup_.empty() ? 16 : dedup_.size() * 2;
  dedup_.assign(cap, kNoRow);
  dedup_used_ = 0;
  size_t m = cap - 1;
  for (uint32_t row = 0; row < num_rows_; ++row) {
    const SymbolId* d = arena_.data() + static_cast<size_t>(row) * arity_;
    for (size_t i = HashSpan(d, arity_) & m;; i = (i + 1) & m) {
      if (dedup_[i] == kNoRow) {
        dedup_[i] = row;
        ++dedup_used_;
        break;
      }
    }
  }
}

std::shared_ptr<Relation> Relation::Extend(
    std::shared_ptr<const Relation> base) {
  BINCHAIN_CHECK(base != nullptr);
  BINCHAIN_CHECK(base->frozen());
  // Tombstoned rows count into the accumulated delta: they are chain
  // overhead exactly like appended rows (every probe filters them), so a
  // delete-heavy chain compacts on the same doubling rule as an
  // insert-heavy one. Flatten() drops the dead rows for good.
  if (ShouldFlatten(base->chain_depth() + 1,
                    base->size() - base->root_rows() + base->dead_count(),
                    base->root_rows(), kMaxChainDepth, kFlattenMinRows)) {
    return base->Flatten();
  }
  // make_shared needs a public constructor; the chain constructor stays
  // private so layering is only reachable through the policy above.
  return std::shared_ptr<Relation>(new Relation(std::move(base)));
}

std::shared_ptr<Relation> Relation::Flatten() const {
  auto out = std::make_shared<Relation>(arity_);
  out->arena_.reserve(live_size() * arity_);
  // Global row order in, dense row ids out (no duplicates exist in a
  // chain, so Insert never rejects). tuples() skips tombstoned rows, so
  // flattening is also the compaction that drops dead rows for good — the
  // copy re-numbers the surviving rows and starts with an empty dead set.
  for (TupleRef t : tuples()) out->Insert(t);
  // Re-demand every mask any layer of the chain had indexed. Freeze() of a
  // wide relation (arity > kEagerFreezeArity) only catches up indexes that
  // already exist, so without this a flattened-then-frozen relation would
  // answer masks the chain served by index with wide fallback scans
  // forever. Small arities skip it: their freeze pre-builds every mask.
  if (arity_ > kEagerFreezeArity) {
    for (const Relation* layer = this; layer != nullptr;
         layer = layer->base_.get()) {
      for (const MaskIndex& ix : layer->indexes_) out->IndexFor(ix.mask);
    }
  }
  return out;
}

void Relation::Freeze() {
  if (frozen_) return;
  if (arity_ <= kEagerFreezeArity) {
    // Pre-build every bound-column mask so no reader can demand an index the
    // frozen relation would have to build.
    for (uint32_t mask = 1; mask < (1u << arity_); ++mask) IndexFor(mask);
  } else {
    for (MaskIndex& ix : indexes_) IndexFor(ix.mask);  // catch up existing
  }
  frozen_ = true;
}

bool Relation::Insert(TupleRef t) {
  BINCHAIN_CHECK(t.size() == arity_);
  BINCHAIN_CHECK(!frozen_);
  if (base_ != nullptr) {
    uint32_t brow = base_->FindRowRaw(t);
    if (brow != kNoRow) {
      // Physically present in the base chain. If this layer tombstoned the
      // row, re-inserting resurrects it in place — the row id (and every
      // index entry threading it) is still valid, so no append, no
      // duplicate. Otherwise it is a live duplicate.
      if (dead_ != nullptr && dead_->erase(brow) > 0) {
        ++dead_mutations_;
        return true;
      }
      return false;
    }
  }
  if ((dedup_used_ + 1) * 10 >= dedup_.size() * 7) DedupGrow();
  size_t m = dedup_.size() - 1;
  for (size_t i = HashSpan(t.data(), arity_) & m;; i = (i + 1) & m) {
    uint32_t r = dedup_[i];
    if (r == kNoRow) {
      uint32_t row = static_cast<uint32_t>(num_rows_);
      // `t` may view this relation's own arena; the append below can
      // reallocate it, so stage aliasing rows in a stack-local copy.
      const SymbolId* src = t.data();
      Tuple staged;
      if (!arena_.empty() && src >= arena_.data() &&
          src < arena_.data() + arena_.size()) {
        staged = t;
        src = staged.data();
      }
      arena_.insert(arena_.end(), src, src + arity_);
      ++num_rows_;
      dedup_[i] = row;
      ++dedup_used_;
      return true;
    }
    if (Row(r) == t) {
      // Local physical duplicate: resurrect if tombstoned in this layer.
      if (dead_ != nullptr &&
          dead_->erase(static_cast<uint32_t>(base_rows_ + r)) > 0) {
        ++dead_mutations_;
        return true;
      }
      return false;
    }
  }
}

bool Relation::Delete(TupleRef t) {
  BINCHAIN_CHECK(!frozen_);
  if (t.size() != arity_) return false;
  uint32_t row = FindRowRaw(t);
  if (row == kNoRow) return false;  // never inserted anywhere in the chain
  if (dead_ == nullptr) dead_ = std::make_unique<DeadSet>();
  if (!dead_->insert(row).second) return false;  // already tombstoned
  ++dead_mutations_;
  return true;
}

uint32_t Relation::FindRowRaw(TupleRef t) const {
  if (base_ != nullptr) {
    uint32_t r = base_->FindRowRaw(t);
    if (r != kNoRow) return r;
  }
  if (dedup_.empty()) return kNoRow;
  size_t m = dedup_.size() - 1;
  for (size_t i = HashSpan(t.data(), arity_) & m;; i = (i + 1) & m) {
    uint32_t r = dedup_[i];
    if (r == kNoRow) return kNoRow;
    if (Row(r) == t) return static_cast<uint32_t>(base_rows_ + r);
  }
}

bool Relation::Contains(TupleRef t) const {
  if (t.size() != arity_) return false;
  uint32_t row = FindRowRaw(t);
  if (row == kNoRow) return false;
  return dead_ == nullptr || dead_->count(row) == 0;
}

void Relation::IndexGrow(MaskIndex& idx, size_t rows_done) const {
  size_t cap = idx.slots.empty() ? 16 : idx.slots.size() * 2;
  idx.slots.assign(cap, kNoRow);
  idx.tails.assign(cap, kNoRow);
  idx.used = 0;
  // Re-thread rows already indexed, in ascending row order so chains keep
  // enumerating in insertion order.
  for (size_t r = 0; r < rows_done; ++r) idx.next[r] = kNoRow;
  size_t m = cap - 1;
  for (uint32_t row = 0; row < rows_done; ++row) {
    const SymbolId* d = arena_.data() + static_cast<size_t>(row) * arity_;
    for (size_t i = HashMasked(idx.mask, d) & m;; i = (i + 1) & m) {
      uint32_t head = idx.slots[i];
      if (head == kNoRow) {
        idx.slots[i] = row;
        idx.tails[i] = row;
        ++idx.used;
        break;
      }
      if (MaskedEquals(idx.mask, head, d)) {
        idx.next[idx.tails[i]] = row;
        idx.tails[i] = row;
        break;
      }
    }
  }
}

void Relation::IndexInsert(MaskIndex& idx, uint32_t row) const {
  const SymbolId* d = arena_.data() + static_cast<size_t>(row) * arity_;
  size_t m = idx.slots.size() - 1;
  for (size_t i = HashMasked(idx.mask, d) & m;; i = (i + 1) & m) {
    uint32_t head = idx.slots[i];
    if (head == kNoRow) {
      idx.slots[i] = row;
      idx.tails[i] = row;
      ++idx.used;
      return;
    }
    if (MaskedEquals(idx.mask, head, d)) {
      idx.next[idx.tails[i]] = row;
      idx.tails[i] = row;
      return;
    }
  }
}

Relation::MaskIndex& Relation::IndexFor(uint32_t mask) const {
  // Lazy index creation / catch-up mutates shared state; the frozen read
  // path must route through FrozenIndex instead.
  BINCHAIN_DCHECK(!frozen_);
  MaskIndex* idx = nullptr;
  for (MaskIndex& ix : indexes_) {
    if (ix.mask == mask) {
      idx = &ix;
      break;
    }
  }
  if (idx == nullptr) {
    indexes_.emplace_back();
    idx = &indexes_.back();
    idx->mask = mask;
  }
  // Absorb rows appended since the index was last touched.
  if (idx->indexed_upto < num_rows_) {
    idx->next.resize(num_rows_, kNoRow);
    for (size_t r = idx->indexed_upto; r < num_rows_; ++r) {
      if ((idx->used + 1) * 10 >= idx->slots.size() * 7) IndexGrow(*idx, r);
      IndexInsert(*idx, static_cast<uint32_t>(r));
    }
    idx->indexed_upto = num_rows_;
  }
  return *idx;
}

uint32_t Relation::FindHead(const MaskIndex& idx, uint32_t mask,
                            TupleRef key) const {
  if (idx.slots.empty()) return kNoRow;
  size_t m = idx.slots.size() - 1;
  for (size_t i = HashMasked(mask, key.data()) & m;; i = (i + 1) & m) {
    uint32_t head = idx.slots[i];
    if (head == kNoRow) return kNoRow;
    if (MaskedEquals(mask, head, key.data())) return head;
  }
}

}  // namespace binchain
