#include "storage/relation.h"

#include "util/check.h"

namespace binchain {

bool Relation::Insert(const Tuple& t) {
  BINCHAIN_CHECK(t.size() == arity_);
  auto [it, inserted] = set_.insert(t);
  if (inserted) tuples_.push_back(t);
  return inserted;
}

Tuple Relation::KeyFor(uint32_t mask, const Tuple& t) const {
  Tuple key;
  key.reserve(static_cast<size_t>(__builtin_popcount(mask)));
  for (size_t i = 0; i < arity_; ++i) {
    if (mask & (1u << i)) key.push_back(t[i]);
  }
  return key;
}

Relation::MaskIndex& Relation::IndexFor(uint32_t mask) const {
  MaskIndex& idx = indexes_[mask];
  // Absorb tuples appended since the index was last touched.
  for (size_t i = idx.indexed_upto; i < tuples_.size(); ++i) {
    idx.buckets[KeyFor(mask, tuples_[i])].push_back(static_cast<uint32_t>(i));
  }
  idx.indexed_upto = tuples_.size();
  return idx;
}

void Relation::ForEachMatch(uint32_t mask, const Tuple& key,
                            const std::function<void(const Tuple&)>& fn) const {
  if (mask == 0) {
    for (const Tuple& t : tuples_) {
      ++fetches_;
      fn(t);
    }
    return;
  }
  MaskIndex& idx = IndexFor(mask);
  auto it = idx.buckets.find(KeyFor(mask, key));
  if (it == idx.buckets.end()) return;
  for (uint32_t ti : it->second) {
    ++fetches_;
    fn(tuples_[ti]);
  }
}

}  // namespace binchain
