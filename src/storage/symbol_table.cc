#include "storage/symbol_table.h"

#include <cstdlib>

#include "util/check.h"

namespace binchain {
namespace {

std::optional<int64_t> ParseInt(std::string_view s) {
  if (s.empty()) return std::nullopt;
  size_t i = 0;
  bool neg = false;
  if (s[0] == '-') {
    if (s.size() == 1) return std::nullopt;
    neg = true;
    i = 1;
  }
  int64_t v = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return std::nullopt;
    v = v * 10 + (s[i] - '0');
    if (v < 0) return std::nullopt;  // overflow guard; huge ints stay symbolic
  }
  return neg ? -v : v;
}

}  // namespace

SymbolId SymbolTable::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  BINCHAIN_CHECK(!frozen_);  // new spellings would race concurrent readers
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(s);
  ints_.push_back(ParseInt(s));
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<SymbolId> SymbolTable::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace binchain
