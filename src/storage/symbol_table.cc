#include "storage/symbol_table.h"

#include <cstdlib>

#include "util/check.h"

namespace binchain {
namespace {

std::optional<int64_t> ParseInt(std::string_view s) {
  if (s.empty()) return std::nullopt;
  size_t i = 0;
  bool neg = false;
  if (s[0] == '-') {
    if (s.size() == 1) return std::nullopt;
    neg = true;
    i = 1;
  }
  int64_t v = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return std::nullopt;
    v = v * 10 + (s[i] - '0');
    if (v < 0) return std::nullopt;  // overflow guard; huge ints stay symbolic
  }
  return neg ? -v : v;
}

}  // namespace

SymbolId SymbolTable::Intern(std::string_view s) {
  if (base_ != nullptr) {
    if (auto id = base_->Find(s)) return *id;
  }
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  BINCHAIN_CHECK(!frozen_);  // new spellings would race concurrent readers
  SymbolId id = base_size_ + static_cast<SymbolId>(names_.size());
  names_.emplace_back(s);
  ints_.push_back(ParseInt(s));
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<SymbolId> SymbolTable::Find(std::string_view s) const {
  if (base_ != nullptr) {
    if (auto id = base_->Find(s)) return id;
  }
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void SymbolTable::ChainTo(std::shared_ptr<const SymbolTable> base) {
  BINCHAIN_CHECK(base != nullptr);
  BINCHAIN_CHECK(base->frozen());
  BINCHAIN_CHECK(names_.empty() && base_ == nullptr && !frozen_);
  base_size_ = static_cast<SymbolId>(base->size());
  base_ = std::move(base);
}

void SymbolTable::FlattenInto(SymbolTable* out) const {
  if (base_ != nullptr) base_->FlattenInto(out);
  for (const std::string& name : names_) out->Intern(name);
}

}  // namespace binchain
