// Tuples of interned constants, plus hashing so they can key hash tables.
#ifndef BINCHAIN_STORAGE_TUPLE_H_
#define BINCHAIN_STORAGE_TUPLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/symbol_table.h"

namespace binchain {

using Tuple = std::vector<SymbolId>;

/// FNV-1a over the id sequence; adequate for the in-memory hash indexes.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 1469598103934665603ull;
    for (SymbolId v : t) {
      h ^= v;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

/// Renders "(a, b, c)" for diagnostics.
std::string TupleToString(const Tuple& t, const SymbolTable& symbols);

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_TUPLE_H_
