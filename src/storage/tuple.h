// Tuples of interned constants.
//
// `Tuple` is an owning, small-buffer-optimized sequence of SymbolId: up to
// kInlineCapacity constants live inline (no heap allocation), covering every
// arity that occurs on the hot paths of the evaluator (binary chain
// programs, the Section-4 flight predicates of arity 4, mask keys). Larger
// tuples spill to the heap transparently.
//
// `TupleRef` is a borrowed view (pointer + arity) used to hand out tuples
// straight from a Relation's arena without materializing them; it converts
// implicitly to and from `Tuple` so call sites can choose between zero-copy
// iteration (TupleRef) and ownership (Tuple).
#ifndef BINCHAIN_STORAGE_TUPLE_H_
#define BINCHAIN_STORAGE_TUPLE_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <string>
#include <type_traits>

#include "storage/symbol_table.h"

namespace binchain {

class Tuple;

/// Non-owning view of a tuple. Valid only while the underlying storage
/// (arena or Tuple) is alive and unmodified; intended for immediate use in
/// enumeration callbacks and lookup keys.
class TupleRef {
 public:
  constexpr TupleRef() : data_(nullptr), size_(0) {}
  constexpr TupleRef(const SymbolId* data, size_t n)
      : data_(data), size_(static_cast<uint32_t>(n)) {}
  /// Views the initializer list's backing array: usable as an immediate
  /// call argument only (the array dies with the full-expression, which by
  /// design outlives every use inside the called enumeration).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  TupleRef(std::initializer_list<SymbolId> init)  // NOLINT: implicit
      : data_(init.begin()), size_(static_cast<uint32_t>(init.size())) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  inline TupleRef(const Tuple& t);  // NOLINT: implicit, defined below

  const SymbolId* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  SymbolId operator[](size_t i) const { return data_[i]; }
  const SymbolId* begin() const { return data_; }
  const SymbolId* end() const { return data_ + size_; }

 private:
  const SymbolId* data_;
  uint32_t size_;
};

class Tuple {
 public:
  static constexpr size_t kInlineCapacity = 4;

  Tuple() : data_(inline_), size_(0), capacity_(kInlineCapacity) {}

  Tuple(size_t n, SymbolId fill) : Tuple() {
    reserve(n);
    for (size_t i = 0; i < n; ++i) data_[i] = fill;
    size_ = static_cast<uint32_t>(n);
  }

  Tuple(std::initializer_list<SymbolId> init) : Tuple() {
    assign(init.begin(), init.size());
  }

  Tuple(const TupleRef& ref) : Tuple() {  // NOLINT: implicit by design
    assign(ref.data(), ref.size());
  }

  template <typename It, typename = std::enable_if_t<
                             !std::is_integral_v<std::decay_t<It>>>>
  Tuple(It first, It last) : Tuple() {
    for (; first != last; ++first) push_back(*first);
  }

  Tuple(const Tuple& o) : Tuple() { assign(o.data_, o.size_); }

  Tuple(Tuple&& o) noexcept : Tuple() { MoveFrom(o); }

  Tuple& operator=(const Tuple& o) {
    if (this != &o) assign(o.data_, o.size_);
    return *this;
  }

  Tuple& operator=(Tuple&& o) noexcept {
    if (this != &o) {
      FreeHeap();
      data_ = inline_;
      capacity_ = kInlineCapacity;
      size_ = 0;
      MoveFrom(o);
    }
    return *this;
  }

  ~Tuple() { FreeHeap(); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  SymbolId* data() { return data_; }
  const SymbolId* data() const { return data_; }
  SymbolId& operator[](size_t i) { return data_[i]; }
  const SymbolId& operator[](size_t i) const { return data_[i]; }
  SymbolId* begin() { return data_; }
  SymbolId* end() { return data_ + size_; }
  const SymbolId* begin() const { return data_; }
  const SymbolId* end() const { return data_ + size_; }
  SymbolId back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(size_t n) {
    if (n <= capacity_) return;
    size_t cap = capacity_;
    while (cap < n) cap *= 2;
    SymbolId* heap = new SymbolId[cap];
    std::memcpy(heap, data_, size_ * sizeof(SymbolId));
    FreeHeap();
    data_ = heap;
    capacity_ = static_cast<uint32_t>(cap);
  }

  void push_back(SymbolId v) {
    if (size_ == capacity_) reserve(size_ + 1);
    data_[size_++] = v;
  }

  void pop_back() { --size_; }

  /// Insert [first, last) before `pos` (pos must point into this tuple).
  template <typename It>
  void insert(SymbolId* pos, It first, It last) {
    size_t at = static_cast<size_t>(pos - data_);
    size_t count = static_cast<size_t>(last - first);
    reserve(size_ + count);
    std::memmove(data_ + at + count, data_ + at,
                 (size_ - at) * sizeof(SymbolId));
    for (size_t i = 0; first != last; ++first, ++i) data_[at + i] = *first;
    size_ += static_cast<uint32_t>(count);
  }

 private:
  void assign(const SymbolId* src, size_t n) {
    size_ = 0;
    reserve(n);
    // memcpy's pointer arguments are declared nonnull even for n == 0, and
    // a zero-arity view may legitimately carry a null data pointer.
    if (n != 0) std::memcpy(data_, src, n * sizeof(SymbolId));
    size_ = static_cast<uint32_t>(n);
  }

  void MoveFrom(Tuple& o) {
    if (o.data_ != o.inline_) {  // steal the heap buffer
      data_ = o.data_;
      capacity_ = o.capacity_;
      size_ = o.size_;
      o.data_ = o.inline_;
      o.capacity_ = kInlineCapacity;
      o.size_ = 0;
    } else {
      assign(o.data_, o.size_);
      o.size_ = 0;
    }
  }

  void FreeHeap() {
    if (data_ != inline_) delete[] data_;
  }

  SymbolId* data_;
  uint32_t size_;
  uint32_t capacity_;
  SymbolId inline_[kInlineCapacity];
};

inline TupleRef::TupleRef(const Tuple& t) : data_(t.data()),
                                            size_(static_cast<uint32_t>(t.size())) {}

inline bool operator==(TupleRef a, TupleRef b) {
  // Zero-arity views (the nullary-predicate seed rows) may hold null data
  // pointers; memcmp's arguments are declared nonnull even at size 0.
  return a.size() == b.size() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(SymbolId)) == 0);
}
inline bool operator!=(TupleRef a, TupleRef b) { return !(a == b); }
inline bool operator<(TupleRef a, TupleRef b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return a.size() < b.size();
}

/// FNV-1a over the id sequence; adequate for the in-memory hash indexes.
/// Accepts both Tuple (via implicit view conversion) and TupleRef. The
/// constants are public so Relation's masked-column hashing stays in
/// agreement with full-tuple hashing by construction.
struct TupleHash {
  static constexpr uint64_t kOffset = 1469598103934665603ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

  size_t operator()(TupleRef t) const {
    uint64_t h = kOffset;
    for (SymbolId v : t) {
      h ^= v;
      h *= kPrime;
    }
    return static_cast<size_t>(h);
  }
};

/// Renders "(a, b, c)" for diagnostics.
std::string TupleToString(TupleRef t, const SymbolTable& symbols);

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_TUPLE_H_
