#include "storage/term_pool.h"

namespace binchain {

TermId TermPool::InternTuple(const Tuple& t) {
  auto it = index_.find(t);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(t);
  index_.emplace(t, id);
  return id;
}

}  // namespace binchain
