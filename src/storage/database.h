// The extensional database: named relations over a shared symbol table.
#ifndef BINCHAIN_STORAGE_DATABASE_H_
#define BINCHAIN_STORAGE_DATABASE_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "storage/relation.h"
#include "storage/symbol_table.h"

namespace binchain {

/// Owns the EDB relations and the symbol table. Derived predicates never
/// appear here; evaluation strategies keep their own IDB state.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  /// Returns the relation named `pred`, creating it with `arity` if absent.
  /// Aborts if it exists with a different arity (schema violation), or if
  /// the database is frozen and the relation would be created.
  Relation& GetOrCreate(std::string_view pred, size_t arity);

  /// Snapshot step for concurrent readers: freezes the symbol table and
  /// every relation (eager index catch-up, no further inserts). After this,
  /// all const entry points — Find/FindById, ForEachMatch, Contains,
  /// tuples() — are safe to call from any number of threads. One-way.
  void Freeze();
  bool frozen() const { return frozen_; }

  /// Returns the relation or nullptr.
  const Relation* Find(std::string_view pred) const;
  Relation* FindMutable(std::string_view pred);

  /// Returns the relation whose name interns to `pred`, or nullptr. Avoids
  /// the per-lookup string round-trip of Find(symbols().Name(pred)) — the
  /// form every evaluation-strategy resolver is on.
  const Relation* FindById(SymbolId pred) const {
    auto it = by_id_.find(pred);
    return it == by_id_.end() ? nullptr : it->second;
  }

  /// Convenience: insert a fact with string constants.
  void AddFact(std::string_view pred, std::initializer_list<std::string_view> args);
  void AddFact(std::string_view pred, const std::vector<std::string>& args);

  /// Interns a constant and returns its id.
  SymbolId Const(std::string_view name) { return symbols_.Intern(name); }

  /// Total single-tuple fetches over all relations (work counter).
  uint64_t TotalFetches() const;
  void ResetFetches();

  /// Names of all stored relations (insertion order).
  const std::vector<std::string>& relation_names() const { return names_; }

 private:
  SymbolTable symbols_;
  std::unordered_map<std::string, std::unique_ptr<Relation>> relations_;
  std::unordered_map<SymbolId, Relation*> by_id_;
  std::vector<std::string> names_;
  bool frozen_ = false;
};

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_DATABASE_H_
