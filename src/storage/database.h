// The extensional database: named relations over a shared symbol table.
#ifndef BINCHAIN_STORAGE_DATABASE_H_
#define BINCHAIN_STORAGE_DATABASE_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/relation.h"
#include "storage/symbol_table.h"

namespace binchain {

/// Base class for snapshot-derived artifact sets built by layers above
/// storage (e.g. the eval layer's epoch-shared memos and closure caches).
/// The slot on Database is type-erased so storage stays below eval in the
/// layering; concrete artifact types downcast on retrieval.
class SnapshotArtifact {
 public:
  virtual ~SnapshotArtifact() = default;
};

/// Owns the EDB relations and the symbol table. Derived predicates never
/// appear here; evaluation strategies keep their own IDB state.
///
/// Epochs (live-update subsystem): every database carries an epoch id.
/// `BeginDelta(base)` starts the successor epoch of a frozen snapshot: the
/// new database *shares* every relation of `base` (shared_ptr, no copy) and
/// extends its symbol-id space, then copies a relation on first write into
/// a delta layer (Relation::Extend) so only inserted facts cost anything.
/// Freeze() of the successor therefore indexes just the delta. Published
/// epochs are immutable; concurrent readers hold them alive through
/// shared_ptr handles, and an epoch pins exactly the storage layers it
/// reads — never the predecessor Database object itself.
class Database {
 public:
  Database() : symbols_(std::make_shared<SymbolTable>()) {}
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  SymbolTable& symbols() { return *symbols_; }
  const SymbolTable& symbols() const { return *symbols_; }

  /// Monotone snapshot version: 0 for a fresh database, +1 per BeginDelta.
  uint64_t epoch() const { return epoch_; }

  /// Starts the successor epoch of a frozen snapshot (see class comment).
  /// The result is open (unfrozen): load the delta facts, then Freeze() and
  /// publish. `base` stays untouched and serveable throughout.
  static std::unique_ptr<Database> BeginDelta(
      const std::shared_ptr<const Database>& base);

  /// Returns the relation named `pred`, creating it with `arity` if absent.
  /// Aborts if it exists with a different arity (schema violation), or if
  /// the database is frozen and the relation would be created. On a delta
  /// epoch, the first write access copies the relation into a delta layer
  /// (copy-on-write); read-only epochs sharing it are unaffected.
  Relation& GetOrCreate(std::string_view pred, size_t arity);

  /// Snapshot step for concurrent readers: freezes the symbol table and
  /// every relation (eager index catch-up, no further inserts). After this,
  /// all const entry points — Find/FindById, ForEachMatch, Contains,
  /// tuples() — are safe to call from any number of threads. Freezing also
  /// opens the artifact slot below: evaluation layers attach their
  /// snapshot-derived shared state right after the freeze, before the epoch
  /// is handed to readers.
  void Freeze();
  bool frozen() const { return frozen_; }

  /// Attaches the epoch's derived-artifact set (shared memos, caches —
  /// anything immutable-per-snapshot that evaluation layers build at freeze
  /// time). Called once per epoch on a frozen database, *before* the epoch
  /// is shared with concurrent readers: the slot is written single-threaded
  /// and read-only afterwards, so no synchronization is needed on reads.
  void AttachArtifact(std::shared_ptr<const SnapshotArtifact> artifact) {
    BINCHAIN_CHECK(frozen_);
    artifact_ = std::move(artifact);
  }
  /// The attached artifact set, or nullptr. Holders downcast to the
  /// concrete type they attached (e.g. eval's EvalArtifacts).
  const std::shared_ptr<const SnapshotArtifact>& artifact() const {
    return artifact_;
  }

  /// Re-opens a frozen database for mutation: thaws the symbol table and
  /// every relation layer owned by this epoch, so facts can be inserted and
  /// a later Freeze() completes only the incremental index work. Requires
  /// exclusive ownership — no concurrent reader, no live epoch sharing
  /// these layers (relations inherited via BeginDelta and not yet written
  /// stay frozen). The concurrent-serving path never thaws; it publishes
  /// successor epochs with BeginDelta instead.
  void Thaw();

  /// Drops delta layers that received no rows (and a symbol layer that
  /// interned nothing), re-sharing the base storage directly so no-op
  /// publishes do not deepen chains. Called by the epoch publisher before
  /// Freeze().
  void PruneEmptyDeltas();

  /// Returns the relation or nullptr.
  const Relation* Find(std::string_view pred) const;
  Relation* FindMutable(std::string_view pred);

  /// Returns the relation whose name interns to `pred`, or nullptr. Avoids
  /// the per-lookup string round-trip of Find(symbols().Name(pred)) — the
  /// form every evaluation-strategy resolver is on.
  const Relation* FindById(SymbolId pred) const {
    auto it = by_id_.find(pred);
    return it == by_id_.end() ? nullptr : it->second;
  }

  /// Like FindById, but returns the owning handle, so a caller can pin the
  /// relation object past this epoch's lifetime (the answer cache's
  /// support sets do: a pinned pointer compared equal across epochs is
  /// provably the same object, never an address reuse).
  std::shared_ptr<const Relation> FindSharedById(SymbolId pred) const;

  /// Convenience: insert a fact with string constants. Returns true if the
  /// tuple was new (false: duplicate of an existing row anywhere in the
  /// relation's epoch chain).
  bool AddFact(std::string_view pred, std::initializer_list<std::string_view> args);
  bool AddFact(std::string_view pred, const std::vector<std::string>& args);

  /// Retracts a fact by tombstoning its row (Relation::Delete). Returns
  /// true if the fact was present and live. Constants are resolved through
  /// Find, never interned — a constant the chain has never seen means the
  /// fact cannot exist — and the relation is only copied-on-write after
  /// the presence probe, so a miss never layers anything.
  bool DeleteFact(std::string_view pred,
                  std::initializer_list<std::string_view> args);
  bool DeleteFact(std::string_view pred, const std::vector<std::string>& args);

  /// Recovery-only: stamps the epoch id a durability checkpoint recorded,
  /// so replayed publishes continue the pre-crash numbering instead of
  /// restarting at zero. Must run before Freeze().
  void SetRecoveredEpoch(uint64_t epoch) {
    BINCHAIN_CHECK(!frozen_);
    epoch_ = epoch;
  }

  /// Interns a constant and returns its id.
  SymbolId Const(std::string_view name) { return symbols_->Intern(name); }

  /// Total single-tuple fetches over all relations (work counter).
  uint64_t TotalFetches() const;
  void ResetFetches();

  /// Names of all stored relations (insertion order).
  const std::vector<std::string>& relation_names() const { return names_; }

  /// True if `pred` is still the base epoch's relation object (shared, not
  /// yet copied-on-write). Introspection for the epoch publisher's stats.
  bool SharesWithBase(std::string_view pred) const {
    return borrowed_.count(std::string(pred)) > 0;
  }

  /// Symbol-layer compaction policy for BeginDelta, mirroring
  /// Relation::Extend: flatten when the chain gets deeper than this ...
  static constexpr size_t kMaxSymbolChainDepth = 8;
  /// ... or when accumulated delta symbols reach
  /// max(root_size, kFlattenMinSymbols).
  static constexpr size_t kFlattenMinSymbols = 256;

 private:
  /// Copy-on-write step: if `name` is still shared with the base epoch,
  /// replace it with a delta layer owned by this epoch.
  Relation* MutableRelation(const std::string& name);

  std::shared_ptr<SymbolTable> symbols_;
  std::unordered_map<std::string, std::shared_ptr<Relation>> relations_;
  std::unordered_map<SymbolId, Relation*> by_id_;
  std::vector<std::string> names_;
  /// Relations inherited from the base epoch and not yet copied-on-write.
  /// Frozen; must not be mutated or thawed through this database.
  std::unordered_set<std::string> borrowed_;
  /// Set when PruneEmptyDeltas re-shared the base epoch's symbol table;
  /// Thaw() must then leave it frozen (older epochs still read it).
  bool symbols_borrowed_ = false;
  /// Epoch-attached derived state (see AttachArtifact); dropped by Thaw()
  /// because artifacts describe the frozen contents only.
  std::shared_ptr<const SnapshotArtifact> artifact_;
  uint64_t epoch_ = 0;
  bool frozen_ = false;
};

}  // namespace binchain

#endif  // BINCHAIN_STORAGE_DATABASE_H_
