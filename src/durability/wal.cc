#include "durability/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"
#include "util/fault_points.h"

namespace binchain {
namespace durability {
namespace {

constexpr char kCheckpointMagic[4] = {'B', 'C', 'K', 'P'};
constexpr uint32_t kCheckpointVersion = 1;

/// The WAL metric family. Everything here sits next to file I/O (writes,
/// fdatasync), so the relaxed-atomic recording cost is invisible; the
/// poisoned gauge gives scrapers the sticky-failure signal that today only
/// surfaces through refused publishes.
struct WalObs {
  static WalObs& Get() {
    static WalObs* o = new WalObs();
    return *o;
  }
  obs::Counter* bytes_appended;
  obs::Counter* commits;
  obs::Counter* checkpoints;
  obs::Histogram* fsync_ms;
  obs::Gauge* poisoned;

 private:
  WalObs() {
    obs::Registry& r = obs::Registry::Global();
    bytes_appended = r.GetCounter("binchain_wal_bytes_appended_total",
                                  "Bytes of framed records written to the log");
    commits = r.GetCounter("binchain_wal_commits_total",
                           "COMMIT records appended (publish durability points)");
    checkpoints = r.GetCounter("binchain_wal_checkpoints_total",
                               "Checkpoints written (log truncations)");
    fsync_ms = r.GetHistogram("binchain_wal_commit_fsync_ms",
                              "fdatasync latency at commit durability points");
    poisoned = r.GetGauge(
        "binchain_wal_poisoned",
        "1 once the WAL hit a sticky failure and refuses further ops");
  }
};

Status ErrnoStatus(const char* op) {
  return Status::Internal(std::string("wal: ") + op + ": " +
                          std::strerror(errno));
}

// --- little-endian buffer encoding -----------------------------------------

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked decoder over a byte span; every Get* fails soft so a torn
/// or corrupt payload surfaces as `ok() == false`, never as a read overrun.
class Decoder {
 public:
  Decoder(const char* data, size_t n) : p_(data), end_(data + n) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return p_ == end_; }

  uint8_t GetU8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(*p_++);
  }
  uint16_t GetU16() {
    if (!Need(2)) return 0;
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<uint16_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
    return v;
  }
  uint32_t GetU32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
    return v;
  }
  uint64_t GetU64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(static_cast<uint8_t>(*p_++)) << (8 * i);
    return v;
  }
  std::string GetString() {
    uint32_t n = GetU32();
    if (!Need(n)) return std::string();
    std::string s(p_, p_ + n);
    p_ += n;
    return s;
  }

 private:
  bool Need(size_t n) {
    if (!ok_ || static_cast<size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }
  const char* p_;
  const char* end_;
  bool ok_ = true;
};

std::string EncodePayload(const WalRecord& rec) {
  std::string payload;
  payload.push_back(static_cast<char>(rec.kind));
  if (rec.kind == WalRecord::kCommit) {
    PutU64(&payload, rec.epoch);
    return payload;
  }
  PutU16(&payload, static_cast<uint16_t>(rec.args.size()));
  PutString(&payload, rec.pred);
  for (const std::string& a : rec.args) PutString(&payload, a);
  return payload;
}

bool DecodePayload(const char* data, size_t n, WalRecord* rec) {
  Decoder d(data, n);
  uint8_t kind = d.GetU8();
  switch (kind) {
    case WalRecord::kCommit:
      rec->kind = WalRecord::kCommit;
      rec->epoch = d.GetU64();
      return d.ok() && d.AtEnd();
    case WalRecord::kAdd:
    case WalRecord::kDelete: {
      rec->kind = static_cast<WalRecord::Kind>(kind);
      uint16_t nargs = d.GetU16();
      rec->pred = d.GetString();
      rec->args.clear();
      rec->args.reserve(nargs);
      for (uint16_t i = 0; i < nargs; ++i) rec->args.push_back(d.GetString());
      return d.ok() && d.AtEnd();
    }
    default:
      return false;
  }
}

Status WriteFully(int fd, const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write");
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path + ": no such file");
    return ErrnoStatus("open");
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read");
    }
    if (r == 0) break;
    out->append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return Status::Ok();
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir");
  Status st = Status::Ok();
  if (::fsync(fd) != 0) st = ErrnoStatus("fsync dir");
  ::close(fd);
  return st;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  // IEEE 802.3 reflected polynomial, table built on first use.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

std::string Wal::LogPath(const std::string& dir) { return dir + "/wal.log"; }
std::string Wal::CheckpointPath(const std::string& dir) {
  return dir + "/checkpoint.bin";
}
std::string Wal::CheckpointTmpPath(const std::string& dir) {
  return dir + "/checkpoint.tmp";
}

const std::vector<const char*>& Wal::FaultPointNames() {
  static const std::vector<const char*> kNames = {
      "wal.append.crash_before",
      "wal.append.short_write",
      "wal.append.crash_after",
      "wal.commit.crash_before",
      "wal.commit.short_write",
      "wal.commit.crash_after_write",
      "wal.commit.fsync_fail",
      "wal.commit.crash_after_fsync",
      "wal.checkpoint.crash_before",
      "wal.checkpoint.short_write",
      "wal.checkpoint.fsync_fail",
      "wal.checkpoint.crash_before_rename",
      "wal.checkpoint.crash_after_rename",
  };
  return kNames;
}

Wal::Wal(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       WalOptions options) {
  struct stat st;
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("wal: not a directory: " + dir);
  }
  std::unique_ptr<Wal> wal(new Wal(dir, options));
  wal->fd_ = ::open(LogPath(dir).c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (wal->fd_ < 0) return ErrnoStatus("open wal.log");
  struct stat log_st;
  if (::fstat(wal->fd_, &log_st) != 0) return ErrnoStatus("fstat wal.log");
  wal->log_bytes_ = static_cast<uint64_t>(log_st.st_size);
  return wal;
}

uint64_t Wal::log_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_bytes_;
}

uint64_t Wal::checkpoints_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoints_;
}

Status Wal::poisoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poison_;
}

Status Wal::Poison(Status st) {
  poison_ = st;
  WalObs::Get().poisoned->Set(1);
  return st;
}

Status Wal::AppendLocked(const WalRecord& rec) {
  if (!poison_.ok()) return poison_;
  std::string payload = EncodePayload(rec);
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);

  const bool commit = rec.kind == WalRecord::kCommit;
  FaultCrashPoint(commit ? "wal.commit.crash_before"
                         : "wal.append.crash_before");
  if (FaultFailPoint(commit ? "wal.commit.short_write"
                            : "wal.append.short_write")) {
    // Simulated torn write: half the frame reaches the file, then the
    // process dies. Recovery must detect and truncate this tail.
    (void)WriteFully(fd_, frame.data(), frame.size() / 2);
    log_bytes_ += frame.size() / 2;
    throw FaultInjectedCrash(commit ? "wal.commit.short_write"
                                    : "wal.append.short_write");
  }
  Status st = WriteFully(fd_, frame.data(), frame.size());
  if (!st.ok()) return Poison(std::move(st));
  log_bytes_ += frame.size();
  WalObs::Get().bytes_appended->Inc(frame.size());
  FaultCrashPoint(commit ? "wal.commit.crash_after_write"
                         : "wal.append.crash_after");
  return Status::Ok();
}

Status Wal::AppendRecord(const WalRecord& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(rec);
}

Status Wal::StageAdd(const std::string& pred,
                     const std::vector<std::string>& args) {
  WalRecord rec;
  rec.kind = WalRecord::kAdd;
  rec.pred = pred;
  rec.args = args;
  return AppendRecord(rec);
}

Status Wal::StageDelete(const std::string& pred,
                        const std::vector<std::string>& args) {
  WalRecord rec;
  rec.kind = WalRecord::kDelete;
  rec.pred = pred;
  rec.args = args;
  return AppendRecord(rec);
}

Status Wal::Commit(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  WalRecord rec;
  rec.kind = WalRecord::kCommit;
  rec.epoch = epoch;
  Status st = AppendLocked(rec);
  if (!st.ok()) return st;
  if (options_.fsync_commits) {
    if (FaultFailPoint("wal.commit.fsync_fail")) {
      // A failed commit fsync means we cannot know whether the record is
      // durable; the only safe answer is to refuse this and every later op
      // so the manager never swaps in an epoch the log might not cover.
      return Poison(Status::Internal("wal: injected commit fsync failure"));
    }
    auto t0 = std::chrono::steady_clock::now();
    if (::fdatasync(fd_) != 0) return Poison(ErrnoStatus("fdatasync"));
    WalObs::Get().fsync_ms->Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  FaultCrashPoint("wal.commit.crash_after_fsync");
  WalObs::Get().commits->Inc();
  return Status::Ok();
}

void Wal::Published(const Database& tip) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!poison_.ok()) return;
  if (log_bytes_ < options_.checkpoint_log_bytes) return;
  // Failure keeps the log authoritative: the tip is still recoverable by
  // replaying it, and the next publish retries the checkpoint.
  (void)CheckpointLocked(tip);
}

void Wal::Sealed(const Database& genesis) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!poison_.ok()) return;
  // The genesis checkpoint anchors recovery: without it, a crash before
  // the first threshold checkpoint would replay onto an *empty* database
  // and silently lose the initial load. Startup-time failure is sticky.
  Status st = CheckpointLocked(genesis);
  if (!st.ok()) Poison(std::move(st));
}

Status Wal::Checkpoint(const Database& tip) {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked(tip);
}

Status Wal::CheckpointLocked(const Database& tip) {
  if (!poison_.ok()) return poison_;
  FaultCrashPoint("wal.checkpoint.crash_before");

  std::string payload;
  PutU64(&payload, tip.epoch());
  const std::vector<std::string>& names = tip.relation_names();
  PutU32(&payload, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    const Relation* rel = tip.Find(name);
    BINCHAIN_CHECK(rel != nullptr);
    PutString(&payload, name);
    PutU16(&payload, static_cast<uint16_t>(rel->arity()));
    PutU32(&payload, static_cast<uint32_t>(rel->live_size()));
    // tuples() is the live view: tombstoned rows are filtered out here, so
    // a checkpoint + empty log *is* the compaction of every retraction.
    for (TupleRef t : rel->tuples()) {
      for (size_t i = 0; i < t.size(); ++i) {
        PutString(&payload, std::string(tip.symbols().Name(t[i])));
      }
    }
  }

  std::string blob;
  blob.reserve(16 + payload.size());
  blob.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  PutU32(&blob, kCheckpointVersion);
  PutU32(&blob, Crc32(payload.data(), payload.size()));
  PutU32(&blob, static_cast<uint32_t>(payload.size()));
  blob.append(payload);

  const std::string tmp = CheckpointTmpPath(dir_);
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return ErrnoStatus("open checkpoint.tmp");
  if (FaultFailPoint("wal.checkpoint.short_write")) {
    (void)WriteFully(fd, blob.data(), blob.size() / 2);
    ::close(fd);
    throw FaultInjectedCrash("wal.checkpoint.short_write");
  }
  Status st = WriteFully(fd, blob.data(), blob.size());
  if (st.ok()) {
    if (FaultFailPoint("wal.checkpoint.fsync_fail")) {
      st = Status::Internal("wal: injected checkpoint fsync failure");
    } else if (::fsync(fd) != 0) {
      st = ErrnoStatus("fsync checkpoint.tmp");
    }
  }
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;  // log stays authoritative; not poisoned
  }

  FaultCrashPoint("wal.checkpoint.crash_before_rename");
  // rename is the atomic commit of the checkpoint: readers (recovery) see
  // either the old complete file or the new complete file, never a mix.
  if (::rename(tmp.c_str(), CheckpointPath(dir_).c_str()) != 0) {
    return ErrnoStatus("rename checkpoint");
  }
  Status dir_st = SyncDir(dir_);
  if (!dir_st.ok()) return dir_st;
  FaultCrashPoint("wal.checkpoint.crash_after_rename");

  // Truncating the log is *not* required for correctness — COMMIT records
  // carry epochs and replay skips batches at or below the checkpoint — so
  // a crash anywhere around here merely leaves redundant records behind.
  if (::ftruncate(fd_, 0) != 0) return Poison(ErrnoStatus("ftruncate"));
  log_bytes_ = 0;
  ++checkpoints_;
  WalObs::Get().checkpoints->Inc();
  return Status::Ok();
}

Result<WalScan> ScanLog(const std::string& path) {
  WalScan scan;
  std::string bytes;
  Status st = ReadWholeFile(path, &bytes);
  if (!st.ok()) {
    if (st.code() == StatusCode::kNotFound) return scan;  // fresh start
    return st;
  }
  size_t off = 0;
  while (off < bytes.size()) {
    if (bytes.size() - off < 8) break;  // torn header
    Decoder hdr(bytes.data() + off, 8);
    uint32_t len = hdr.GetU32();
    uint32_t crc = hdr.GetU32();
    if (bytes.size() - off - 8 < len) break;  // torn payload
    const char* payload = bytes.data() + off + 8;
    if (Crc32(payload, len) != crc) break;  // corrupt payload
    WalRecord rec;
    if (!DecodePayload(payload, len, &rec)) break;
    bool commit = rec.kind == WalRecord::kCommit;
    scan.records.push_back(std::move(rec));
    off += 8 + len;
    scan.good_bytes = off;
    if (commit) scan.committed_bytes = off;
  }
  scan.file_bytes = bytes.size();
  scan.torn_tail = scan.good_bytes < bytes.size();
  return scan;
}

Result<CheckpointData> ReadCheckpoint(const std::string& path) {
  std::string bytes;
  Status st = ReadWholeFile(path, &bytes);
  if (!st.ok()) return st;
  if (bytes.size() < 16 ||
      std::memcmp(bytes.data(), kCheckpointMagic, 4) != 0) {
    return Status::Internal("checkpoint: bad magic");
  }
  Decoder hdr(bytes.data() + 4, 12);
  uint32_t version = hdr.GetU32();
  uint32_t crc = hdr.GetU32();
  uint32_t len = hdr.GetU32();
  if (version != kCheckpointVersion) {
    return Status::Internal("checkpoint: unknown version");
  }
  if (bytes.size() - 16 != len) {
    return Status::Internal("checkpoint: truncated payload");
  }
  const char* payload = bytes.data() + 16;
  if (Crc32(payload, len) != crc) {
    return Status::Internal("checkpoint: payload CRC mismatch");
  }
  Decoder d(payload, len);
  CheckpointData data;
  data.epoch = d.GetU64();
  uint32_t nrels = d.GetU32();
  data.relations.reserve(nrels);
  for (uint32_t i = 0; i < nrels && d.ok(); ++i) {
    CheckpointData::RelationRows rel;
    rel.name = d.GetString();
    rel.arity = d.GetU16();
    uint32_t nrows = d.GetU32();
    rel.rows.reserve(nrows);
    for (uint32_t r = 0; r < nrows && d.ok(); ++r) {
      std::vector<std::string> row;
      row.reserve(rel.arity);
      for (uint16_t a = 0; a < rel.arity; ++a) row.push_back(d.GetString());
      rel.rows.push_back(std::move(row));
    }
    data.relations.push_back(std::move(rel));
  }
  if (!d.ok() || !d.AtEnd()) {
    return Status::Internal("checkpoint: malformed payload");
  }
  return data;
}

}  // namespace durability
}  // namespace binchain
