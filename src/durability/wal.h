// Write-ahead log for the live-update subsystem: durable epochs.
//
// The SnapshotManager's publish pipeline is crash-safe only if every batch
// a reader could have observed survives a process kill. The Wal implements
// the DurabilitySink protocol: each staged op (fact add / tombstone
// retraction) is appended to an append-only log as it is staged, and
// Publish writes a COMMIT record — fdatasync'ed to stable storage —
// *before* the tip swap. Recovery (durability/recovery.h) replays the
// committed batches on top of the last checkpoint and provably lands on
// the same serving tip; anything after the last durable COMMIT is
// truncated, never half-applied.
//
// On-disk layout (<dir>/):
//   wal.log         length-prefixed, CRC-guarded records (format below)
//   checkpoint.bin  full snapshot of a published epoch (atomic rename)
//   checkpoint.tmp  in-flight checkpoint (ignored by recovery)
//
// Record framing: uint32 payload_len, uint32 crc32(payload), payload.
// Payload: uint8 kind (1=ADD, 2=DELETE, 3=COMMIT); ADD/DELETE carry
// uint16 nargs + length-prefixed pred + length-prefixed args; COMMIT
// carries the uint64 epoch id that became durable. All integers are
// little-endian, written on the platform this log is read on (the log is
// machine-local, not an interchange format).
//
// Torn-tail rule: a trailing record with a short header, short payload, or
// CRC mismatch marks the crash frontier. Recovery truncates the file at
// the last well-formed COMMIT boundary — complete-but-uncommitted Stage
// records are cut too, because the in-memory manager that staged them is
// gone and a later commit must not sweep in ops nobody re-staged.
//
// Checkpoint policy: after a publish, once the log has grown past
// WalOptions::checkpoint_log_bytes, Published() serializes the freshly
// swapped tip to checkpoint.tmp, fsyncs, renames over checkpoint.bin,
// fsyncs the directory, then truncates the log. COMMIT records carry the
// epoch so a crash between rename and truncate cannot double-apply: replay
// skips batches whose epoch is <= the checkpoint's.
//
// Fault injection: every crash-consistency-relevant step is bracketed by a
// named FaultInjector point (util/fault_points.h); tests/recovery_test.cc
// arms each in turn, kills the "process" (unwinds via FaultInjectedCrash),
// and asserts recovery lands on the pre-crash committed tip or the
// post-publish tip — never anything else.
#ifndef BINCHAIN_DURABILITY_WAL_H_
#define BINCHAIN_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "live/snapshot_manager.h"
#include "util/status.h"

namespace binchain {
namespace durability {

/// One logical log record, as parsed back by recovery.
struct WalRecord {
  enum Kind : uint8_t { kAdd = 1, kDelete = 2, kCommit = 3 };
  Kind kind = kAdd;
  std::string pred;                // kAdd / kDelete
  std::vector<std::string> args;   // kAdd / kDelete
  uint64_t epoch = 0;              // kCommit
};

struct WalOptions {
  /// Published() triggers a checkpoint + log truncation once the log file
  /// exceeds this many bytes. 0 checkpoints after every publish.
  uint64_t checkpoint_log_bytes = 1 << 20;
  /// When false, Commit() skips the fdatasync (still flushes to the OS).
  /// For benchmarking the fsync cost; a real deployment keeps it on.
  bool fsync_commits = true;
};

/// Append side of the log; implements the SnapshotManager's sink protocol.
/// Thread-safe: Stage* arrive under the manager's staging lock, Commit /
/// Published / Sealed from the publishing thread; an internal mutex makes
/// the file state consistent anyway. After any I/O failure the Wal poisons
/// itself — every later op returns the sticky error and Commit refuses, so
/// the manager aborts the publish instead of swapping in an epoch the log
/// does not cover.
class Wal : public DurabilitySink {
 public:
  /// Opens (creating if needed) the log in `dir`. The directory itself must
  /// exist after this call; the log file is created empty if absent and
  /// appended to if present (recovery truncates the tail first).
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           WalOptions options = {});
  ~Wal() override;

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // DurabilitySink:
  Status StageAdd(const std::string& pred,
                  const std::vector<std::string>& args) override;
  Status StageDelete(const std::string& pred,
                     const std::vector<std::string>& args) override;
  Status Commit(uint64_t epoch) override;
  void Published(const Database& tip) override;
  void Sealed(const Database& genesis) override;

  /// Forces a checkpoint of `tip` regardless of the log-size threshold.
  Status Checkpoint(const Database& tip);

  /// Current size of the log file in bytes (as appended by this handle).
  /// Monitoring note: cumulative append volume, checkpoint counts, commit
  /// fsync latency, and the poisoned flag are also exported through the
  /// metrics registry (`binchain_wal_*`); these accessors remain for tests
  /// and checkpoint-policy logic that needs this handle's exact state
  /// (log_bytes resets to 0 at each checkpoint, the counter never does).
  uint64_t log_bytes() const;
  /// Number of checkpoints written by this handle.
  uint64_t checkpoints_written() const;
  /// The sticky error, or OK. Once non-OK the Wal accepts no further ops.
  Status poisoned() const;

  /// Path helpers shared with recovery.
  static std::string LogPath(const std::string& dir);
  static std::string CheckpointPath(const std::string& dir);
  static std::string CheckpointTmpPath(const std::string& dir);

  /// Names of every fault point the Wal honors, with the recovery outcome
  /// the matrix test asserts. Order: temporal, along the publish pipeline.
  static const std::vector<const char*>& FaultPointNames();

 private:
  Wal(std::string dir, WalOptions options);

  Status AppendRecord(const WalRecord& rec);
  Status AppendLocked(const WalRecord& rec);
  Status CheckpointLocked(const Database& tip);
  Status Poison(Status st);

  const std::string dir_;
  const WalOptions options_;
  mutable std::mutex mu_;
  int fd_ = -1;                  // wal.log, O_APPEND
  uint64_t log_bytes_ = 0;       // bytes written through this handle
  uint64_t checkpoints_ = 0;
  Status poison_ = Status::Ok();
};

/// CRC-32 (IEEE, reflected) over `n` bytes — self-contained, table-based.
/// Exposed for recovery and tests.
uint32_t Crc32(const void* data, size_t n);

/// Read side of the log, used by recovery and the fault-matrix tests.
/// Well-formed records parse into `records`; `good_bytes` is the offset
/// just past the last well-formed record (a torn tail, if any, starts
/// there). A missing file scans clean and empty.
struct WalScan {
  std::vector<WalRecord> records;
  uint64_t good_bytes = 0;
  /// Offset just past the last well-formed COMMIT record: the recovery
  /// frontier. Bytes past it (torn tails, but also complete Stage records
  /// whose commit never made it) must be physically truncated — the
  /// in-memory manager that staged them is gone, and a future commit must
  /// not sweep in ops nobody re-staged.
  uint64_t committed_bytes = 0;
  uint64_t file_bytes = 0;
  bool torn_tail = false;  // short/corrupt trailing bytes were present
};
Result<WalScan> ScanLog(const std::string& path);

/// Decoded checkpoint.bin: the full live contents of one published epoch.
struct CheckpointData {
  struct RelationRows {
    std::string name;
    uint16_t arity = 0;
    std::vector<std::vector<std::string>> rows;  // live rows, string form
  };
  uint64_t epoch = 0;
  std::vector<RelationRows> relations;
};
/// NotFound when no checkpoint exists yet; Internal on a corrupt file
/// (checkpoint writes are rename-atomic, so corruption is never expected).
Result<CheckpointData> ReadCheckpoint(const std::string& path);

}  // namespace durability
}  // namespace binchain

#endif  // BINCHAIN_DURABILITY_WAL_H_
