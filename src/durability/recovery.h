// Crash recovery for durable epochs: checkpoint + WAL replay.
//
// RecoveryManager::Load reads the on-disk state a crashed process left in
// the WAL directory and normalizes it to the last durable COMMIT: a torn
// trailing record (short header/payload, CRC mismatch) and any complete
// Stage records whose commit never reached stable storage are physically
// truncated away. What remains is the checkpoint plus a sequence of fully
// committed batches — exactly the epochs a pre-crash reader could have
// observed after a publish returned.
//
// Replay then drives an ordinary SnapshotManager through the same
// AddFact / DeleteFact / Publish sequence the pre-crash process ran, so
// the recovered tip is rebuilt by the production publish pipeline, not a
// parallel code path: same tombstone semantics, same flatten policy, same
// artifact refresh. COMMIT records carry the epoch id, which makes replay
// immune to the crash-between-checkpoint-rename-and-log-truncate window:
// batches at or below the checkpoint's epoch are skipped, and re-applied
// adds/deletes are idempotent anyway (last-writer-wins per fact).
//
// The durability sink must NOT be attached while replaying — replayed
// batches are already in the log — and is attached right after, so the
// first post-recovery publish commits at the next epoch id.
#ifndef BINCHAIN_DURABILITY_RECOVERY_H_
#define BINCHAIN_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durability/wal.h"
#include "live/snapshot_manager.h"
#include "storage/database.h"
#include "util/status.h"

namespace binchain {
namespace durability {

struct RecoveryStats {
  bool checkpoint_found = false;
  uint64_t checkpoint_epoch = 0;   // 0 when no checkpoint (fresh dir)
  uint64_t checkpoint_facts = 0;   // live rows restored from the checkpoint
  uint64_t records_scanned = 0;    // well-formed log records
  uint64_t batches_committed = 0;  // committed batches found in the log
  uint64_t batches_skipped = 0;    // of those, at/below the checkpoint epoch
  uint64_t batches_replayed = 0;   // publishes re-run during Replay()
  /// True when Load() physically cut the log: a torn trailing record
  /// and/or complete-but-uncommitted Stage records past the last COMMIT.
  bool tail_truncated = false;
  uint64_t truncated_bytes = 0;
};

/// One recovery pass over a WAL directory. Load → BuildGenesis → (seal the
/// manager) → Replay; then open the Wal and attach it as the manager's
/// sink. RecoverSnapshotManager() below bundles those steps.
class RecoveryManager {
 public:
  /// Reads checkpoint + log, truncates past the recovery frontier. After
  /// Load returns, the directory is clean: every byte in the log belongs
  /// to a committed batch. A directory with neither file recovers to an
  /// empty genesis at epoch 0 (fresh start).
  static Result<std::unique_ptr<RecoveryManager>> Load(const std::string& dir);

  /// The recovered base state: an open (unfrozen) database holding the
  /// checkpoint's live facts, stamped with the checkpoint's epoch id so
  /// replayed publishes continue the pre-crash numbering. Call once.
  std::unique_ptr<Database> BuildGenesis() const;

  /// Re-runs every committed batch above the checkpoint epoch through
  /// `manager` (which must be sealed over BuildGenesis() and must not have
  /// a durability sink attached yet). Internal error if a replayed publish
  /// lands on an epoch id other than the batch's COMMIT recorded.
  Status Replay(SnapshotManager* manager);

  /// Opens the append side over the now-normalized log.
  Result<std::unique_ptr<Wal>> OpenWal(WalOptions options = {}) const;

  const RecoveryStats& stats() const { return stats_; }
  const std::string& dir() const { return dir_; }

 private:
  explicit RecoveryManager(std::string dir) : dir_(std::move(dir)) {}

  struct Batch {
    uint64_t epoch = 0;
    std::vector<WalRecord> ops;
  };

  std::string dir_;
  CheckpointData checkpoint_;
  std::vector<Batch> batches_;
  RecoveryStats stats_;
};

/// Everything a durable live deployment needs, recovered in one call.
struct RecoveredSystem {
  std::unique_ptr<SnapshotManager> manager;  // sealed, tip == recovered tip
  std::unique_ptr<Wal> wal;                  // attached as the manager's sink
  RecoveryStats stats;
};

/// Full recovery pipeline: Load, BuildGenesis, construct + seal a
/// SnapshotManager (with `builder` installed when non-null), Replay, open
/// the Wal, attach it. The returned manager is ready to serve and every
/// further publish is durable.
Result<RecoveredSystem> RecoverSnapshotManager(
    const std::string& dir, WalOptions options = {},
    SnapshotManager::ArtifactBuilder builder = nullptr);

}  // namespace durability
}  // namespace binchain

#endif  // BINCHAIN_DURABILITY_RECOVERY_H_
