#include "durability/recovery.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/check.h"

namespace binchain {
namespace durability {

Result<std::unique_ptr<RecoveryManager>> RecoveryManager::Load(
    const std::string& dir) {
  std::unique_ptr<RecoveryManager> rm(new RecoveryManager(dir));

  // checkpoint.tmp is an in-flight checkpoint the crash interrupted before
  // its atomic rename; it is garbage by definition.
  ::unlink(Wal::CheckpointTmpPath(dir).c_str());

  Result<CheckpointData> ckpt = ReadCheckpoint(Wal::CheckpointPath(dir));
  if (ckpt.ok()) {
    rm->checkpoint_ = ckpt.take();
    rm->stats_.checkpoint_found = true;
    rm->stats_.checkpoint_epoch = rm->checkpoint_.epoch;
    for (const auto& rel : rm->checkpoint_.relations) {
      rm->stats_.checkpoint_facts += rel.rows.size();
    }
  } else if (ckpt.status().code() != StatusCode::kNotFound) {
    return ckpt.status();  // corrupt checkpoint: refuse to guess
  }

  const std::string log_path = Wal::LogPath(dir);
  Result<WalScan> scanned = ScanLog(log_path);
  if (!scanned.ok()) return scanned.status();
  WalScan scan = scanned.take();
  rm->stats_.records_scanned = scan.records.size();

  // Normalize the log to the recovery frontier: everything past the last
  // committed batch — torn bytes or complete-but-uncommitted records — is
  // physically removed so the file and the recovered state agree forever.
  if (scan.file_bytes > scan.committed_bytes) {
    rm->stats_.tail_truncated = true;
    rm->stats_.truncated_bytes = scan.file_bytes - scan.committed_bytes;
    if (::truncate(log_path.c_str(),
                   static_cast<off_t>(scan.committed_bytes)) != 0) {
      return Status::Internal(std::string("recovery: truncate: ") +
                              std::strerror(errno));
    }
  }

  Batch current;
  for (WalRecord& rec : scan.records) {
    if (rec.kind != WalRecord::kCommit) {
      current.ops.push_back(std::move(rec));
      continue;
    }
    current.epoch = rec.epoch;
    ++rm->stats_.batches_committed;
    // The checkpoint-epoch guard closes the rename-then-crash window: a
    // checkpoint that renamed but never truncated leaves its own batches
    // behind in the log, already folded into the checkpoint contents.
    if (rm->stats_.checkpoint_found &&
        current.epoch <= rm->checkpoint_.epoch) {
      ++rm->stats_.batches_skipped;
    } else {
      rm->batches_.push_back(std::move(current));
    }
    current = Batch();
  }
  // Whatever `current` holds now is the complete-but-uncommitted record
  // tail — the very bytes the truncation above removed from the file.
  // Dropped, never replayed: the manager that staged them is gone.
  return rm;
}

std::unique_ptr<Database> RecoveryManager::BuildGenesis() const {
  auto db = std::make_unique<Database>();
  for (const auto& rel : checkpoint_.relations) {
    // Materialize the schema even for emptied relations, so replayed
    // deletes and queries resolve the predicate exactly as pre-crash.
    db->GetOrCreate(rel.name, rel.arity);
    for (const auto& row : rel.rows) {
      bool added = db->AddFact(rel.name, row);
      BINCHAIN_CHECK(added);  // checkpoints hold no duplicates
    }
  }
  db->SetRecoveredEpoch(checkpoint_.epoch);
  return db;
}

Status RecoveryManager::Replay(SnapshotManager* manager) {
  BINCHAIN_CHECK(manager != nullptr);
  BINCHAIN_CHECK(manager->sealed());
  for (const Batch& batch : batches_) {
    for (const WalRecord& op : batch.ops) {
      if (op.kind == WalRecord::kDelete) {
        manager->DeleteFact(op.pred, op.args);
      } else {
        manager->AddFact(op.pred, op.args);
      }
    }
    PublishStats stats = manager->Publish();
    if (!stats.status.ok()) return stats.status;
    if (stats.epoch != batch.epoch) {
      return Status::Internal(
          "recovery: replayed publish landed on epoch " +
          std::to_string(stats.epoch) + ", log committed " +
          std::to_string(batch.epoch));
    }
    ++stats_.batches_replayed;
  }
  return Status::Ok();
}

Result<std::unique_ptr<Wal>> RecoveryManager::OpenWal(
    WalOptions options) const {
  return Wal::Open(dir_, options);
}

Result<RecoveredSystem> RecoverSnapshotManager(
    const std::string& dir, WalOptions options,
    SnapshotManager::ArtifactBuilder builder) {
  Result<std::unique_ptr<RecoveryManager>> loaded = RecoveryManager::Load(dir);
  if (!loaded.ok()) return loaded.status();
  std::unique_ptr<RecoveryManager> rm = loaded.take();

  RecoveredSystem sys;
  sys.manager = std::make_unique<SnapshotManager>(rm->BuildGenesis());
  if (builder) sys.manager->SetArtifactBuilder(std::move(builder));
  // Seal and replay with no sink attached: these batches are already in
  // the log, and re-appending them would duplicate the history.
  sys.manager->Seal();
  Status st = rm->Replay(sys.manager.get());
  if (!st.ok()) return st;

  Result<std::unique_ptr<Wal>> wal = rm->OpenWal(options);
  if (!wal.ok()) return wal.status();
  sys.wal = wal.take();
  sys.manager->SetDurabilitySink(sys.wal.get());
  sys.stats = rm->stats();
  return sys;
}

}  // namespace durability
}  // namespace binchain
