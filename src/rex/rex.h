// Binary relational expressions over the operators U (union), . (composition)
// and * (reflexive transitive closure), with predicate symbols (possibly
// inverted) and the identity relation as leaves. These are the right-hand
// sides of the equation systems produced by Lemma 1.
//
// Expressions are immutable and shared (shared_ptr DAG). Smart constructors
// perform the algebraic normalizations the paper's transformation relies on
// (flattening, unit and zero laws).
#ifndef BINCHAIN_REX_REX_H_
#define BINCHAIN_REX_REX_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "storage/symbol_table.h"

namespace binchain {

struct Rex;
using RexPtr = std::shared_ptr<const Rex>;

struct Rex {
  enum class Kind {
    kEmpty,   // the empty relation (denoted 0)
    kId,      // the identity relation (empty-string transition)
    kPred,    // a predicate symbol, optionally inverted (r^-1)
    kUnion,   // e1 U ... U en   (n >= 2)
    kConcat,  // e1 . ... . en   (n >= 2)
    kStar,    // e*
  };

  Kind kind;
  SymbolId pred = 0;     // kPred only
  bool inverted = false; // kPred only
  std::vector<RexPtr> kids;

  static RexPtr Empty();
  static RexPtr Id();
  static RexPtr Pred(SymbolId p, bool inverted = false);
  static RexPtr Union(std::vector<RexPtr> es);
  static RexPtr Union2(RexPtr a, RexPtr b);
  static RexPtr Concat(std::vector<RexPtr> es);
  static RexPtr Concat2(RexPtr a, RexPtr b);
  static RexPtr Star(RexPtr e);

  bool IsEmpty() const { return kind == Kind::kEmpty; }
  bool IsId() const { return kind == Kind::kId; }
  bool IsPred(SymbolId p) const { return kind == Kind::kPred && pred == p; }
};

/// True iff `p` occurs (as a predicate leaf) anywhere in `e`.
bool ContainsPred(const RexPtr& e, SymbolId p);

/// All predicate symbols occurring in `e`.
void CollectPreds(const RexPtr& e, std::unordered_set<SymbolId>& out);

/// Number of occurrences of `p` in `e`.
size_t CountPred(const RexPtr& e, SymbolId p);

/// Total number of predicate-leaf occurrences (the paper's notion of
/// expression size counts tuples per occurrence; this is the occurrence
/// count used to bound it).
size_t LeafCount(const RexPtr& e);

/// Replaces every occurrence of predicate `p` by `replacement`.
RexPtr SubstitutePred(const RexPtr& e, SymbolId p, const RexPtr& replacement);

/// The inverse expression: (e1.e2)^-1 = e2^-1 . e1^-1, pushed to the leaves.
/// `map_pred` decides how a (pred, inverted) leaf inverts — base predicates
/// flip their `inverted` flag; derived predicates map to their inverse
/// predicate's symbol.
RexPtr Invert(const RexPtr& e,
              const std::function<RexPtr(SymbolId, bool)>& map_pred);

/// Distributes concatenation over union, but only for concat nodes where the
/// union factor contains a predicate from `targets` (Lemma 1 step 8).
/// Runs to fixpoint.
RexPtr DistributeOverUnion(const RexPtr& e,
                           const std::unordered_set<SymbolId>& targets);

/// Paper-style rendering: "b.(d.e)*.c U ql.a". Inverted leaves print as
/// "r^-1".
std::string RexToString(const RexPtr& e, const SymbolTable& symbols);

/// Structural equality (after smart-constructor normalization).
bool RexEquals(const RexPtr& a, const RexPtr& b);

}  // namespace binchain

#endif  // BINCHAIN_REX_REX_H_
