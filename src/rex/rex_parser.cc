#include "rex/rex_parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace binchain {
namespace {

struct RexToken {
  enum class Kind { kIdent, kUnion, kDot, kStar, kInverse, kLParen, kRParen,
                    kEquals, kNewline, kEnd };
  Kind kind;
  std::string text;
  int line;
};

Result<std::vector<RexToken>> LexRex(std::string_view src) {
  std::vector<RexToken> out;
  int line = 1;
  size_t i = 0;
  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      out.push_back({RexToken::Kind::kNewline, "\n", line});
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '%') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    switch (c) {
      case '.':
        out.push_back({RexToken::Kind::kDot, ".", line});
        ++i;
        continue;
      case '*':
        out.push_back({RexToken::Kind::kStar, "*", line});
        ++i;
        continue;
      case '(':
        out.push_back({RexToken::Kind::kLParen, "(", line});
        ++i;
        continue;
      case ')':
        out.push_back({RexToken::Kind::kRParen, ")", line});
        ++i;
        continue;
      case '=':
        out.push_back({RexToken::Kind::kEquals, "=", line});
        ++i;
        continue;
      default:
        break;
    }
    if (c == '^' && i + 2 < src.size() && src[i + 1] == '-' &&
        src[i + 2] == '1') {
      out.push_back({RexToken::Kind::kInverse, "^-1", line});
      i += 3;
      continue;
    }
    if (c == 'U' && (i + 1 >= src.size() ||
                     !(std::isalnum(static_cast<unsigned char>(src[i + 1])) ||
                       src[i + 1] == '_' || src[i + 1] == '~'))) {
      out.push_back({RexToken::Kind::kUnion, "U", line});
      ++i;
      continue;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '~') {
      size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) ||
              src[j] == '_' || src[j] == '~')) {
        ++j;
      }
      out.push_back(
          {RexToken::Kind::kIdent, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }
    return Status::InvalidArgument("rex lex error at line " +
                                   std::to_string(line) +
                                   ": unexpected character '" +
                                   std::string(1, c) + "'");
  }
  out.push_back({RexToken::Kind::kEnd, "", line});
  return out;
}

bool HasInvertedDerived(const EquationSystem& sys, const RexPtr& e) {
  if (e->kind == Rex::Kind::kPred) {
    return e->inverted && sys.Has(e->pred);
  }
  for (const RexPtr& k : e->kids) {
    if (HasInvertedDerived(sys, k)) return true;
  }
  return false;
}

class RexParser {
 public:
  RexParser(std::vector<RexToken> tokens, SymbolTable& symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  Result<RexPtr> ParseSingle() {
    SkipNewlines();
    auto e = ParseUnion();
    if (!e.ok()) return e;
    SkipNewlines();
    if (!At(RexToken::Kind::kEnd)) {
      return Error("trailing input after expression");
    }
    return e;
  }

  Result<EquationSystem> ParseSystem() {
    EquationSystem sys;
    while (true) {
      SkipNewlines();
      if (At(RexToken::Kind::kEnd)) break;
      if (!At(RexToken::Kind::kIdent)) {
        return Error("expected an equation left-hand side");
      }
      SymbolId lhs = symbols_.Intern(Cur().text);
      Next();
      if (!At(RexToken::Kind::kEquals)) return Error("expected '='");
      Next();
      auto rhs = ParseUnion();
      if (!rhs.ok()) return rhs.status();
      if (sys.Has(lhs)) {
        return Error("duplicate equation for '" + symbols_.Name(lhs) + "'");
      }
      sys.Set(lhs, rhs.take());
      if (!At(RexToken::Kind::kNewline) && !At(RexToken::Kind::kEnd)) {
        return Error("expected end of line after equation");
      }
    }
    if (sys.preds().empty()) return Error("empty equation system");
    // Inverses of *derived* predicates need the inverted system
    // (InvertSystem); reject them here rather than mis-evaluate.
    for (SymbolId p : sys.preds()) {
      if (HasInvertedDerived(sys, sys.Rhs(p))) {
        return Status::Unsupported(
            "inverse of a derived predicate in equation for '" +
            symbols_.Name(p) + "'; use InvertSystem instead");
      }
    }
    return sys;
  }

 private:
  const RexToken& Cur() const { return tokens_[pos_]; }
  bool At(RexToken::Kind k) const { return Cur().kind == k; }
  void Next() { ++pos_; }
  void SkipNewlines() {
    while (At(RexToken::Kind::kNewline)) Next();
  }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument("rex parse error at line " +
                                   std::to_string(Cur().line) + ": " + msg);
  }

  Result<RexPtr> ParseUnion() {
    auto first = ParseConcat();
    if (!first.ok()) return first;
    std::vector<RexPtr> alts{first.take()};
    while (At(RexToken::Kind::kUnion)) {
      Next();
      auto next = ParseConcat();
      if (!next.ok()) return next;
      alts.push_back(next.take());
    }
    return Rex::Union(std::move(alts));
  }

  Result<RexPtr> ParseConcat() {
    auto first = ParseFactor();
    if (!first.ok()) return first;
    std::vector<RexPtr> parts{first.take()};
    while (At(RexToken::Kind::kDot)) {
      Next();
      auto next = ParseFactor();
      if (!next.ok()) return next;
      parts.push_back(next.take());
    }
    return Rex::Concat(std::move(parts));
  }

  Result<RexPtr> ParseFactor() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom;
    RexPtr e = atom.take();
    while (true) {
      if (At(RexToken::Kind::kStar)) {
        Next();
        e = Rex::Star(e);
      } else if (At(RexToken::Kind::kInverse)) {
        Next();
        e = Invert(e, [](SymbolId p, bool inv) { return Rex::Pred(p, !inv); });
      } else {
        break;
      }
    }
    return e;
  }

  Result<RexPtr> ParseAtom() {
    if (At(RexToken::Kind::kLParen)) {
      Next();
      auto e = ParseUnion();
      if (!e.ok()) return e;
      if (!At(RexToken::Kind::kRParen)) return Error("expected ')'");
      Next();
      return e;
    }
    if (At(RexToken::Kind::kIdent)) {
      std::string name = Cur().text;
      Next();
      if (name == "0") return Rex::Empty();
      if (name == "id") return Rex::Id();
      return Rex::Pred(symbols_.Intern(name));
    }
    return Error("expected an atom, got '" + Cur().text + "'");
  }

  std::vector<RexToken> tokens_;
  SymbolTable& symbols_;
  size_t pos_ = 0;
};

}  // namespace

Result<RexPtr> ParseRex(std::string_view text, SymbolTable& symbols) {
  auto tokens = LexRex(text);
  if (!tokens.ok()) return tokens.status();
  RexParser parser(tokens.take(), symbols);
  return parser.ParseSingle();
}

Result<EquationSystem> ParseEquationSystem(std::string_view text,
                                           SymbolTable& symbols) {
  auto tokens = LexRex(text);
  if (!tokens.ok()) return tokens.status();
  RexParser parser(tokens.take(), symbols);
  return parser.ParseSystem();
}

}  // namespace binchain
