#include "rex/rex.h"

#include <algorithm>

#include "util/check.h"

namespace binchain {
namespace {

RexPtr Make(Rex r) { return std::make_shared<const Rex>(std::move(r)); }

}  // namespace

RexPtr Rex::Empty() {
  static const RexPtr e = Make(Rex{Kind::kEmpty, 0, false, {}});
  return e;
}

RexPtr Rex::Id() {
  static const RexPtr e = Make(Rex{Kind::kId, 0, false, {}});
  return e;
}

RexPtr Rex::Pred(SymbolId p, bool inverted) {
  return Make(Rex{Kind::kPred, p, inverted, {}});
}

RexPtr Rex::Union(std::vector<RexPtr> es) {
  std::vector<RexPtr> flat;
  for (RexPtr& e : es) {
    BINCHAIN_CHECK(e != nullptr);
    if (e->IsEmpty()) continue;
    if (e->kind == Kind::kUnion) {
      flat.insert(flat.end(), e->kids.begin(), e->kids.end());
    } else {
      flat.push_back(std::move(e));
    }
  }
  // Deduplicate structurally equal alternatives; keeps the systems produced
  // by repeated substitution from blowing up with syntactic copies.
  std::vector<RexPtr> uniq;
  for (RexPtr& e : flat) {
    bool dup = false;
    for (const RexPtr& u : uniq) {
      if (RexEquals(u, e)) {
        dup = true;
        break;
      }
    }
    if (!dup) uniq.push_back(std::move(e));
  }
  if (uniq.empty()) return Empty();
  if (uniq.size() == 1) return uniq[0];
  return Make(Rex{Kind::kUnion, 0, false, std::move(uniq)});
}

RexPtr Rex::Union2(RexPtr a, RexPtr b) {
  return Union({std::move(a), std::move(b)});
}

RexPtr Rex::Concat(std::vector<RexPtr> es) {
  std::vector<RexPtr> flat;
  for (RexPtr& e : es) {
    BINCHAIN_CHECK(e != nullptr);
    if (e->IsEmpty()) return Empty();
    if (e->IsId()) continue;
    if (e->kind == Kind::kConcat) {
      flat.insert(flat.end(), e->kids.begin(), e->kids.end());
    } else {
      flat.push_back(std::move(e));
    }
  }
  if (flat.empty()) return Id();
  if (flat.size() == 1) return flat[0];
  return Make(Rex{Kind::kConcat, 0, false, std::move(flat)});
}

RexPtr Rex::Concat2(RexPtr a, RexPtr b) {
  return Concat({std::move(a), std::move(b)});
}

RexPtr Rex::Star(RexPtr e) {
  BINCHAIN_CHECK(e != nullptr);
  if (e->IsEmpty() || e->IsId()) return Id();
  if (e->kind == Kind::kStar) return e;
  return Make(Rex{Kind::kStar, 0, false, {std::move(e)}});
}

bool ContainsPred(const RexPtr& e, SymbolId p) {
  if (e->kind == Rex::Kind::kPred) return e->pred == p;
  for (const RexPtr& k : e->kids) {
    if (ContainsPred(k, p)) return true;
  }
  return false;
}

void CollectPreds(const RexPtr& e, std::unordered_set<SymbolId>& out) {
  if (e->kind == Rex::Kind::kPred) {
    out.insert(e->pred);
    return;
  }
  for (const RexPtr& k : e->kids) CollectPreds(k, out);
}

size_t CountPred(const RexPtr& e, SymbolId p) {
  if (e->kind == Rex::Kind::kPred) return e->pred == p ? 1 : 0;
  size_t n = 0;
  for (const RexPtr& k : e->kids) n += CountPred(k, p);
  return n;
}

size_t LeafCount(const RexPtr& e) {
  if (e->kind == Rex::Kind::kPred) return 1;
  size_t n = 0;
  for (const RexPtr& k : e->kids) n += LeafCount(k);
  return n;
}

RexPtr SubstitutePred(const RexPtr& e, SymbolId p, const RexPtr& replacement) {
  switch (e->kind) {
    case Rex::Kind::kEmpty:
    case Rex::Kind::kId:
      return e;
    case Rex::Kind::kPred:
      return (e->pred == p) ? replacement : e;
    case Rex::Kind::kUnion: {
      std::vector<RexPtr> kids;
      kids.reserve(e->kids.size());
      for (const RexPtr& k : e->kids) {
        kids.push_back(SubstitutePred(k, p, replacement));
      }
      return Rex::Union(std::move(kids));
    }
    case Rex::Kind::kConcat: {
      std::vector<RexPtr> kids;
      kids.reserve(e->kids.size());
      for (const RexPtr& k : e->kids) {
        kids.push_back(SubstitutePred(k, p, replacement));
      }
      return Rex::Concat(std::move(kids));
    }
    case Rex::Kind::kStar:
      return Rex::Star(SubstitutePred(e->kids[0], p, replacement));
  }
  return e;
}

RexPtr Invert(const RexPtr& e,
              const std::function<RexPtr(SymbolId, bool)>& map_pred) {
  switch (e->kind) {
    case Rex::Kind::kEmpty:
    case Rex::Kind::kId:
      return e;
    case Rex::Kind::kPred:
      return map_pred(e->pred, e->inverted);
    case Rex::Kind::kUnion: {
      std::vector<RexPtr> kids;
      for (const RexPtr& k : e->kids) kids.push_back(Invert(k, map_pred));
      return Rex::Union(std::move(kids));
    }
    case Rex::Kind::kConcat: {
      std::vector<RexPtr> kids;
      for (auto it = e->kids.rbegin(); it != e->kids.rend(); ++it) {
        kids.push_back(Invert(*it, map_pred));
      }
      return Rex::Concat(std::move(kids));
    }
    case Rex::Kind::kStar:
      return Rex::Star(Invert(e->kids[0], map_pred));
  }
  return e;
}

namespace {

bool UnionMentions(const RexPtr& e, const std::unordered_set<SymbolId>& set) {
  std::unordered_set<SymbolId> preds;
  CollectPreds(e, preds);
  for (SymbolId p : preds) {
    if (set.count(p)) return true;
  }
  return false;
}

RexPtr DistributeOnce(const RexPtr& e, const std::unordered_set<SymbolId>& targets,
                      bool& changed) {
  switch (e->kind) {
    case Rex::Kind::kEmpty:
    case Rex::Kind::kId:
    case Rex::Kind::kPred:
      return e;
    case Rex::Kind::kUnion: {
      std::vector<RexPtr> kids;
      for (const RexPtr& k : e->kids) {
        kids.push_back(DistributeOnce(k, targets, changed));
      }
      return Rex::Union(std::move(kids));
    }
    case Rex::Kind::kStar:
      return Rex::Star(DistributeOnce(e->kids[0], targets, changed));
    case Rex::Kind::kConcat: {
      std::vector<RexPtr> kids;
      for (const RexPtr& k : e->kids) {
        kids.push_back(DistributeOnce(k, targets, changed));
      }
      // Find a union factor that mentions a target predicate and distribute
      // the whole concatenation over it.
      for (size_t i = 0; i < kids.size(); ++i) {
        if (kids[i]->kind != Rex::Kind::kUnion) continue;
        if (!UnionMentions(kids[i], targets)) continue;
        std::vector<RexPtr> alts;
        for (const RexPtr& alt : kids[i]->kids) {
          std::vector<RexPtr> parts(kids.begin(), kids.begin() + i);
          parts.push_back(alt);
          parts.insert(parts.end(), kids.begin() + i + 1, kids.end());
          alts.push_back(Rex::Concat(std::move(parts)));
        }
        changed = true;
        return Rex::Union(std::move(alts));
      }
      return Rex::Concat(std::move(kids));
    }
  }
  return e;
}

}  // namespace

RexPtr DistributeOverUnion(const RexPtr& e,
                           const std::unordered_set<SymbolId>& targets) {
  RexPtr cur = e;
  for (int guard = 0; guard < 1000; ++guard) {
    bool changed = false;
    cur = DistributeOnce(cur, targets, changed);
    if (!changed) return cur;
  }
  BINCHAIN_CHECK(false && "DistributeOverUnion did not converge");
  return cur;
}

namespace {

// Precedence: union (lowest) < concat < star/leaf.
void Print(const RexPtr& e, const SymbolTable& symbols, int parent_prec,
           std::string& out) {
  switch (e->kind) {
    case Rex::Kind::kEmpty:
      out += "0";
      return;
    case Rex::Kind::kId:
      out += "id";
      return;
    case Rex::Kind::kPred:
      out += symbols.Name(e->pred);
      if (e->inverted) out += "^-1";
      return;
    case Rex::Kind::kUnion: {
      bool paren = parent_prec > 0;
      if (paren) out += "(";
      for (size_t i = 0; i < e->kids.size(); ++i) {
        if (i) out += " U ";
        Print(e->kids[i], symbols, 0, out);
      }
      if (paren) out += ")";
      return;
    }
    case Rex::Kind::kConcat: {
      bool paren = parent_prec > 1;
      if (paren) out += "(";
      for (size_t i = 0; i < e->kids.size(); ++i) {
        if (i) out += ".";
        Print(e->kids[i], symbols, 1, out);
      }
      if (paren) out += ")";
      return;
    }
    case Rex::Kind::kStar:
      Print(e->kids[0], symbols, 2, out);
      out += "*";
      return;
  }
}

}  // namespace

std::string RexToString(const RexPtr& e, const SymbolTable& symbols) {
  std::string out;
  Print(e, symbols, 0, out);
  return out;
}

bool RexEquals(const RexPtr& a, const RexPtr& b) {
  if (a.get() == b.get()) return true;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case Rex::Kind::kEmpty:
    case Rex::Kind::kId:
      return true;
    case Rex::Kind::kPred:
      return a->pred == b->pred && a->inverted == b->inverted;
    default:
      break;
  }
  if (a->kids.size() != b->kids.size()) return false;
  for (size_t i = 0; i < a->kids.size(); ++i) {
    if (!RexEquals(a->kids[i], b->kids[i])) return false;
  }
  return true;
}

}  // namespace binchain
