// Textual syntax for binary relational expressions and equation systems,
// the interface of the binary-relational evaluation system the paper builds
// on (Hunt et al. [8]; Kuittinen's implementation [12]):
//
//   expr     :=  term ('U' term)*                 union, lowest precedence
//   term     :=  factor ('.' factor)*             composition
//   factor   :=  atom ('*' | '^-1')*              closure / inverse, postfix
//   atom     :=  identifier | '0' | 'id' | '(' expr ')'
//
// An equation system is one `name = expr` line per derived predicate:
//
//   sg = flat U up.sg.down
//   path = e*.e
//
// Names on a left-hand side become derived predicates; all other
// identifiers denote base relations.
#ifndef BINCHAIN_REX_REX_PARSER_H_
#define BINCHAIN_REX_REX_PARSER_H_

#include <string_view>

#include "equations/equations.h"
#include "rex/rex.h"
#include "util/status.h"

namespace binchain {

/// Parses a single expression. `0` is the empty relation, `id` the identity.
Result<RexPtr> ParseRex(std::string_view text, SymbolTable& symbols);

/// Parses a system of equations, one per line ('%' comments allowed).
Result<EquationSystem> ParseEquationSystem(std::string_view text,
                                           SymbolTable& symbols);

}  // namespace binchain

#endif  // BINCHAIN_REX_REX_PARSER_H_
