// Minimal growable directed graph with adjacency lists.
#ifndef BINCHAIN_GRAPH_DIGRAPH_H_
#define BINCHAIN_GRAPH_DIGRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace binchain {

class Digraph {
 public:
  explicit Digraph(size_t n = 0) : succ_(n) {}

  size_t NumNodes() const { return succ_.size(); }
  size_t NumEdges() const { return edges_; }

  /// Adds a node, returning its index.
  uint32_t AddNode();

  /// Ensures nodes [0, n) exist.
  void Resize(size_t n);

  void AddEdge(uint32_t from, uint32_t to);

  const std::vector<uint32_t>& Succ(uint32_t v) const { return succ_[v]; }

  /// Nodes reachable from any of `sources` (including the sources).
  std::vector<bool> Reachable(const std::vector<uint32_t>& sources) const;

  /// The reverse graph.
  Digraph Reversed() const;

 private:
  std::vector<std::vector<uint32_t>> succ_;
  size_t edges_ = 0;
};

}  // namespace binchain

#endif  // BINCHAIN_GRAPH_DIGRAPH_H_
