#include "graph/tarjan.h"

#include <algorithm>

namespace binchain {

SccResult ComputeScc(const Digraph& g) {
  const size_t n = g.NumNodes();
  SccResult out;
  out.component.assign(n, 0);
  out.on_cycle.assign(n, false);

  constexpr uint32_t kUnvisited = 0xffffffffu;
  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  uint32_t next_index = 0;

  // Explicit DFS stack: (node, next successor position).
  struct Frame {
    uint32_t v;
    size_t succ_pos;
  };
  std::vector<Frame> frames;

  for (uint32_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& succ = g.Succ(f.v);
      if (f.succ_pos < succ.size()) {
        uint32_t w = succ[f.succ_pos++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        uint32_t v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] =
              std::min(lowlink[frames.back().v], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          uint32_t comp = out.num_components++;
          out.members.emplace_back();
          while (true) {
            uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            out.component[w] = comp;
            out.members[comp].push_back(w);
            if (w == v) break;
          }
        }
      }
    }
  }

  // A node is on a cycle iff its SCC has several members or it has a
  // self-loop.
  for (uint32_t v = 0; v < n; ++v) {
    if (out.members[out.component[v]].size() > 1) {
      out.on_cycle[v] = true;
    } else {
      for (uint32_t w : g.Succ(v)) {
        if (w == v) {
          out.on_cycle[v] = true;
          break;
        }
      }
    }
  }
  return out;
}

std::vector<uint32_t> CondensationTopoOrder(const SccResult& scc) {
  // Tarjan emits SCCs in reverse topological order.
  std::vector<uint32_t> order(scc.num_components);
  for (uint32_t i = 0; i < scc.num_components; ++i) {
    order[i] = scc.num_components - 1 - i;
  }
  return order;
}

}  // namespace binchain
