#include "graph/digraph.h"

#include "util/check.h"

namespace binchain {

uint32_t Digraph::AddNode() {
  succ_.emplace_back();
  return static_cast<uint32_t>(succ_.size() - 1);
}

void Digraph::Resize(size_t n) {
  if (n > succ_.size()) succ_.resize(n);
}

void Digraph::AddEdge(uint32_t from, uint32_t to) {
  BINCHAIN_DCHECK(from < succ_.size() && to < succ_.size());
  succ_[from].push_back(to);
  ++edges_;
}

std::vector<bool> Digraph::Reachable(
    const std::vector<uint32_t>& sources) const {
  std::vector<bool> seen(succ_.size(), false);
  std::vector<uint32_t> stack;
  for (uint32_t s : sources) {
    if (s < seen.size() && !seen[s]) {
      seen[s] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    uint32_t v = stack.back();
    stack.pop_back();
    for (uint32_t w : succ_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

Digraph Digraph::Reversed() const {
  Digraph r(succ_.size());
  for (uint32_t v = 0; v < succ_.size(); ++v) {
    for (uint32_t w : succ_[v]) r.AddEdge(w, v);
  }
  return r;
}

}  // namespace binchain
