// Tarjan's strongly-connected-components algorithm (iterative formulation).
// Used for: (i) mutual-recursion analysis of Datalog programs and equation
// systems (Lemma 1 steps 2 & 6); (ii) sharing traversal work across sources
// when answering fully-free queries p(X, Y) (Section 3 end, citing [21]).
#ifndef BINCHAIN_GRAPH_TARJAN_H_
#define BINCHAIN_GRAPH_TARJAN_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace binchain {

struct SccResult {
  /// component[v] = id of v's SCC. Ids are in reverse topological order of
  /// the condensation (a component's id is greater than those of components
  /// it can reach... specifically Tarjan emits components in reverse
  /// topological order, so component 0 is a sink).
  std::vector<uint32_t> component;
  uint32_t num_components = 0;

  /// Members of each component.
  std::vector<std::vector<uint32_t>> members;

  /// True iff v lies on a cycle (its SCC has >1 node, or a self-loop).
  std::vector<bool> on_cycle;
};

SccResult ComputeScc(const Digraph& g);

/// Topological order of the condensation (components listed so that every
/// edge goes from an earlier to a later entry).
std::vector<uint32_t> CondensationTopoOrder(const SccResult& scc);

}  // namespace binchain

#endif  // BINCHAIN_GRAPH_TARJAN_H_
