#include "equations/equations.h"

#include "graph/tarjan.h"
#include "util/check.h"

namespace binchain {

void EquationSystem::Set(SymbolId pred, RexPtr rhs) {
  auto it = eqs_.find(pred);
  if (it == eqs_.end()) {
    eqs_.emplace(pred, std::move(rhs));
    order_.push_back(pred);
  } else {
    it->second = std::move(rhs);
  }
}

const RexPtr& EquationSystem::Rhs(SymbolId pred) const {
  auto it = eqs_.find(pred);
  BINCHAIN_CHECK(it != eqs_.end());
  return it->second;
}

EquationSystem::Recursion EquationSystem::AnalyzeRecursion() const {
  Recursion out;
  std::unordered_map<SymbolId, uint32_t> node_of;
  std::vector<SymbolId> pred_of;
  for (SymbolId p : order_) {
    node_of.emplace(p, static_cast<uint32_t>(pred_of.size()));
    pred_of.push_back(p);
  }
  Digraph g(pred_of.size());
  for (SymbolId p : order_) {
    std::unordered_set<SymbolId> mentioned;
    CollectPreds(Rhs(p), mentioned);
    for (SymbolId q : mentioned) {
      auto it = node_of.find(q);
      if (it != node_of.end()) g.AddEdge(node_of.at(p), it->second);
    }
  }
  SccResult scc = ComputeScc(g);
  for (SymbolId p : order_) {
    out.component.emplace(p, scc.component[node_of.at(p)]);
    if (scc.on_cycle[node_of.at(p)]) out.recursive.insert(p);
  }
  for (const auto& members : scc.members) {
    std::vector<SymbolId> cls;
    for (uint32_t v : members) {
      if (scc.on_cycle[v]) cls.push_back(pred_of[v]);
    }
    if (!cls.empty()) out.classes.push_back(std::move(cls));
  }
  return out;
}

std::string EquationSystem::ToString(const SymbolTable& symbols) const {
  std::string out;
  for (SymbolId p : order_) {
    out += symbols.Name(p);
    out += " = ";
    out += RexToString(Rhs(p), symbols);
    out += "\n";
  }
  return out;
}

EquationSystem InvertSystem(const EquationSystem& eqs, SymbolTable& symbols,
                            std::unordered_map<SymbolId, SymbolId>& inverse_of) {
  inverse_of.clear();
  for (SymbolId p : eqs.preds()) {
    inverse_of[p] = symbols.Intern(symbols.Name(p) + "~inv");
  }
  EquationSystem out;
  for (SymbolId p : eqs.preds()) {
    RexPtr inv = Invert(eqs.Rhs(p), [&](SymbolId q, bool inverted) {
      auto it = inverse_of.find(q);
      if (it != inverse_of.end()) {
        // Derived predicate: refer to its inverted equation.
        return Rex::Pred(it->second, false);
      }
      return Rex::Pred(q, !inverted);
    });
    out.Set(inverse_of[p], std::move(inv));
  }
  return out;
}

namespace {

bool MentionsAnyDerived(const EquationSystem& eqs, const RexPtr& e) {
  std::unordered_set<SymbolId> preds;
  CollectPreds(e, preds);
  for (SymbolId q : preds) {
    if (eqs.IsDerived(q)) return true;
  }
  return false;
}

}  // namespace

namespace {

RexPtr ExpandPiImpl(const EquationSystem& eqs, const RexPtr& e, size_t i) {
  switch (e->kind) {
    case Rex::Kind::kEmpty:
    case Rex::Kind::kId:
      return e;
    case Rex::Kind::kPred: {
      if (!eqs.Has(e->pred)) return e;  // base predicate
      return ExpandPi(eqs, e->pred, i);
    }
    case Rex::Kind::kUnion: {
      std::vector<RexPtr> kids;
      for (const RexPtr& k : e->kids) kids.push_back(ExpandPiImpl(eqs, k, i));
      return Rex::Union(std::move(kids));
    }
    case Rex::Kind::kConcat: {
      std::vector<RexPtr> kids;
      for (const RexPtr& k : e->kids) kids.push_back(ExpandPiImpl(eqs, k, i));
      return Rex::Concat(std::move(kids));
    }
    case Rex::Kind::kStar:
      return Rex::Star(ExpandPiImpl(eqs, e->kids[0], i));
  }
  return e;
}

}  // namespace

RexPtr ExpandPi(const EquationSystem& eqs, SymbolId p, size_t i) {
  if (i == 0) return Rex::Empty();
  return ExpandPiImpl(eqs, eqs.Rhs(p), i - 1);
}

bool MatchLinearNormalForm(const EquationSystem& eqs, SymbolId p,
                           LinearNormalForm* out) {
  const RexPtr& rhs = eqs.Rhs(p);
  std::vector<RexPtr> alts;
  if (rhs->kind == Rex::Kind::kUnion) {
    alts = rhs->kids;
  } else {
    alts.push_back(rhs);
  }
  std::vector<RexPtr> e0_parts;
  RexPtr e1, e2;
  bool seen_recursive = false;
  for (const RexPtr& alt : alts) {
    if (!ContainsPred(alt, p)) {
      if (MentionsAnyDerived(eqs, alt)) return false;
      e0_parts.push_back(alt);
      continue;
    }
    if (seen_recursive) return false;  // more than one recursive alternative
    seen_recursive = true;
    // Expect alt = e1 . p . e2 with p occurring exactly once; e1 or e2 may be
    // missing (identity).
    std::vector<RexPtr> parts;
    if (alt->kind == Rex::Kind::kConcat) {
      parts = alt->kids;
    } else {
      parts.push_back(alt);
    }
    int p_index = -1;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (parts[i]->IsPred(p)) {
        if (p_index >= 0) return false;
        p_index = static_cast<int>(i);
      } else if (ContainsPred(parts[i], p)) {
        return false;  // p nested below a star or union
      }
    }
    if (p_index < 0) return false;
    e1 = Rex::Concat(
        std::vector<RexPtr>(parts.begin(), parts.begin() + p_index));
    e2 = Rex::Concat(
        std::vector<RexPtr>(parts.begin() + p_index + 1, parts.end()));
    if (MentionsAnyDerived(eqs, e1) || MentionsAnyDerived(eqs, e2)) {
      return false;
    }
  }
  if (!seen_recursive) return false;
  if (out != nullptr) {
    out->e0 = Rex::Union(std::move(e0_parts));
    out->e1 = e1;
    out->e2 = e2;
  }
  return true;
}

}  // namespace binchain
