// Systems of equations p = e_p over binary relational expressions, one per
// derived predicate (Lemma 1). Includes dependency analysis over the system
// (steps 2 and 6 of the transformation) and system inversion (used for
// queries that bind the second argument).
#ifndef BINCHAIN_EQUATIONS_EQUATIONS_H_
#define BINCHAIN_EQUATIONS_EQUATIONS_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rex/rex.h"
#include "storage/symbol_table.h"
#include "util/status.h"

namespace binchain {

class EquationSystem {
 public:
  EquationSystem() = default;

  void Set(SymbolId pred, RexPtr rhs);
  bool Has(SymbolId pred) const { return eqs_.count(pred) > 0; }
  const RexPtr& Rhs(SymbolId pred) const;
  const std::vector<SymbolId>& preds() const { return order_; }

  bool IsDerived(SymbolId pred) const { return Has(pred); }

  /// Maximal mutual-recursion classes of the *current* system: predicate p is
  /// recursive iff p is reachable from p in >= 1 step of the dependency graph
  /// (arc p -> q iff q occurs in e_p).
  struct Recursion {
    std::unordered_map<SymbolId, uint32_t> component;
    std::vector<std::vector<SymbolId>> classes;  // only genuine recursive sets
    std::unordered_set<SymbolId> recursive;      // preds on a cycle
  };
  Recursion AnalyzeRecursion() const;

  /// Renders the whole system, one equation per line, in `order` of preds.
  std::string ToString(const SymbolTable& symbols) const;

 private:
  std::unordered_map<SymbolId, RexPtr> eqs_;
  std::vector<SymbolId> order_;
};

/// Builds the inverted system: for each p a fresh predicate named
/// "<p>~inv" with e_{p~inv} = Invert(e_p), derived leaves r mapped to r~inv
/// and base leaves flipping their inversion flag. Returns the new system and
/// fills `inverse_of` with p -> p~inv.
EquationSystem InvertSystem(const EquationSystem& eqs, SymbolTable& symbols,
                            std::unordered_map<SymbolId, SymbolId>& inverse_of);

/// Detects the linear normal form e_p = e0 U e1 . p . e2 (any of the parts
/// possibly trivial; e1/e2 must not mention p or other derived predicates).
/// Used by the counting/HN baselines and by the cyclic iteration bound.
struct LinearNormalForm {
  RexPtr e0;  // non-recursive alternatives
  RexPtr e1;  // left factor
  RexPtr e2;  // right factor
};
bool MatchLinearNormalForm(const EquationSystem& eqs, SymbolId p,
                           LinearNormalForm* out);

/// Lemma 2's unrolled expressions: p_0 = 0, and p_i is e_p with every
/// derived leaf r replaced by r_{i-1}. The partial answer of the evaluation
/// algorithm after its i-th iteration equals the answer to the query under
/// p = p_i (Lemma 2 (1)); the sg example's Horner-rule expression sg_i is
/// ExpandPi(eqs, sg, i).
RexPtr ExpandPi(const EquationSystem& eqs, SymbolId p, size_t i);

}  // namespace binchain

#endif  // BINCHAIN_EQUATIONS_EQUATIONS_H_
