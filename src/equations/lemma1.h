// Lemma 1: transformation of a linear binary-chain Datalog program into a
// system of equations p = e_p over U, ., * such that (statements of the
// lemma):
//   (1) exactly one equation per derived predicate;
//   (3) no right-hand side contains a regular derived predicate;
//   (4) if p is regular, e_p contains no argument mutually recursive to p;
//   (5) for a regular program, right-hand sides contain only base predicates;
//   (6) if every nonregular predicate has at most one recursive rule, each
//       e_p contains at most one occurrence of a predicate mutually
//       recursive to p;
//   (7) the least solution equals the program's semantics.
//
// The implementation follows the paper's steps 1-9 literally, with the
// deterministic step-7 heuristic "fewest derived occurrences, ties broken by
// latest declaration" (which reproduces the paper's worked example).
#ifndef BINCHAIN_EQUATIONS_LEMMA1_H_
#define BINCHAIN_EQUATIONS_LEMMA1_H_

#include "datalog/ast.h"
#include "equations/equations.h"
#include "util/status.h"

namespace binchain {

/// Step 1 only: the initial equation system (one union alternative per rule,
/// concatenating the body predicates; an empty chain body contributes `id`).
/// Fails if the program is not a linear binary-chain program.
Result<EquationSystem> BuildInitialEquations(const Program& program,
                                             const SymbolTable& symbols);

struct Lemma1Result {
  EquationSystem initial;
  EquationSystem final_system;
  size_t iterations = 0;
};

/// Full Lemma 1 transformation (steps 1-9).
Result<Lemma1Result> TransformToEquations(const Program& program,
                                          const SymbolTable& symbols);

/// Checks the structural statements of Lemma 1 on a transformation result:
/// (1) one equation per derived predicate of `program`;
/// (3) no right-hand side mentions a regular derived predicate;
/// (4) a regular predicate's right-hand side mentions nothing mutually
///     recursive to it (in the initial system);
/// (5) if the program is regular, right-hand sides mention only base
///     predicates.
/// Returns OK or a message naming the violated statement (used by the
/// property tests on randomly generated programs).
Status VerifyLemma1Statements(const Program& program,
                              const SymbolTable& symbols,
                              const Lemma1Result& result);

}  // namespace binchain

#endif  // BINCHAIN_EQUATIONS_LEMMA1_H_
