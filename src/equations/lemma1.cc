#include "equations/lemma1.h"

#include <algorithm>
#include <unordered_map>

#include "datalog/analysis.h"
#include "util/check.h"

namespace binchain {
namespace {

/// Classification of one union alternative relative to the equation's
/// left-hand side p.
enum class AltShape {
  kNoP,    // does not mention p
  kLeft,   // p . rest   (direct left recursion; rest free of p)
  kRight,  // rest . p   (direct right recursion; rest free of p)
  kOther,  // p occurs nested / in the middle / several times
};

struct AltInfo {
  AltShape shape;
  RexPtr rest;  // the non-p factor for kLeft / kRight
};

AltInfo ClassifyAlt(const RexPtr& alt, SymbolId p) {
  if (!ContainsPred(alt, p)) return {AltShape::kNoP, alt};
  if (alt->IsPred(p)) return {AltShape::kLeft, Rex::Id()};  // p == p . id
  if (alt->kind == Rex::Kind::kConcat) {
    const auto& kids = alt->kids;
    if (kids.front()->IsPred(p)) {
      RexPtr rest =
          Rex::Concat(std::vector<RexPtr>(kids.begin() + 1, kids.end()));
      if (!ContainsPred(rest, p)) return {AltShape::kLeft, rest};
    }
    if (kids.back()->IsPred(p)) {
      RexPtr rest =
          Rex::Concat(std::vector<RexPtr>(kids.begin(), kids.end() - 1));
      if (!ContainsPred(rest, p)) return {AltShape::kRight, rest};
    }
  }
  return {AltShape::kOther, nullptr};
}

std::vector<RexPtr> UnionAlternatives(const RexPtr& e) {
  if (e->kind == Rex::Kind::kUnion) return e->kids;
  if (e->IsEmpty()) return {};
  return {e};
}

/// Steps 3+4 for a single equation: group direct left/right recursion and
/// eliminate it with the star construction. Mixed or nested self-occurrences
/// are left alone (they are nonregular and are handled at evaluation time by
/// the EM(p, i) expansion).
RexPtr EliminateDirectRecursion(SymbolId p, const RexPtr& rhs) {
  std::vector<RexPtr> e0_parts, left_rests, right_rests;
  bool other = false;
  for (const RexPtr& alt : UnionAlternatives(rhs)) {
    AltInfo info = ClassifyAlt(alt, p);
    switch (info.shape) {
      case AltShape::kNoP:
        e0_parts.push_back(alt);
        break;
      case AltShape::kLeft:
        left_rests.push_back(info.rest);
        break;
      case AltShape::kRight:
        right_rests.push_back(info.rest);
        break;
      case AltShape::kOther:
        other = true;
        break;
    }
  }
  if (other || (left_rests.empty() && right_rests.empty()) ||
      (!left_rests.empty() && !right_rests.empty())) {
    return rhs;  // nothing to do / not a one-sided direct recursion
  }
  RexPtr e0 = Rex::Union(std::move(e0_parts));
  if (!left_rests.empty()) {
    // p = e0 U p.(f1 U ... U fm)  =>  p = e0 . (f1 U ... U fm)*
    return Rex::Concat2(e0, Rex::Star(Rex::Union(std::move(left_rests))));
  }
  // p = e0 U (f1 U ... U fm).p  =>  p = (f1 U ... U fm)* . e0
  return Rex::Concat2(Rex::Star(Rex::Union(std::move(right_rests))), e0);
}

}  // namespace

Result<EquationSystem> BuildInitialEquations(const Program& program,
                                             const SymbolTable& symbols) {
  ProgramAnalysis analysis(program, symbols);
  if (!analysis.IsBinaryChainProgram()) {
    return Status::Unsupported(
        "Lemma 1 requires a binary-chain program (all predicates binary, "
        "all rules chain rules)");
  }
  if (!analysis.IsLinearProgram()) {
    return Status::Unsupported("Lemma 1 requires a linear program");
  }
  EquationSystem eqs;
  // Group rules per head predicate in first-appearance order.
  std::vector<SymbolId> heads = program.DerivedPredicates();
  for (SymbolId p : heads) {
    std::vector<RexPtr> alts;
    for (const Rule& r : program.rules) {
      if (r.head.predicate != p) continue;
      std::vector<RexPtr> parts;
      for (const Literal& lit : r.body) {
        parts.push_back(Rex::Pred(lit.predicate));
      }
      alts.push_back(Rex::Concat(std::move(parts)));  // empty body => id
    }
    eqs.Set(p, Rex::Union(std::move(alts)));
  }
  return eqs;
}

Result<Lemma1Result> TransformToEquations(const Program& program,
                                          const SymbolTable& symbols) {
  auto initial = BuildInitialEquations(program, symbols);
  if (!initial.ok()) return initial.status();

  Lemma1Result result;
  result.initial = initial.take();
  EquationSystem sys = result.initial;

  // Step 2: mutual recursion in the *initial* system, used by step 5.
  EquationSystem::Recursion initial_rec = result.initial.AnalyzeRecursion();
  auto initially_mutually_recursive = [&](SymbolId p, SymbolId q) {
    if (!initial_rec.recursive.count(p) || !initial_rec.recursive.count(q)) {
      return false;
    }
    return initial_rec.component.at(p) == initial_rec.component.at(q);
  };

  const size_t kMaxIterations = 1000;
  std::string prev_snapshot;
  for (size_t iter = 0; iter < kMaxIterations; ++iter) {
    result.iterations = iter;
    std::string snapshot = sys.ToString(symbols);
    if (snapshot == prev_snapshot) break;
    prev_snapshot = snapshot;

    // Steps 3 + 4: eliminate one-sided direct recursion.
    for (SymbolId p : sys.preds()) {
      sys.Set(p, EliminateDirectRecursion(p, sys.Rhs(p)));
    }

    // Step 5: substitute predicates whose RHS mentions nothing initially
    // mutually recursive to them into all other equations.
    for (SymbolId p : sys.preds()) {
      std::unordered_set<SymbolId> mentioned;
      CollectPreds(sys.Rhs(p), mentioned);
      bool eliminable = true;
      for (SymbolId q : mentioned) {
        if (initially_mutually_recursive(p, q)) {
          eliminable = false;
          break;
        }
      }
      if (!eliminable) continue;
      for (SymbolId q : sys.preds()) {
        if (q == p) continue;
        sys.Set(q, SubstitutePred(sys.Rhs(q), p, sys.Rhs(p)));
      }
    }

    // Step 6: recompute mutual recursion on the current system.
    EquationSystem::Recursion rec = sys.AnalyzeRecursion();

    // Step 7: inside each maximal mutually recursive set, eliminate one
    // predicate whose equation does not mention itself.
    std::unordered_map<SymbolId, size_t> decl_index;
    for (size_t i = 0; i < sys.preds().size(); ++i) {
      decl_index[sys.preds()[i]] = i;
    }
    for (std::vector<SymbolId> cls : rec.classes) {
      if (cls.size() < 2) continue;  // single self-recursive pred: nothing
      std::sort(cls.begin(), cls.end(), [&](SymbolId a, SymbolId b) {
        return decl_index.at(a) < decl_index.at(b);
      });
      SymbolId best = 0;
      bool found = false;
      size_t best_cost = 0;
      for (SymbolId p : cls) {
        if (ContainsPred(sys.Rhs(p), p)) continue;
        // Heuristic from the paper: prefer the equation with the fewest
        // occurrences of derived predicates; break ties towards the latest
        // declared predicate (this reproduces the worked example).
        size_t cost = 0;
        const RexPtr& rhs = sys.Rhs(p);
        for (SymbolId q : sys.preds()) cost += CountPred(rhs, q);
        if (!found || cost <= best_cost) {
          best = p;
          best_cost = cost;
          found = true;
        }
      }
      if (!found) continue;
      for (SymbolId q : cls) {
        if (q == best) continue;
        sys.Set(q, SubstitutePred(sys.Rhs(q), best, sys.Rhs(best)));
      }
    }

    // Step 8: distribute concatenation over unions that mention a predicate
    // mutually recursive to the left-hand side.
    rec = sys.AnalyzeRecursion();
    for (SymbolId p : sys.preds()) {
      if (!rec.recursive.count(p)) continue;
      std::unordered_set<SymbolId> targets;
      for (SymbolId q : sys.preds()) {
        if (rec.recursive.count(q) &&
            rec.component.at(q) == rec.component.at(p)) {
          targets.insert(q);
        }
      }
      sys.Set(p, DistributeOverUnion(sys.Rhs(p), targets));
    }
  }

  result.final_system = std::move(sys);
  return result;
}

Status VerifyLemma1Statements(const Program& program,
                              const SymbolTable& symbols,
                              const Lemma1Result& result) {
  ProgramAnalysis analysis(program, symbols);
  const EquationSystem& sys = result.final_system;

  // Statement (1).
  std::vector<SymbolId> derived = program.DerivedPredicates();
  if (derived.size() != sys.preds().size()) {
    return Status::Internal("statement (1): equation count mismatch");
  }
  for (SymbolId p : derived) {
    if (!sys.Has(p)) {
      return Status::Internal("statement (1): missing equation for '" +
                              symbols.Name(p) + "'");
    }
  }

  bool regular_program = analysis.IsRegularProgram();
  for (SymbolId p : derived) {
    std::unordered_set<SymbolId> mentioned;
    CollectPreds(sys.Rhs(p), mentioned);
    for (SymbolId q : mentioned) {
      if (!sys.Has(q)) continue;  // base predicate
      // Statement (5).
      if (regular_program) {
        return Status::Internal(
            "statement (5): derived predicate '" + symbols.Name(q) +
            "' left in a regular program's equation for '" +
            symbols.Name(p) + "'");
      }
      // Statement (3). Non-recursive derived predicates are vacuously
      // regular and must be eliminated too.
      if (analysis.IsRegularPredicate(q)) {
        return Status::Internal("statement (3): regular derived predicate '" +
                                symbols.Name(q) + "' occurs in e_" +
                                symbols.Name(p));
      }
      // Statement (4).
      if (analysis.IsRegularPredicate(p) && analysis.MutuallyRecursive(p, q)) {
        return Status::Internal(
            "statement (4): equation of regular predicate '" +
            symbols.Name(p) + "' mentions mutually recursive '" +
            symbols.Name(q) + "'");
      }
    }
  }
  return Status::Ok();
}

}  // namespace binchain
