#include <algorithm>
#include <unordered_set>

#include "baselines/bottom_up.h"
#include "datalog/analysis.h"
#include "eval/join.h"

namespace binchain {

Relation& IdbStore::GetOrCreate(SymbolId pred, size_t arity) {
  auto it = rels_.find(pred);
  if (it == rels_.end()) {
    it = rels_.emplace(pred, Relation(arity)).first;
  }
  return it->second;
}

const Relation* IdbStore::Find(SymbolId pred) const {
  auto it = rels_.find(pred);
  return it == rels_.end() ? nullptr : &it->second;
}

std::vector<Tuple> SelectMatching(const Relation* rel, const Literal& query) {
  std::vector<Tuple> out;
  if (rel == nullptr) return out;
  // Variable equality constraints (e.g. p(X, X)).
  for (TupleRef t : rel->tuples()) {
    bool match = true;
    for (size_t i = 0; i < query.args.size() && match; ++i) {
      const Term& a = query.args[i];
      if (a.IsConst()) {
        if (t[i] != a.symbol) match = false;
        continue;
      }
      for (size_t j = 0; j < i; ++j) {
        if (query.args[j].IsVar() && query.args[j].symbol == a.symbol &&
            t[j] != t[i]) {
          match = false;
          break;
        }
      }
    }
    if (match) out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

Status ValidateForBottomUp(const Program& program, const SymbolTable& symbols) {
  ProgramAnalysis analysis(program, symbols);
  for (const Rule& r : program.rules) {
    if (r.body.empty()) {
      return Status::Unsupported(
          "bottom-up evaluation cannot handle empty-body rules with "
          "variables (unsafe)");
    }
  }
  return analysis.CheckSafety();
}

}  // namespace

Result<std::vector<Tuple>> NaiveQuery(const Program& program, Database& db,
                                      const Literal& query,
                                      BottomUpStats* stats,
                                      size_t max_rounds) {
  BottomUpStats local;
  BottomUpStats& st = (stats != nullptr) ? *stats : local;
  st = BottomUpStats{};
  if (auto s = ValidateForBottomUp(program, db.symbols()); !s.ok()) return s;

  uint64_t fetches_before = db.TotalFetches();
  IdbStore idb;
  std::unordered_set<SymbolId> derived;
  for (const Rule& r : program.rules) {
    derived.insert(r.head.predicate);
    idb.GetOrCreate(r.head.predicate, r.head.arity());
  }
  RelationResolver resolve = [&](SymbolId pred) -> const Relation* {
    if (derived.count(pred)) return idb.Find(pred);
    return db.FindById(pred);
  };

  bool changed = true;
  while (changed) {
    if (st.rounds++ >= max_rounds) {
      return Status::Internal("naive evaluation exceeded the round limit");
    }
    changed = false;
    for (const Rule& r : program.rules) {
      std::vector<Tuple> new_tuples;
      Binding binding;
      Status s = EnumerateMatches(resolve, db.symbols(), r.body, binding,
                                  [&](const Binding& b) {
                                    ++st.firings;
                                    new_tuples.push_back(
                                        InstantiateHead(r.head, b));
                                  });
      if (!s.ok()) return s;
      Relation& rel = idb.GetOrCreate(r.head.predicate, r.head.arity());
      for (const Tuple& t : new_tuples) {
        if (rel.Insert(t)) {
          ++st.tuples;
          changed = true;
        }
      }
    }
  }
  st.fetches = db.TotalFetches() - fetches_before;
  return SelectMatching(idb.Find(query.predicate), query);
}

}  // namespace binchain
