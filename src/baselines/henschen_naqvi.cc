#include <algorithm>
#include <unordered_set>

#include "baselines/counting.h"
#include "eval/rex_image.h"

namespace binchain {

Result<std::vector<TermId>> HenschenNaqviQuery(const ViewRegistry& views,
                                               const LinearNormalForm& nf,
                                               TermId source, size_t level_cap,
                                               LevelStats* stats) {
  LevelStats local;
  LevelStats& st = (stats != nullptr) ? *stats : local;
  st = LevelStats{};

  std::vector<TermId> answers;
  std::unordered_set<TermId> answer_set;
  std::vector<TermId> u = {source};
  size_t d = 0;
  while (!u.empty()) {
    if (d > level_cap) {
      st.hit_cap = true;
      break;
    }
    ++st.levels;
    // answer_d = e2^d(e0(U_d)), with the d-fold image recomputed from
    // scratch (the method keeps no memory of earlier traversals).
    auto t = ImageUnderRex(views, nf.e0, u, &st.down_work);
    if (!t.ok()) return t.status();
    std::vector<TermId> frontier = t.take();
    for (size_t j = 0; j < d && !frontier.empty(); ++j) {
      auto next = ImageUnderRex(views, nf.e2, frontier, &st.down_work);
      if (!next.ok()) return next.status();
      frontier = next.take();
    }
    for (TermId y : frontier) {
      if (answer_set.insert(y).second) answers.push_back(y);
    }
    auto up = ImageUnderRex(views, nf.e1, u, &st.up_work);
    if (!up.ok()) return up.status();
    u = up.take();
    ++d;
  }
  std::sort(answers.begin(), answers.end());
  return answers;
}

Result<std::vector<TermId>> ReverseCountingQuery(const ViewRegistry& views,
                                                 const LinearNormalForm& nf,
                                                 TermId source,
                                                 size_t level_cap,
                                                 LevelStats* stats) {
  LevelStats local;
  LevelStats& st = (stats != nullptr) ? *stats : local;
  st = LevelStats{};

  // Candidate answers: everything e2-reachable from the e0-image of the
  // e1-closure of the source (a superset of the true answers).
  auto up_reach = ClosureUnderRex(views, nf.e1, {source}, &st.up_work);
  if (!up_reach.ok()) return up_reach.status();
  auto landings = ImageUnderRex(views, nf.e0, up_reach.value(), &st.up_work);
  if (!landings.ok()) return landings.status();
  auto candidates =
      ClosureUnderRex(views, nf.e2, landings.value(), &st.up_work);
  if (!candidates.ok()) return candidates.status();

  // Inverted normal form: p~ = e0^-1 U e2^-1 . p~ . e1^-1.
  auto flip = [](SymbolId p, bool inverted) { return Rex::Pred(p, !inverted); };
  LinearNormalForm inv;
  inv.e0 = Invert(nf.e0, flip);
  inv.e1 = Invert(nf.e2, flip);
  inv.e2 = Invert(nf.e1, flip);

  std::vector<TermId> answers;
  for (TermId y : candidates.value()) {
    LevelStats sub;
    auto r = CountingQuery(views, inv, y, level_cap, &sub);
    if (!r.ok()) return r.status();
    st.down_work += sub.up_work + sub.down_work;
    st.levels = std::max<uint64_t>(st.levels, sub.levels);
    st.hit_cap = st.hit_cap || sub.hit_cap;
    if (std::binary_search(r.value().begin(), r.value().end(), source)) {
      answers.push_back(y);
    }
  }
  std::sort(answers.begin(), answers.end());
  return answers;
}

}  // namespace binchain
