// The magic-sets optimization strategy (Bancilhon et al. [3] / Beeri-
// Ramakrishnan [5]) specialised to linear programs with at most one derived
// literal per body: the adorned program is augmented with magic predicates
// restricting bottom-up evaluation to facts relevant to the query bindings,
// then evaluated seminaively.
#ifndef BINCHAIN_BASELINES_MAGIC_H_
#define BINCHAIN_BASELINES_MAGIC_H_

#include <vector>

#include "baselines/bottom_up.h"
#include "transform/adorn.h"

namespace binchain {

struct MagicProgram {
  Program program;             // adorned + magic rules
  Literal seed;                // ground magic fact for the query
  Literal adorned_query;       // query literal over the adorned predicate
};

/// Builds the magic-transformed program for an adorned program.
Result<MagicProgram> BuildMagicProgram(const AdornedProgram& adorned,
                                       SymbolTable& symbols);

/// End-to-end: adorn, transform, evaluate seminaively, select answers.
Result<std::vector<Tuple>> MagicQuery(const Program& program, Database& db,
                                      const Literal& query,
                                      BottomUpStats* stats);

}  // namespace binchain

#endif  // BINCHAIN_BASELINES_MAGIC_H_
