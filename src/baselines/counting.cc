#include "baselines/counting.h"

#include <algorithm>
#include <unordered_set>

#include "eval/rex_image.h"

namespace binchain {

Result<std::vector<TermId>> CountingQuery(const ViewRegistry& views,
                                          const LinearNormalForm& nf,
                                          TermId source, size_t level_cap,
                                          LevelStats* stats) {
  LevelStats local;
  LevelStats& st = (stats != nullptr) ? *stats : local;
  st = LevelStats{};

  // Up phase: U_0 = {a}, U_{d+1} = e1(U_d).
  std::vector<std::vector<TermId>> levels;
  levels.push_back({source});
  st.up_work += 1;
  while (!levels.back().empty()) {
    if (levels.size() > level_cap) {
      st.hit_cap = true;
      break;
    }
    auto next = ImageUnderRex(views, nf.e1, levels.back(), &st.up_work);
    if (!next.ok()) return next.status();
    levels.push_back(next.take());
  }
  if (!levels.back().empty()) levels.pop_back();  // drop the capped level
  st.levels = levels.size();

  // Down phase in Horner order: W := e2(W) U e0(U_d), d = D .. 0.
  std::vector<TermId> w;
  std::unordered_set<TermId> w_set;
  for (size_t d = levels.size(); d-- > 0;) {
    auto stepped = ImageUnderRex(views, nf.e2, w, &st.down_work);
    if (!stepped.ok()) return stepped.status();
    auto landed = ImageUnderRex(views, nf.e0, levels[d], &st.down_work);
    if (!landed.ok()) return landed.status();
    w.clear();
    w_set.clear();
    for (TermId v : stepped.value()) {
      if (w_set.insert(v).second) w.push_back(v);
    }
    for (TermId v : landed.value()) {
      if (w_set.insert(v).second) w.push_back(v);
    }
    st.down_work += w.size();
  }
  std::sort(w.begin(), w.end());
  return w;
}

}  // namespace binchain
