#include "baselines/magic.h"

namespace binchain {
namespace {

std::vector<Term> BoundArgs(const Literal& lit, const Adornment& a) {
  std::vector<Term> out;
  for (size_t i = 0; i < lit.args.size(); ++i) {
    if (a.bound[i]) out.push_back(lit.args[i]);
  }
  return out;
}

}  // namespace

Result<MagicProgram> BuildMagicProgram(const AdornedProgram& adorned,
                                       SymbolTable& symbols) {
  MagicProgram out;
  auto adorned_name = [&](const AdornedPredicate& ap) {
    return symbols.Intern(AdornedName(ap, symbols));
  };
  auto magic_name = [&](const AdornedPredicate& ap) {
    return symbols.Intern("m~" + AdornedName(ap, symbols));
  };

  for (const AdornedRule& r : adorned.rules) {
    // Guarded rule: p~a(X) :- m~p~a(Xb), prefix, [q~d(Z)], suffix.
    Rule guarded;
    guarded.head = Literal{adorned_name(r.head), r.head_literal.args};
    guarded.body.push_back(
        Literal{magic_name(r.head), BoundArgs(r.head_literal,
                                              r.head.adornment)});
    for (const Literal& lit : r.prefix) guarded.body.push_back(lit);
    if (r.has_derived) {
      guarded.body.push_back(
          Literal{adorned_name(r.derived_adorned), r.derived.args});
    }
    for (const Literal& lit : r.suffix) guarded.body.push_back(lit);
    out.program.rules.push_back(std::move(guarded));

    // Magic rule: m~q~d(Zb) :- m~p~a(Xb), prefix.
    if (r.has_derived) {
      Rule magic;
      magic.head = Literal{magic_name(r.derived_adorned),
                           BoundArgs(r.derived, r.derived_adorned.adornment)};
      magic.body.push_back(
          Literal{magic_name(r.head), BoundArgs(r.head_literal,
                                                r.head.adornment)});
      for (const Literal& lit : r.prefix) magic.body.push_back(lit);
      out.program.rules.push_back(std::move(magic));
    }
  }

  // Seed: m~query(bound constants).
  out.seed = Literal{magic_name(adorned.query),
                     BoundArgs(adorned.query_literal,
                               adorned.query.adornment)};
  out.adorned_query =
      Literal{adorned_name(adorned.query), adorned.query_literal.args};
  return out;
}

Result<std::vector<Tuple>> MagicQuery(const Program& program, Database& db,
                                      const Literal& query,
                                      BottomUpStats* stats) {
  auto adorned = AdornProgram(program, db.symbols(), query);
  if (!adorned.ok()) return adorned.status();
  auto magic = BuildMagicProgram(adorned.value(), db.symbols());
  if (!magic.ok()) return magic.status();
  auto idb =
      SeminaiveFixpoint(magic.value().program, db, {magic.value().seed}, stats);
  if (!idb.ok()) return idb.status();
  return SelectMatching(idb.value().Find(magic.value().adorned_query.predicate),
                        magic.value().adorned_query);
}

}  // namespace binchain
