// Shared interface of the bottom-up baselines (naive, seminaive, magic).
// All are fully general Datalog evaluators (any arity, any recursion) used
// both as correctness oracles for the graph-traversal engine and as the
// comparison strategies of the paper's evaluation section.
#ifndef BINCHAIN_BASELINES_BOTTOM_UP_H_
#define BINCHAIN_BASELINES_BOTTOM_UP_H_

#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "storage/database.h"
#include "util/status.h"

namespace binchain {

struct BottomUpStats {
  uint64_t firings = 0;  // successful body instantiations
  uint64_t tuples = 0;   // derived tuples (including rediscoveries? no: new)
  uint64_t rounds = 0;   // fixpoint rounds
  uint64_t fetches = 0;  // EDB retrievals
};

/// IDB state: one relation per derived predicate.
class IdbStore {
 public:
  Relation& GetOrCreate(SymbolId pred, size_t arity);
  const Relation* Find(SymbolId pred) const;

 private:
  std::unordered_map<SymbolId, Relation> rels_;
};

/// Selects the tuples of `pred` matching the constants of `query`.
std::vector<Tuple> SelectMatching(const Relation* rel, const Literal& query);

/// Naive evaluation: round-based T_P iteration; every rule is re-fired
/// against the whole database each round (the duplication of work the paper
/// discusses as factor (1)).
Result<std::vector<Tuple>> NaiveQuery(const Program& program, Database& db,
                                      const Literal& query,
                                      BottomUpStats* stats,
                                      size_t max_rounds = 1000000);

/// Seminaive evaluation: delta-driven firing; each rule instantiation uses
/// at least one delta tuple.
Result<std::vector<Tuple>> SeminaiveQuery(const Program& program, Database& db,
                                          const Literal& query,
                                          BottomUpStats* stats,
                                          size_t max_rounds = 1000000);

/// Seminaive fixpoint over `program` with extra ground seed atoms for
/// derived predicates (used by the magic-sets strategy, whose seed is the
/// magic fact of the query). Evaluates every derived predicate; returns the
/// IDB store.
Result<IdbStore> SeminaiveFixpoint(const Program& program, Database& db,
                                   const std::vector<Literal>& seeds,
                                   BottomUpStats* stats,
                                   size_t max_rounds = 1000000);

}  // namespace binchain

#endif  // BINCHAIN_BASELINES_BOTTOM_UP_H_
