#include <algorithm>
#include <unordered_set>

#include "baselines/bottom_up.h"
#include "datalog/analysis.h"
#include "eval/join.h"

namespace binchain {
namespace {

/// Marker symbol used to point one body occurrence at the delta relation.
constexpr const char* kDeltaMarker = "~delta";

}  // namespace

Result<IdbStore> SeminaiveFixpoint(const Program& program, Database& db,
                                   const std::vector<Literal>& seeds,
                                   BottomUpStats* stats, size_t max_rounds) {
  BottomUpStats local;
  BottomUpStats& st = (stats != nullptr) ? *stats : local;
  st = BottomUpStats{};
  {
    ProgramAnalysis analysis(program, db.symbols());
    for (const Rule& r : program.rules) {
      if (r.body.empty()) {
        return Status::Unsupported(
            "bottom-up evaluation cannot handle empty-body rules with "
            "variables (unsafe)");
      }
    }
    if (auto s = analysis.CheckSafety(); !s.ok()) return s;
  }
  uint64_t fetches_before = db.TotalFetches();

  IdbStore total;
  IdbStore delta;
  std::unordered_set<SymbolId> derived;
  for (const Rule& r : program.rules) {
    derived.insert(r.head.predicate);
    total.GetOrCreate(r.head.predicate, r.head.arity());
    delta.GetOrCreate(r.head.predicate, r.head.arity());
  }
  SymbolId delta_marker = db.symbols().Intern(kDeltaMarker);

  // Seeds (magic facts, etc.) enter both total and the first delta.
  for (const Literal& seed : seeds) {
    Tuple t;
    for (const Term& a : seed.args) {
      if (a.IsVar()) {
        return Status::InvalidArgument("seed atoms must be ground");
      }
      t.push_back(a.symbol);
    }
    if (total.GetOrCreate(seed.predicate, seed.arity()).Insert(t)) {
      delta.GetOrCreate(seed.predicate, seed.arity()).Insert(t);
      ++st.tuples;
    }
  }

  // Round 0: fire rules without derived body literals.
  IdbStore next_delta;
  SymbolId current_delta_pred = 0;  // which predicate the marker stands for
  RelationResolver resolve = [&](SymbolId pred) -> const Relation* {
    if (pred == delta_marker) return delta.Find(current_delta_pred);
    if (derived.count(pred)) return total.Find(pred);
    return db.FindById(pred);
  };

  auto fire_rule = [&](const Rule& r, const std::vector<Literal>& body) {
    std::vector<Tuple> out;
    Binding binding;
    Status s = EnumerateMatches(resolve, db.symbols(), body, binding,
                                [&](const Binding& b) {
                                  ++st.firings;
                                  out.push_back(InstantiateHead(r.head, b));
                                });
    if (!s.ok()) return s;
    Relation& total_rel = total.GetOrCreate(r.head.predicate, r.head.arity());
    Relation& nd = next_delta.GetOrCreate(r.head.predicate, r.head.arity());
    for (const Tuple& t : out) {
      if (total_rel.Insert(t)) {
        nd.Insert(t);
        ++st.tuples;
      }
    }
    return Status::Ok();
  };

  for (const Rule& r : program.rules) {
    bool has_derived = false;
    for (const Literal& lit : r.body) {
      if (derived.count(lit.predicate)) has_derived = true;
    }
    if (!has_derived) {
      if (auto s = fire_rule(r, r.body); !s.ok()) return s;
    }
  }
  // Promote round-0 results into the delta.
  for (SymbolId p : derived) {
    const Relation* nd = next_delta.Find(p);
    if (nd == nullptr) continue;
    Relation& d = delta.GetOrCreate(p, nd->arity());
    for (TupleRef t : nd->tuples()) d.Insert(t);
  }
  next_delta = IdbStore{};

  bool any_delta = true;
  while (any_delta) {
    if (st.rounds++ >= max_rounds) {
      return Status::Internal("seminaive evaluation exceeded the round limit");
    }
    for (const Rule& r : program.rules) {
      for (size_t j = 0; j < r.body.size(); ++j) {
        if (!derived.count(r.body[j].predicate)) continue;
        // Substitute occurrence j by the delta marker.
        std::vector<Literal> body = r.body;
        current_delta_pred = body[j].predicate;
        body[j].predicate = delta_marker;
        if (auto s = fire_rule(r, body); !s.ok()) return s;
      }
    }
    any_delta = false;
    IdbStore fresh;
    for (SymbolId p : derived) {
      const Relation* nd = next_delta.Find(p);
      size_t arity = total.Find(p)->arity();
      Relation& d = fresh.GetOrCreate(p, arity);
      if (nd != nullptr) {
        for (TupleRef t : nd->tuples()) d.Insert(t);
        if (!nd->empty()) any_delta = true;
      }
    }
    delta = std::move(fresh);
    next_delta = IdbStore{};
  }
  st.fetches = db.TotalFetches() - fetches_before;
  return total;
}

Result<std::vector<Tuple>> SeminaiveQuery(const Program& program, Database& db,
                                          const Literal& query,
                                          BottomUpStats* stats,
                                          size_t max_rounds) {
  auto idb = SeminaiveFixpoint(program, db, {}, stats, max_rounds);
  if (!idb.ok()) return idb.status();
  return SelectMatching(idb.value().Find(query.predicate), query);
}

}  // namespace binchain
