// Level-based strategies for equations in the linear normal form
// p = e0 U e1 . p . e2 (the same-generation shape), used in the paper's
// complexity comparison (Section 3):
//
//  * Counting [3]: compute the level sets U_d = e1^d(a) going up, then fold
//    the answer going down in Horner order, W := e2(W) U e0(U_d). Work is
//    linear in the number of (node, level) pairs — the bounds the paper
//    proves identical to its own algorithm.
//  * Henschen-Naqvi [7]: evaluate the compiled iterative form
//    answer = U_d  e2^d(e0(e1^d(a))), recomputing the d-fold down image at
//    every level (no memory of previously traversed paths — the re-traversal
//    behaviour the paper contrasts with its graph traversal).
//  * Reverse counting [3]: counting performed from the answer side: for
//    every candidate answer y the inverted equation is evaluated from y and
//    checked for reaching the query constant.
//
// All three take an explicit level cap (for cyclic data); acyclic runs
// terminate when the up set empties.
#ifndef BINCHAIN_BASELINES_COUNTING_H_
#define BINCHAIN_BASELINES_COUNTING_H_

#include <vector>

#include "equations/equations.h"
#include "eval/relation_view.h"
#include "util/status.h"

namespace binchain {

struct LevelStats {
  uint64_t up_work = 0;     // (state, term) pairs in up-phase traversals
  uint64_t down_work = 0;   // pairs in down-phase traversals
  uint64_t levels = 0;      // up levels explored
  bool hit_cap = false;
};

Result<std::vector<TermId>> CountingQuery(const ViewRegistry& views,
                                          const LinearNormalForm& nf,
                                          TermId source, size_t level_cap,
                                          LevelStats* stats);

Result<std::vector<TermId>> HenschenNaqviQuery(const ViewRegistry& views,
                                               const LinearNormalForm& nf,
                                               TermId source, size_t level_cap,
                                               LevelStats* stats);

Result<std::vector<TermId>> ReverseCountingQuery(const ViewRegistry& views,
                                                 const LinearNormalForm& nf,
                                                 TermId source,
                                                 size_t level_cap,
                                                 LevelStats* stats);

}  // namespace binchain

#endif  // BINCHAIN_BASELINES_COUNTING_H_
