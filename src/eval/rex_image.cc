#include "eval/rex_image.h"

#include <algorithm>
#include <unordered_set>

#include "automata/nfa.h"

namespace binchain {

Result<std::vector<TermId>> ImageUnderRex(const ViewRegistry& views,
                                          const RexPtr& e,
                                          const std::vector<TermId>& sources,
                                          uint64_t* work) {
  // Validate: every predicate leaf must have a view.
  std::unordered_set<SymbolId> preds;
  CollectPreds(e, preds);
  for (SymbolId p : preds) {
    if (views.Find(p) == nullptr) {
      return Status::NotFound("no relation view registered for predicate");
    }
  }
  Nfa nfa = BuildNfa(e, [](SymbolId) { return false; });

  std::unordered_set<uint64_t> seen;
  std::vector<std::pair<uint32_t, TermId>> stack;
  std::vector<TermId> out;
  std::unordered_set<TermId> out_set;
  auto visit = [&](uint32_t q, TermId u) {
    uint64_t key = (static_cast<uint64_t>(q) << 32) | u;
    if (!seen.insert(key).second) return;
    if (work != nullptr) ++*work;
    if (q == nfa.final() && out_set.insert(u).second) out.push_back(u);
    stack.emplace_back(q, u);
  };
  for (TermId s : sources) visit(nfa.initial(), s);
  while (!stack.empty()) {
    auto [q, u] = stack.back();
    stack.pop_back();
    for (const NfaTransition& t : nfa.Out(q)) {
      switch (t.label.kind) {
        case NfaLabel::Kind::kId:
          visit(t.target, u);
          break;
        case NfaLabel::Kind::kRel: {
          BinaryRelationView* view = views.Find(t.label.pred);
          if (t.label.inverted) {
            view->ForEachPred(u, [&](TermId v) { visit(t.target, v); });
          } else {
            view->ForEachSucc(u, [&](TermId v) { visit(t.target, v); });
          }
          break;
        }
        case NfaLabel::Kind::kDerived:
          // Unreachable: BuildNfa was told nothing is derived.
          break;
      }
    }
  }
  return out;
}

Result<std::vector<TermId>> ClosureUnderRex(const ViewRegistry& views,
                                            const RexPtr& e,
                                            const std::vector<TermId>& sources,
                                            uint64_t* work) {
  std::unordered_set<TermId> all(sources.begin(), sources.end());
  std::vector<TermId> frontier(sources.begin(), sources.end());
  std::vector<TermId> out(sources.begin(), sources.end());
  while (!frontier.empty()) {
    auto img = ImageUnderRex(views, e, frontier, work);
    if (!img.ok()) return img.status();
    frontier.clear();
    for (TermId v : img.value()) {
      if (all.insert(v).second) {
        frontier.push_back(v);
        out.push_back(v);
      }
    }
  }
  return out;
}

}  // namespace binchain
