#include "eval/rex_image.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "automata/nfa.h"

namespace binchain {
namespace {

/// Marks `i` in the epoch-stamped array; returns true if already marked
/// this epoch. Ids above the current capacity (terms interned
/// mid-traversal) grow the array transparently.
bool Stamp(std::vector<uint32_t>& stamps, size_t i, uint32_t epoch) {
  if (i >= stamps.size()) {
    stamps.resize(std::max(i + 1, stamps.size() * 2), 0);
  }
  if (stamps[i] == epoch) return true;
  stamps[i] = epoch;
  return false;
}

}  // namespace

Result<std::vector<TermId>> ImageUnderRex(const ViewRegistry& views,
                                          const RexPtr& e,
                                          const std::vector<TermId>& sources,
                                          uint64_t* work,
                                          const CancelToken* cancel) {
  // Compilation validates that every predicate leaf has a view and is
  // memoized per Rex node: level strategies call this once per level.
  const ViewRegistry::CompiledRex& compiled = views.Compile(e);
  if (!compiled.status.ok()) return compiled.status;
  const Nfa& nfa = compiled.nfa;

  // The (state, term) seen-set lives in the registry's epoch-stamped
  // scratch: clearing is an epoch bump, so a call touching few nodes pays
  // for few nodes (the level strategies issue many small-frontier calls).
  const size_t num_states = nfa.NumStates();
  ViewRegistry::TraversalScratch& sc = views.scratch();
  if (++sc.epoch == 0) {  // wrapped: do the rare real clear
    std::fill(sc.node_stamp.begin(), sc.node_stamp.end(), 0);
    std::fill(sc.term_stamp.begin(), sc.term_stamp.end(), 0);
    sc.epoch = 1;
  }
  const uint32_t epoch = sc.epoch;
  std::vector<std::pair<uint32_t, TermId>> stack;
  std::vector<TermId> out;
  auto visit = [&](uint32_t q, TermId u) {
    if (Stamp(sc.node_stamp, static_cast<size_t>(u) * num_states + q,
              epoch)) {
      return;
    }
    if (work != nullptr) ++*work;
    if (q == nfa.final() && !Stamp(sc.term_stamp, u, epoch)) {
      out.push_back(u);
    }
    stack.emplace_back(q, u);
  };
  for (TermId s : sources) visit(nfa.initial(), s);
  // Same decimation as the engine's node loop: a pop can fan out over a
  // whole adjacency list, so a stride of a few hundred bounds cancellation
  // latency to milliseconds while keeping the clock read off the hot path.
  constexpr size_t kCancelStride = 512;
  size_t cancel_countdown = kCancelStride;
  while (!stack.empty()) {
    if (cancel != nullptr && --cancel_countdown == 0) {
      cancel_countdown = kCancelStride;
      if (cancel->ShouldStop()) {
        return Status::Cancelled("image traversal cancelled");
      }
    }
    auto [q, u] = stack.back();
    stack.pop_back();
    for (const NfaTransition& t : nfa.Out(q)) {
      switch (t.label.kind) {
        case NfaLabel::Kind::kId:
          visit(t.target, u);
          break;
        case NfaLabel::Kind::kRel: {
          BinaryRelationView* view = views.Find(t.label.pred);
          if (t.label.inverted) {
            view->ForEachPred(u, [&](TermId v) { visit(t.target, v); });
          } else {
            view->ForEachSucc(u, [&](TermId v) { visit(t.target, v); });
          }
          break;
        }
        case NfaLabel::Kind::kDerived:
          // Unreachable: BuildNfa was told nothing is derived.
          break;
      }
    }
  }
  return out;
}

Result<std::vector<TermId>> ClosureUnderRex(const ViewRegistry& views,
                                            const RexPtr& e,
                                            const std::vector<TermId>& sources,
                                            uint64_t* work,
                                            const CancelToken* cancel) {
  std::unordered_set<TermId> all(sources.begin(), sources.end());
  std::vector<TermId> frontier(sources.begin(), sources.end());
  std::vector<TermId> out(sources.begin(), sources.end());
  while (!frontier.empty()) {
    // Per-round poll on top of the per-visit decimation inside the image
    // call: rounds with tiny frontiers would otherwise stretch the stride.
    if (cancel != nullptr && cancel->ShouldStop()) {
      return Status::Cancelled("closure traversal cancelled");
    }
    auto img = ImageUnderRex(views, e, frontier, work, cancel);
    if (!img.ok()) return img.status();
    frontier.clear();
    for (TermId v : img.value()) {
      if (all.insert(v).second) {
        frontier.push_back(v);
        out.push_back(v);
      }
    }
  }
  return out;
}

}  // namespace binchain
