// Variable -> constant binding environment for conjunctive matching.
//
// A rule body binds a handful of variables (binary-chain rules: at most ~6),
// and the matcher probes the binding once per argument per visited tuple —
// the innermost lookups of every bottom-up strategy. A linear scan over an
// inline array beats a hash table at this size by a wide margin (no hashing,
// no indirection, one cache line), so Binding is a small-buffer map with the
// unordered_map surface the matcher and its callers use.
#ifndef BINCHAIN_EVAL_BINDING_H_
#define BINCHAIN_EVAL_BINDING_H_

#include <algorithm>
#include <utility>

#include "storage/symbol_table.h"
#include "util/check.h"

namespace binchain {

class Binding {
 public:
  using value_type = std::pair<SymbolId, SymbolId>;
  using iterator = value_type*;
  using const_iterator = const value_type*;
  static constexpr size_t kInlineCapacity = 8;

  Binding() : data_(inline_), size_(0), capacity_(kInlineCapacity) {}
  Binding(const Binding& o) : Binding() { CopyFrom(o); }
  Binding& operator=(const Binding& o) {
    if (this != &o) {
      size_ = 0;
      CopyFrom(o);
    }
    return *this;
  }
  ~Binding() {
    if (data_ != inline_) delete[] data_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() { size_ = 0; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  iterator find(SymbolId k) {
    for (size_t i = 0; i < size_; ++i) {
      if (data_[i].first == k) return data_ + i;
    }
    return end();
  }
  const_iterator find(SymbolId k) const {
    return const_cast<Binding*>(this)->find(k);
  }

  size_t count(SymbolId k) const { return find(k) == end() ? 0 : 1; }

  SymbolId& at(SymbolId k) {
    iterator it = find(k);
    // Always-on check: the unordered_map::at this replaces threw on a
    // missing key, and callers rely on that loudness (unbound output
    // variables must not silently leak garbage into answers).
    BINCHAIN_CHECK(it != end());
    return it->second;
  }
  const SymbolId& at(SymbolId k) const {
    return const_cast<Binding*>(this)->at(k);
  }

  std::pair<iterator, bool> emplace(SymbolId k, SymbolId v) {
    iterator it = find(k);
    if (it != end()) return {it, false};
    PushBack(k, v);
    return {data_ + size_ - 1, true};
  }

  SymbolId& operator[](SymbolId k) {
    iterator it = find(k);
    if (it != end()) return it->second;
    PushBack(k, 0);
    return data_[size_ - 1].second;
  }

  /// Removes `k` if present (swap-with-last; iteration order is not part of
  /// the contract).
  void erase(SymbolId k) {
    iterator it = find(k);
    if (it == end()) return;
    *it = data_[size_ - 1];
    --size_;
  }

 private:
  void PushBack(SymbolId k, SymbolId v) {
    if (size_ == capacity_) {
      size_t cap = capacity_ * 2;
      value_type* heap = new value_type[cap];
      std::copy(data_, data_ + size_, heap);
      if (data_ != inline_) delete[] data_;
      data_ = heap;
      capacity_ = cap;
    }
    data_[size_++] = {k, v};
  }

  void CopyFrom(const Binding& o) {
    if (o.size_ > capacity_) {
      if (data_ != inline_) delete[] data_;
      data_ = new value_type[o.capacity_];
      capacity_ = o.capacity_;
    }
    std::copy(o.data_, o.data_ + o.size_, data_);
    size_ = o.size_;
  }

  value_type* data_;
  size_t size_;
  size_t capacity_;
  value_type inline_[kInlineCapacity];
};

}  // namespace binchain

#endif  // BINCHAIN_EVAL_BINDING_H_
