#include "eval/eval_artifacts.h"

#include <algorithm>
#include <unordered_set>

#include "datalog/printer.h"
#include "eval/query.h"
#include "rex/rex.h"
#include "util/check.h"

namespace binchain {

std::vector<SymbolId> TransitiveBasePreds(const EquationSystem& eqs,
                                          SymbolId pred) {
  std::unordered_set<SymbolId> todo{pred}, seen, base;
  while (!todo.empty()) {
    SymbolId p = *todo.begin();
    todo.erase(todo.begin());
    if (!seen.insert(p).second) continue;
    if (!eqs.Has(p)) {
      base.insert(p);
      continue;
    }
    std::unordered_set<SymbolId> mentioned;
    CollectPreds(eqs.Rhs(p), mentioned);
    for (SymbolId q : mentioned) todo.insert(q);
  }
  std::vector<SymbolId> out(base.begin(), base.end());
  std::sort(out.begin(), out.end());
  return out;
}

SharedAdjacency::SharedAdjacency(const Relation* rel)
    : rel_(rel), total_rows_(rel->size()) {
  BINCHAIN_CHECK(rel_->frozen());
}

SharedAdjacency::SharedAdjacency(const Relation* rel,
                                 std::shared_ptr<const SharedAdjacency> base)
    : rel_(rel),
      base_(std::move(base)),
      local_begin_(base_->relation()->size()),
      total_rows_(rel->size()) {
  BINCHAIN_CHECK(rel_->frozen());
  BINCHAIN_CHECK(local_begin_ <= total_rows_);
}

void SharedAdjacency::EnsureBuilt() const {
  if (ready_.load(std::memory_order_acquire)) return;
  if (base_ != nullptr) base_->EnsureBuilt();
  std::lock_guard<std::mutex> lock(mu_);
  if (ready_.load(std::memory_order_relaxed)) return;
  BuildLocal();
  ready_.store(true, std::memory_order_release);
}

void SharedAdjacency::BuildLocal() const {
  // Counting sort of this layer's rows by source (and by target for the
  // backward direction). Filling in ascending row order keeps every
  // per-key target list in insertion order — the enumeration order
  // Relation::ForEachMatch delivers. Tombstoned rows are skipped: the memo
  // bakes the relation's (frozen, immutable) dead set into the CSR, which
  // is why a later retraction forces the shrunk rebuild instead of a chain
  // extension (see EvalArtifacts::BuildFor).
  SymbolId bound = 0;
  size_t rows = 0;
  for (size_t r = local_begin_; r < total_rows_; ++r) {
    if (rel_->RowDead(r)) continue;
    TupleRef t = rel_->tuple(r);
    bound = std::max({bound, static_cast<SymbolId>(t[0] + 1),
                      static_cast<SymbolId>(t[1] + 1)});
    ++rows;
  }
  fwd_.off.assign(bound + 1, 0);
  bwd_.off.assign(bound + 1, 0);
  fwd_.tgt.resize(rows);
  bwd_.tgt.resize(rows);
  for (size_t r = local_begin_; r < total_rows_; ++r) {
    if (rel_->RowDead(r)) continue;
    TupleRef t = rel_->tuple(r);
    ++fwd_.off[t[0] + 1];
    ++bwd_.off[t[1] + 1];
  }
  for (SymbolId c = 1; c <= bound; ++c) {
    fwd_.off[c] += fwd_.off[c - 1];
    bwd_.off[c] += bwd_.off[c - 1];
  }
  std::vector<uint32_t> fcur(fwd_.off.begin(), fwd_.off.end());
  std::vector<uint32_t> bcur(bwd_.off.begin(), bwd_.off.end());
  for (size_t r = local_begin_; r < total_rows_; ++r) {
    if (rel_->RowDead(r)) continue;
    TupleRef t = rel_->tuple(r);
    fwd_.tgt[fcur[t[0]]++] = t[1];
    bwd_.tgt[bcur[t[1]]++] = t[0];
  }
}

void SharedAdjacency::ForEachSucc(SymbolId u,
                                  FunctionRef<void(SymbolId)> fn) const {
  BINCHAIN_DCHECK(built());
  EvalArtifacts::BumpThreadMemoHits();
  // Base layers hold older rows; emitting them first preserves global
  // insertion order. The chain is shallow (flatten policy), so a small
  // fixed stack suffices.
  const SharedAdjacency* layers[RowRange::kMaxSegments];
  size_t n = 0;
  for (const SharedAdjacency* layer = this; layer != nullptr;
       layer = layer->base_.get()) {
    BINCHAIN_CHECK(n < RowRange::kMaxSegments);
    layers[n++] = layer;
  }
  while (n > 0) layers[--n]->fwd_.ForKey(u, fn);
}

void SharedAdjacency::ForEachPred(SymbolId v,
                                  FunctionRef<void(SymbolId)> fn) const {
  BINCHAIN_DCHECK(built());
  EvalArtifacts::BumpThreadMemoHits();
  const SharedAdjacency* layers[RowRange::kMaxSegments];
  size_t n = 0;
  for (const SharedAdjacency* layer = this; layer != nullptr;
       layer = layer->base_.get()) {
    BINCHAIN_CHECK(n < RowRange::kMaxSegments);
    layers[n++] = layer;
  }
  while (n > 0) layers[--n]->bwd_.ForKey(v, fn);
}

SharedDemandMemo::Shard& SharedDemandMemo::ShardFor(
    const Tuple& input) const {
  return shards_[TupleHash{}(input) % kShards];
}

const std::vector<Tuple>* SharedDemandMemo::Find(const Tuple& input) const {
  Shard& shard = ShardFor(input);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(input);
  if (it == shard.map.end()) return nullptr;
  EvalArtifacts::BumpThreadMemoHits();
  return it->second.get();
}

const std::vector<Tuple>* SharedDemandMemo::Publish(
    const Tuple& input, std::vector<Tuple> outputs) const {
  Shard& shard = ShardFor(input);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(input);
  if (it != shard.map.end()) return it->second.get();
  auto stored =
      std::make_unique<const std::vector<Tuple>>(std::move(outputs));
  const std::vector<Tuple>* raw = stored.get();
  shard.map.emplace(input, std::move(stored));
  return raw;
}

uint64_t SharedDemandMemo::entries() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

std::shared_ptr<const EvalArtifacts> EvalArtifacts::BuildFor(
    const Database& db, std::shared_ptr<const PreparedProgram> plan,
    const std::shared_ptr<const EvalArtifacts>& prev) {
  BINCHAIN_CHECK(db.frozen());
  BINCHAIN_CHECK(plan != nullptr);
  std::shared_ptr<EvalArtifacts> out(new EvalArtifacts());
  out->epoch_ = db.epoch();
  out->plan_ = plan;

  for (const std::string& name : db.relation_names()) {
    const Relation* rel = db.Find(name);
    auto id = db.symbols().Find(name);
    if (rel == nullptr || !id) continue;
    out->rel_by_id_.emplace(*id, rel);
    if (rel->arity() != 2) continue;
    out->binary_.emplace_back(*id, rel);
    ++out->refresh_.adjacency_entries;

    std::shared_ptr<SharedAdjacency> prev_adj;
    if (prev != nullptr) {
      auto pit = prev->adjacency_.find(*id);
      if (pit != prev->adjacency_.end()) prev_adj = pit->second;
    }
    if (prev_adj != nullptr && prev_adj->relation() == rel) {
      // Untouched relation: the previous epoch's memo answers verbatim.
      out->adjacency_.emplace(*id, prev_adj);
      ++out->refresh_.adjacency_reused;
    } else if (prev_adj != nullptr &&
               rel->base().get() == prev_adj->relation() &&
               rel->dead_mutations() ==
                   prev_adj->relation()->dead_mutations() &&
               !Relation::ShouldFlatten(
                   prev_adj->chain_depth() + 1,
                   rel->size() - prev_adj->root_rows(), prev_adj->root_rows(),
                   Relation::kMaxChainDepth, Relation::kFlattenMinRows)) {
      // Delta layer on the relation the old memo covered, with an
      // *identical* dead set (equal mutation counts — count equality alone
      // would miss a resurrect+delete pair): chain a memo layer over just
      // the new rows. Built lazily, O(delta).
      out->adjacency_.emplace(
          *id, std::make_shared<SharedAdjacency>(rel, std::move(prev_adj)));
      ++out->refresh_.adjacency_extended;
    } else if (prev_adj != nullptr &&
               rel->base().get() == prev_adj->relation() &&
               rel->dead_mutations() !=
                   prev_adj->relation()->dead_mutations()) {
      // Shrunk path: same underlying chain, but the delta layer edited the
      // tombstone set, which the old memo baked into its CSR at build time.
      // Rebuild this one relation's memo standalone (lazily); untouched
      // relations above still reused by pointer.
      out->adjacency_.emplace(*id, std::make_shared<SharedAdjacency>(rel));
      ++out->refresh_.adjacency_shrunk;
    } else {
      // New relation, flattened relation, or a memo chain deep enough that
      // the shared flatten policy says to compact: standalone rebuild
      // (lazy; eager below for the first freeze).
      out->adjacency_.emplace(*id, std::make_shared<SharedAdjacency>(rel));
      ++out->refresh_.adjacency_rebuilt;
    }
  }

  const EquationSystem& eqs = plan->lemma1.final_system;
  for (SymbolId p : eqs.preds()) {
    DerivedEntry entry;
    entry.deps = TransitiveBasePreds(eqs, p);
    ++out->refresh_.derived_entries;
    const DerivedEntry* prev_entry = nullptr;
    if (prev != nullptr) {
      auto pit = prev->derived_.find(p);
      if (pit != prev->derived_.end()) prev_entry = &pit->second;
    }
    bool clean = prev_entry != nullptr;
    if (clean) {
      for (SymbolId d : entry.deps) {
        const Relation* now = db.FindById(d);
        auto bit = prev->rel_by_id_.find(d);
        const Relation* before =
            bit == prev->rel_by_id_.end() ? nullptr : bit->second;
        if (now != before) {
          clean = false;
          break;
        }
      }
    }
    if (clean) {
      entry.closure = prev_entry->closure;
      entry.sources = prev_entry->sources;
      ++out->refresh_.derived_reused;
    } else {
      entry.closure = std::make_shared<SharedClosure>();
      entry.sources = std::make_shared<SharedSources>();
      ++out->refresh_.derived_invalidated;
    }
    out->derived_.emplace(p, std::move(entry));
  }

  if (prev == nullptr) {
    // First freeze: pay the one-time adjacency build here, on the calling
    // thread, so serving starts with every memo warm ("built at freeze
    // time"). Post-publish epochs skip this — their refreshed entries
    // build on first probe, keeping Publish() O(delta).
    for (auto& [id, adj] : out->adjacency_) adj->EnsureBuilt();
  }
  return out;
}

bool EvalArtifacts::CompatiblePlan(const PreparedProgram& plan,
                                   const SymbolTable& symbols) const {
  return ProgramToString(plan_->program, symbols) ==
         ProgramToString(plan.program, symbols);
}

const SharedAdjacency* EvalArtifacts::Adjacency(SymbolId pred) const {
  auto it = adjacency_.find(pred);
  return it == adjacency_.end() ? nullptr : it->second.get();
}

const SharedClosure* EvalArtifacts::Closure(SymbolId pred) const {
  auto it = derived_.find(pred);
  return it == derived_.end() ? nullptr : it->second.closure.get();
}

const SharedSources* EvalArtifacts::Sources(SymbolId pred) const {
  auto it = derived_.find(pred);
  return it == derived_.end() ? nullptr : it->second.sources.get();
}

const SharedDemandMemo& EvalArtifacts::DemandMemo(SymbolId pred) const {
  std::lock_guard<std::mutex> lock(demand_mu_);
  auto& slot = demand_[pred];
  if (slot == nullptr) slot = std::make_unique<SharedDemandMemo>();
  return *slot;
}

}  // namespace binchain
