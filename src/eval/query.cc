#include "eval/query.h"

#include <algorithm>

#include "datalog/parser.h"
#include "eval/answer_sink.h"
#include "eval/closure.h"
#include "eval/eval_artifacts.h"
#include "util/check.h"

namespace binchain {

namespace {

/// Bridges the engine's TermId flushes to the request's tuple-level sink,
/// applying the same shaping and filtering as the blocking result loops
/// in QueryEngine::Query — so a streamed chunk carries exactly the tuples
/// the final answer will. Stack-local per EvalFrom call; the buffer is
/// reused across chunks.
class ShapingTermSink : public AnswerTermSink {
 public:
  /// kForward emits {fixed, term}; kInverted emits {term, fixed}.
  enum class Shape { kForward, kInverted };

  ShapingTermSink(AnswerSink* sink, TermPool* pool,
                  const SymbolTable* symbols, Shape shape, SymbolId fixed)
      : sink_(sink), pool_(pool), symbols_(symbols), shape_(shape),
        fixed_(fixed) {}

  /// Drops terms whose constant differs from `to` (the p(a, b) membership
  /// filter, or the diagonal's y == x).
  void FilterTo(SymbolId to) {
    filter_ = true;
    filter_to_ = to;
  }

  void OnTerms(const TermId* terms, size_t count) override {
    buf_.clear();
    for (size_t i = 0; i < count; ++i) {
      SymbolId c = pool_->AsUnary(terms[i]);
      if (filter_ && c != filter_to_) continue;
      if (shape_ == Shape::kForward) {
        buf_.push_back(Tuple{fixed_, c});
      } else {
        buf_.push_back(Tuple{c, fixed_});
      }
    }
    // Chunks are never empty: a flush whose terms all failed the filter
    // simply produces nothing.
    if (!buf_.empty()) sink_->OnAnswers(buf_.data(), buf_.size(), *symbols_);
  }

 private:
  AnswerSink* sink_;
  TermPool* pool_;
  const SymbolTable* symbols_;
  Shape shape_;
  SymbolId fixed_;
  bool filter_ = false;
  SymbolId filter_to_ = 0;
  std::vector<Tuple> buf_;
};

}  // namespace

void LoadFactsInto(Database& db, const std::vector<Literal>& facts) {
  for (const Literal& f : facts) {
    Relation& rel = db.GetOrCreate(db.symbols().Name(f.predicate), f.arity());
    Tuple t;
    for (const Term& a : f.args) t.push_back(a.symbol);
    rel.Insert(t);
  }
}

Result<std::shared_ptr<const PreparedProgram>> PrepareProgram(
    Database* db, Program program, bool compile_machines) {
  auto plan = std::make_shared<PreparedProgram>();
  plan->program = std::move(program);
  LoadFactsInto(*db, plan->program.facts);
  plan->program.facts.clear();
  plan->program.queries.clear();
  auto transformed = TransformToEquations(plan->program, db->symbols());
  if (!transformed.ok()) return transformed.status();
  plan->lemma1 = transformed.take();
  plan->combined =
      InvertSystem(plan->lemma1.final_system, db->symbols(), plan->inverse_of);
  if (compile_machines) {
    // A throwaway registry satisfies Machine()'s view-existence validation;
    // the compiled NFAs themselves depend only on the equations.
    ViewRegistry views(&db->symbols());
    views.RegisterDatabase(*db);
    Engine fwd(&plan->lemma1.final_system, &views);
    for (SymbolId p : plan->lemma1.final_system.preds()) {
      if (auto m = fwd.Machine(p); !m.ok()) return m.status();
    }
    plan->forward_machines = fwd.TakeMachines();
    Engine inv(&plan->combined, &views);
    for (SymbolId p : plan->combined.preds()) {
      if (auto m = inv.Machine(p); !m.ok()) return m.status();
    }
    plan->inverse_machines = inv.TakeMachines();
  }
  return Result<std::shared_ptr<const PreparedProgram>>(std::move(plan));
}

QueryEngine::QueryEngine(Database* db) : db_(db) {}

QueryEngine::QueryEngine(Database* db,
                         std::shared_ptr<const PreparedProgram> plan)
    : db_(db), plan_(std::move(plan)) {
  BINCHAIN_CHECK(plan_ != nullptr);
  InitFromPlan();
}

QueryEngine::~QueryEngine() = default;

Status QueryEngine::LoadProgramText(std::string_view text) {
  auto parsed = ParseProgram(text, db_->symbols());
  if (!parsed.ok()) return parsed.status();
  return LoadProgram(parsed.value());
}

Status QueryEngine::LoadProgram(const Program& program) {
  if (plan_ != nullptr) {
    return Status::FailedPrecondition("program already loaded");
  }
  auto plan = PrepareProgram(db_, program, /*compile_machines=*/false);
  if (!plan.ok()) return plan.status();
  plan_ = plan.take();
  InitFromPlan();
  return Status::Ok();
}

void QueryEngine::InitFromPlan() {
  views_ = std::make_unique<ViewRegistry>(&db_->symbols());
  views_->RegisterDatabase(*db_);
  engine_ = std::make_unique<Engine>(&plan_->lemma1.final_system,
                                     views_.get(), &plan_->forward_machines);
  inv_engine_ = std::make_unique<Engine>(&plan_->combined, views_.get(),
                                         &plan_->inverse_machines);
}

Status QueryEngine::PrepareAll() {
  if (plan_ == nullptr) {
    return Status::FailedPrecondition("no program loaded");
  }
  for (SymbolId p : plan_->lemma1.final_system.preds()) {
    if (auto m = engine_->Machine(p); !m.ok()) return m.status();
  }
  for (SymbolId p : plan_->combined.preds()) {
    if (auto m = inv_engine_->Machine(p); !m.ok()) return m.status();
  }
  return Status::Ok();
}

Status QueryEngine::BindSnapshot(const Database& db) {
  if (plan_ == nullptr) {
    return Status::FailedPrecondition("no program loaded");
  }
  if (!db.frozen()) {
    return Status::FailedPrecondition(
        "BindSnapshot requires a frozen database epoch");
  }
  // Epoch snapshots extend the engine's original symbol-id space, so
  // compiled machines, interned terms, and the rex cache all stay valid;
  // only the relation pointers (and the database read below) move. The
  // const_cast is sound: a frozen epoch is never mutated through db_.
  db_ = const_cast<Database*>(&db);
  // Adopt the epoch's shared artifacts (if the snapshot publisher attached
  // any): views rebind from the artifacts' frozen relation table and start
  // serving from the snapshot-owned memos, and the all-free paths below
  // from the shared closure / source caches.
  artifacts_ = std::dynamic_pointer_cast<const EvalArtifacts>(db.artifact());
  views_->BindSnapshot(db, artifacts_.get());
  return Status::Ok();
}

const EquationSystem& QueryEngine::equations() const {
  BINCHAIN_CHECK(plan_ != nullptr);
  return plan_->lemma1.final_system;
}

Result<QueryAnswer> QueryEngine::Query(std::string_view literal_text,
                                       const EvalOptions& options) {
  auto lit = ParseLiteral(literal_text, db_->symbols());
  if (!lit.ok()) return lit.status();
  return Query(lit.value(), options);
}

const std::vector<SymbolId>& QueryEngine::CandidateSources(SymbolId pred) {
  if (artifacts_ != nullptr) {
    if (const SharedSources* cache = artifacts_->Sources(pred)) {
      if (const std::vector<SymbolId>* v = cache->Get()) {
        EvalArtifacts::BumpThreadMemoHits();
        return *v;
      }
      // First all-free query of this epoch: compute once, publish for every
      // worker. All computations over one frozen snapshot are identical, so
      // first-wins is deterministic in content. The cell's storage is
      // stable, so the reference stays valid for the sweep.
      return *cache->Publish(ComputeCandidateSources(pred));
    }
  }
  source_scratch_ = ComputeCandidateSources(pred);
  return source_scratch_;
}

std::vector<SymbolId> QueryEngine::ComputeCandidateSources(SymbolId pred) {
  // The base predicates e_pred transitively reads (the same dependency set
  // artifact invalidation keys on), then the constants of those relations
  // (both columns: a conservative superset of domain(pred)).
  std::unordered_set<SymbolId> consts;
  for (SymbolId p : TransitiveBasePreds(plan_->lemma1.final_system, pred)) {
    const Relation* rel = db_->FindById(p);
    if (rel == nullptr) continue;
    for (TupleRef t : rel->tuples()) {
      for (SymbolId c : t) consts.insert(c);
    }
  }
  std::vector<SymbolId> out(consts.begin(), consts.end());
  std::sort(out.begin(), out.end());
  return out;
}

bool QueryEngine::TryAllPairsClosure(SymbolId pred, const Literal& query,
                                     const EvalOptions& options,
                                     QueryAnswer* answer) {
  // Match e*.e or e.e* with a single non-inverted base predicate e.
  const RexPtr& rhs = plan_->lemma1.final_system.Rhs(pred);
  if (rhs->kind != Rex::Kind::kConcat || rhs->kids.size() != 2) return false;
  const RexPtr& x = rhs->kids[0];
  const RexPtr& y = rhs->kids[1];
  const Rex* leaf = nullptr;
  const Rex* star = nullptr;
  if (x->kind == Rex::Kind::kStar && y->kind == Rex::Kind::kPred) {
    star = x.get();
    leaf = y.get();
  } else if (y->kind == Rex::Kind::kStar && x->kind == Rex::Kind::kPred) {
    star = y.get();
    leaf = x.get();
  } else {
    return false;
  }
  if (leaf->inverted) return false;
  if (star->kids[0]->kind != Rex::Kind::kPred ||
      star->kids[0]->pred != leaf->pred || star->kids[0]->inverted) {
    return false;
  }
  BinaryRelationView* view = views_->Find(leaf->pred);
  if (view == nullptr || !view->SupportsEnumerate()) return false;

  bool diagonal = query.args[0].IsVar() && query.args[1].IsVar() &&
                  query.args[0] == query.args[1];
  TermPool& pool = views_->pool();

  // Epoch-shared closure cache: the first worker runs Tarjan and publishes
  // the pairs as SymbolIds (meaningful in every pool); everyone else — and
  // every later all-free query of the epoch — replays the shared value.
  // Without artifacts the same value is simply computed locally.
  const SharedClosure* cache =
      artifacts_ != nullptr ? artifacts_->Closure(pred) : nullptr;
  const ClosureValue* v = cache != nullptr ? cache->Get() : nullptr;
  ClosureValue local;
  if (v != nullptr) {
    EvalArtifacts::BumpThreadMemoHits();
  } else {
    ClosureStats stats;
    auto pairs = TransitiveClosureAllPairs(view, &stats, options.cancel);
    if (!pairs.ok()) {
      if (pairs.status().code() == StatusCode::kCancelled) {
        // Handled-but-partial: report the cancellation (empty answer set)
        // instead of falling through to the per-source sweep, and leave the
        // shared cache empty — a partial value must never be published.
        answer->stats.cancelled = true;
        return true;
      }
      return false;
    }
    local.nodes = stats.nodes;
    local.pairs.reserve(pairs.value().size());
    for (auto [u, w] : pairs.value()) {
      local.pairs.emplace_back(pool.AsUnary(u), pool.AsUnary(w));
    }
    std::sort(local.pairs.begin(), local.pairs.end());
    v = cache != nullptr ? cache->Publish(std::move(local)) : &local;
  }
  answer->stats.nodes = v->nodes;
  for (auto [cu, cv] : v->pairs) {
    if (diagonal && cu != cv) continue;
    answer->tuples.push_back(Tuple{cu, cv});
  }
  return true;
}

Result<QueryAnswer> QueryEngine::Query(const Literal& query,
                                       const EvalOptions& options) {
  if (plan_ == nullptr) {
    return Status::FailedPrecondition("no program loaded");
  }
  if (query.arity() != 2) {
    return Status::InvalidArgument("queries must be binary literals");
  }
  SymbolId pred = query.predicate;
  // Unfrozen relations count into the database, frozen ones into the
  // calling thread; the sum's delta is the query's exact fetch count in
  // either mode. Once frozen the per-relation counters can never move, so
  // the concurrent hot path skips walking the relation map entirely.
  auto fetch_total = [this] {
    return Relation::ThreadFetchCount() +
           (db_->frozen() ? 0 : db_->TotalFetches());
  };
  uint64_t fetches_before = fetch_total();
  uint64_t wide_before = Relation::ThreadWideScanCount();
  uint64_t memo_before = EvalArtifacts::ThreadMemoHits();
  QueryAnswer answer;

  // Base-predicate queries answer directly from the extensional database.
  if (!plan_->lemma1.final_system.Has(pred)) {
    const Relation* rel = db_->FindById(pred);
    if (rel == nullptr) {
      return Status::NotFound("unknown predicate '" +
                              db_->symbols().Name(pred) + "'");
    }
    for (TupleRef t : rel->tuples()) {
      bool match = true;
      for (size_t i = 0; i < 2; ++i) {
        if (query.args[i].IsConst() && query.args[i].symbol != t[i]) {
          match = false;
        }
      }
      if (query.args[0].IsVar() && query.args[1].IsVar() &&
          query.args[0] == query.args[1] && t[0] != t[1]) {
        match = false;
      }
      if (match) answer.tuples.push_back(Tuple(t));
    }
    std::sort(answer.tuples.begin(), answer.tuples.end());
    // No traversal to stream from: the whole (sorted) scan is one chunk.
    if (options.sink != nullptr && !answer.tuples.empty()) {
      options.sink->OnAnswers(answer.tuples.data(), answer.tuples.size(),
                              db_->symbols());
    }
    answer.fetches = fetch_total() - fetches_before;
    answer.stats.fetches = answer.fetches;
    answer.stats.wide_mask_scans =
        Relation::ThreadWideScanCount() - wide_before;
    answer.stats.memo_hits = EvalArtifacts::ThreadMemoHits() - memo_before;
    return answer;
  }

  const Term& a0 = query.args[0];
  const Term& a1 = query.args[1];
  TermPool& pool = views_->pool();

  auto term_const = [&](TermId id) { return pool.AsUnary(id); };

  if (a0.IsConst()) {
    // p(a, Y) or p(a, b).
    EvalOptions opts = options;
    ShapingTermSink shaping(options.sink, &pool, &db_->symbols(),
                            ShapingTermSink::Shape::kForward, a0.symbol);
    if (a1.IsConst()) shaping.FilterTo(a1.symbol);
    if (options.sink != nullptr) opts.term_sink = &shaping;
    auto r = engine_->EvalFrom(pred, pool.Unary(a0.symbol), opts,
                               &answer.stats);
    if (!r.ok()) return r.status();
    for (TermId y : r.value()) {
      SymbolId c = term_const(y);
      if (a1.IsConst() && c != a1.symbol) continue;
      answer.tuples.push_back(Tuple{a0.symbol, c});
    }
  } else if (a1.IsConst()) {
    // p(X, b): evaluate the inverted system from b.
    EvalOptions opts = options;
    ShapingTermSink shaping(options.sink, &pool, &db_->symbols(),
                            ShapingTermSink::Shape::kInverted, a1.symbol);
    if (options.sink != nullptr) opts.term_sink = &shaping;
    auto r = inv_engine_->EvalFrom(plan_->inverse_of.at(pred),
                                   pool.Unary(a1.symbol), opts,
                                   &answer.stats);
    if (!r.ok()) return r.status();
    for (TermId x : r.value()) {
      answer.tuples.push_back(Tuple{term_const(x), a1.symbol});
    }
  } else if (!options.disable_closure_sharing &&
             TryAllPairsClosure(pred, query, options, &answer)) {
    // Handled by the shared Tarjan-condensation closure: no traversal to
    // stream from, so the whole (already sorted) answer set is one chunk.
    if (options.sink != nullptr && !answer.tuples.empty()) {
      options.sink->OnAnswers(answer.tuples.data(), answer.tuples.size(),
                              db_->symbols());
    }
  } else {
    // p(X, Y) / p(X, X): evaluate from every candidate source.
    bool diagonal = (a0 == a1);
    for (SymbolId c : CandidateSources(pred)) {
      EvalStats stats;
      EvalOptions opts = options;
      ShapingTermSink shaping(options.sink, &pool, &db_->symbols(),
                              ShapingTermSink::Shape::kForward, c);
      if (diagonal) shaping.FilterTo(c);
      if (options.sink != nullptr) opts.term_sink = &shaping;
      auto r = engine_->EvalFrom(pred, pool.Unary(c), opts, &stats);
      if (!r.ok()) return r.status();
      answer.stats.nodes += stats.nodes;
      answer.stats.arcs += stats.arcs;
      answer.stats.iterations += stats.iterations;
      answer.stats.expansions += stats.expansions;
      answer.stats.continuations += stats.continuations;
      answer.stats.em_states += stats.em_states;
      answer.stats.hit_iteration_cap |= stats.hit_iteration_cap;
      answer.stats.cancel_checks += stats.cancel_checks;
      for (TermId y : r.value()) {
        SymbolId yc = term_const(y);
        if (diagonal && yc != c) continue;
        answer.tuples.push_back(Tuple{c, yc});
      }
      // A cancelled source unwinds the whole sweep: the remaining sources
      // would only widen the already-partial answer set.
      if (stats.cancelled) {
        answer.stats.cancelled = true;
        break;
      }
    }
  }
  std::sort(answer.tuples.begin(), answer.tuples.end());
  answer.tuples.erase(std::unique(answer.tuples.begin(), answer.tuples.end()),
                      answer.tuples.end());
  answer.fetches = fetch_total() - fetches_before;
  answer.stats.fetches = answer.fetches;
  answer.stats.wide_mask_scans = Relation::ThreadWideScanCount() - wide_before;
  answer.stats.memo_hits = EvalArtifacts::ThreadMemoHits() - memo_before;
  return answer;
}

}  // namespace binchain
