// Engine-facing binary relation abstraction. A view enumerates successors
// (and optionally predecessors) of a graph term. Implementations:
//   - EdbBinaryView: a binary EDB relation (constant-time indexed lookups);
//   - DemandJoinView: a Section-4 view predicate (base-r / in-r / out-r)
//     whose tuples are *computed by demand* by joining EDB relations under
//     the bindings carried by the source term, with per-source memoization
//     so no fact is fetched or joined twice (Section 4: "tuples ... will
//     only be retrieved by demand").
#ifndef BINCHAIN_EVAL_RELATION_VIEW_H_
#define BINCHAIN_EVAL_RELATION_VIEW_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "automata/nfa.h"
#include "datalog/ast.h"
#include "eval/join.h"
#include "storage/database.h"
#include "storage/term_pool.h"
#include "util/function_ref.h"
#include "util/status.h"

namespace binchain {

class EvalArtifacts;
class SharedAdjacency;
class SharedDemandMemo;

/// Visitor parameters are FunctionRef (non-owning, non-allocating): one
/// indirect call per enumeration, no std::function construction per probe.
class BinaryRelationView {
 public:
  virtual ~BinaryRelationView() = default;

  /// Enumerates v with R(u, v).
  virtual void ForEachSucc(TermId u, FunctionRef<void(TermId)> fn) = 0;

  /// Enumerates u with R(u, v). Only if SupportsBackward().
  virtual void ForEachPred(TermId v, FunctionRef<void(TermId)> fn) = 0;

  virtual bool SupportsBackward() const { return true; }

  /// Enumerates all pairs (u, v). Only if SupportsEnumerate(). Used by the
  /// HSU preconstruction baseline and by free-free query source discovery.
  virtual void ForEachPair(FunctionRef<void(TermId, TermId)> fn) = 0;

  virtual bool SupportsEnumerate() const { return true; }
};

/// Wraps a binary EDB relation; terms are unary (single constants).
class EdbBinaryView : public BinaryRelationView {
 public:
  EdbBinaryView(const Relation* rel, TermPool* pool)
      : rel_(rel), pool_(pool) {}

  void ForEachSucc(TermId u, FunctionRef<void(TermId)> fn) override;
  void ForEachPred(TermId v, FunctionRef<void(TermId)> fn) override;
  void ForEachPair(FunctionRef<void(TermId, TermId)> fn) override;

  /// Points the view at another epoch's copy of the relation. Keeps the
  /// view object (and thus every engine-side pointer to it) stable across
  /// snapshot swaps — only the storage behind it moves.
  void Rebind(const Relation* rel) { rel_ = rel; }

  /// Binds the epoch's shared adjacency memo (or nullptr to detach).
  /// While bound, ForEachSucc/ForEachPred serve from the snapshot-owned
  /// memo: identical enumeration, zero per-tuple EDB fetches (counted as
  /// EvalStats::memo_hits instead). Rebound together with Rebind on every
  /// epoch bump so view and memo always describe the same snapshot.
  void BindSharedAdjacency(const SharedAdjacency* adj) { adj_ = adj; }

 private:
  const Relation* rel_;
  TermPool* pool_;
  const SharedAdjacency* adj_ = nullptr;
};

/// A Section-4 view predicate. Tuples are pairs (t(input), t(output)) where
/// `input` is a vector of variables bound by the incoming term and `output`
/// a vector of terms (variables or constants) projected from the matches of
/// `body` (base literals and built-ins of the original rule). Results are
/// memoized per source term.
class DemandJoinView : public BinaryRelationView {
 public:
  DemandJoinView(const Database* db, TermPool* pool,
                 std::vector<Literal> body, std::vector<SymbolId> input_vars,
                 std::vector<Term> output_terms)
      : db_(db),
        pool_(pool),
        body_(std::move(body)),
        input_vars_(std::move(input_vars)),
        output_terms_(std::move(output_terms)) {}

  void ForEachSucc(TermId u, FunctionRef<void(TermId)> fn) override;

  /// Demand views are evaluated with the first argument bound only.
  bool SupportsBackward() const override { return false; }
  void ForEachPred(TermId, FunctionRef<void(TermId)>) override {}
  bool SupportsEnumerate() const override { return false; }
  void ForEachPair(FunctionRef<void(TermId, TermId)>) override {}

  /// Set if a body enumeration ever failed (unsafe built-in); checked by the
  /// evaluator after the run.
  const Status& status() const { return status_; }

  /// Binds an epoch-shared demand memo. The private per-source memo_ stays
  /// (TermIds are pool-local); the shared memo is keyed by input-tuple
  /// *content*, so a source any worker evaluated is joined exactly once per
  /// epoch — the Section-4 "no fact fetched twice" discipline extended
  /// across workers.
  void BindSharedMemo(const SharedDemandMemo* shared) { shared_ = shared; }

 private:
  /// Emits output tuples for one body match. Output variables not bound by
  /// the match range over the active domain of the database — this realizes
  /// the paper's semantics for non-chain programs, where such variables
  /// "can assume any value" (end of Section 4).
  void EmitOutputs(const Binding& binding, std::vector<TermId>& results);
  const std::vector<SymbolId>& ActiveDomain();

  const Database* db_;
  TermPool* pool_;
  std::vector<Literal> body_;
  std::vector<SymbolId> input_vars_;
  std::vector<Term> output_terms_;
  std::unordered_map<TermId, std::vector<TermId>> memo_;
  const SharedDemandMemo* shared_ = nullptr;
  std::vector<SymbolId> domain_;
  bool domain_built_ = false;
  Status status_ = Status::Ok();
};

/// Name -> view registry plus the shared term pool. Owned by the evaluation
/// session (QueryEngine / transformed-program evaluator).
class ViewRegistry {
 public:
  explicit ViewRegistry(SymbolTable* symbols) : symbols_(symbols) {}
  ViewRegistry(const ViewRegistry&) = delete;
  ViewRegistry& operator=(const ViewRegistry&) = delete;

  TermPool& pool() { return pool_; }
  const TermPool& pool() const { return pool_; }
  SymbolTable& symbols() { return *symbols_; }

  void Register(SymbolId pred, std::unique_ptr<BinaryRelationView> view);

  /// Registers an EdbBinaryView for every binary relation in `db`.
  void RegisterDatabase(const Database& db);

  /// Re-points the registry at another database epoch: existing EDB views
  /// are rebound in place (object identity preserved, so engine view caches
  /// stay valid) and relations that first appeared in this epoch get fresh
  /// views. The epoch must extend the symbol-id space the registry was
  /// built over (true for every BeginDelta successor). The registry's
  /// symbol table becomes the epoch's — on a frozen epoch this is
  /// lookup-only use.
  void BindDatabase(const Database& db);

  /// Wires the epoch's shared artifacts into every registered view: EDB
  /// views get the matching adjacency memo, demand views the shared demand
  /// memo. Pass nullptr to detach (views fall back to direct EDB probing).
  /// Call after BindDatabase on every epoch bump, so views and memos always
  /// describe the same snapshot.
  void BindArtifacts(const EvalArtifacts* artifacts);

  /// Epoch rebind in one step. With artifacts, EDB views are rebound from
  /// the artifact set's frozen binary-relation table — no name walk, no
  /// Intern — and the shared memos are wired; without, this is
  /// BindDatabase + detached memos. The epoch must extend the symbol-id
  /// space the registry was built over, and `artifacts` (when given) must
  /// describe exactly `db`.
  void BindSnapshot(const Database& db, const EvalArtifacts* artifacts);

  BinaryRelationView* Find(SymbolId pred) const;

  /// A regular expression compiled to its machine (no derived predicates),
  /// with the view-existence check folded in. Level-based strategies
  /// evaluate the same e0/e1/e2 expressions once per level, so compilation
  /// is memoized per Rex node for the registry's lifetime. Contract: hoist
  /// expression construction (e.g. MatchLinearNormalForm) out of per-query
  /// loops — entries are pinned and never evicted, so feeding freshly
  /// allocated Rex trees every query grows the cache without ever hitting.
  struct CompiledRex {
    Nfa nfa;
    Status status = Status::Ok();
    RexPtr pinned;  // keeps the cache key's node alive (no address reuse)
  };
  const CompiledRex& Compile(const RexPtr& e) const;

  /// Epoch-stamped visited marks reused across set-at-a-time traversals
  /// (ImageUnderRex): bumping the epoch "clears" them in O(1), so each
  /// call costs O(nodes visited), not O(term-pool size). Not reentrant —
  /// one traversal at a time per registry (which is how the level-based
  /// strategies and the cyclic bound use it).
  struct TraversalScratch {
    std::vector<uint32_t> node_stamp;  // indexed term * num_states + state
    std::vector<uint32_t> term_stamp;  // indexed term
    uint32_t epoch = 0;
  };
  TraversalScratch& scratch() const { return scratch_; }

 private:
  /// The one rebind-or-create step both bind paths share: re-point an
  /// existing EDB view at `rel`, leave custom views alone, create and track
  /// a fresh EdbBinaryView otherwise.
  void RebindOrCreateEdbView(SymbolId pred, const Relation* rel);

  SymbolTable* symbols_;
  TermPool pool_;
  std::unordered_map<SymbolId, std::unique_ptr<BinaryRelationView>> views_;
  /// EDB views owned by views_ that BindDatabase may rebind in place.
  std::unordered_map<SymbolId, EdbBinaryView*> edb_views_;
  /// Demand views owned by views_ that BindArtifacts wires shared memos to.
  std::unordered_map<SymbolId, DemandJoinView*> demand_views_;
  mutable std::unordered_map<const Rex*, CompiledRex> rex_cache_;
  mutable CompiledRex compile_error_;  // scratch for uncached failures
  mutable TraversalScratch scratch_;
};

}  // namespace binchain

#endif  // BINCHAIN_EVAL_RELATION_VIEW_H_
