// Graphviz (DOT) rendering of the structures the paper draws as figures:
// automata M(e) / EM(p, i) (Figures 1, 2, 6) and the predicate dependency
// graph of an equation system (the graph of Lemma 1, step 2).
#ifndef BINCHAIN_EVAL_DOT_EXPORT_H_
#define BINCHAIN_EVAL_DOT_EXPORT_H_

#include <string>

#include "automata/nfa.h"
#include "equations/equations.h"

namespace binchain {

/// DOT digraph of an automaton; id-transitions drawn dashed, derived
/// predicates in brackets (as in Figure 1).
std::string NfaToDot(const Nfa& nfa, const SymbolTable& symbols,
                     const std::string& name = "M");

/// DOT digraph of the dependency graph of an equation system: an arc p -> q
/// whenever q occurs in e_p. Recursive predicates are drawn with doubled
/// borders.
std::string EquationDependenciesToDot(const EquationSystem& eqs,
                                      const SymbolTable& symbols,
                                      const std::string& name = "deps");

}  // namespace binchain

#endif  // BINCHAIN_EVAL_DOT_EXPORT_H_
