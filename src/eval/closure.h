// All-pairs reachability over a binary relation view using Tarjan's
// strong-components algorithm, following the paper's remark at the end of
// Section 3: evaluating p(X, Y) source-by-source duplicates work when the
// per-source graphs intersect; condensing the graph first (cf. [19], [21])
// shares the traversal. Used by QueryEngine for all-free transitive-closure
// queries and benchmarked as an ablation against per-source evaluation.
#ifndef BINCHAIN_EVAL_CLOSURE_H_
#define BINCHAIN_EVAL_CLOSURE_H_

#include <vector>

#include "eval/relation_view.h"
#include "util/cancel_token.h"
#include "util/status.h"

namespace binchain {

struct ClosureStats {
  uint64_t nodes = 0;        // distinct terms in the relation
  uint64_t components = 0;   // strongly connected components
  uint64_t pair_count = 0;   // pairs emitted
};

/// Computes the full transitive closure R+ of the relation behind `view`
/// (which must support pair enumeration), emitting each (u, v) with v
/// reachable from u in >= 1 step. Runs Tarjan once, then merges descendant
/// sets over the condensation in reverse topological order. `cancel`
/// (optional, borrowed) is polled between phases and every few hundred
/// steps inside each — the pair-emission phase alone is Theta(answer), up
/// to |V|^2, so an expired deadline must be able to unwind from inside.
/// Returns Status::Cancelled on a tripped token (no partial pairs).
Result<std::vector<std::pair<TermId, TermId>>> TransitiveClosureAllPairs(
    BinaryRelationView* view, ClosureStats* stats,
    const CancelToken* cancel = nullptr);

}  // namespace binchain

#endif  // BINCHAIN_EVAL_CLOSURE_H_
