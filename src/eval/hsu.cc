#include "eval/hsu.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "automata/nfa.h"
#include "util/flat_set.h"

namespace binchain {
namespace {

uint64_t NodeKey(uint32_t state, TermId term) {
  return (static_cast<uint64_t>(state) << 32) | term;
}

}  // namespace

Result<std::vector<TermId>> HsuEvaluate(const EquationSystem& eqs,
                                        ViewRegistry& views, SymbolId pred,
                                        TermId source, HsuStats* stats) {
  HsuStats local;
  HsuStats& st = (stats != nullptr) ? *stats : local;
  st = HsuStats{};

  if (!eqs.Has(pred)) return Status::NotFound("no equation for predicate");
  const RexPtr& rhs = eqs.Rhs(pred);
  std::unordered_set<SymbolId> preds;
  CollectPreds(rhs, preds);
  for (SymbolId q : preds) {
    if (eqs.Has(q)) {
      return Status::Unsupported(
          "HSU preconstruction handles only regular equations "
          "(no derived predicates in the right-hand side)");
    }
    if (views.Find(q) == nullptr) {
      return Status::NotFound("no relation view registered");
    }
    if (!views.Find(q)->SupportsEnumerate()) {
      return Status::Unsupported("HSU requires enumerable relations");
    }
  }

  Nfa nfa = BuildNfa(rhs, [](SymbolId) { return false; });

  // Preconstruct: one arc per tuple per relation-labelled transition.
  std::unordered_map<uint64_t, std::vector<uint64_t>> arcs;
  std::vector<std::pair<uint32_t, uint32_t>> id_arcs;  // state -> state
  for (uint32_t q = 0; q < nfa.NumStates(); ++q) {
    for (const NfaTransition& t : nfa.Out(q)) {
      if (t.label.kind == NfaLabel::Kind::kId) {
        id_arcs.emplace_back(q, t.target);
        continue;
      }
      BinaryRelationView* view = views.Find(t.label.pred);
      view->ForEachPair([&](TermId u, TermId v) {
        if (t.label.inverted) std::swap(u, v);
        arcs[NodeKey(q, u)].push_back(NodeKey(t.target, v));
        ++st.preconstructed_arcs;
      });
    }
  }
  std::unordered_map<uint32_t, std::vector<uint32_t>> id_out;
  for (auto [a, b] : id_arcs) id_out[a].push_back(b);

  // Reachability from (q_s, a).
  FlatSet64 seen;
  std::vector<uint64_t> stack;
  std::vector<TermId> answers;
  std::unordered_set<TermId> answer_set;
  auto visit = [&](uint64_t key) {
    if (!seen.insert(key)) return;
    ++st.visited_nodes;
    uint32_t q = static_cast<uint32_t>(key >> 32);
    TermId u = static_cast<TermId>(key & 0xffffffffu);
    if (q == nfa.final() && answer_set.insert(u).second) answers.push_back(u);
    stack.push_back(key);
  };
  visit(NodeKey(nfa.initial(), source));
  while (!stack.empty()) {
    uint64_t key = stack.back();
    stack.pop_back();
    uint32_t q = static_cast<uint32_t>(key >> 32);
    TermId u = static_cast<TermId>(key & 0xffffffffu);
    auto it = arcs.find(key);
    if (it != arcs.end()) {
      for (uint64_t next : it->second) visit(next);
    }
    auto idit = id_out.find(q);
    if (idit != id_out.end()) {
      for (uint32_t q2 : idit->second) visit(NodeKey(q2, u));
    }
  }
  std::sort(answers.begin(), answers.end());
  return answers;
}

}  // namespace binchain
