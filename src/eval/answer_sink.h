// Streaming answer sinks: the chunk-delivery counterpart of CancelToken.
//
// The engine accumulates answers until fixpoint and returns them in one
// batch — fine for in-process callers, wrong for a network data plane
// where the first answers of a long evaluation are useful minutes before
// the last. These interfaces thread a chunk consumer through the same
// decimated points the cancellation token already visits (every
// Engine::kCancelCheckStride node expansions plus once per fixpoint
// iteration), so streaming rides the existing poll cadence and adds no
// new branches to the traversal hot path.
//
// Two levels, mirroring the two result vocabularies:
//
//  * AnswerTermSink — the engine's level. Engine::EvalFrom speaks TermId;
//    it flushes every newly derived answer term exactly once, in
//    derivation order (before the final sort — a streamed prefix is
//    ordered by discovery, the returned vector stays sorted).
//  * AnswerSink — the caller's level. QueryEngine::Query speaks full
//    binding-pattern tuples; it installs a private AnswerTermSink adapter
//    per query that shapes TermIds into tuples with the same filters as
//    the blocking result loops, then forwards them here. Paths that never
//    enter the traversal (base-predicate scans, the shared Tarjan
//    closure) deliver their whole answer set as one chunk.
//
// Both are borrowed for the duration of one evaluation, like
// EvalOptions::cancel: the caller owns the sink and must keep it alive
// until the evaluating call returns. Implementations are invoked on the
// evaluating thread — a service worker, not the submitting thread — and
// must be safe against whatever the owner does concurrently (the data
// plane's sink takes a mutex per chunk; per-chunk work should stay small
// because it runs inside the traversal).
//
// Exactly-once: every answer appears in exactly one chunk; chunks are
// never empty. A cancelled/deadlined evaluation has delivered a valid
// prefix of the answer set — the same prefix the partial response
// carries.
#ifndef BINCHAIN_EVAL_ANSWER_SINK_H_
#define BINCHAIN_EVAL_ANSWER_SINK_H_

#include <cstddef>

#include "storage/term_pool.h"
#include "storage/tuple.h"

namespace binchain {

/// Engine-level chunk consumer: newly derived answer terms of one
/// EvalFrom, flushed at the traversal's cancellation points.
class AnswerTermSink {
 public:
  virtual ~AnswerTermSink() = default;
  /// `count` > 0 terms, each reported exactly once per evaluation, in
  /// derivation order. Runs on the evaluating thread, inside the
  /// traversal loop — keep it cheap.
  virtual void OnTerms(const TermId* terms, size_t count) = 0;
};

/// Query-level chunk consumer: full result tuples in the query's binding
/// pattern, shaped and filtered exactly like QueryAnswer::tuples.
/// `symbols` resolves the tuples' SymbolIds to spellings (the epoch's
/// table — valid for the duration of the call only).
class AnswerSink {
 public:
  virtual ~AnswerSink() = default;
  virtual void OnAnswers(const Tuple* tuples, size_t count,
                         const SymbolTable& symbols) = 0;
};

}  // namespace binchain

#endif  // BINCHAIN_EVAL_ANSWER_SINK_H_
