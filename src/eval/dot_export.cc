#include "eval/dot_export.h"

#include <unordered_set>

namespace binchain {

std::string NfaToDot(const Nfa& nfa, const SymbolTable& symbols,
                     const std::string& name) {
  std::string out = "digraph " + name + " {\n  rankdir=LR;\n";
  out += "  q" + std::to_string(nfa.initial()) + " [shape=circle, style=bold];\n";
  out += "  q" + std::to_string(nfa.final()) + " [shape=doublecircle];\n";
  for (uint32_t s = 0; s < nfa.NumStates(); ++s) {
    for (const NfaTransition& t : nfa.Out(s)) {
      out += "  q" + std::to_string(s) + " -> q" + std::to_string(t.target);
      switch (t.label.kind) {
        case NfaLabel::Kind::kId:
          out += " [label=\"id\", style=dashed]";
          break;
        case NfaLabel::Kind::kRel:
          out += " [label=\"" + symbols.Name(t.label.pred) +
                 (t.label.inverted ? "^-1" : "") + "\"]";
          break;
        case NfaLabel::Kind::kDerived:
          out += " [label=\"[" + symbols.Name(t.label.pred) +
                 "]\", color=red]";
          break;
      }
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string EquationDependenciesToDot(const EquationSystem& eqs,
                                      const SymbolTable& symbols,
                                      const std::string& name) {
  EquationSystem::Recursion rec = eqs.AnalyzeRecursion();
  std::string out = "digraph " + name + " {\n";
  for (SymbolId p : eqs.preds()) {
    out += "  \"" + symbols.Name(p) + "\"";
    if (rec.recursive.count(p)) out += " [peripheries=2]";
    out += ";\n";
  }
  for (SymbolId p : eqs.preds()) {
    std::unordered_set<SymbolId> mentioned;
    CollectPreds(eqs.Rhs(p), mentioned);
    for (SymbolId q : mentioned) {
      if (!eqs.Has(q)) continue;
      out += "  \"" + symbols.Name(p) + "\" -> \"" + symbols.Name(q) +
             "\";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace binchain
