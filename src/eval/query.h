// High-level facade: load a binary-chain Datalog program, transform it to
// equations (Lemma 1), and answer queries with the graph-traversal engine.
// Handles all binding patterns of Section 3:
//   p(a, Y)  - direct evaluation;
//   p(X, b)  - evaluation of the inverted equation system from b;
//   p(a, b)  - p(a, Y) then membership test;
//   p(X, Y)  - evaluation from every candidate source constant;
//   p(X, X)  - p(X, Y) filtered to x = y.
#ifndef BINCHAIN_EVAL_QUERY_H_
#define BINCHAIN_EVAL_QUERY_H_

#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "equations/lemma1.h"
#include "eval/engine.h"
#include "storage/database.h"

namespace binchain {

class EvalArtifacts;

struct QueryAnswer {
  std::vector<Tuple> tuples;  // sorted, deduplicated, full query arity
  EvalStats stats;
  /// EDB tuple retrievals during this query (same value as stats.fetches):
  /// the per-relation counters plus the calling thread's frozen-mode
  /// counter, so it is exact whether or not the database is frozen.
  uint64_t fetches = 0;
};

/// Inserts ground facts into their (created-on-demand) relations. Shared by
/// QueryEngine::LoadProgram, the query service, and the CLI drivers.
void LoadFactsInto(Database& db, const std::vector<Literal>& facts);

/// Everything derived from the *program* alone — the Lemma 1 equation
/// system, the inverted system, and (optionally) the compiled machines
/// M(e_p) of both. Immutable once built, so one instance is shared by every
/// worker of a query service: per-worker state shrinks to the view
/// registry, term pool, and engine scratch. (The ROADMAP's "share one
/// compiled machine/equation set across workers".)
struct PreparedProgram {
  Program program;  // rules only; facts and queries stripped
  Lemma1Result lemma1;
  EquationSystem combined;  // forward + inverted equations
  std::unordered_map<SymbolId, SymbolId> inverse_of;
  std::unordered_map<SymbolId, Nfa> forward_machines;  // empty => lazy
  std::unordered_map<SymbolId, Nfa> inverse_machines;  // empty => lazy
};

/// Loads `program`'s facts into `db`, transforms the rules (Lemma 1 plus
/// the inverted system), and — with `compile_machines` — compiles M(e_p)
/// for every predicate of both systems. Interns symbols, so call while the
/// database still accepts them (pre-Freeze). Takes the program by value:
/// std::move it in to avoid copying a fact-heavy program.
Result<std::shared_ptr<const PreparedProgram>> PrepareProgram(
    Database* db, Program program, bool compile_machines);

class QueryEngine {
 public:
  /// `db` must outlive the engine; program facts are loaded into it.
  explicit QueryEngine(Database* db);

  /// Worker constructor: adopts a shared immutable plan instead of
  /// transforming and compiling privately. Only the per-worker view
  /// registry, term pool, and scratch are built — construction does no
  /// program work at all.
  QueryEngine(Database* db, std::shared_ptr<const PreparedProgram> plan);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;
  ~QueryEngine();

  /// Parses `text`, storing rules and loading facts into the database.
  /// May be called once per engine.
  Status LoadProgramText(std::string_view text);
  Status LoadProgram(const Program& program);

  /// Eagerly completes every lazy preparation step that would otherwise run
  /// on first use: the compiled machines M(e_p) of both equation systems
  /// (no-ops for machines already in the shared plan). Called by the query
  /// service before Database::Freeze() so no symbol interning or
  /// shared-cache fill happens on worker threads.
  Status PrepareAll();

  /// Re-points the engine at another database epoch (a BeginDelta successor
  /// of the database it was built over, or any snapshot extending the same
  /// symbol-id space). EDB views rebind in place; compiled machines, the
  /// term pool, and the rex cache survive untouched — nothing is recomputed
  /// per query after an epoch bump. `db` must be frozen (the engine only
  /// reads it). If the epoch carries an EvalArtifacts set
  /// (Database::artifact), the engine adopts it: EDB probes serve from the
  /// epoch-shared adjacency memos and all-free queries from the shared
  /// closure / candidate-source caches, so only worker-private scratch
  /// remains per engine.
  Status BindSnapshot(const Database& db);

  /// The epoch-shared artifacts currently bound (nullptr outside a
  /// snapshot-serving context).
  const std::shared_ptr<const EvalArtifacts>& artifacts() const {
    return artifacts_;
  }

  /// The Lemma 1 equation system (available after loading).
  const EquationSystem& equations() const;
  const Program& program() const { return plan_->program; }
  ViewRegistry& views() { return *views_; }

  Result<QueryAnswer> Query(std::string_view literal_text,
                            const EvalOptions& options = {});
  Result<QueryAnswer> Query(const Literal& query,
                            const EvalOptions& options = {});

 private:
  void InitFromPlan();
  /// Candidate constants for the all-free sweep: the epoch-shared cache
  /// when artifacts are bound (computed once per epoch, by whichever worker
  /// gets there first), a private walk otherwise. The reference is stable
  /// for the duration of one query (shared-cell storage, or the engine's
  /// own scratch below).
  const std::vector<SymbolId>& CandidateSources(SymbolId pred);
  std::vector<SymbolId> ComputeCandidateSources(SymbolId pred);

  /// All-free queries over pure-closure equations (e*.e or e.e*, e a base
  /// predicate) are answered with one shared Tarjan condensation pass;
  /// returns false when the equation has another shape. A cancellation
  /// mid-pass still returns true — handled, with stats.cancelled set and an
  /// empty partial answer — and never publishes to the epoch-shared cache;
  /// falling back to the per-source sweep would only burn more of an
  /// already-expired budget.
  bool TryAllPairsClosure(SymbolId pred, const Literal& query,
                          const EvalOptions& options, QueryAnswer* answer);

  Database* db_;
  std::shared_ptr<const PreparedProgram> plan_;
  std::shared_ptr<const EvalArtifacts> artifacts_;  // epoch-shared, or null
  std::unique_ptr<ViewRegistry> views_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Engine> inv_engine_;
  /// Backing store for CandidateSources when no shared cache serves it.
  std::vector<SymbolId> source_scratch_;
};

}  // namespace binchain

#endif  // BINCHAIN_EVAL_QUERY_H_
