// High-level facade: load a binary-chain Datalog program, transform it to
// equations (Lemma 1), and answer queries with the graph-traversal engine.
// Handles all binding patterns of Section 3:
//   p(a, Y)  - direct evaluation;
//   p(X, b)  - evaluation of the inverted equation system from b;
//   p(a, b)  - p(a, Y) then membership test;
//   p(X, Y)  - evaluation from every candidate source constant;
//   p(X, X)  - p(X, Y) filtered to x = y.
#ifndef BINCHAIN_EVAL_QUERY_H_
#define BINCHAIN_EVAL_QUERY_H_

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "datalog/ast.h"
#include "equations/lemma1.h"
#include "eval/engine.h"
#include "storage/database.h"

namespace binchain {

struct QueryAnswer {
  std::vector<Tuple> tuples;  // sorted, deduplicated, full query arity
  EvalStats stats;
  /// EDB tuple retrievals during this query (same value as stats.fetches):
  /// the per-relation counters plus the calling thread's frozen-mode
  /// counter, so it is exact whether or not the database is frozen.
  uint64_t fetches = 0;
};

/// Inserts ground facts into their (created-on-demand) relations. Shared by
/// QueryEngine::LoadProgram, the query service, and the CLI drivers.
void LoadFactsInto(Database& db, const std::vector<Literal>& facts);

class QueryEngine {
 public:
  /// `db` must outlive the engine; program facts are loaded into it.
  explicit QueryEngine(Database* db);
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;
  ~QueryEngine();

  /// Parses `text`, storing rules and loading facts into the database.
  /// May be called once per engine.
  Status LoadProgramText(std::string_view text);
  Status LoadProgram(const Program& program);

  /// Eagerly completes every lazy preparation step that would otherwise run
  /// on first use: the inverted equation system and the compiled machines
  /// M(e_p) of both systems. Called by the query service before
  /// Database::Freeze() so no symbol interning or shared-cache fill happens
  /// on worker threads.
  Status PrepareAll();

  /// The Lemma 1 equation system (available after loading).
  const EquationSystem& equations() const;
  const Program& program() const { return program_; }
  ViewRegistry& views() { return *views_; }

  Result<QueryAnswer> Query(std::string_view literal_text,
                            const EvalOptions& options = {});
  Result<QueryAnswer> Query(const Literal& query,
                            const EvalOptions& options = {});

 private:
  Status Prepare();
  Status PrepareInverse();
  std::vector<SymbolId> CandidateSources(SymbolId pred);

  /// All-free queries over pure-closure equations (e*.e or e.e*, e a base
  /// predicate) are answered with one shared Tarjan condensation pass;
  /// returns false when the equation has another shape.
  bool TryAllPairsClosure(SymbolId pred, const Literal& query,
                          QueryAnswer* answer);

  Database* db_;
  Program program_;
  std::optional<Lemma1Result> lemma1_;
  std::unique_ptr<ViewRegistry> views_;
  std::unique_ptr<Engine> engine_;
  std::optional<EquationSystem> combined_;  // forward + inverted equations
  std::unique_ptr<Engine> inv_engine_;
  std::unordered_map<SymbolId, SymbolId> inverse_of_;
};

}  // namespace binchain

#endif  // BINCHAIN_EVAL_QUERY_H_
