#include "eval/relation_view.h"

#include <algorithm>
#include <unordered_set>

#include "eval/eval_artifacts.h"
#include "eval/join.h"
#include "util/check.h"

namespace binchain {

void EdbBinaryView::ForEachSucc(TermId u, FunctionRef<void(TermId)> fn) {
  const Tuple& t = pool_->Get(u);
  if (t.size() != 1) return;  // non-constant term: no successors in an EDB
  if (adj_ != nullptr) {
    // Snapshot-owned memo: same successors in the same order, one memo hit
    // in place of the per-tuple EDB fetches.
    adj_->EnsureBuilt();
    adj_->ForEachSucc(t[0], [&](SymbolId c) { fn(pool_->Unary(c)); });
    return;
  }
  const SymbolId key[2] = {t[0], 0};
  rel_->ForEachMatch(0b01u, TupleRef(key, 2),
                     [&](TupleRef m) { fn(pool_->Unary(m[1])); });
}

void EdbBinaryView::ForEachPred(TermId v, FunctionRef<void(TermId)> fn) {
  const Tuple& t = pool_->Get(v);
  if (t.size() != 1) return;
  if (adj_ != nullptr) {
    adj_->EnsureBuilt();
    adj_->ForEachPred(t[0], [&](SymbolId c) { fn(pool_->Unary(c)); });
    return;
  }
  const SymbolId key[2] = {0, t[0]};
  rel_->ForEachMatch(0b10u, TupleRef(key, 2),
                     [&](TupleRef m) { fn(pool_->Unary(m[0])); });
}

void EdbBinaryView::ForEachPair(FunctionRef<void(TermId, TermId)> fn) {
  for (TupleRef t : rel_->tuples()) {
    fn(pool_->Unary(t[0]), pool_->Unary(t[1]));
  }
}

const std::vector<SymbolId>& DemandJoinView::ActiveDomain() {
  if (!domain_built_) {
    domain_built_ = true;
    std::unordered_set<SymbolId> seen;
    for (const std::string& name : db_->relation_names()) {
      const Relation* rel = db_->Find(name);
      for (TupleRef t : rel->tuples()) {
        for (SymbolId c : t) {
          if (seen.insert(c).second) domain_.push_back(c);
        }
      }
    }
  }
  return domain_;
}

void DemandJoinView::EmitOutputs(const Binding& binding,
                                 std::vector<TermId>& results) {
  // Distinct output variables left unbound by the match.
  std::vector<SymbolId> unbound;
  for (const Term& t : output_terms_) {
    if (t.IsVar() && !binding.count(t.symbol)) {
      if (std::find(unbound.begin(), unbound.end(), t.symbol) ==
          unbound.end()) {
        unbound.push_back(t.symbol);
      }
    }
  }
  Binding extended = binding;
  std::function<void(size_t)> emit = [&](size_t i) {
    if (i == unbound.size()) {
      Tuple out;
      out.reserve(output_terms_.size());
      for (const Term& t : output_terms_) {
        out.push_back(t.IsConst() ? t.symbol : extended.at(t.symbol));
      }
      results.push_back(pool_->InternTuple(out));
      return;
    }
    for (SymbolId c : ActiveDomain()) {
      extended[unbound[i]] = c;
      emit(i + 1);
    }
    extended.erase(unbound[i]);
  };
  emit(0);
}

void DemandJoinView::ForEachSucc(TermId u, FunctionRef<void(TermId)> fn) {
  auto it = memo_.find(u);
  if (it != memo_.end()) {
    for (TermId v : it->second) fn(v);
    return;
  }
  // By value: the computation below interns output terms, which may grow
  // the pool and invalidate references into it (Tuple's small-buffer copy
  // is cheap).
  Tuple in = pool_->Get(u);
  if (shared_ != nullptr) {
    // A worker anywhere already joined this source this epoch: intern its
    // outputs into our pool and memoize locally — no body enumeration, no
    // EDB fetches.
    if (const std::vector<Tuple>* hit = shared_->Find(in)) {
      std::vector<TermId> interned;
      interned.reserve(hit->size());
      for (const Tuple& out : *hit) interned.push_back(pool_->InternTuple(out));
      auto [mit, _] = memo_.emplace(u, std::move(interned));
      for (TermId v : mit->second) fn(v);
      return;
    }
  }
  std::vector<TermId> results;
  if (in.size() == input_vars_.size()) {
    Binding binding;
    bool consistent = true;
    for (size_t i = 0; i < input_vars_.size(); ++i) {
      auto [bit, inserted] = binding.emplace(input_vars_[i], in[i]);
      if (!inserted && bit->second != in[i]) {
        consistent = false;  // repeated input variable, conflicting values
        break;
      }
    }
    if (consistent) {
      RelationResolver resolve = [this](SymbolId pred) {
        return db_->FindById(pred);
      };
      Status s = EnumerateMatches(
          resolve, db_->symbols(), body_, binding,
          [&](const Binding& b) { EmitOutputs(b, results); });
      if (!s.ok() && status_.ok()) status_ = s;
      // Deduplicate (projections can repeat).
      std::sort(results.begin(), results.end());
      results.erase(std::unique(results.begin(), results.end()),
                    results.end());
    }
  }
  if (shared_ != nullptr && status_.ok()) {
    // Publish by content so every worker's pool can replay it. Only clean
    // computations are shared — a failed body enumeration must not poison
    // other workers with a partial result.
    std::vector<Tuple> outs;
    outs.reserve(results.size());
    for (TermId v : results) outs.push_back(pool_->Get(v));
    shared_->Publish(in, std::move(outs));
  }
  auto [mit, _] = memo_.emplace(u, std::move(results));
  for (TermId v : mit->second) fn(v);
}

void ViewRegistry::Register(SymbolId pred,
                            std::unique_ptr<BinaryRelationView> view) {
  edb_views_.erase(pred);  // a custom view shadows any rebindable EDB view
  demand_views_.erase(pred);
  if (auto* demand = dynamic_cast<DemandJoinView*>(view.get())) {
    demand_views_[pred] = demand;
  }
  views_[pred] = std::move(view);
}

void ViewRegistry::RegisterDatabase(const Database& db) { BindDatabase(db); }

void ViewRegistry::RebindOrCreateEdbView(SymbolId pred, const Relation* rel) {
  auto it = edb_views_.find(pred);
  if (it != edb_views_.end()) {
    it->second->Rebind(rel);
    return;
  }
  if (views_.count(pred) > 0) return;  // custom view wins; leave it
  auto view = std::make_unique<EdbBinaryView>(rel, &pool_);
  EdbBinaryView* raw = view.get();
  Register(pred, std::move(view));
  edb_views_[pred] = raw;
}

void ViewRegistry::BindDatabase(const Database& db) {
  // Frozen epochs are never written through the registry: Intern below only
  // resolves spellings the epoch already holds (relation names are interned
  // when the relation is created).
  symbols_ = const_cast<SymbolTable*>(&db.symbols());
  for (const std::string& name : db.relation_names()) {
    const Relation* rel = db.Find(name);
    if (rel == nullptr || rel->arity() != 2) continue;
    RebindOrCreateEdbView(symbols_->Intern(name), rel);
  }
}

void ViewRegistry::BindArtifacts(const EvalArtifacts* artifacts) {
  for (auto& [pred, view] : edb_views_) {
    view->BindSharedAdjacency(
        artifacts == nullptr ? nullptr : artifacts->Adjacency(pred));
  }
  for (auto& [pred, view] : demand_views_) {
    view->BindSharedMemo(
        artifacts == nullptr ? nullptr : &artifacts->DemandMemo(pred));
  }
}

void ViewRegistry::BindSnapshot(const Database& db,
                                const EvalArtifacts* artifacts) {
  if (artifacts == nullptr) {
    BindDatabase(db);
    BindArtifacts(nullptr);
    return;
  }
  // The artifact set already resolved every binary relation of the epoch
  // to (pred id, relation); rebind straight from that table — no name
  // walk, no Intern.
  symbols_ = const_cast<SymbolTable*>(&db.symbols());
  for (auto [pred, rel] : artifacts->binary_relations()) {
    RebindOrCreateEdbView(pred, rel);
  }
  BindArtifacts(artifacts);
}

BinaryRelationView* ViewRegistry::Find(SymbolId pred) const {
  auto it = views_.find(pred);
  return it == views_.end() ? nullptr : it->second.get();
}

const ViewRegistry::CompiledRex& ViewRegistry::Compile(
    const RexPtr& e) const {
  auto it = rex_cache_.find(e.get());
  if (it != rex_cache_.end()) return it->second;
  CompiledRex compiled;
  std::unordered_set<SymbolId> preds;
  CollectPreds(e, preds);
  for (SymbolId p : preds) {
    if (Find(p) == nullptr) {
      compiled.status =
          Status::NotFound("no relation view registered for predicate");
      break;
    }
  }
  if (!compiled.status.ok()) {
    // Failures are not memoized: registering the missing view later must
    // let the same expression compile.
    compile_error_ = std::move(compiled);
    return compile_error_;
  }
  compiled.nfa = BuildNfa(e, [](SymbolId) { return false; });
  compiled.pinned = e;
  auto [cit, _] = rex_cache_.emplace(e.get(), std::move(compiled));
  return cit->second;
}

}  // namespace binchain
