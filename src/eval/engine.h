// The paper's evaluation algorithm (Figures 4 and 5).
//
// Given an equation system p = e_p (Lemma 1) and a query p(a, Y), the engine
// traverses the interpretation graph G(p, a, i): nodes are pairs
// (automaton state, term), constructed by demand. Iteration i is controlled
// by the automaton EM(p, i); between iterations every derived-predicate
// transition that gathered continuation points is replaced by a fresh copy
// of the corresponding machine M(e_r). The run stops when an iteration adds
// no continuation points (C = 0), when the iteration cap is reached, or —
// for cyclic data — when the |D1|*|D2| bound of Marchetti-Spaccamela et al.
// is exhausted.
//
// Only the *nodes* of G are stored, never its arcs (Section 3: "the arcs of
// the graph need not be stored at all").
#ifndef BINCHAIN_EVAL_ENGINE_H_
#define BINCHAIN_EVAL_ENGINE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "equations/equations.h"
#include "eval/relation_view.h"
#include "util/cancel_token.h"
#include "util/dense_bits.h"
#include "util/flat_set.h"
#include "util/status.h"

namespace binchain {

class AnswerTermSink;  // eval/answer_sink.h (engine-level chunk consumer)
class AnswerSink;      // eval/answer_sink.h (tuple-level, QueryEngine)

struct EvalStats {
  uint64_t nodes = 0;        // |G|: (state, term) pairs created
  uint64_t arcs = 0;         // arc traversals (edge enumerations)
  uint64_t iterations = 0;   // main-loop iterations performed
  uint64_t expansions = 0;   // machine copies spliced into EM
  uint64_t continuations = 0;  // continuation points gathered overall
  uint64_t em_states = 0;    // final size of EM(p, h)
  uint64_t fetches = 0;      // EDB tuple retrievals during this query
  /// Read-only fallback scans of frozen wide relations (arity >
  /// Relation::kEagerFreezeArity) whose probed mask was never indexed
  /// before the freeze. Nonzero means a hot mask is missing its index —
  /// visible here so the silent O(n)-per-probe path can't regress unseen.
  uint64_t wide_mask_scans = 0;
  /// Probes served from epoch-shared memos (snapshot-owned adjacency /
  /// closure / demand-join artifacts) instead of EDB retrievals. Each hit
  /// stands for the fetches the shared artifact saved; `fetches` stays the
  /// true EDB retrieval count.
  uint64_t memo_hits = 0;
  /// Cancellation polls performed (one per kCancelCheckStride node
  /// expansions plus one per fixpoint iteration; zero when no token rides
  /// the query). The decimation keeps the steady_clock reads off the hot
  /// path — bench_storage budgets <2% overhead for the polling.
  uint64_t cancel_checks = 0;
  bool hit_iteration_cap = false;
  /// The traversal was unwound early by its CancelToken (deadline passed
  /// mid-flight, or the future was cancelled/dropped). The returned answers
  /// are a valid *partial* result: every tuple reported is a true answer,
  /// but the set may be incomplete.
  bool cancelled = false;

  /// Cumulative answer-set size after each iteration (Lemma 2: the partial
  /// answer after iteration i equals the answer of p defined by p = p_i).
  /// On Figure 8's cyclic data the trace shows the paper's "periodically m
  /// successive iterations during which nothing new is added".
  std::vector<uint64_t> answers_per_iteration;
};

struct EvalOptions {
  /// Hard cap on main-loop iterations; 0 = none (terminate on C = 0 only).
  size_t max_iterations = 0;

  /// If set, compute the cyclic termination bound |D1| * |D2| for equations
  /// of the form p = e0 U e1.p.e2 and stop after that many iterations even
  /// if C stays nonempty. Required for cyclic databases (Figure 8).
  bool use_cyclic_bound = false;

  /// All-free queries p(X, Y) over pure-closure equations (e*.e or e.e*)
  /// normally share traversal work through one Tarjan condensation pass
  /// (Section 3 end, citing [21]). Set to force per-source evaluation
  /// instead (the ablation).
  bool disable_closure_sharing = false;

  /// Cooperative cancellation: when set, the traversal polls the token at
  /// decimated cancellation points (every Engine::kCancelCheckStride node
  /// expansions, and once per fixpoint iteration) and unwinds with the
  /// partial answer set gathered so far, marking EvalStats::cancelled.
  /// Borrowed — must outlive the evaluation call. nullptr disables polling
  /// entirely (the only residual cost is one pointer test per expansion).
  const CancelToken* cancel = nullptr;

  /// Streaming: newly derived answer tuples are delivered in chunks while
  /// the evaluation runs, shaped per the query's binding pattern. Consumed
  /// by QueryEngine::Query (which installs the term-level adapter below);
  /// Engine::EvalFrom itself never reads this field. Borrowed — must
  /// outlive the evaluating call. See eval/answer_sink.h.
  AnswerSink* sink = nullptr;

  /// Engine-level streaming: EvalFrom flushes newly derived answer terms
  /// here at its cancellation points (every kCancelCheckStride node
  /// expansions, once per fixpoint iteration, and once before the final
  /// sort), exactly once per term, in derivation order. Set by
  /// QueryEngine's shaping adapters; direct EvalFrom callers may install
  /// their own. Borrowed — must outlive the evaluating call.
  AnswerTermSink* term_sink = nullptr;
};

class Engine {
 public:
  /// Node expansions between two cancellation polls. Tuned so the poll —
  /// a branch per expansion plus a clock read per stride — stays under the
  /// 2% bench_storage budget while keeping worst-case cancellation latency
  /// low: one expansion can enumerate a whole adjacency list (thousands of
  /// arcs on dense workloads), so a stride of 512 bounds the latency to a
  /// few milliseconds even there, and to microseconds on sparse data.
  static constexpr size_t kCancelCheckStride = 512;

  /// `eqs` and `views` must outlive the engine. `shared_machines`, if
  /// given, is an immutable pre-compiled machine set (pred -> M(e_p)) that
  /// may be shared by any number of engines: Machine() serves from it
  /// without compiling or caching locally, so service workers skip the
  /// per-worker NFA compilation entirely. Predicates absent from the shared
  /// set still compile lazily into this engine's private cache.
  Engine(const EquationSystem* eqs, ViewRegistry* views,
         const std::unordered_map<SymbolId, Nfa>* shared_machines = nullptr);

  /// Answers p(a, Y): the set of terms y with (a, y) in the relation p.
  /// Reusable: each call resets `stats` and the engine's internal scratch
  /// state (node sets, traversal stack, continuation buffers), so one
  /// engine serves any number of queries back to back with warm capacity
  /// and warm machine caches. Not reentrant — one EvalFrom at a time per
  /// engine (concurrent callers use one engine per thread).
  Result<std::vector<TermId>> EvalFrom(SymbolId pred, TermId source,
                                       const EvalOptions& options,
                                       EvalStats* stats);

  /// The compiled machine M(e_p) (from the shared set, or built on first
  /// use). Exposed for the figure-dump example and tests.
  Result<const Nfa*> Machine(SymbolId pred);

  /// Moves the privately compiled machines out (e.g. into a shared set
  /// other engines are constructed over). The engine keeps working — it
  /// simply recompiles on demand.
  std::unordered_map<SymbolId, Nfa> TakeMachines() {
    return std::move(machines_);
  }

 private:
  Result<size_t> CyclicIterationBound(SymbolId pred, TermId source,
                                      const CancelToken* cancel);

  const EquationSystem* eqs_;
  ViewRegistry* views_;
  const std::unordered_map<SymbolId, Nfa>* shared_machines_;
  std::unordered_map<SymbolId, Nfa> machines_;
  // Linear normal forms matched for the cyclic bound, memoized per
  // predicate so repeated cyclic-bound queries reuse the same Rex nodes
  // (and thus hit the registry's compiled-machine cache).
  std::unordered_map<SymbolId, LinearNormalForm> normal_forms_;

  // Per-query scratch, cleared (capacity kept) at the top of EvalFrom so a
  // long-lived engine answers query streams without reallocating its node
  // sets from scratch each time.
  FlatSet64 g_;          // the node set of G(p, a, i)
  DenseBits answer_set_;
  FlatSet64 c_set_;
  std::unordered_map<uint32_t, std::vector<TermId>> c_by_state_;
  std::vector<std::pair<uint32_t, TermId>> stack_;
  std::vector<std::pair<uint32_t, TermId>> seeds_;
  // View pointers per transition predicate; registry entries are stable for
  // the engine's lifetime, so this cache persists across queries.
  std::vector<BinaryRelationView*> view_cache_;
};

}  // namespace binchain

#endif  // BINCHAIN_EVAL_ENGINE_H_
