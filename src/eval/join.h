// Conjunctive matching: enumerate all variable bindings satisfying a list of
// literals against resolvable relations, honouring built-in comparisons.
// This single matcher powers rule firing in the bottom-up baselines (naive /
// seminaive / magic) and the Section-4 demand join views.
#ifndef BINCHAIN_EVAL_JOIN_H_
#define BINCHAIN_EVAL_JOIN_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "datalog/ast.h"
#include "eval/binding.h"
#include "storage/relation.h"
#include "util/function_ref.h"
#include "util/status.h"

namespace binchain {

/// Maps a (non-built-in) predicate symbol to the relation holding its
/// current tuples, or nullptr if the relation is empty/unknown.
using RelationResolver = std::function<const Relation*(SymbolId)>;

/// Evaluates a ground built-in comparison. Integer-spelled constants compare
/// numerically; otherwise lexicographically by spelling.
bool EvalBuiltin(Builtin op, SymbolId lhs, SymbolId rhs,
                 const SymbolTable& symbols);

/// Enumerates every extension of `binding` satisfying all of `body`.
/// Literal selection is greedy most-bound-first; built-ins run as soon as
/// ground. Fails (kInvalidArgument) if a built-in can never become ground
/// (unsafe rule). `fn` is invoked with the complete binding.
/// Built-in resolution (a string lookup) happens once per body literal at
/// entry, not on every recursive call.
Status EnumerateMatches(const RelationResolver& resolve,
                        const SymbolTable& symbols,
                        const std::vector<Literal>& body, Binding& binding,
                        FunctionRef<void(const Binding&)> fn);

/// Instantiates `lit`'s arguments under `binding` (all variables must be
/// bound).
Tuple InstantiateHead(const Literal& lit, const Binding& binding);

}  // namespace binchain

#endif  // BINCHAIN_EVAL_JOIN_H_
