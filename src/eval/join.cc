#include "eval/join.h"

#include <algorithm>
#include <optional>

#include "util/check.h"

namespace binchain {

bool EvalBuiltin(Builtin op, SymbolId lhs, SymbolId rhs,
                 const SymbolTable& symbols) {
  auto li = symbols.IntValue(lhs);
  auto ri = symbols.IntValue(rhs);
  int cmp;
  if (li.has_value() && ri.has_value()) {
    cmp = (*li < *ri) ? -1 : (*li > *ri ? 1 : 0);
  } else {
    cmp = symbols.Name(lhs).compare(symbols.Name(rhs));
    cmp = (cmp < 0) ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case Builtin::kLt:
      return cmp < 0;
    case Builtin::kLe:
      return cmp <= 0;
    case Builtin::kGt:
      return cmp > 0;
    case Builtin::kGe:
      return cmp >= 0;
    case Builtin::kEq:
      return cmp == 0;
    case Builtin::kNe:
      return cmp != 0;
  }
  return false;
}

namespace {

struct Matcher {
  const RelationResolver& resolve;
  const SymbolTable& symbols;
  const std::vector<Literal>& body;
  FunctionRef<void(const Binding&)> fn;
  std::vector<bool> done;
  // Built-in op per body literal, resolved once at entry (the name lookup
  // is a string hash; the inner loop must not repeat it).
  std::vector<std::optional<Builtin>> builtin;
  Binding& binding;
  Status status = Status::Ok();

  Matcher(const RelationResolver& resolve_in, const SymbolTable& symbols_in,
          const std::vector<Literal>& body_in,
          FunctionRef<void(const Binding&)> fn_in, Binding& binding_in)
      : resolve(resolve_in),
        symbols(symbols_in),
        body(body_in),
        fn(fn_in),
        done(body_in.size(), false),
        builtin(body_in.size()),
        binding(binding_in) {
    for (size_t i = 0; i < body.size(); ++i) {
      builtin[i] = BuiltinFromName(symbols.Name(body[i].predicate));
    }
  }

  bool IsGround(const Literal& lit) const {
    for (const Term& t : lit.args) {
      if (t.IsVar() && !binding.count(t.symbol)) return false;
    }
    return true;
  }

  SymbolId ValueOf(const Term& t) const {
    return t.IsConst() ? t.symbol : binding.at(t.symbol);
  }

  size_t BoundArgCount(const Literal& lit) const {
    size_t n = 0;
    for (const Term& t : lit.args) {
      if (t.IsConst() || binding.count(t.symbol)) ++n;
    }
    return n;
  }

  void Run(size_t remaining) {
    if (!status.ok()) return;
    if (remaining == 0) {
      fn(binding);
      return;
    }
    // Fire any ground built-in first (cheap filter).
    for (size_t i = 0; i < body.size(); ++i) {
      if (done[i]) continue;
      if (!builtin[i].has_value() || !IsGround(body[i])) continue;
      if (!EvalBuiltin(*builtin[i], ValueOf(body[i].args[0]),
                       ValueOf(body[i].args[1]), symbols)) {
        return;  // comparison failed: prune this branch
      }
      done[i] = true;
      Run(remaining - 1);
      done[i] = false;
      return;
    }
    // Choose the most-bound non-built-in literal.
    size_t best = body.size();
    size_t best_bound = 0;
    for (size_t i = 0; i < body.size(); ++i) {
      if (done[i]) continue;
      if (builtin[i].has_value()) continue;
      size_t b = BoundArgCount(body[i]);
      if (best == body.size() || b > best_bound) {
        best = i;
        best_bound = b;
      }
    }
    if (best == body.size()) {
      // Only non-ground built-ins remain: the rule is unsafe.
      status = Status::InvalidArgument(
          "unsafe conjunction: built-in with unbound argument");
      return;
    }
    const Literal& lit = body[best];
    const Relation* rel = resolve(lit.predicate);
    if (rel == nullptr) return;  // empty relation: no matches
    if (rel->arity() != lit.arity()) {
      status = Status::InvalidArgument("arity mismatch for predicate '" +
                                       symbols.Name(lit.predicate) + "'");
      return;
    }
    uint32_t mask = 0;
    Tuple key(lit.arity(), 0);  // arity <= 4 stays on the stack
    for (size_t i = 0; i < lit.args.size(); ++i) {
      const Term& t = lit.args[i];
      if (t.IsConst()) {
        mask |= (1u << i);
        key[i] = t.symbol;
      } else if (auto it = binding.find(t.symbol); it != binding.end()) {
        mask |= (1u << i);
        key[i] = it->second;
      }
    }
    done[best] = true;
    rel->ForEachMatch(mask, key, [&](TupleRef m) {
      if (!status.ok()) return;
      // Extend the binding; repeated variables within the literal must agree.
      Tuple added;  // variables bound by this match (inline storage)
      bool consistent = true;
      for (size_t i = 0; i < lit.args.size(); ++i) {
        const Term& t = lit.args[i];
        if (t.IsConst()) {
          if (m[i] != t.symbol) consistent = false;
        } else if (auto it = binding.find(t.symbol); it != binding.end()) {
          if (it->second != m[i]) consistent = false;
        } else {
          binding.emplace(t.symbol, m[i]);
          added.push_back(t.symbol);
        }
        if (!consistent) break;
      }
      if (consistent) Run(remaining - 1);
      for (SymbolId v : added) binding.erase(v);
    });
    done[best] = false;
  }
};

}  // namespace

Status EnumerateMatches(const RelationResolver& resolve,
                        const SymbolTable& symbols,
                        const std::vector<Literal>& body, Binding& binding,
                        FunctionRef<void(const Binding&)> fn) {
  Matcher m(resolve, symbols, body, fn, binding);
  m.Run(body.size());
  return m.status;
}

Tuple InstantiateHead(const Literal& lit, const Binding& binding) {
  Tuple out;
  out.reserve(lit.args.size());
  for (const Term& t : lit.args) {
    if (t.IsConst()) {
      out.push_back(t.symbol);
    } else {
      auto it = binding.find(t.symbol);
      BINCHAIN_CHECK(it != binding.end());
      out.push_back(it->second);
    }
  }
  return out;
}

}  // namespace binchain
