// The original Hunt-Szymanski-Ullman style evaluation (the paper's starting
// point, described as "impractical" in Section 3): the entire graph G(p) is
// *preconstructed* from the expression — one copy of every tuple of every
// argument-relation occurrence — and the query p(a, Y) is then answered by a
// plain reachability search. Serves as the ablation baseline for the
// demand-driven engine (same answers; far more facts touched).
//
// Only regular equations (no derived predicates in e_p) are supported,
// matching the scope of the original algorithm.
#ifndef BINCHAIN_EVAL_HSU_H_
#define BINCHAIN_EVAL_HSU_H_

#include <vector>

#include "equations/equations.h"
#include "eval/relation_view.h"
#include "util/status.h"

namespace binchain {

struct HsuStats {
  uint64_t preconstructed_arcs = 0;  // arcs materialized up front
  uint64_t visited_nodes = 0;        // nodes touched by the reachability pass
};

Result<std::vector<TermId>> HsuEvaluate(const EquationSystem& eqs,
                                        ViewRegistry& views, SymbolId pred,
                                        TermId source, HsuStats* stats);

}  // namespace binchain

#endif  // BINCHAIN_EVAL_HSU_H_
