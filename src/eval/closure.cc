#include "eval/closure.h"

#include <algorithm>
#include <unordered_map>

#include "graph/digraph.h"
#include "graph/tarjan.h"

namespace binchain {

Result<std::vector<std::pair<TermId, TermId>>> TransitiveClosureAllPairs(
    BinaryRelationView* view, ClosureStats* stats,
    const CancelToken* cancel) {
  ClosureStats local;
  ClosureStats& st = (stats != nullptr) ? *stats : local;
  st = ClosureStats{};
  if (view == nullptr) return Status::InvalidArgument("null view");
  if (!view->SupportsEnumerate()) {
    return Status::Unsupported(
        "all-pairs closure requires an enumerable relation");
  }
  // Decimated polling shared by every phase below; the clock read is
  // amortized over kStride steps (edge collections, merges, emissions).
  constexpr size_t kStride = 512;
  size_t countdown = kStride;
  auto cancelled = [&]() {
    if (cancel == nullptr) return false;
    if (--countdown > 0) return false;
    countdown = kStride;
    return cancel->ShouldStop();
  };

  // Collect terms and build the dense graph.
  std::unordered_map<TermId, uint32_t> index;
  std::vector<TermId> terms;
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  auto node = [&](TermId t) {
    auto it = index.find(t);
    if (it != index.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(terms.size());
    index.emplace(t, id);
    terms.push_back(t);
    return id;
  };
  // ForEachPair offers no early exit; a tripped token degrades the rest of
  // the enumeration to a no-op and the cancellation is acted on right after.
  bool enum_cancelled = false;
  view->ForEachPair([&](TermId u, TermId v) {
    if (enum_cancelled) return;
    if (cancelled()) {
      enum_cancelled = true;
      return;
    }
    edges.emplace_back(node(u), node(v));
  });
  if (enum_cancelled) return Status::Cancelled("all-pairs closure cancelled");
  Digraph g(terms.size());
  for (auto [u, v] : edges) g.AddEdge(u, v);
  st.nodes = terms.size();

  SccResult scc = ComputeScc(g);
  st.components = scc.num_components;

  // Condensation edges, deduplicated.
  std::vector<std::vector<uint32_t>> csucc(scc.num_components);
  for (auto [u, v] : edges) {
    uint32_t cu = scc.component[u];
    uint32_t cv = scc.component[v];
    if (cu != cv) csucc[cu].push_back(cv);
  }
  for (auto& s : csucc) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }

  // Tarjan emits components in reverse topological order: successors of a
  // component have smaller ids, so a single ascending pass merges descendant
  // sets bottom-up.
  std::vector<std::vector<uint32_t>> desc(scc.num_components);
  for (uint32_t c = 0; c < scc.num_components; ++c) {
    // Descendant-set merging is the quadratic-in-the-worst-case phase;
    // one poll per component keeps the unwind latency proportional to a
    // single component's merge.
    if (cancelled()) return Status::Cancelled("all-pairs closure cancelled");
    std::vector<uint32_t>& d = desc[c];
    if (scc.members[c].size() > 1 || scc.on_cycle[scc.members[c][0]]) {
      d.push_back(c);  // cyclic component reaches itself
    }
    for (uint32_t s : csucc[c]) {
      d.push_back(s);
      d.insert(d.end(), desc[s].begin(), desc[s].end());
    }
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }

  std::vector<std::pair<TermId, TermId>> out;
  for (uint32_t c = 0; c < scc.num_components; ++c) {
    for (uint32_t u : scc.members[c]) {
      if (cancelled()) {
        return Status::Cancelled("all-pairs closure cancelled");
      }
      for (uint32_t dc : desc[c]) {
        for (uint32_t v : scc.members[dc]) {
          out.emplace_back(terms[u], terms[v]);
        }
      }
    }
  }
  st.pair_count = out.size();
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace binchain
