// Epoch-scoped shared evaluation artifacts.
//
// PR 2 gave every service worker a complete private evaluation context;
// that made concurrency trivial but re-derived the expensive *shared* parts
// — adjacency lookups, closure/all-free results, demand-join memos — once
// per worker, per batch, per epoch. This module inverts that ownership:
// everything immutable-per-snapshot lives in an EvalArtifacts object that
// is built when an epoch freezes, attached to the Database through the
// type-erased SnapshotArtifact slot, and shared read-only by every worker
// bound to that epoch. Workers keep only cheap mutable scratch (term pool,
// engine node sets).
//
// Thread safety is by construction, in two patterns:
//   - fill-once cells (SharedOnce, SharedAdjacency): a mutex serializes the
//     single build, an atomic release-store publishes it, and every later
//     probe is a lock-free acquire-load of immutable data;
//   - sharded maps (SharedDemandMemo): keyed inserts under a shard mutex,
//     values at stable addresses so hits are returned by pointer.
//
// Epoch lifecycle: SnapshotManager::Publish() rebuilds the artifact set for
// the successor epoch in O(delta) via EvalArtifacts::BuildFor(next, plan,
// prev) — entries whose underlying relations are untouched are shared by
// pointer with the previous epoch (copy-on-write), entries whose relations
// gained a delta layer are *extended* (a chained memo over just the delta
// rows, mirroring Relation::Extend's layering and flatten policy), and only
// replaced relations force a standalone rebuild. Closure / source caches
// are invalidated per predicate, by intersecting the predicate's transitive
// base-relation dependencies with the set of changed relations.
#ifndef BINCHAIN_EVAL_EVAL_ARTIFACTS_H_
#define BINCHAIN_EVAL_EVAL_ARTIFACTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "storage/database.h"
#include "storage/relation.h"
#include "storage/tuple.h"
#include "util/function_ref.h"

namespace binchain {

class EquationSystem;
struct PreparedProgram;

/// Base (non-derived) predicates transitively mentioned from e_pred: the
/// EDB relations whose contents the predicate's evaluation can read. The
/// single source of truth for both artifact invalidation (BuildFor's
/// dependency sets) and the all-free candidate-source sweep
/// (QueryEngine::ComputeCandidateSources) — the two must never drift, or a
/// publish could reuse a cell whose true dependencies changed. Sorted.
std::vector<SymbolId> TransitiveBasePreds(const EquationSystem& eqs,
                                          SymbolId pred);

/// A value computed at most once per epoch and shared by every worker.
/// Get() is a lock-free acquire-load; Publish() takes a mutex, keeps the
/// first value (all callers compute identical data from the same frozen
/// snapshot, so "first wins" is not a race on meaning) and returns the
/// winner. The returned pointer is stable for the cell's lifetime.
template <typename V>
class SharedOnce {
 public:
  const V* Get() const { return ready_.load(std::memory_order_acquire); }

  const V* Publish(V v) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (const V* cur = ready_.load(std::memory_order_relaxed)) return cur;
    storage_ = std::make_unique<V>(std::move(v));
    ready_.store(storage_.get(), std::memory_order_release);
    return storage_.get();
  }

 private:
  mutable std::mutex mu_;
  mutable std::atomic<const V*> ready_{nullptr};
  mutable std::unique_ptr<V> storage_;
};

/// All-pairs closure result of one derived predicate (TryAllPairsClosure),
/// stored as SymbolId pairs so it is meaningful in every worker's term pool.
struct ClosureValue {
  std::vector<std::pair<SymbolId, SymbolId>> pairs;  // sorted
  uint64_t nodes = 0;  // ClosureStats::nodes, replayed into EvalStats
};
using SharedClosure = SharedOnce<ClosureValue>;

/// Candidate source constants of one derived predicate (the all-free query
/// sweep), sorted.
using SharedSources = SharedOnce<std::vector<SymbolId>>;

/// Forward/backward adjacency of one frozen binary relation, materialized
/// as CSR (offsets indexed by SymbolId + flat target array) the first time
/// any worker probes it, then served lock-free to every worker of the
/// epoch. Per-source target lists preserve row insertion order, so a probe
/// emits exactly what Relation::ForEachMatch would — minus the per-tuple
/// EDB retrieval, which is why batch fetch counts drop.
///
/// Across epochs the memo layers like the relation it mirrors: an entry for
/// a delta-extended relation chains to the previous epoch's memo and builds
/// CSR over only the delta rows (O(delta)); the shared flatten policy
/// (Relation::ShouldFlatten) bounds chain depth.
class SharedAdjacency {
 public:
  /// Standalone memo over `rel` (built lazily on first EnsureBuilt).
  explicit SharedAdjacency(const Relation* rel);
  /// Chained memo: `base` covers rel's first base->relation()->size() rows;
  /// this layer will index only the rows above that. `base->relation()`
  /// must be an ancestor layer of `rel`.
  SharedAdjacency(const Relation* rel,
                  std::shared_ptr<const SharedAdjacency> base);

  const Relation* relation() const { return rel_; }
  size_t chain_depth() const { return base_ ? base_->chain_depth() + 1 : 0; }
  size_t root_rows() const { return base_ ? base_->root_rows() : total_rows_; }
  size_t total_rows() const { return total_rows_; }

  bool built() const { return ready_.load(std::memory_order_acquire); }
  /// Builds the CSR pair (and the base chain's) if missing. Thread-safe:
  /// double-checked with a per-layer mutex; concurrent callers block until
  /// the single build finishes, then probe lock-free.
  void EnsureBuilt() const;

  /// Enumerations over the whole chain, base layers first (global insertion
  /// order). Require built(); each call counts one thread-local memo hit
  /// (EvalArtifacts::ThreadMemoHits) in place of the EDB fetches it saves.
  void ForEachSucc(SymbolId u, FunctionRef<void(SymbolId)> fn) const;
  void ForEachPred(SymbolId v, FunctionRef<void(SymbolId)> fn) const;

 private:
  struct Csr {
    std::vector<uint32_t> off;  // indexed by SymbolId; empty until built
    std::vector<SymbolId> tgt;
    void ForKey(SymbolId key, FunctionRef<void(SymbolId)> fn) const {
      if (key + 1 >= off.size()) return;
      for (uint32_t i = off[key]; i < off[key + 1]; ++i) fn(tgt[i]);
    }
  };
  void BuildLocal() const;  // rows [local_begin_, rel_->size())

  const Relation* rel_;
  std::shared_ptr<const SharedAdjacency> base_;  // frozen chain or null
  size_t local_begin_ = 0;  // first row this layer indexes
  size_t total_rows_ = 0;   // rel_->size() at construction
  mutable std::mutex mu_;
  mutable std::atomic<bool> ready_{false};
  mutable Csr fwd_, bwd_;
};

/// Shared demand-join memo: input tuple (by constant content, so the key is
/// meaningful across worker term pools) -> output tuples. The first worker
/// to evaluate a source publishes; later probes from any worker are served
/// by pointer. Sharded so concurrent fills of distinct sources do not
/// contend.
class SharedDemandMemo {
 public:
  /// nullptr on miss; on hit, a pointer stable for the memo's lifetime
  /// (counts one thread-local memo hit).
  const std::vector<Tuple>* Find(const Tuple& input) const;
  /// First publisher wins; returns the stored vector either way.
  const std::vector<Tuple>* Publish(const Tuple& input,
                                    std::vector<Tuple> outputs) const;
  uint64_t entries() const;

 private:
  static constexpr size_t kShards = 8;
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<Tuple, std::unique_ptr<const std::vector<Tuple>>,
                       TupleHash>
        map;
  };
  Shard& ShardFor(const Tuple& input) const;
  mutable Shard shards_[kShards];
};

/// The snapshot-owned artifact set: everything evaluation derives from one
/// frozen epoch that is worth sharing across workers. Attached to the
/// Database epoch via Database::AttachArtifact, so its lifetime rides the
/// epoch handles — a batch pinning an old epoch pins exactly that epoch's
/// artifacts.
class EvalArtifacts : public SnapshotArtifact {
 public:
  /// What BuildFor did relative to the previous epoch — the O(delta)
  /// refresh contract, pinned by tests and surfaced by bench_live.
  struct RefreshStats {
    uint64_t adjacency_entries = 0;
    uint64_t adjacency_reused = 0;    // relation untouched: shared by pointer
    uint64_t adjacency_extended = 0;  // delta layer: chained memo, O(delta)
    uint64_t adjacency_rebuilt = 0;   // new/replaced relation or flatten
    /// Retraction path: the delta layer tombstoned (or resurrected) rows,
    /// so the old memo chain — which baked the old dead set into its CSR —
    /// cannot be extended. Only this relation's memo rebuilds (lazily);
    /// every untouched relation still shares by pointer.
    uint64_t adjacency_shrunk = 0;
    uint64_t derived_entries = 0;     // closure + source cells per predicate
    uint64_t derived_reused = 0;      // no dependency relation changed
    uint64_t derived_invalidated = 0;  // fresh (empty) cells
  };

  /// Builds the artifact set for frozen `db`. `prev` — the predecessor
  /// epoch's artifacts, or nullptr for the first freeze — enables the
  /// O(delta) refresh described in the file comment. With no predecessor,
  /// adjacency memos are built eagerly (the "built at freeze time" case);
  /// refreshed entries build lazily on first probe so Publish() itself
  /// stays O(delta).
  static std::shared_ptr<const EvalArtifacts> BuildFor(
      const Database& db, std::shared_ptr<const PreparedProgram> plan,
      const std::shared_ptr<const EvalArtifacts>& prev);

  /// Adjacency memo of the binary relation named by `pred`, or nullptr.
  const SharedAdjacency* Adjacency(SymbolId pred) const;
  /// Fill-once cells for a derived predicate of the plan's equation system;
  /// nullptr for predicates outside it.
  const SharedClosure* Closure(SymbolId pred) const;
  const SharedSources* Sources(SymbolId pred) const;
  /// Shared demand-join memo for a Section-4 view predicate (created on
  /// first request; per-epoch, never carried forward — demand results
  /// depend on the epoch's full contents).
  const SharedDemandMemo& DemandMemo(SymbolId pred) const;

  /// Every binary relation of the epoch with its interned name — the
  /// frozen view table ViewRegistry::BindSnapshot rebinds from (no name
  /// walk, no Intern per relation on an epoch bump).
  const std::vector<std::pair<SymbolId, const Relation*>>& binary_relations()
      const {
    return binary_;
  }

  uint64_t epoch() const { return epoch_; }
  const RefreshStats& refresh_stats() const { return refresh_; }

  /// True when these artifacts were built for a program whose rules render
  /// identically to `plan`'s — the guard a service uses before adopting an
  /// artifact set another service attached to the same frozen database
  /// (closure/source cells are keyed by predicate id, so a different rule
  /// set reusing the same spellings must not inherit them).
  bool CompatiblePlan(const PreparedProgram& plan,
                      const SymbolTable& symbols) const;

  /// Probes this thread served from epoch-shared memos instead of EDB
  /// retrievals; surfaced per query as EvalStats::memo_hits. Deltas of this
  /// counter pair with Relation::ThreadFetchCount() the way the freeze-mode
  /// fetch accounting does.
  static uint64_t ThreadMemoHits() { return tls_memo_hits_; }
  static void BumpThreadMemoHits() { ++tls_memo_hits_; }

 private:
  EvalArtifacts() = default;

  struct DerivedEntry {
    std::vector<SymbolId> deps;  // transitive base predicates the value reads
    std::shared_ptr<SharedClosure> closure;
    std::shared_ptr<SharedSources> sources;
  };

  uint64_t epoch_ = 0;
  std::shared_ptr<const PreparedProgram> plan_;
  std::vector<std::pair<SymbolId, const Relation*>> binary_;
  std::unordered_map<SymbolId, const Relation*> rel_by_id_;  // all arities
  std::unordered_map<SymbolId, std::shared_ptr<SharedAdjacency>> adjacency_;
  std::unordered_map<SymbolId, DerivedEntry> derived_;
  mutable std::mutex demand_mu_;
  mutable std::unordered_map<SymbolId, std::unique_ptr<SharedDemandMemo>>
      demand_;
  RefreshStats refresh_;

  inline static thread_local uint64_t tls_memo_hits_ = 0;
};

}  // namespace binchain

#endif  // BINCHAIN_EVAL_EVAL_ARTIFACTS_H_
