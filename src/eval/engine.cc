#include "eval/engine.h"

#include <algorithm>

#include "eval/answer_sink.h"
#include "eval/eval_artifacts.h"
#include "eval/rex_image.h"
#include "util/check.h"
#include "util/dense_bits.h"
#include "util/flat_set.h"

namespace binchain {
namespace {

uint64_t NodeKey(uint32_t state, TermId term) {
  return (static_cast<uint64_t>(state) << 32) | term;
}

}  // namespace

Engine::Engine(const EquationSystem* eqs, ViewRegistry* views,
               const std::unordered_map<SymbolId, Nfa>* shared_machines)
    : eqs_(eqs), views_(views), shared_machines_(shared_machines) {}

Result<const Nfa*> Engine::Machine(SymbolId pred) {
  if (shared_machines_ != nullptr) {
    auto sit = shared_machines_->find(pred);
    if (sit != shared_machines_->end()) {
      return Result<const Nfa*>(&sit->second);
    }
  }
  auto it = machines_.find(pred);
  if (it != machines_.end()) return Result<const Nfa*>(&it->second);
  if (!eqs_->Has(pred)) {
    return Status::NotFound("no equation for predicate '" +
                            views_->symbols().Name(pred) + "'");
  }
  // Validate that every non-derived leaf has a registered view.
  std::unordered_set<SymbolId> preds;
  CollectPreds(eqs_->Rhs(pred), preds);
  for (SymbolId q : preds) {
    if (!eqs_->Has(q) && views_->Find(q) == nullptr) {
      return Status::NotFound("no relation view registered for '" +
                              views_->symbols().Name(q) + "'");
    }
  }
  Nfa nfa = BuildNfa(eqs_->Rhs(pred),
                     [this](SymbolId q) { return eqs_->Has(q); });
  auto [mit, _] = machines_.emplace(pred, std::move(nfa));
  return Result<const Nfa*>(&mit->second);
}

Result<size_t> Engine::CyclicIterationBound(SymbolId pred, TermId source,
                                            const CancelToken* cancel) {
  auto nit = normal_forms_.find(pred);
  if (nit == normal_forms_.end()) {
    LinearNormalForm fresh;
    if (!MatchLinearNormalForm(*eqs_, pred, &fresh)) {
      return Status::FailedPrecondition(
          "cyclic iteration bound requires the form p = e0 U e1.p.e2");
    }
    nit = normal_forms_.emplace(pred, std::move(fresh)).first;
  }
  const LinearNormalForm& nf = nit->second;
  // The three traversals below are closure *precomputation* — they run
  // before the main loop's own cancellation points, and on dense cyclic
  // data D1/D2 can dwarf the query itself, so each threads the token.
  // D1: nodes accessible from the query constant through e1.
  auto d1 = ClosureUnderRex(*views_, nf.e1, {source}, nullptr, cancel);
  if (!d1.ok()) return d1.status();
  // D2: nodes accessible through e2 from the e0-images of D1.
  auto landings = ImageUnderRex(*views_, nf.e0, d1.value(), nullptr, cancel);
  if (!landings.ok()) return landings.status();
  auto d2 = ClosureUnderRex(*views_, nf.e2, landings.value(), nullptr, cancel);
  if (!d2.ok()) return d2.status();
  size_t b1 = std::max<size_t>(1, d1.value().size());
  size_t b2 = std::max<size_t>(1, d2.value().size());
  return b1 * b2;
}

Result<std::vector<TermId>> Engine::EvalFrom(SymbolId pred, TermId source,
                                             const EvalOptions& options,
                                             EvalStats* stats) {
  EvalStats local;
  EvalStats& st = (stats != nullptr) ? *stats : local;
  st = EvalStats{};
  uint64_t tls_fetches_before = Relation::ThreadFetchCount();
  uint64_t tls_wide_before = Relation::ThreadWideScanCount();
  uint64_t tls_memo_before = EvalArtifacts::ThreadMemoHits();

  // Reset-and-reuse: empty the scratch sets but keep their capacity, so a
  // query stream on one engine stops paying per-query growth.
  g_.clear();
  answer_set_.clear();
  c_set_.clear();
  // The continuation map is cleared once per fixpoint iteration, and
  // unordered_map::clear costs O(bucket count) — drop a table left huge by
  // an earlier query so later small queries don't inherit that bill.
  if (c_by_state_.bucket_count() > 1024) {
    c_by_state_ = decltype(c_by_state_)();
  } else {
    c_by_state_.clear();
  }
  stack_.clear();
  seeds_.clear();

  auto machine = Machine(pred);
  if (!machine.ok()) return machine.status();

  size_t iteration_cap = options.max_iterations;
  if (options.use_cyclic_bound) {
    auto bound = CyclicIterationBound(pred, source, options.cancel);
    if (!bound.ok()) {
      // A cancelled precomputation is a partial (empty) answer, not an
      // error: report it the way a mid-traversal unwind would, so the
      // service maps it to kCancelled/kDeadlineExceeded with partial=true.
      if (bound.status().code() == StatusCode::kCancelled) {
        st.cancelled = true;
        return std::vector<TermId>{};
      }
      return bound.status();
    }
    if (iteration_cap == 0 || bound.value() < iteration_cap) {
      iteration_cap = bound.value();
    }
  }

  // EM := a copy of M(e_p). The final state of this copy stays the final
  // state of every EM(p, i).
  Nfa em;
  uint32_t off = em.SpliceCopy(*machine.value());
  em.set_initial(machine.value()->initial() + off);
  em.set_final(machine.value()->final() + off);

  std::vector<TermId> answers;
  // Streaming: answers[flushed..] are derived but not yet delivered to the
  // term sink. Flushes ride the cancellation-point cadence below, so the
  // no-sink hot path pays nothing beyond the poll branch it already had.
  AnswerTermSink* term_sink = options.term_sink;
  size_t flushed = 0;
  auto flush_answers = [&] {
    if (term_sink != nullptr && flushed < answers.size()) {
      term_sink->OnTerms(answers.data() + flushed, answers.size() - flushed);
      flushed = answers.size();
    }
  };

  // Transition predicates repeat across nodes; resolve each view once
  // through a dense SymbolId-indexed cache instead of a map lookup per arc.
  // The cache outlives the query: registry entries are stable.
  auto find_view = [&](SymbolId p) -> BinaryRelationView* {
    if (p < view_cache_.size() && view_cache_[p] != nullptr) {
      return view_cache_[p];
    }
    BinaryRelationView* v = views_->Find(p);
    if (v != nullptr) {
      if (p >= view_cache_.size()) view_cache_.resize(p + 1, nullptr);
      view_cache_[p] = v;
    }
    return v;
  };

  auto try_insert = [&](uint32_t q, TermId u) {
    if (!g_.insert(NodeKey(q, u))) return;
    ++st.nodes;
    if (q == em.final() && !answer_set_.TestAndSet(u)) answers.push_back(u);
    stack_.emplace_back(q, u);
  };

  Status view_error = Status::Ok();
  // Cancellation points: the token is polled every kCancelCheckStride node
  // expansions (stack pops), so the steady_clock read amortizes to noise.
  // With no token the whole machinery is one never-taken branch per pop.
  const CancelToken* cancel = options.cancel;
  // The sink shares the token's decimated schedule: with either present
  // the stride countdown runs; a stride tick first flushes new answers
  // (streamed latency is bounded by the same few-ms worst case the token
  // doc argues), then polls the token if one rides the query.
  const bool stride_active = cancel != nullptr || term_sink != nullptr;
  size_t cancel_countdown = kCancelCheckStride;
  auto traverse = [&]() {
    while (!stack_.empty()) {
      if (stride_active && --cancel_countdown == 0) {
        cancel_countdown = kCancelCheckStride;
        flush_answers();
        if (cancel != nullptr) {
          ++st.cancel_checks;
          if (cancel->ShouldStop()) {
            st.cancelled = true;
            return;
          }
        }
      }
      auto [q, u] = stack_.back();
      stack_.pop_back();
      for (const NfaTransition& t : em.Out(q)) {
        switch (t.label.kind) {
          case NfaLabel::Kind::kId:
            ++st.arcs;
            try_insert(t.target, u);
            break;
          case NfaLabel::Kind::kRel: {
            BinaryRelationView* view = find_view(t.label.pred);
            if (view == nullptr) {
              view_error = Status::NotFound(
                  "no relation view registered for '" +
                  views_->symbols().Name(t.label.pred) + "'");
              return;
            }
            auto emit = [&](TermId v) {
              ++st.arcs;
              try_insert(t.target, v);
            };
            if (t.label.inverted) {
              if (!view->SupportsBackward()) {
                view_error = Status::Unsupported(
                    "view '" + views_->symbols().Name(t.label.pred) +
                    "' does not support inverse enumeration");
                return;
              }
              view->ForEachPred(u, emit);
            } else {
              view->ForEachSucc(u, emit);
            }
            break;
          }
          case NfaLabel::Kind::kDerived: {
            if (c_set_.insert(NodeKey(q, u))) {
              c_by_state_[q].push_back(u);
              ++st.continuations;
            }
            break;
          }
        }
      }
    }
  };

  // Starting point of the first traversal: (q_s, a).
  seeds_.emplace_back(em.initial(), source);

  while (true) {
    c_by_state_.clear();
    c_set_.clear();
    for (auto [q, u] : seeds_) try_insert(q, u);
    traverse();
    if (!view_error.ok()) return view_error;
    ++st.iterations;
    st.answers_per_iteration.push_back(answers.size());
    // Iteration boundary: everything this iteration derived is a valid
    // answer prefix (Lemma 2), so it streams now — before the cancelled /
    // C = 0 breaks, keeping the chunk stream a true prefix on every exit.
    flush_answers();
    seeds_.clear();
    if (st.cancelled) break;  // unwind with the partial answer set
    if (c_by_state_.empty()) break;  // C = 0: done
    // One poll per fixpoint iteration besides the decimated in-traversal
    // ones, so even queries whose iterations expand fewer than a stride of
    // nodes (e.g. each source of an all-free sweep) hit a cancellation
    // point at least once per iteration. Strictly after the C = 0 check: a
    // traversal that just converged has its complete answer set, and
    // marking it cancelled would misreport a finished result as partial.
    if (cancel != nullptr) {
      ++st.cancel_checks;
      if (cancel->ShouldStop()) {
        st.cancelled = true;
        break;
      }
    }
    if (iteration_cap != 0 && st.iterations >= iteration_cap) {
      st.hit_iteration_cap = true;
      break;
    }
    // Expansion: replace every derived transition leaving a state with
    // continuation points by a fresh copy of the corresponding machine.
    // Programs have a handful of derived predicates, so a one-entry machine
    // cache removes the map lookup from the per-iteration loop.
    SymbolId cached_pred = 0;
    const Nfa* cached_machine = nullptr;
    for (auto& [q, terms] : c_by_state_) {
      // Collect the derived transitions of q first; expansion mutates em.
      std::vector<NfaTransition> derived;
      for (const NfaTransition& t : em.Out(q)) {
        if (t.label.kind == NfaLabel::Kind::kDerived) derived.push_back(t);
      }
      for (const NfaTransition& t : derived) {
        if (cached_machine == nullptr || t.label.pred != cached_pred) {
          auto sub = Machine(t.label.pred);
          if (!sub.ok()) return sub.status();
          cached_pred = t.label.pred;
          cached_machine = sub.value();
        }
        uint32_t sub_off = em.SpliceCopy(*cached_machine);
        uint32_t qs = cached_machine->initial() + sub_off;
        uint32_t qf = cached_machine->final() + sub_off;
        em.AddTransition(q, NfaLabel::Id(), qs);
        em.AddTransition(qf, NfaLabel::Id(), t.target);
        BINCHAIN_CHECK(em.RemoveDerivedTransition(q, t.label.pred, t.target));
        ++st.expansions;
        for (TermId u : terms) seeds_.emplace_back(qs, u);
      }
    }
  }
  st.em_states = em.NumStates();
  // Frozen relations count retrievals per thread; unfrozen ones still count
  // into the database (QueryEngine folds those in for the combined total).
  st.fetches = Relation::ThreadFetchCount() - tls_fetches_before;
  st.wide_mask_scans = Relation::ThreadWideScanCount() - tls_wide_before;
  st.memo_hits = EvalArtifacts::ThreadMemoHits() - tls_memo_before;
  // Last flush strictly before the sort: the stream is in derivation
  // order, exactly once per term; the returned vector stays sorted.
  flush_answers();
  std::sort(answers.begin(), answers.end());
  return answers;
}

}  // namespace binchain
