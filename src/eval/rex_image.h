// Set-at-a-time evaluation of *regular* relational expressions (no derived
// predicates): image and reflexive-transitive closure of a term set. Used by
// the counting / Henschen-Naqvi / reverse-counting baselines and by the
// cyclic iteration bound (|D1| * |D2|, Section 3).
#ifndef BINCHAIN_EVAL_REX_IMAGE_H_
#define BINCHAIN_EVAL_REX_IMAGE_H_

#include <vector>

#include "eval/relation_view.h"
#include "rex/rex.h"
#include "util/cancel_token.h"
#include "util/status.h"

namespace binchain {

/// Terms v such that (u, v) is in the relation denoted by `e`, for some
/// source u. Fails if `e` mentions a predicate without a registered view.
/// `work` (optional) accumulates the number of (state, term) pairs visited
/// in the product traversal — the set-at-a-time cost measure. `cancel`
/// (optional, borrowed) is polled every few hundred visits; a tripped token
/// returns Status::Cancelled — closure precomputation can run for seconds
/// on dense data, and a deadline'd query must not be stuck inside it.
Result<std::vector<TermId>> ImageUnderRex(const ViewRegistry& views,
                                          const RexPtr& e,
                                          const std::vector<TermId>& sources,
                                          uint64_t* work = nullptr,
                                          const CancelToken* cancel = nullptr);

/// Image under e* : all terms reachable from `sources` by 0..k applications
/// of `e`. Same cancellation contract as ImageUnderRex.
Result<std::vector<TermId>> ClosureUnderRex(const ViewRegistry& views,
                                            const RexPtr& e,
                                            const std::vector<TermId>& sources,
                                            uint64_t* work = nullptr,
                                            const CancelToken* cancel = nullptr);

}  // namespace binchain

#endif  // BINCHAIN_EVAL_REX_IMAGE_H_
