// Nondeterministic finite automata over relation-labelled transitions:
// M(e_p) is obtained from the relational expression e_p by the standard
// Thompson construction, regarding e_p as a regular expression over the
// alphabet of predicate symbols (Section 3, Figure 1). Transitions carry
//   - id        : the identity relation (empty-string transition),
//   - a relation: a base predicate / registered view, possibly inverted,
//   - a derived predicate: expanded at evaluation time into a fresh copy of
//     M(e_r) (the EM(p, i) hierarchy, Figure 2).
#ifndef BINCHAIN_AUTOMATA_NFA_H_
#define BINCHAIN_AUTOMATA_NFA_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rex/rex.h"
#include "storage/symbol_table.h"

namespace binchain {

struct NfaLabel {
  enum class Kind { kId, kRel, kDerived };
  Kind kind = Kind::kId;
  SymbolId pred = 0;      // kRel / kDerived
  bool inverted = false;  // kRel only

  static NfaLabel Id() { return {Kind::kId, 0, false}; }
  static NfaLabel Rel(SymbolId p, bool inv) { return {Kind::kRel, p, inv}; }
  static NfaLabel Derived(SymbolId p) { return {Kind::kDerived, p, false}; }
};

struct NfaTransition {
  NfaLabel label;
  uint32_t target;
};

class Nfa {
 public:
  Nfa() = default;

  uint32_t AddState() {
    states_.emplace_back();
    return static_cast<uint32_t>(states_.size() - 1);
  }

  void AddTransition(uint32_t from, NfaLabel label, uint32_t to) {
    states_[from].push_back(NfaTransition{label, to});
  }

  /// Removes one transition `from --pred(derived)--> to`; returns whether a
  /// matching transition existed.
  bool RemoveDerivedTransition(uint32_t from, SymbolId pred, uint32_t to);

  size_t NumStates() const { return states_.size(); }
  const std::vector<NfaTransition>& Out(uint32_t s) const { return states_[s]; }

  uint32_t initial() const { return initial_; }
  uint32_t final() const { return final_; }
  void set_initial(uint32_t s) { initial_ = s; }
  void set_final(uint32_t s) { final_ = s; }

  /// Appends a copy of `src` (states renumbered); returns the offset added
  /// to src's state numbers.
  uint32_t SpliceCopy(const Nfa& src);

  /// Human-readable transition listing (for the figure-dump example and
  /// golden tests).
  std::string ToString(const SymbolTable& symbols) const;

 private:
  std::vector<std::vector<NfaTransition>> states_;
  uint32_t initial_ = 0;
  uint32_t final_ = 0;
};

/// Thompson construction of M(e). `is_derived(p)` decides whether a
/// predicate leaf becomes a kDerived transition (it has an equation) or a
/// kRel transition (a base relation / view).
Nfa BuildNfa(const RexPtr& e, const std::function<bool(SymbolId)>& is_derived);

}  // namespace binchain

#endif  // BINCHAIN_AUTOMATA_NFA_H_
