#include "automata/nfa.h"

#include "util/check.h"

namespace binchain {

bool Nfa::RemoveDerivedTransition(uint32_t from, SymbolId pred, uint32_t to) {
  auto& out = states_[from];
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].label.kind == NfaLabel::Kind::kDerived &&
        out[i].label.pred == pred && out[i].target == to) {
      out.erase(out.begin() + static_cast<long>(i));
      return true;
    }
  }
  return false;
}

uint32_t Nfa::SpliceCopy(const Nfa& src) {
  uint32_t offset = static_cast<uint32_t>(states_.size());
  states_.resize(states_.size() + src.states_.size());
  for (uint32_t s = 0; s < src.states_.size(); ++s) {
    std::vector<NfaTransition>& out = states_[offset + s];
    out.reserve(src.states_[s].size());
    for (const NfaTransition& t : src.states_[s]) {
      out.push_back(NfaTransition{t.label, t.target + offset});
    }
  }
  return offset;
}

std::string Nfa::ToString(const SymbolTable& symbols) const {
  std::string out;
  out += "initial: q" + std::to_string(initial_) + ", final: q" +
         std::to_string(final_) + "\n";
  for (uint32_t s = 0; s < states_.size(); ++s) {
    for (const NfaTransition& t : states_[s]) {
      out += "q" + std::to_string(s) + " --";
      switch (t.label.kind) {
        case NfaLabel::Kind::kId:
          out += "id";
          break;
        case NfaLabel::Kind::kRel:
          out += symbols.Name(t.label.pred);
          if (t.label.inverted) out += "^-1";
          break;
        case NfaLabel::Kind::kDerived:
          out += "[" + symbols.Name(t.label.pred) + "]";
          break;
      }
      out += "--> q" + std::to_string(t.target) + "\n";
    }
  }
  return out;
}

namespace {

struct Fragment {
  uint32_t in;
  uint32_t out;
};

Fragment Build(Nfa& nfa, const RexPtr& e,
               const std::function<bool(SymbolId)>& is_derived) {
  switch (e->kind) {
    case Rex::Kind::kEmpty: {
      // Two states, no connection: denotes the empty relation.
      Fragment f{nfa.AddState(), nfa.AddState()};
      return f;
    }
    case Rex::Kind::kId: {
      Fragment f{nfa.AddState(), nfa.AddState()};
      nfa.AddTransition(f.in, NfaLabel::Id(), f.out);
      return f;
    }
    case Rex::Kind::kPred: {
      Fragment f{nfa.AddState(), nfa.AddState()};
      NfaLabel label = is_derived(e->pred)
                           ? NfaLabel::Derived(e->pred)
                           : NfaLabel::Rel(e->pred, e->inverted);
      nfa.AddTransition(f.in, label, f.out);
      return f;
    }
    case Rex::Kind::kUnion: {
      Fragment f{nfa.AddState(), nfa.AddState()};
      for (const RexPtr& k : e->kids) {
        Fragment kf = Build(nfa, k, is_derived);
        nfa.AddTransition(f.in, NfaLabel::Id(), kf.in);
        nfa.AddTransition(kf.out, NfaLabel::Id(), f.out);
      }
      return f;
    }
    case Rex::Kind::kConcat: {
      Fragment first = Build(nfa, e->kids[0], is_derived);
      uint32_t cur = first.out;
      for (size_t i = 1; i < e->kids.size(); ++i) {
        Fragment kf = Build(nfa, e->kids[i], is_derived);
        nfa.AddTransition(cur, NfaLabel::Id(), kf.in);
        cur = kf.out;
      }
      return Fragment{first.in, cur};
    }
    case Rex::Kind::kStar: {
      Fragment inner = Build(nfa, e->kids[0], is_derived);
      Fragment f{nfa.AddState(), nfa.AddState()};
      nfa.AddTransition(f.in, NfaLabel::Id(), f.out);       // zero times
      nfa.AddTransition(f.in, NfaLabel::Id(), inner.in);    // enter
      nfa.AddTransition(inner.out, NfaLabel::Id(), f.out);  // exit
      nfa.AddTransition(inner.out, NfaLabel::Id(), inner.in);  // repeat
      return f;
    }
  }
  BINCHAIN_CHECK(false && "unreachable");
  return Fragment{0, 0};
}

}  // namespace

Nfa BuildNfa(const RexPtr& e, const std::function<bool(SymbolId)>& is_derived) {
  Nfa nfa;
  Fragment f = Build(nfa, e, is_derived);
  nfa.set_initial(f.in);
  nfa.set_final(f.out);
  return nfa;
}

}  // namespace binchain
