// Lightweight Status / Result types, in the spirit of absl::Status.
// The library does not use exceptions for expected failures (parse errors,
// unsupported program classes); those travel through Status/Result.
#ifndef BINCHAIN_UTIL_STATUS_H_
#define BINCHAIN_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace binchain {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (parse errors, bad arity, ...)
  kUnsupported,       // program outside the class a component handles
  kNotFound,          // missing predicate / relation
  kFailedPrecondition,
  kDeadlineExceeded,  // request expired before (or while) evaluating
  kCancelled,         // caller cancelled (or dropped) the request's future
  kOverloaded,        // submission queue at its high-water mark; retry later
  kUnavailable,       // service not serving yet (e.g. recovery replay)
  kInternal,
};

/// Error-or-success carrier. Cheap to copy on the OK path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status Overloaded(std::string m) {
    return Status(StatusCode::kOverloaded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. `value()` must only be called when `ok()`.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {}   // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const { return std::get<Status>(v_); }
  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T&& take() { return std::move(std::get<T>(v_)); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace binchain

#endif  // BINCHAIN_UTIL_STATUS_H_
