// Cooperative cancellation for in-flight evaluation. A CancelToken is the
// one cell a submitter and an evaluating worker share: the submitter (or a
// dropped future) flips the atomic flag, the engine's hot loops poll it at
// decimated cancellation points and unwind with whatever partial answer set
// they have gathered. The deadline rides in the same token so a single
// ShouldStop() probe covers both "cancelled from outside" and "evaluation
// budget exhausted mid-traversal".
//
// Cost model: callers poll every N work units (see Engine::kCancelCheckStride)
// so the steady_clock read — the expensive part — is amortized to noise; the
// flag itself is one relaxed atomic load. The deadline is written once,
// before the token is handed to another thread (the submission queue's mutex
// publishes it), so it needs no atomicity of its own; only the flag is
// flipped cross-thread mid-flight.
#ifndef BINCHAIN_UTIL_CANCEL_TOKEN_H_
#define BINCHAIN_UTIL_CANCEL_TOKEN_H_

#include <atomic>
#include <chrono>

namespace binchain {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; safe from any thread, idempotent. Evaluation
  /// already past its last cancellation point still completes normally.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arms the evaluation budget: the token reads as expired once `now`
  /// passes `deadline`. Must be called before the token is shared with the
  /// evaluating thread (submission publishes it); not thread-safe against
  /// concurrent ShouldStop().
  void SetDeadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void SetDeadlineAfter(double budget_ms) {
    SetDeadline(Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(budget_ms)));
  }

  bool has_deadline() const { return has_deadline_; }

  bool Expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  /// The polled predicate: cancelled from outside, or past the deadline.
  /// The clock is only read when a deadline is armed.
  bool ShouldStop() const { return cancelled() || Expired(); }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
};

}  // namespace binchain

#endif  // BINCHAIN_UTIL_CANCEL_TOKEN_H_
