// Internal invariant checks. BINCHAIN_CHECK is always on (cheap predicates
// guarding algorithmic invariants); BINCHAIN_DCHECK compiles out in NDEBUG.
#ifndef BINCHAIN_UTIL_CHECK_H_
#define BINCHAIN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define BINCHAIN_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define BINCHAIN_DCHECK(cond) \
  do {                        \
  } while (0)
#else
#define BINCHAIN_DCHECK(cond) BINCHAIN_CHECK(cond)
#endif

#endif  // BINCHAIN_UTIL_CHECK_H_
