// Fault-injection harness for the durability paths.
//
// A fault point is a named location compiled into production code (the WAL
// append/commit/checkpoint sequence, the publish pipeline) that does nothing
// unless a test has armed it. Armed points model the three failure shapes a
// write-ahead log must survive:
//
//   - crash:       the process dies at exactly this point. Simulated
//                  in-process by throwing FaultInjectedCrash, which the test
//                  harness catches before destroying the crashed objects and
//                  recovering from the on-disk state — the same observable
//                  effect as SIGKILL for everything that matters (buffers
//                  not yet written are lost, buffers written but not synced
//                  may or may not survive; our tests treat written-as-kept,
//                  the conservative direction for replay idempotence).
//   - short write: the caller is told to write only a prefix of its buffer,
//                  then the crash fires — the torn-tail record shape a real
//                  power cut leaves behind.
//   - error:       the operation (fsync, write) reports failure and the
//                  caller must unwind cleanly through its Status path, with
//                  no crash. Exercises the no-tip-swap / poisoned-log
//                  handling.
//
// Arming takes a countdown so a point inside a loop can fire on its Nth
// visit. The injector is a process-wide singleton guarded by a mutex: the
// recovery tests arm one point, run one scenario, disarm — never
// concurrently — but the hot-path probe is cheap enough (one relaxed atomic
// load when nothing is armed) to stay compiled in unconditionally.
#ifndef BINCHAIN_UTIL_FAULT_POINTS_H_
#define BINCHAIN_UTIL_FAULT_POINTS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>

namespace binchain {

/// Thrown by an armed crash point. Derives from std::exception only — the
/// harness catches it by exact type; nothing else in the codebase throws.
class FaultInjectedCrash : public std::runtime_error {
 public:
  explicit FaultInjectedCrash(const std::string& point)
      : std::runtime_error("injected crash at fault point '" + point + "'") {}
};

class FaultInjector {
 public:
  static FaultInjector& Instance() {
    static FaultInjector instance;
    return instance;
  }

  /// Arms `point`: its countdown-th visit fires (1 = next visit). Replaces
  /// any previously armed point — one scenario at a time.
  void Arm(std::string_view point, uint64_t countdown = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    point_ = std::string(point);
    countdown_ = countdown;
    armed_.store(true, std::memory_order_release);
  }

  /// Clears the armed point (idempotent).
  void Disarm() {
    std::lock_guard<std::mutex> lock(mu_);
    point_.clear();
    countdown_ = 0;
    armed_.store(false, std::memory_order_release);
  }

  /// True exactly once: when `point` is armed and its countdown reaches
  /// zero on this visit. The fast path — nothing armed anywhere — is a
  /// single relaxed atomic load.
  bool ShouldFail(std::string_view point) {
    if (!armed_.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (point_ != point) return false;
    if (--countdown_ > 0) return false;
    // One-shot: the failure fires once, then the point disarms so the
    // recovery that follows runs at full health.
    point_.clear();
    armed_.store(false, std::memory_order_release);
    return true;
  }

  /// Crash-style point: throws FaultInjectedCrash if armed and due.
  void MaybeCrash(const char* point) {
    if (ShouldFail(point)) throw FaultInjectedCrash(point);
  }

 private:
  FaultInjector() = default;
  std::mutex mu_;
  std::string point_;
  uint64_t countdown_ = 0;
  std::atomic<bool> armed_{false};
};

/// Free-function shims so call sites stay one line.
inline void FaultCrashPoint(const char* point) {
  FaultInjector::Instance().MaybeCrash(point);
}
inline bool FaultFailPoint(const char* point) {
  return FaultInjector::Instance().ShouldFail(point);
}

}  // namespace binchain

#endif  // BINCHAIN_UTIL_FAULT_POINTS_H_
