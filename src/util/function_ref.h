// A non-owning, non-allocating reference to a callable, used on hot
// enumeration interfaces instead of std::function (which may heap-allocate
// its target and always dispatches through two indirections). A FunctionRef
// is two words: the callable's address and a monomorphic trampoline.
//
// Lifetime: a FunctionRef borrows its callable, so it must not outlive the
// full-expression that created it unless the callable demonstrably lives
// longer. All uses in this codebase pass it straight down an enumeration
// call, which is safe.
#ifndef BINCHAIN_UTIL_FUNCTION_REF_H_
#define BINCHAIN_UTIL_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace binchain {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT: implicit by design
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_(&Invoke<std::remove_reference_t<F>>) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  template <typename F>
  static R Invoke(void* obj, Args... args) {
    return (*static_cast<F*>(obj))(std::forward<Args>(args)...);
  }

  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace binchain

#endif  // BINCHAIN_UTIL_FUNCTION_REF_H_
