// Deterministic splitmix64-based RNG used by property tests and workload
// generators, so every experiment is reproducible from a seed.
#ifndef BINCHAIN_UTIL_RNG_H_
#define BINCHAIN_UTIL_RNG_H_

#include <cstdint>

namespace binchain {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  uint64_t Between(uint64_t lo, uint64_t hi) {
    return lo + Below(hi - lo + 1);
  }

  /// True with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace binchain

#endif  // BINCHAIN_UTIL_RNG_H_
