// Growable bitset for dense id spaces (TermId, (state, term) products).
// Test-and-set is one load and one OR — no hashing, no probing, no per-node
// allocation — which is why the traversal seen-sets use it instead of hash
// sets: ids are pool-interned and dense, so the bit array stays compact.
#ifndef BINCHAIN_UTIL_DENSE_BITS_H_
#define BINCHAIN_UTIL_DENSE_BITS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace binchain {

class DenseBits {
 public:
  DenseBits() = default;
  explicit DenseBits(size_t expected_bits) {
    words_.resize((expected_bits >> 6) + 1, 0);
  }

  /// Sets the bit; returns true if it was already set.
  bool TestAndSet(size_t bit) {
    size_t word = bit >> 6;
    if (word >= words_.size()) {
      words_.resize(std::max(word + 1, words_.size() * 2), 0);
    }
    uint64_t m = 1ull << (bit & 63);
    if (words_[word] & m) return true;
    words_[word] |= m;
    return false;
  }

  bool Test(size_t bit) const {
    size_t word = bit >> 6;
    return word < words_.size() && (words_[word] & (1ull << (bit & 63)));
  }

  /// Zeroes every bit but keeps the backing array, so reset-and-reuse loops
  /// (one engine answering many queries) pay O(peak id / 64) per query
  /// instead of re-growing from scratch.
  void clear() { std::fill(words_.begin(), words_.end(), 0); }

 private:
  std::vector<uint64_t> words_;
};

}  // namespace binchain

#endif  // BINCHAIN_UTIL_DENSE_BITS_H_
