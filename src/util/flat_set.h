// Open-addressed hash set over 64-bit keys, used for the (state, term)
// node sets of the traversal engines. Compared with unordered_set<uint64_t>
// this stores keys inline in one contiguous array (no node allocations, one
// cache line per probe) — the node-set insert is the innermost operation of
// the graph traversal, so its constant factor is directly visible in query
// wall time.
#ifndef BINCHAIN_UTIL_FLAT_SET_H_
#define BINCHAIN_UTIL_FLAT_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace binchain {

class FlatSet64 {
 public:
  FlatSet64() = default;

  /// Inserts `key`; returns true if it was not present before.
  bool insert(uint64_t key) {
    if (key == kEmpty) {
      bool fresh = !has_empty_;
      has_empty_ = true;
      return fresh;
    }
    if ((used_ + 1) * 10 >= slots_.size() * 7) Grow();
    size_t m = slots_.size() - 1;
    for (size_t i = Mix(key) & m;; i = (i + 1) & m) {
      if (slots_[i] == kEmpty) {
        slots_[i] = key;
        ++used_;
        return true;
      }
      if (slots_[i] == key) return false;
    }
  }

  bool contains(uint64_t key) const {
    if (key == kEmpty) return has_empty_;
    if (slots_.empty()) return false;
    size_t m = slots_.size() - 1;
    for (size_t i = Mix(key) & m;; i = (i + 1) & m) {
      if (slots_[i] == kEmpty) return false;
      if (slots_[i] == key) return true;
    }
  }

  size_t size() const { return used_ + (has_empty_ ? 1 : 0); }

  /// Empties the set. A sparsely used table shrinks back to a small
  /// capacity so clear-heavy loops (one clear per fixpoint iteration) don't
  /// pay O(peak size) forever.
  void clear() {
    if (slots_.size() > 64 && used_ * 4 < slots_.size()) {
      slots_.assign(64, kEmpty);
    } else {
      slots_.assign(slots_.size(), kEmpty);
    }
    used_ = 0;
    has_empty_ = false;
  }

 private:
  static constexpr uint64_t kEmpty = ~0ull;

  /// splitmix64 finalizer: full-avalanche mix so clustered (state, term)
  /// keys spread over the table.
  static uint64_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  void Grow() {
    size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(cap, kEmpty);
    used_ = 0;
    for (uint64_t k : old) {
      if (k == kEmpty) continue;
      size_t m = slots_.size() - 1;
      for (size_t i = Mix(k) & m;; i = (i + 1) & m) {
        if (slots_[i] == kEmpty) {
          slots_[i] = k;
          ++used_;
          break;
        }
      }
    }
  }

  std::vector<uint64_t> slots_;
  size_t used_ = 0;
  bool has_empty_ = false;
};

}  // namespace binchain

#endif  // BINCHAIN_UTIL_FLAT_SET_H_
