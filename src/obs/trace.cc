#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics.h"

namespace binchain {
namespace obs {

namespace {

std::string Ms(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string Us(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

namespace internal {

void RegisterRingResetHook(void* owner, void (*clear)(void*)) {
  Registry::Global().AddResetHook(owner, [owner, clear] { clear(owner); });
}

void UnregisterRingResetHook(void* owner) {
  Registry::Global().RemoveResetHook(owner);
}

}  // namespace internal

uint64_t SteadyNowUs() {
  // Origin is fixed at the first call (reached during static init of the
  // first service/manager in practice), so span timestamps are small
  // offsets rather than raw steady-clock readings.
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - origin)
          .count());
}

void QueryTrace::RenderJson(std::string* out) const {
  out->append("{\"query_id\": ").append(std::to_string(query_id));
  out->append(", \"pred\": ").append(std::to_string(pred));
  out->append(", \"source\": ").append(std::to_string(source));
  out->append(", \"start_us\": ").append(std::to_string(start_us));
  out->append(", \"queue_wait_ms\": ").append(Ms(queue_wait_ms));
  out->append(", \"eval_ms\": ").append(Ms(eval_ms));
  out->append(", \"total_ms\": ").append(Ms(total_ms));
  out->append(", \"iterations\": ").append(std::to_string(iterations));
  out->append(", \"expansions\": ").append(std::to_string(expansions));
  out->append(", \"fetches\": ").append(std::to_string(fetches));
  out->append(", \"memo_hits\": ").append(std::to_string(memo_hits));
  out->append(", \"cancel_checks\": ").append(std::to_string(cancel_checks));
  out->append(", \"answers\": ").append(std::to_string(answers));
  out->append(", \"chunks\": ").append(std::to_string(chunks));
  out->append(", \"epoch\": ").append(std::to_string(epoch));
  out->append(", \"timed_out\": ").append(timed_out ? "true" : "false");
  out->append(", \"cancelled\": ").append(cancelled ? "true" : "false");
  out->append(", \"shed\": ").append(shed ? "true" : "false");
  out->append(", \"cache_hit\": ").append(cache_hit ? "true" : "false");
  out->append(", \"collapsed\": ").append(collapsed ? "true" : "false");
  out->append("}");
}

void PublishTrace::RenderJson(std::string* out) const {
  out->append("{\"publish_id\": ").append(std::to_string(publish_id));
  out->append(", \"epoch\": ").append(std::to_string(epoch));
  out->append(", \"start_us\": ").append(std::to_string(start_us));
  out->append(", \"stage_ms\": ").append(Ms(stage_ms));
  out->append(", \"freeze_ms\": ").append(Ms(freeze_ms));
  out->append(", \"artifact_ms\": ").append(Ms(artifact_ms));
  out->append(", \"commit_ms\": ").append(Ms(commit_ms));
  out->append(", \"swap_ms\": ").append(Ms(swap_ms));
  out->append(", \"total_ms\": ").append(Ms(total_ms));
  out->append(", \"facts_added\": ").append(std::to_string(facts_added));
  out->append(", \"facts_deleted\": ").append(std::to_string(facts_deleted));
  out->append(", \"relations_touched\": ")
      .append(std::to_string(relations_touched));
  out->append(", \"refused\": ").append(refused ? "true" : "false");
  out->append("}");
}

// ------------------------------------------------------- Chrome trace JSON
//
// Trace-event format, "JSON object" flavor: {"displayTimeUnit": "ms",
// "traceEvents": [...]}, one complete ("X") slice per span with nested
// phase slices, plus "M" metadata naming the process and tracks. Complete
// events on one tid must nest by containment, so concurrent query spans
// are spread greedily over lanes (tracks): each query goes to the first
// lane that is free at its start time. Publishes are serialized by the
// manager, so they all share one lane.

namespace {

void AppendEventPrefix(std::string* out, bool* first, const char* ph,
                       int tid) {
  out->append(*first ? "\n    " : ",\n    ");
  *first = false;
  out->append("{\"ph\": \"").append(ph).append("\", \"pid\": 1, \"tid\": ");
  out->append(std::to_string(tid)).append(", ");
}

void AppendSlice(std::string* out, bool* first, int tid, const char* cat,
                 const std::string& name, double ts_us, double dur_us,
                 const std::string& args_json) {
  AppendEventPrefix(out, first, "X", tid);
  out->append("\"cat\": \"").append(cat).append("\", ");
  out->append("\"name\": \"").append(name).append("\", ");
  out->append("\"ts\": ").append(Us(ts_us));
  out->append(", \"dur\": ").append(Us(dur_us));
  if (!args_json.empty()) {
    out->append(", \"args\": ").append(args_json);
  }
  out->append("}");
}

void AppendThreadName(std::string* out, bool* first, int tid,
                      const std::string& name) {
  AppendEventPrefix(out, first, "M", tid);
  out->append("\"name\": \"thread_name\", \"args\": {\"name\": \"");
  out->append(name).append("\"}}");
}

}  // namespace

void RenderChromeTrace(const std::vector<QueryTrace>& queries,
                       const std::vector<PublishTrace>& publishes,
                       std::string* out) {
  constexpr int kPublishTid = 1;
  constexpr int kFirstQueryTid = 2;

  // Assign each query the first lane whose previous slice has ended by
  // this query's start (classic interval-graph coloring, greedy on start
  // order). lanes[i] holds lane i's current end time in microseconds.
  struct Placed {
    const QueryTrace* q;
    int tid;
  };
  std::vector<const QueryTrace*> by_start;
  by_start.reserve(queries.size());
  for (const QueryTrace& q : queries) by_start.push_back(&q);
  std::sort(by_start.begin(), by_start.end(),
            [](const QueryTrace* a, const QueryTrace* b) {
              return a->start_us < b->start_us;
            });
  std::vector<double> lanes;
  std::vector<Placed> placed;
  placed.reserve(by_start.size());
  for (const QueryTrace* q : by_start) {
    const double start = static_cast<double>(q->start_us);
    const double end = start + q->total_ms * 1000.0;
    size_t lane = lanes.size();
    for (size_t i = 0; i < lanes.size(); ++i) {
      if (lanes[i] <= start) {
        lane = i;
        break;
      }
    }
    if (lane == lanes.size()) lanes.push_back(0);
    lanes[lane] = end;
    placed.push_back({q, kFirstQueryTid + static_cast<int>(lane)});
  }

  out->append("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
  bool first = true;

  AppendEventPrefix(out, &first, "M", kPublishTid);
  out->append(
      "\"name\": \"process_name\", \"args\": {\"name\": \"binchain\"}}");
  if (!publishes.empty()) {
    AppendThreadName(out, &first, kPublishTid, "publish");
  }
  for (size_t i = 0; i < lanes.size(); ++i) {
    AppendThreadName(out, &first, kFirstQueryTid + static_cast<int>(i),
                     "queries-" + std::to_string(i));
  }

  for (const Placed& p : placed) {
    const QueryTrace& q = *p.q;
    const double start = static_cast<double>(q.start_us);
    std::string args = "{\"query_id\": " + std::to_string(q.query_id) +
                       ", \"pred\": " + std::to_string(q.pred) +
                       ", \"source\": " + std::to_string(q.source) +
                       ", \"answers\": " + std::to_string(q.answers) +
                       ", \"epoch\": " + std::to_string(q.epoch) +
                       ", \"fetches\": " + std::to_string(q.fetches) +
                       ", \"memo_hits\": " + std::to_string(q.memo_hits) +
                       std::string(q.timed_out ? ", \"timed_out\": true" : "") +
                       std::string(q.cancelled ? ", \"cancelled\": true" : "") +
                       std::string(q.shed ? ", \"shed\": true" : "") + "}";
    AppendSlice(out, &first, p.tid, "query",
                "query " + std::to_string(q.query_id), start,
                q.total_ms * 1000.0, args);
    if (q.queue_wait_ms > 0) {
      AppendSlice(out, &first, p.tid, "query", "queue_wait", start,
                  q.queue_wait_ms * 1000.0, "");
    }
    if (q.eval_ms > 0) {
      AppendSlice(out, &first, p.tid, "query", "eval",
                  start + q.queue_wait_ms * 1000.0, q.eval_ms * 1000.0, "");
    }
  }

  for (const PublishTrace& p : publishes) {
    const double start = static_cast<double>(p.start_us);
    std::string args =
        "{\"publish_id\": " + std::to_string(p.publish_id) +
        ", \"epoch\": " + std::to_string(p.epoch) +
        ", \"facts_added\": " + std::to_string(p.facts_added) +
        ", \"facts_deleted\": " + std::to_string(p.facts_deleted) +
        ", \"relations_touched\": " + std::to_string(p.relations_touched) +
        std::string(p.refused ? ", \"refused\": true" : "") + "}";
    AppendSlice(out, &first, kPublishTid, "publish",
                "publish e" + std::to_string(p.epoch), start,
                p.total_ms * 1000.0, args);
    // Phase children laid end-to-end in pipeline order. Their sum can be
    // less than total_ms (un-attributed glue); the remainder just shows
    // as uncovered tail inside the parent slice.
    double at = start;
    const struct {
      const char* name;
      double ms;
    } phases[] = {{"stage", p.stage_ms},
                  {"freeze", p.freeze_ms},
                  {"artifact_refresh", p.artifact_ms},
                  {"wal_commit", p.commit_ms},
                  {"tip_swap", p.swap_ms}};
    for (const auto& ph : phases) {
      if (ph.ms > 0) {
        AppendSlice(out, &first, kPublishTid, "publish", ph.name, at,
                    ph.ms * 1000.0, "");
      }
      at += ph.ms * 1000.0;
    }
  }

  out->append(first ? "]\n}\n" : "\n  ]\n}\n");
}

std::string RenderChromeTrace(const std::vector<QueryTrace>& queries,
                              const std::vector<PublishTrace>& publishes) {
  std::string out;
  RenderChromeTrace(queries, publishes, &out);
  return out;
}

}  // namespace obs
}  // namespace binchain
