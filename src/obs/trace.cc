#include "obs/trace.h"

#include <cstdio>

namespace binchain {
namespace obs {

namespace {

std::string Ms(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

void QueryTrace::RenderJson(std::string* out) const {
  out->append("{\"query_id\": ").append(std::to_string(query_id));
  out->append(", \"pred\": ").append(std::to_string(pred));
  out->append(", \"source\": ").append(std::to_string(source));
  out->append(", \"queue_wait_ms\": ").append(Ms(queue_wait_ms));
  out->append(", \"eval_ms\": ").append(Ms(eval_ms));
  out->append(", \"total_ms\": ").append(Ms(total_ms));
  out->append(", \"iterations\": ").append(std::to_string(iterations));
  out->append(", \"expansions\": ").append(std::to_string(expansions));
  out->append(", \"fetches\": ").append(std::to_string(fetches));
  out->append(", \"memo_hits\": ").append(std::to_string(memo_hits));
  out->append(", \"cancel_checks\": ").append(std::to_string(cancel_checks));
  out->append(", \"answers\": ").append(std::to_string(answers));
  out->append(", \"epoch\": ").append(std::to_string(epoch));
  out->append(", \"timed_out\": ").append(timed_out ? "true" : "false");
  out->append(", \"cancelled\": ").append(cancelled ? "true" : "false");
  out->append(", \"shed\": ").append(shed ? "true" : "false");
  out->append("}");
}

void FlightRecorder::Record(const QueryTrace& trace) {
  if (trace.total_ms < min_record_ms_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(trace);
    return;
  }
  ring_[next_] = trace;
  next_ = (next_ + 1) % capacity_;
}

std::vector<QueryTrace> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryTrace> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, ring_[next_] is the oldest retained span.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

void FlightRecorder::RenderJson(std::string* out) const {
  std::vector<QueryTrace> spans = Snapshot();
  out->append("[");
  for (size_t i = 0; i < spans.size(); ++i) {
    out->append(i == 0 ? "\n  " : ",\n  ");
    spans[i].RenderJson(out);
  }
  out->append(spans.empty() ? "]" : "\n]");
}

std::string FlightRecorder::RenderJson() const {
  std::string out;
  RenderJson(&out);
  return out;
}

}  // namespace obs
}  // namespace binchain
