#include "obs/slow_log.h"

#include <chrono>

namespace binchain {
namespace obs {

SlowQueryLog::~SlowQueryLog() { Close(); }

Status SlowQueryLog::Open(const std::string& path, double min_ms,
                          uint64_t sample_every) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::Internal("slow-query log: cannot open " + path);
  }
  file_ = f;
  min_ms_ = min_ms;
  sample_every_ = sample_every == 0 ? 1 : sample_every;
  return Status::Ok();
}

void SlowQueryLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void SlowQueryLog::MaybeRecord(const QueryTrace& trace) {
  if (!enabled()) return;  // racy pre-check; re-checked under the lock
  if (trace.total_ms < min_ms_) return;
  std::string line;
  line.reserve(512);
  // Wall-clock stamp so offline readers can line entries up with other
  // logs; start_us stays steady-clock for intra-process timelines.
  const int64_t unix_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  line.append("{\"unix_ms\": ").append(std::to_string(unix_ms));
  line.append(", \"trace\": ");
  trace.RenderJson(&line);
  line.append("}\n");

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  ++seen_;
  if ((seen_ - 1) % sample_every_ != 0) return;  // 1-in-N, first one writes
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    // A sick log must not take the service down with it: drop the sink.
    std::fclose(file_);
    file_ = nullptr;
    return;
  }
  ++written_;
}

uint64_t SlowQueryLog::written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

uint64_t SlowQueryLog::seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_;
}

}  // namespace obs
}  // namespace binchain
