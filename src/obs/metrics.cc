#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>

#ifdef __linux__
#include <unistd.h>
#endif

#include "util/check.h"

namespace binchain {
namespace obs {

namespace {

/// Shared bound table so Observe(), UpperBound() and every test compare
/// the *same* doubles — an observation placed exactly on a boundary lands
/// in that boundary's bucket with no floating-point hair-splitting.
const std::array<double, Histogram::kBuckets>& Bounds() {
  static const std::array<double, Histogram::kBuckets> bounds = [] {
    std::array<double, Histogram::kBuckets> b{};
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      b[i] = static_cast<double>(1ull << i) / 1000.0;  // 2^i microseconds
    }
    return b;
  }();
  return bounds;
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void AppendHelpType(std::string* out, const std::string& name,
                    const std::string& help, const char* type) {
  out->append("# HELP ").append(name).append(" ").append(help).append("\n");
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

/// Resident set size in bytes, or -1 where /proc isn't available.
int64_t ReadRssBytes() {
#ifdef __linux__
  // /proc/self/statm: size resident shared text lib data dt (pages).
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return -1;
  long long size_pages = 0, resident_pages = 0;
  int matched = std::fscanf(f, "%lld %lld", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return -1;
  static const long page = sysconf(_SC_PAGESIZE);
  return static_cast<int64_t>(resident_pages) * static_cast<int64_t>(page);
#else
  return -1;
#endif
}

/// The self-describing `binchain_process_*` family: who is this scrape
/// target and how long has it been up. Registered once at first
/// Registry::Global() use (never on local registries — golden-exposition
/// tests build their own Registry precisely so this family stays out),
/// and refreshed by a render hook so every scrape sees current values —
/// including right after ResetForTest zeroes the gauges.
class ProcessMetrics {
 public:
  explicit ProcessMetrics(Registry* registry)
      : start_steady_(std::chrono::steady_clock::now()),
        start_unix_s_(std::chrono::duration_cast<std::chrono::seconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count()),
        start_time_(registry->GetGauge(
            "binchain_process_start_time_seconds",
            "Unix time the process registered its metrics, in seconds")),
        uptime_(registry->GetGauge(
            "binchain_process_uptime_seconds",
            "Seconds since the process registered its metrics")),
        rss_(registry->GetGauge(
            "binchain_process_resident_memory_bytes",
            "Resident set size in bytes (-1 where /proc is unavailable)")),
        build_info_(registry->GetGauge(
            "binchain_process_build_info",
            "Always 1; a scrape-visible marker that the binchain "
            "exposition is live")) {
    Refresh();
  }

  /// Re-stamps all four gauges; installed as a render hook.
  void Refresh() {
    start_time_->Set(start_unix_s_);
    uptime_->Set(std::chrono::duration_cast<std::chrono::seconds>(
                     std::chrono::steady_clock::now() - start_steady_)
                     .count());
    rss_->Set(ReadRssBytes());
    build_info_->Set(1);
  }

 private:
  const std::chrono::steady_clock::time_point start_steady_;
  const int64_t start_unix_s_;
  Gauge* const start_time_;
  Gauge* const uptime_;
  Gauge* const rss_;
  Gauge* const build_info_;
};

}  // namespace

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  // Assigned once per thread: round-robin over the shard space, so up to
  // kShards concurrently hot threads never share a write cell.
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

// ------------------------------------------------------------- Histogram

double Histogram::UpperBound(size_t i) {
  BINCHAIN_CHECK(i < kBuckets);
  return Bounds()[i];
}

size_t Histogram::BucketFor(double ms) {
  const auto& bounds = Bounds();
  // First bucket whose upper bound is >= ms (bounds are inclusive above);
  // past the last bound the observation overflows into +Inf.
  auto it = std::lower_bound(bounds.begin(), bounds.end(), ms);
  return static_cast<size_t>(it - bounds.begin());  // == kBuckets => +Inf
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.counts.assign(kBuckets + 1, 0);
  uint64_t sum_ns = 0;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i <= kBuckets; ++i) {
      snap.counts[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    sum_ns += s.sum_ns.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  snap.sum_ms = static_cast<double>(sum_ns) / 1e6;
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-th observation, 1-based; q=0 means the first one.
  uint64_t target = static_cast<uint64_t>(std::ceil(q * count));
  if (target == 0) target = 1;
  uint64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cum + counts[i] < target) {
      cum += counts[i];
      continue;
    }
    if (i + 1 == counts.size()) {
      // +Inf overflow: no finite upper bound to interpolate toward; the
      // last finite boundary is the best defensible estimate.
      return Histogram::UpperBound(Histogram::kBuckets - 1);
    }
    double lower = i == 0 ? 0.0 : Histogram::UpperBound(i - 1);
    double upper = Histogram::UpperBound(i);
    double frac =
        static_cast<double>(target - cum) / static_cast<double>(counts[i]);
    return lower + frac * (upper - lower);
  }
  return 0;  // unreachable: cum covers count
}

// -------------------------------------------------------------- Registry

Registry& Registry::Global() {
  // Never destroyed: cached instrument pointers outlive any dtor order.
  static Registry* global = [] {
    Registry* r = new Registry();
    // Process metrics exist exactly once, tied to the global registry's
    // lifetime (leaked with it), refreshed on every render.
    ProcessMetrics* process = new ProcessMetrics(r);
    r->AddRenderHook(process, [process] { process->Refresh(); });
    return r;
  }();
  return *global;
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help) {
  BINCHAIN_CHECK(ValidName(name));
  std::lock_guard<std::mutex> lock(mu_);
  BINCHAIN_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter(
                                     name, help))).first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help) {
  BINCHAIN_CHECK(ValidName(name));
  std::lock_guard<std::mutex> lock(mu_);
  BINCHAIN_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(name, help)))
             .first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help) {
  BINCHAIN_CHECK(ValidName(name));
  std::lock_guard<std::mutex> lock(mu_);
  BINCHAIN_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(name,
                                                                     help)))
             .first;
  }
  return it->second.get();
}

void Registry::RunHooks(
    const std::map<void*, std::function<void()>>& hooks) const {
  // Copy under mu_, run outside it: hooks set gauges (lock-free) or clear
  // span rings (their own mutex) and must not re-enter the registry lock.
  std::vector<std::function<void()>> copies;
  {
    std::lock_guard<std::mutex> lock(mu_);
    copies.reserve(hooks.size());
    for (const auto& [owner, hook] : hooks) copies.push_back(hook);
  }
  for (const auto& hook : copies) hook();
}

void Registry::AddResetHook(void* owner, std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  reset_hooks_[owner] = std::move(hook);
}

void Registry::RemoveResetHook(void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  reset_hooks_.erase(owner);
}

void Registry::AddRenderHook(void* owner, std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  render_hooks_[owner] = std::move(hook);
}

void Registry::RemoveRenderHook(void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  render_hooks_.erase(owner);
}

void Registry::RenderPrometheus(std::string* out) const {
  RunHooks(render_hooks_);
  // One interleaved name-sorted pass so the exposition is deterministic
  // regardless of registration order (the golden test depends on this).
  struct Entry {
    const std::string* name;
    const Counter* c = nullptr;
    const Gauge* g = nullptr;
    const Histogram* h = nullptr;
  };
  std::vector<Entry> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, c] : counters_) {
      entries.push_back({&name, c.get(), nullptr, nullptr});
    }
    for (const auto& [name, g] : gauges_) {
      entries.push_back({&name, nullptr, g.get(), nullptr});
    }
    for (const auto& [name, h] : histograms_) {
      entries.push_back({&name, nullptr, nullptr, h.get()});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return *a.name < *b.name; });
  for (const Entry& e : entries) {
    if (e.c != nullptr) {
      AppendHelpType(out, e.c->name(), e.c->help(), "counter");
      out->append(e.c->name())
          .append(" ")
          .append(std::to_string(e.c->Value()))
          .append("\n");
    } else if (e.g != nullptr) {
      AppendHelpType(out, e.g->name(), e.g->help(), "gauge");
      out->append(e.g->name())
          .append(" ")
          .append(std::to_string(e.g->Value()))
          .append("\n");
    } else {
      AppendHelpType(out, e.h->name(), e.h->help(), "histogram");
      HistogramSnapshot snap = e.h->Snapshot();
      uint64_t cum = 0;
      for (size_t i = 0; i < Histogram::kBuckets; ++i) {
        cum += snap.counts[i];
        out->append(e.h->name())
            .append("_bucket{le=\"")
            .append(FormatDouble(Histogram::UpperBound(i)))
            .append("\"} ")
            .append(std::to_string(cum))
            .append("\n");
      }
      out->append(e.h->name())
          .append("_bucket{le=\"+Inf\"} ")
          .append(std::to_string(snap.count))
          .append("\n");
      out->append(e.h->name())
          .append("_sum ")
          .append(FormatDouble(snap.sum_ms))
          .append("\n");
      out->append(e.h->name())
          .append("_count ")
          .append(std::to_string(snap.count))
          .append("\n");
    }
  }
}

std::string Registry::RenderPrometheus() const {
  std::string out;
  RenderPrometheus(&out);
  return out;
}

void Registry::RenderJson(std::string* out) const {
  RunHooks(render_hooks_);
  std::lock_guard<std::mutex> lock(mu_);
  out->append("{\n  \"counters\": {");
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out->append(first ? "\n" : ",\n");
    first = false;
    out->append("    \"").append(name).append("\": ").append(
        std::to_string(c->Value()));
  }
  out->append(first ? "},\n" : "\n  },\n");
  out->append("  \"gauges\": {");
  first = true;
  for (const auto& [name, g] : gauges_) {
    out->append(first ? "\n" : ",\n");
    first = false;
    out->append("    \"").append(name).append("\": ").append(
        std::to_string(g->Value()));
  }
  out->append(first ? "},\n" : "\n  },\n");
  out->append("  \"histograms\": {");
  first = true;
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap = h->Snapshot();
    out->append(first ? "\n" : ",\n");
    first = false;
    out->append("    \"").append(name).append("\": {\"count\": ");
    out->append(std::to_string(snap.count));
    out->append(", \"sum_ms\": ").append(FormatDouble(snap.sum_ms));
    out->append(", \"p50_ms\": ").append(FormatDouble(snap.P50()));
    out->append(", \"p95_ms\": ").append(FormatDouble(snap.P95()));
    out->append(", \"p99_ms\": ").append(FormatDouble(snap.P99()));
    out->append("}");
  }
  out->append(first ? "}\n" : "\n  }\n");
  out->append("}\n");
}

std::string Registry::RenderJson() const {
  std::string out;
  RenderJson(&out);
  return out;
}

void Registry::ResetForTest() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) {
      for (internal::Cell& cell : c->cells_) {
        cell.v.store(0, std::memory_order_relaxed);
      }
    }
    for (auto& [name, g] : gauges_) {
      g->value_.store(0, std::memory_order_relaxed);
    }
    for (auto& [name, h] : histograms_) {
      for (Histogram::Shard& s : h->shards_) {
        for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
        s.sum_ns.store(0, std::memory_order_relaxed);
      }
    }
  }
  // Registered rings (flight recorders, publish recorders) reset with the
  // instruments, so one hook clears the whole observability plane.
  RunHooks(reset_hooks_);
}

}  // namespace obs
}  // namespace binchain
