// Per-query trace spans and the slow-query flight recorder.
//
// A QueryTrace is the request-scoped complement to the process-wide
// metrics registry: where a Counter answers "how many queries timed out
// today", the trace answers "why was *this* query slow" — it records the
// span of one query's life through Submit -> queue -> EvalFrom ->
// complete (threaded through the service the same way CancelToken is),
// split into queue wait and eval wall time plus the evaluator's own
// effort counters and the epoch the query ran against.
//
// Completed spans are surfaced on QueryResponse, and spans at or above a
// latency threshold are retained in a fixed-size ring (FlightRecorder),
// so "dump the last N slow queries" works after the fact without having
// logged every request.
//
// This header is dependency-free below util/ on purpose: service, live
// and durability all include it, so it must not pull eval/ types in.
#ifndef BINCHAIN_OBS_TRACE_H_
#define BINCHAIN_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace binchain {
namespace obs {

/// One query's completed span. Every field is filled in by the service
/// completion seam — queued-then-cancelled (or shed) queries still get a
/// complete span with eval_ms == 0, so the recorder sees admission
/// failures too.
struct QueryTrace {
  uint64_t query_id = 0;  ///< unique within the process, assigned at submit
  uint32_t pred = 0;      ///< SymbolId of the queried predicate
  uint32_t source = 0;    ///< TermId of the source constant

  double queue_wait_ms = 0;  ///< submit -> worker pickup
  double eval_ms = 0;        ///< worker pickup -> evaluator return
  double total_ms = 0;       ///< submit -> completion callback

  uint64_t iterations = 0;     ///< fixpoint iterations
  uint64_t expansions = 0;     ///< derived-transition machine splices
  uint64_t fetches = 0;        ///< relation tuple retrievals
  uint64_t memo_hits = 0;      ///< closure/adjacency memo hits
  uint64_t cancel_checks = 0;  ///< cancellation polls observed
  uint64_t answers = 0;        ///< result tuples produced
  uint64_t epoch = 0;          ///< snapshot epoch the query ran against

  /// Terminal disposition, mirroring QueryResponse's flags.
  bool timed_out = false;
  bool cancelled = false;
  bool shed = false;  ///< rejected at admission (queue full)

  /// One JSON object (no trailing newline), appended to *out.
  void RenderJson(std::string* out) const;
};

/// Fixed-capacity ring of the most recent spans whose total latency met
/// `min_record_ms`. Record() takes a mutex — it runs once per query at
/// the completion seam, next to the batch bookkeeping mutex that already
/// lives there, so it is far off the traversal hot path.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 64, double min_record_ms = 0)
      : capacity_(capacity == 0 ? 1 : capacity),
        min_record_ms_(min_record_ms) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Retains the span if trace.total_ms >= min_record_ms, evicting the
  /// oldest retained span once the ring is full.
  void Record(const QueryTrace& trace);

  /// Retained spans, oldest first.
  std::vector<QueryTrace> Snapshot() const;

  /// JSON array of the retained spans, oldest first, appended to *out.
  void RenderJson(std::string* out) const;
  std::string RenderJson() const;

  size_t capacity() const { return capacity_; }
  double min_record_ms() const { return min_record_ms_; }

 private:
  const size_t capacity_;
  const double min_record_ms_;
  mutable std::mutex mu_;
  std::vector<QueryTrace> ring_;  // grows to capacity_, then wraps
  size_t next_ = 0;               // ring_[next_] is the oldest once full
};

}  // namespace obs
}  // namespace binchain

#endif  // BINCHAIN_OBS_TRACE_H_
