// Per-query and per-publish trace spans, and the flight-recorder rings.
//
// A QueryTrace is the request-scoped complement to the process-wide
// metrics registry: where a Counter answers "how many queries timed out
// today", the trace answers "why was *this* query slow" — it records the
// span of one query's life through Submit -> queue -> EvalFrom ->
// complete (threaded through the service the same way CancelToken is),
// split into queue wait and eval wall time plus the evaluator's own
// effort counters and the epoch the query ran against.
//
// A PublishTrace is the same idea for the other pipeline the process runs:
// SnapshotManager::Publish, split into its phases (delta staging, the
// incremental freeze, the epoch-artifact refresh, the WAL commit/fsync,
// and the tip swap). Per-phase publish spans are the measurement substrate
// for group-commit work: the commit_ms column is exactly the cost a
// batched fdatasync would amortize.
//
// Completed spans are retained in fixed-size rings (SpanRing): one for
// queries (the FlightRecorder, per service), one for publishes (the
// PublishRecorder, per snapshot manager), so "dump the last N slow
// queries / publishes" works after the fact without having logged every
// request. Both kinds also render as Chrome trace-event JSON
// (RenderChromeTrace), loadable in perfetto / chrome://tracing.
//
// This header is dependency-free below util/ on purpose: service, live
// and durability all include it, so it must not pull eval/ types in.
#ifndef BINCHAIN_OBS_TRACE_H_
#define BINCHAIN_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace binchain {
namespace obs {

/// Default capacity of every span ring. One shared constant so the
/// recorder in trace.h and the service wiring cannot drift apart (they
/// shipped as 64 vs the documented 256 once).
inline constexpr size_t kSpanRingCapacity = 256;

/// One query's completed span. Every field is filled in by the service
/// completion seam — queued-then-cancelled (or shed) queries still get a
/// complete span with eval_ms == 0, so the recorder sees admission
/// failures too.
struct QueryTrace {
  uint64_t query_id = 0;  ///< unique within the process, assigned at submit
  uint32_t pred = 0;      ///< SymbolId of the queried predicate
  uint32_t source = 0;    ///< TermId of the source constant

  /// Submission time in microseconds on the process steady clock — the
  /// same clock PublishTrace::start_us uses, so query and publish spans
  /// line up on one Chrome-trace timeline.
  uint64_t start_us = 0;

  double queue_wait_ms = 0;  ///< submit -> worker pickup
  double eval_ms = 0;        ///< worker pickup -> evaluator return
  double total_ms = 0;       ///< submit -> completion callback

  uint64_t iterations = 0;     ///< fixpoint iterations
  uint64_t expansions = 0;     ///< derived-transition machine splices
  uint64_t fetches = 0;        ///< relation tuple retrievals
  uint64_t memo_hits = 0;      ///< closure/adjacency memo hits
  uint64_t cancel_checks = 0;  ///< cancellation polls observed
  uint64_t answers = 0;        ///< result tuples produced
  /// Streamed answer chunks delivered to the request's AnswerSink (0 for
  /// non-streaming requests; 1 for replayed answers — cache hits and
  /// collapsed queries arrive as a single chunk).
  uint64_t chunks = 0;
  uint64_t epoch = 0;          ///< snapshot epoch the query ran against

  /// Terminal disposition, mirroring QueryResponse's flags.
  bool timed_out = false;
  bool cancelled = false;
  bool shed = false;  ///< rejected at admission (queue full)
  /// Served from the answer cache on the caller thread — no queue, no
  /// evaluation; eval_ms is 0 and the effort counters replay the original
  /// evaluation's.
  bool cache_hit = false;
  /// Result replayed from another query's evaluation: a single-flight
  /// waiter fanned out by its leader, or an in-batch dedup follower.
  bool collapsed = false;

  /// One JSON object (no trailing newline), appended to *out.
  void RenderJson(std::string* out) const;
};

/// One publish's completed span: the per-phase wall times of the epoch
/// pipeline, in pipeline order. Captured inside SnapshotManager::Publish
/// for successful *and* refused publishes (a refused durable commit spans
/// everything up to and including commit_ms; swap_ms stays 0 because the
/// tip never moved).
struct PublishTrace {
  uint64_t publish_id = 0;  ///< monotone per manager, refusals included
  uint64_t epoch = 0;       ///< epoch id that became (or failed to become) tip
  uint64_t start_us = 0;    ///< publish start, steady-clock microseconds

  double stage_ms = 0;     ///< BeginDelta + staged-op merge + prune
  double freeze_ms = 0;    ///< incremental index work on the delta layers
  double artifact_ms = 0;  ///< epoch-artifact refresh (O(delta) by contract)
  double commit_ms = 0;    ///< durability-sink commit + fsync (0 without sink)
  double swap_ms = 0;      ///< tip swap + post-swap hooks (checkpoint policy)
  double total_ms = 0;     ///< whole Publish() call

  uint64_t facts_added = 0;
  uint64_t facts_deleted = 0;
  uint64_t relations_touched = 0;  ///< relations that got a delta layer
  bool refused = false;  ///< durability commit refused; no tip swap happened

  /// One JSON object (no trailing newline), appended to *out.
  void RenderJson(std::string* out) const;
};

namespace internal {
/// Clears every ring registered with Registry::Global()'s reset hook when
/// ResetForTest runs (implemented in trace.cc to keep the template below
/// free of the registry dependency).
void RegisterRingResetHook(void* owner, void (*clear)(void*));
void UnregisterRingResetHook(void* owner);
}  // namespace internal

/// Fixed-capacity ring of the most recent spans whose total latency met
/// `min_record_ms`. Record() takes a mutex — it runs once per span on a
/// completion seam (next to bookkeeping mutexes that already live there),
/// so it is far off the traversal hot paths.
///
/// Every ring registers itself with the global metrics registry's
/// test-reset hook, so obs::Registry::Global().ResetForTest() clears the
/// recorded spans together with the instrument values — one hook resets
/// the whole observability plane.
template <typename Span>
class SpanRing {
 public:
  explicit SpanRing(size_t capacity = kSpanRingCapacity,
                    double min_record_ms = 0)
      : capacity_(capacity == 0 ? 1 : capacity),
        min_record_ms_(min_record_ms) {
    internal::RegisterRingResetHook(this, [](void* self) {
      static_cast<SpanRing*>(self)->Clear();
    });
  }
  ~SpanRing() { internal::UnregisterRingResetHook(this); }

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  /// Retains the span if span.total_ms >= min_record_ms, evicting the
  /// oldest retained span once the ring is full.
  void Record(const Span& span) {
    if (span.total_ms < min_record_ms_) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(span);
      return;
    }
    ring_[next_] = span;
    next_ = (next_ + 1) % capacity_;
  }

  /// Retained spans, oldest first.
  std::vector<Span> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Span> out;
    out.reserve(ring_.size());
    // Once the ring has wrapped, ring_[next_] is the oldest retained span.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
    return out;
  }

  /// Drops every retained span (capacity and threshold stay).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    next_ = 0;
  }

  /// JSON array of the retained spans, oldest first, appended to *out.
  void RenderJson(std::string* out) const {
    std::vector<Span> spans = Snapshot();
    out->append("[");
    for (size_t i = 0; i < spans.size(); ++i) {
      out->append(i == 0 ? "\n  " : ",\n  ");
      spans[i].RenderJson(out);
    }
    out->append(spans.empty() ? "]" : "\n]");
  }
  std::string RenderJson() const {
    std::string out;
    RenderJson(&out);
    return out;
  }

  size_t capacity() const { return capacity_; }
  double min_record_ms() const { return min_record_ms_; }

 private:
  const size_t capacity_;
  const double min_record_ms_;
  mutable std::mutex mu_;
  std::vector<Span> ring_;  // grows to capacity_, then wraps
  size_t next_ = 0;         // ring_[next_] is the oldest once full
};

/// The slow-query ring the service owns (historical name kept: every
/// caller since PR 7 says "flight recorder").
using FlightRecorder = SpanRing<QueryTrace>;
/// The publish-pipeline ring the snapshot manager owns.
using PublishRecorder = SpanRing<PublishTrace>;

/// Microseconds on the process-wide steady clock the spans' start_us
/// fields use (origin is the first call, so traces start near t=0).
uint64_t SteadyNowUs();

/// Chrome trace-event JSON ({"traceEvents": [...]}) over query and
/// publish spans on one shared timeline: each query renders as a complete
/// ("X") slice with nested queue_wait/eval phases, each publish as a slice
/// with its five pipeline phases nested. Loadable in perfetto /
/// chrome://tracing. Appends to *out.
void RenderChromeTrace(const std::vector<QueryTrace>& queries,
                       const std::vector<PublishTrace>& publishes,
                       std::string* out);
std::string RenderChromeTrace(const std::vector<QueryTrace>& queries,
                              const std::vector<PublishTrace>& publishes);

}  // namespace obs
}  // namespace binchain

#endif  // BINCHAIN_OBS_TRACE_H_
