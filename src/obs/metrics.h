// Unified observability: the process-wide metrics registry.
//
// Every subsystem PR 1-6 grew invented its own stats struct (EvalStats,
// BatchStats, PublishStats, WAL commit timings) that lives and dies with
// one call. This layer gives them a common spine: named counters, gauges
// and fixed-log-bucket latency histograms, registered once by name and
// incremented forever after through cached pointers, aggregated on read
// into a Prometheus text exposition (the future src/server/ `/metrics`
// endpoint is a ten-line handler over RenderPrometheus) or a
// machine-readable JSON dump.
//
// Cost model — the part that has to survive the hot paths PR 1-4 spent so
// long making fast:
//
//  * Writes are *sharded*: each instrument owns kShards cacheline-padded
//    atomic cells, and every thread picks one stable cell on first use
//    (the same stable-identity trick as ThreadPool's worker ids, extended
//    to arbitrary threads by a monotone thread-registration counter). A
//    hot-path Inc() is therefore one relaxed fetch_add on a cacheline no
//    other running thread touches — no locks, no contention, no fences.
//  * Reads aggregate: Value()/Snapshot() sum the cells with relaxed loads.
//    Totals are exact once writers quiesce and monotonically-consistent
//    while they run (a concurrent snapshot may miss in-flight increments,
//    never invent them). That is the usual scrape contract.
//  * Registration (GetCounter etc.) takes a mutex and is meant for startup
//    paths only; callers cache the returned pointer, which stays valid for
//    the registry's lifetime (process lifetime for Registry::Global()).
//
// Naming convention (docs/metrics.md has the full inventory):
// `binchain_<subsystem>_<name>[_total|_ms]` — counters end in `_total`,
// histograms carry their unit (`_ms`), gauges are bare. Subsystems:
// `service`, `live`, `wal`, `engine`.
#ifndef BINCHAIN_OBS_METRICS_H_
#define BINCHAIN_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace binchain {
namespace obs {

/// Write-side sharding width. More shards than this many concurrently hot
/// threads degrades gracefully (two threads sharing a cell contend on one
/// cacheline, correctness unaffected).
inline constexpr size_t kShards = 16;

/// Stable shard index of the calling thread, assigned round-robin on first
/// use and fixed for the thread's lifetime.
size_t ThreadShard();

namespace internal {
/// One write cell, alone on its cacheline so shard-local increments never
/// false-share.
struct alignas(64) Cell {
  std::atomic<uint64_t> v{0};
};
}  // namespace internal

/// Monotone event count. Inc() is the uncontended hot-path write; Value()
/// aggregates across shards.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    cells_[ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t sum = 0;
    for (const internal::Cell& c : cells_) {
      sum += c.v.load(std::memory_order_relaxed);
    }
    return sum;
  }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class Registry;
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  internal::Cell cells_[kShards];
  const std::string name_, help_;
};

/// Point-in-time signed value (queue depth, serving epoch, poisoned flag).
/// Gauges are set from slow paths (publish, admission), so a single atomic
/// is enough — no sharding.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class Registry;
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  std::atomic<int64_t> value_{0};
  const std::string name_, help_;
};

/// Aggregated read of one histogram: cumulative bucket counts plus
/// count/sum, consistent enough for percentile extraction (see class
/// comment on concurrent-read semantics).
struct HistogramSnapshot {
  /// counts[i] = observations in bucket i (NOT cumulative); the last entry
  /// is the +Inf overflow bucket.
  std::vector<uint64_t> counts;
  uint64_t count = 0;  // total observations
  double sum_ms = 0;   // total observed time

  /// Quantile q in [0, 1], linearly interpolated inside the winning
  /// log-bucket (the histogram_quantile() estimate: exact to within one
  /// bucket's width, i.e. a factor-of-2 band at worst). 0 when empty.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
};

/// Fixed-log-bucket latency histogram over milliseconds. Bucket i holds
/// observations v with UpperBound(i-1) < v <= UpperBound(i), where
/// UpperBound(i) = 0.001ms * 2^i — 1 microsecond up to ~2.2 minutes across
/// kBuckets doublings, then one +Inf overflow bucket. Fixed bounds keep
/// Observe() allocation-free and make snapshots from different processes /
/// runs directly comparable.
class Histogram {
 public:
  static constexpr size_t kBuckets = 28;
  /// Upper bound of bucket i in milliseconds (i < kBuckets).
  static double UpperBound(size_t i);
  /// Bucket index for one observation (kBuckets = the +Inf bucket).
  static size_t BucketFor(double ms);

  void Observe(double ms) {
    Shard& s = shards_[ThreadShard()];
    s.buckets[BucketFor(ms)].fetch_add(1, std::memory_order_relaxed);
    // Sum is carried in nanoseconds so a plain integer fetch_add works
    // (atomic<double> has no add until C++20); 64-bit ns wraps after ~584
    // years of accumulated latency.
    s.sum_ns.fetch_add(static_cast<uint64_t>(ms * 1e6),
                       std::memory_order_relaxed);
  }
  HistogramSnapshot Snapshot() const;
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kBuckets + 1] = {};
    std::atomic<uint64_t> sum_ns{0};
  };
  Shard shards_[kShards];
  const std::string name_, help_;
};

/// Owns every instrument, keyed by name. Get* registers on first call and
/// returns the existing instrument after that (idempotent, so two services
/// in one process share `binchain_service_*` the way two scrape targets
/// never would — totals are process-wide by design). Registering one name
/// as two different kinds aborts: that is a programming error, not input.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every production subsystem records into.
  static Registry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help);

  /// Prometheus text exposition format, version 0.0.4: HELP/TYPE comments,
  /// cumulative `_bucket{le="..."}` series per histogram, instruments in
  /// name order. Appends to *out.
  void RenderPrometheus(std::string* out) const;
  std::string RenderPrometheus() const;

  /// Machine-readable dump: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum_ms, p50_ms, p95_ms, p99_ms}}}.
  void RenderJson(std::string* out) const;
  std::string RenderJson() const;

  /// Zeroes every value and runs every registered reset hook; instruments
  /// (and cached pointers) stay valid. Test isolation only — production
  /// counters are cumulative forever.
  void ResetForTest();

  /// Reset hooks extend ResetForTest beyond the instruments this registry
  /// owns: obs::SpanRing registers one per ring, so a single test hook
  /// clears metrics *and* flight recorders. Keyed by owner pointer;
  /// owners must RemoveResetHook before they die. Hooks run outside mu_
  /// (they may take their own locks) after the instruments are zeroed.
  void AddResetHook(void* owner, std::function<void()> hook);
  void RemoveResetHook(void* owner);

  /// Render hooks run before each RenderPrometheus/RenderJson pass —
  /// point-in-time gauges that are *sampled* rather than maintained
  /// (process uptime, RSS) refresh themselves here so scrapes are always
  /// current. Same ownership contract as reset hooks.
  void AddRenderHook(void* owner, std::function<void()> hook);
  void RemoveRenderHook(void* owner);

 private:
  /// Snapshots the hooks under mu_ and runs them outside it.
  void RunHooks(const std::map<void*, std::function<void()>>& hooks) const;

  mutable std::mutex mu_;  // guards the maps; instruments are lock-free
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<void*, std::function<void()>> reset_hooks_;
  std::map<void*, std::function<void()>> render_hooks_;
};

}  // namespace obs
}  // namespace binchain

#endif  // BINCHAIN_OBS_METRICS_H_
