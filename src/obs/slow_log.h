// Structured slow-query log: one JSON object per line (JSONL), appended
// to a file as queries complete.
//
// The flight recorder answers "what were the last N slow queries" from
// inside the process; this sink answers the operational complement —
// "what were the slow queries *last Tuesday*" — by durably appending the
// same QueryTrace spans to disk, filtered by a latency threshold and an
// optional 1-in-N sampler so a hot service doesn't turn its log into a
// second write amplifier. Lines are self-contained JSON objects (the
// QueryTrace::RenderJson shape plus a wall-clock `unix_ms` stamp), so
// `jq`/`grep` work without a reader library.
//
// Threading: MaybeRecord serializes on an internal mutex and performs
// file I/O, so the service calls it *off* the batch completion lock
// (after the completion is already observable) with a copy of the trace.
#ifndef BINCHAIN_OBS_SLOW_LOG_H_
#define BINCHAIN_OBS_SLOW_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "obs/trace.h"
#include "util/status.h"

namespace binchain {
namespace obs {

/// Append-only JSONL sink for slow QueryTrace spans. Default-constructed
/// it is disabled and MaybeRecord is a cheap no-op; Open() arms it.
class SlowQueryLog {
 public:
  SlowQueryLog() = default;
  ~SlowQueryLog();
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Opens `path` for appending. A span is written when its total_ms is
  /// >= min_ms AND it is the sample_every-th such span (sample_every=1
  /// writes every one; 0 is treated as 1). Re-opening closes the
  /// previous file first.
  Status Open(const std::string& path, double min_ms, uint64_t sample_every);

  /// Flushes and closes; MaybeRecord becomes a no-op again.
  void Close();

  bool enabled() const { return file_ != nullptr; }

  /// Appends the span as one JSONL line if it passes the threshold and
  /// the sampler. Never fails the caller: a write error closes the sink
  /// and bumps the dropped counter instead.
  void MaybeRecord(const QueryTrace& trace);

  /// Spans actually written / spans that met the threshold (written +
  /// sampled-away + dropped-on-error).
  uint64_t written() const;
  uint64_t seen() const;

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  double min_ms_ = 0;
  uint64_t sample_every_ = 1;
  uint64_t seen_ = 0;     // spans at/above threshold while enabled
  uint64_t written_ = 0;  // lines appended
};

}  // namespace obs
}  // namespace binchain

#endif  // BINCHAIN_OBS_SLOW_LOG_H_
