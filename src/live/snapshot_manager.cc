#include "live/snapshot_manager.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "util/check.h"

namespace binchain {
namespace {

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// The live metric family, registered once per process. Publish() and
/// Seal() are slow paths (file I/O, full freeze), so recording here is
/// pure bookkeeping noise — the point is that the counters survive the
/// PublishStats structs that callers drop on the floor.
struct LiveObs {
  static LiveObs& Get() {
    static LiveObs* o = new LiveObs();
    return *o;
  }
  obs::Counter* publishes;
  obs::Counter* refused;
  obs::Counter* facts_added;
  obs::Counter* facts_deleted;
  obs::Counter* facts_duplicate;
  obs::Counter* facts_rejected;
  obs::Histogram* publish_ms;
  obs::Gauge* epoch;
  obs::Gauge* pending;

 private:
  LiveObs() {
    obs::Registry& r = obs::Registry::Global();
    publishes = r.GetCounter("binchain_live_publishes_total",
                             "Publishes that swapped the serving tip");
    refused = r.GetCounter(
        "binchain_live_publish_refused_total",
        "Publishes aborted by a refused durability commit (batch restaged)");
    facts_added = r.GetCounter("binchain_live_facts_added_total",
                               "Facts added across all publishes");
    facts_deleted = r.GetCounter("binchain_live_facts_deleted_total",
                                 "Facts retracted across all publishes");
    facts_duplicate =
        r.GetCounter("binchain_live_facts_duplicate_total",
                     "Staged facts already present at publish time");
    facts_rejected =
        r.GetCounter("binchain_live_facts_rejected_total",
                     "Staged facts rejected (arity mismatch)");
    publish_ms = r.GetHistogram(
        "binchain_live_publish_ms",
        "Publish latency, stage swap to tip swap (successful publishes)");
    epoch = r.GetGauge("binchain_live_epoch", "Epoch of the serving tip");
    pending = r.GetGauge("binchain_live_pending_facts",
                         "Facts staged but not yet published");
  }
};

}  // namespace

SnapshotManager::SnapshotManager(std::unique_ptr<Database> genesis)
    : genesis_(std::move(genesis)) {
  BINCHAIN_CHECK(genesis_ != nullptr);
  BINCHAIN_CHECK(!genesis_->frozen());
}

Database* SnapshotManager::genesis() {
  std::lock_guard<std::mutex> lock(mu_);
  BINCHAIN_CHECK(genesis_ != nullptr);  // sealed managers have no open db
  return genesis_.get();
}

void SnapshotManager::SetArtifactBuilder(ArtifactBuilder builder) {
  std::lock_guard<std::mutex> lock(mu_);
  artifact_builder_ = std::move(builder);
}

void SnapshotManager::SetPublishListener(PublishListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  publish_listener_ = std::move(listener);
}

void SnapshotManager::SetDurabilitySink(DurabilitySink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
}

void SnapshotManager::Seal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (genesis_ == nullptr) return;  // already sealed
  genesis_->Freeze();
  if (artifact_builder_) {
    genesis_->AttachArtifact(artifact_builder_(*genesis_, nullptr));
  }
  tip_ = std::shared_ptr<const Database>(std::move(genesis_));
  genesis_keeper_ = tip_;
  LiveObs::Get().epoch->Set(static_cast<int64_t>(tip_->epoch()));
  // Durable genesis: the initial checkpoint captures everything loaded
  // before the seal, so recovery starts from the sealed contents and only
  // replays published batches.
  if (sink_ != nullptr) sink_->Sealed(*tip_);
}

bool SnapshotManager::sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tip_ != nullptr;
}

void SnapshotManager::Stage(PendingFact f) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) {
    // Log before staging so the WAL always covers the in-memory batch. A
    // failed append poisons the sink; the op is still staged, and the next
    // Commit refuses, aborting the publish rather than silently dropping
    // durability for this op.
    if (f.is_delete) {
      sink_->StageDelete(f.pred, f.args);
    } else {
      sink_->StageAdd(f.pred, f.args);
    }
  }
  pending_.push_back(std::move(f));
  LiveObs::Get().pending->Set(static_cast<int64_t>(pending_.size()));
}

void SnapshotManager::AddFact(std::string pred,
                              std::vector<std::string> args) {
  Stage(PendingFact{std::move(pred), std::move(args), /*is_delete=*/false});
}

void SnapshotManager::DeleteFact(std::string pred,
                                 std::vector<std::string> args) {
  Stage(PendingFact{std::move(pred), std::move(args), /*is_delete=*/true});
}

size_t SnapshotManager::PendingFacts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::shared_ptr<const Database> SnapshotManager::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  BINCHAIN_CHECK(tip_ != nullptr);  // Seal() before serving
  return tip_;
}

uint64_t SnapshotManager::epoch() const { return Acquire()->epoch(); }

PublishStats SnapshotManager::Publish() {
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  const uint64_t start_us = obs::SteadyNowUs();
  auto t0 = std::chrono::steady_clock::now();

  std::vector<PendingFact> delta;
  std::shared_ptr<const Database> base;
  ArtifactBuilder builder;
  PublishListener listener;
  DurabilitySink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    BINCHAIN_CHECK(tip_ != nullptr);  // Seal() before publishing
    delta.swap(pending_);
    LiveObs::Get().pending->Set(static_cast<int64_t>(pending_.size()));
    base = tip_;
    builder = artifact_builder_;
    listener = publish_listener_;
    sink = sink_;
  }

  PublishStats stats;
  // Publish-pipeline span for the recorder, shared by the refused and
  // successful exits. Reads the phase timings out of `stats` at call time,
  // so it must run after wall_ms is final. swap_ms is the un-attributed
  // remainder (tip swap + Published hook + bookkeeping); a refused publish
  // never swapped, so its remainder is dropped rather than mislabeled.
  auto record_span = [&](bool refused) {
    obs::PublishTrace span;
    span.publish_id = ++next_publish_id_;  // publish_mu_ held
    span.epoch = stats.epoch;
    span.start_us = start_us;
    span.stage_ms = stats.build_ms;
    span.freeze_ms = stats.freeze_ms;
    span.artifact_ms = stats.artifact_ms;
    span.commit_ms = stats.commit_ms;
    if (!refused) {
      double attributed = stats.build_ms + stats.freeze_ms +
                          stats.artifact_ms + stats.commit_ms;
      span.swap_ms = stats.wall_ms > attributed ? stats.wall_ms - attributed
                                                : 0;
    }
    span.total_ms = stats.wall_ms;
    span.facts_added = stats.facts_added;
    span.facts_deleted = stats.facts_deleted;
    span.relations_touched = stats.relations_touched;
    span.refused = refused;
    publish_recorder_.Record(span);
  };
  // Build the successor: shared relations, extended symbol space. Only the
  // facts of `delta` cost anything; readers keep serving `base` untouched.
  std::unique_ptr<Database> next = Database::BeginDelta(base);
  size_t symbols_before = next->symbols().size();
  for (const PendingFact& f : delta) {
    // Staged facts are unvalidated client input: a schema violation must
    // reject the fact, not abort the serving process inside GetOrCreate.
    const Relation* existing = next->Find(f.pred);
    if (existing != nullptr && existing->arity() != f.args.size()) {
      ++stats.facts_rejected;
      continue;
    }
    if (f.is_delete) {
      // DeleteFact probes before copy-on-write and never interns, so a
      // retraction of an absent fact costs nothing and layers nothing.
      if (next->DeleteFact(f.pred, f.args)) {
        ++stats.facts_deleted;
      } else {
        ++stats.facts_delete_missing;
      }
      continue;
    }
    if (existing != nullptr) {
      // Duplicate probe before AddFact: resolving through Find (never
      // interning) keeps an already-present fact from triggering the
      // copy-on-write — a duplicate-only publish must not layer, flatten,
      // or re-index anything. A constant the chain has never seen means
      // the tuple is certainly new.
      Tuple t;
      bool resolvable = true;
      for (const std::string& arg : f.args) {
        auto id = next->symbols().Find(arg);
        if (!id) {
          resolvable = false;
          break;
        }
        t.push_back(*id);
      }
      if (resolvable && existing->Contains(t)) {
        ++stats.facts_duplicate;
        continue;
      }
    }
    if (next->AddFact(f.pred, f.args)) {
      ++stats.facts_added;
    } else {
      ++stats.facts_duplicate;
    }
  }
  next->PruneEmptyDeltas();
  stats.new_symbols = next->symbols().size() - symbols_before;
  for (const std::string& name : next->relation_names()) {
    if (next->SharesWithBase(name)) continue;
    ++stats.relations_touched;
    const Relation* rel = next->Find(name);
    if (rel->base() == nullptr && base->Find(name) != nullptr) {
      ++stats.relations_flattened;
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  stats.build_ms = MsBetween(t0, t1);

  // Incremental re-freeze: index work happens only on the delta layers
  // (indexed_upto catch-up), never on shared base storage.
  next->Freeze();
  auto t2 = std::chrono::steady_clock::now();
  stats.freeze_ms = MsBetween(t1, t2);
  stats.epoch = next->epoch();

  // Artifact refresh rides the epoch: the successor's shared evaluation
  // state is derived from the predecessor's in O(delta) (reuse by pointer /
  // chained extension; see EvalArtifacts::BuildFor) and attached before the
  // tip swap, so no reader ever sees an epoch without its artifacts.
  if (builder) {
    next->AttachArtifact(builder(*next, base->artifact()));
  }
  auto t3 = std::chrono::steady_clock::now();
  stats.artifact_ms = MsBetween(t2, t3);

  // Durability point: the commit record must be on stable storage *before*
  // the tip swap — once a reader can see the epoch, a crash must recover
  // it. A refused commit aborts the publish: the staged batch goes back to
  // the front of the pending queue (facts staged meanwhile stay behind it,
  // preserving staging order) and the serving tip does not move.
  if (sink != nullptr) {
    Status st = sink->Commit(next->epoch());
    stats.commit_ms = MsBetween(t3, std::chrono::steady_clock::now());
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      pending_.insert(pending_.begin(),
                      std::make_move_iterator(delta.begin()),
                      std::make_move_iterator(delta.end()));
      LiveObs::Get().refused->Inc();
      LiveObs::Get().pending->Set(static_cast<int64_t>(pending_.size()));
      stats.status = std::move(st);
      stats.wall_ms = MsBetween(t0, std::chrono::steady_clock::now());
      record_span(/*refused=*/true);
      return stats;
    }
  }

  std::shared_ptr<const Database> tip(std::move(next));
  {
    std::lock_guard<std::mutex> lock(mu_);
    tip_ = tip;
  }
  // Post-swap hooks. Both run outside mu_ so a checkpoint's file I/O or a
  // cache sweep never blocks staging or Acquire; publish_mu_ still
  // serializes them against the next publish. The listener runs first:
  // invalidation promptness is a serving-correctness nicety (lookups
  // self-validate regardless), checkpointing is pure background policy.
  if (listener) listener(*tip);
  if (sink != nullptr) sink->Published(*tip);
  stats.wall_ms = MsBetween(t0, std::chrono::steady_clock::now());
  LiveObs& o = LiveObs::Get();
  o.publishes->Inc();
  o.facts_added->Inc(stats.facts_added);
  o.facts_deleted->Inc(stats.facts_deleted);
  o.facts_duplicate->Inc(stats.facts_duplicate);
  o.facts_rejected->Inc(stats.facts_rejected);
  o.publish_ms->Observe(stats.wall_ms);
  o.epoch->Set(static_cast<int64_t>(stats.epoch));
  record_span(/*refused=*/false);
  return stats;
}

}  // namespace binchain
