// Live-update subsystem: epoch-based snapshot lifecycle over the frozen
// storage the query service reads.
//
// PR 2 made concurrent serving sound by freezing the database once; this
// layer turns that one-shot freeze into a continuous loop. A
// SnapshotManager owns a chain of versioned immutable database epochs plus
// a mutable batch of pending fact insertions (the delta). Publish() merges
// the delta into a successor snapshot built with Database::BeginDelta —
// unchanged relations are shared by pointer, touched relations get a delta
// layer whose Freeze() indexes only the new rows (`indexed_upto`
// catch-up), and the symbol table is extended, never re-interned — then
// atomically swaps the successor in as the serving tip. In-flight queries
// keep the shared_ptr epoch handle they acquired and finish on their old
// epoch; new queries land on the new one. Publish cost is therefore
// O(delta), not O(database): the occasional flatten (compaction) that
// keeps layer chains shallow is amortized against the rows that forced it.
//
// Thread safety: AddFact/PendingFacts/Acquire/epoch may be called from any
// thread, concurrently with queries and with Publish. Publish itself is
// internally serialized (concurrent calls queue up).
#ifndef BINCHAIN_LIVE_SNAPSHOT_MANAGER_H_
#define BINCHAIN_LIVE_SNAPSHOT_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "storage/database.h"
#include "util/status.h"

namespace binchain {

/// What one Publish() did, for operators and the live benchmark.
///
/// Scope note: these are *per-call* results. The cumulative versions of the
/// fact counters, the publish-latency distribution, and the serving-epoch
/// gauge now live in the process-wide metrics registry (obs/metrics.h, the
/// `binchain_live_*` family) — prefer the registry for monitoring; keep
/// using this struct for the return-value contract of a single publish
/// (status, per-phase timings, relation-level touch counts).
struct PublishStats {
  uint64_t epoch = 0;             // epoch id that became the serving tip
  uint64_t facts_added = 0;       // new tuples inserted into the successor
  uint64_t facts_duplicate = 0;   // staged facts already present
  uint64_t facts_rejected = 0;    // arity mismatch with the existing schema
  uint64_t facts_deleted = 0;     // tombstones placed by staged retractions
  uint64_t facts_delete_missing = 0;  // retractions of absent/dead facts
  uint64_t new_symbols = 0;       // fresh spellings interned by the delta
  uint64_t relations_touched = 0;    // relations that got a delta layer
  uint64_t relations_flattened = 0;  // of those, compacted to standalone
  double build_ms = 0;   // BeginDelta + inserts + prune
  double freeze_ms = 0;  // incremental index work on the delta layers
  /// Artifact-builder hook time (epoch-shared memo refresh). O(delta) by
  /// contract: untouched entries are re-shared by pointer, touched ones are
  /// invalidated or chained and rebuilt lazily off the publish path.
  double artifact_ms = 0;
  /// Durability-sink commit time (WAL commit record + fsync). Zero without
  /// a sink.
  double commit_ms = 0;
  double wall_ms = 0;    // total, including the tip swap
  /// Non-OK when the durability sink refused the commit: the tip did NOT
  /// swap, the staged batch was re-queued, and the epoch id was not
  /// consumed. In-memory managers always report OK.
  Status status = Status::Ok();
};

/// Durability hook the epoch publisher drives (implemented by
/// durability::Wal; an abstract interface here so the live layer stays
/// below durability). Calls arrive in a strict order per batch: zero or
/// more Stage* (as facts are staged, under the manager's staging lock,
/// matching the in-memory staging order), then — inside Publish, after the
/// successor froze but *before* the tip swap — exactly one Commit. A
/// non-OK Commit aborts the publish: no swap, batch re-queued. Published
/// fires after the swap (checkpoint policy lives behind it); Sealed fires
/// once when the genesis becomes the first serving epoch.
class DurabilitySink {
 public:
  virtual ~DurabilitySink() = default;
  virtual Status StageAdd(const std::string& pred,
                          const std::vector<std::string>& args) = 0;
  virtual Status StageDelete(const std::string& pred,
                             const std::vector<std::string>& args) = 0;
  virtual Status Commit(uint64_t epoch) = 0;
  virtual void Published(const Database& tip) = 0;
  virtual void Sealed(const Database& genesis) = 0;
};

/// Owns the epoch chain and the pending delta. Constructed around an open
/// (unfrozen) genesis database; once the initial facts and program
/// preparation are done, Seal() freezes the genesis as the first served
/// epoch. From then on the database contents only advance through
/// AddFact + Publish.
class SnapshotManager {
 public:
  explicit SnapshotManager(std::unique_ptr<Database> genesis);
  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Mutable access to the genesis database for initial loading and
  /// program preparation (symbol interning). Aborts once sealed.
  Database* genesis();

  /// Builds an epoch's derived-artifact set right after it froze, before it
  /// becomes the serving tip. `epoch` is the freshly frozen database;
  /// `prev` is the predecessor epoch's artifact set (nullptr for the
  /// genesis), enabling O(delta) refresh by reuse. Runs on the sealing /
  /// publishing thread, never concurrently with itself.
  using ArtifactBuilder =
      std::function<std::shared_ptr<const SnapshotArtifact>(
          const Database& epoch,
          const std::shared_ptr<const SnapshotArtifact>& prev)>;

  /// Installs the hook Seal() and every Publish() invoke. Set it before
  /// Seal() so the genesis epoch carries artifacts too; one builder per
  /// manager (the query service installs its eval-layer builder at
  /// construction).
  void SetArtifactBuilder(ArtifactBuilder builder);

  /// Post-swap notification: invoked by every successful Publish() with
  /// the new serving tip, after the swap, off the manager's locks (the
  /// next publish still serializes behind it). One listener per manager —
  /// the query service hangs its answer-cache invalidation sweep here, the
  /// same layering move as SetArtifactBuilder (live/ cannot depend on the
  /// cache layer). The listener must not call back into Publish().
  using PublishListener = std::function<void(const Database& tip)>;
  void SetPublishListener(PublishListener listener);

  /// Freezes the genesis database and publishes it as the first serving
  /// epoch. Idempotent.
  void Seal();
  bool sealed() const;

  /// Installs the write-ahead durability sink (borrowed; must outlive the
  /// manager or be detached with nullptr). Set it before Seal() so the
  /// genesis checkpoint is written; attach it after a recovery replay so
  /// replayed batches are not re-logged.
  void SetDurabilitySink(DurabilitySink* sink);

  /// Stages one fact for the next Publish(). Constants are carried as
  /// strings and interned during Publish (into the successor epoch's
  /// symbol layer), so staging never touches serving state. With a
  /// durability sink the op is appended to the WAL before it is visible in
  /// PendingFacts() — log order always covers staging order.
  void AddFact(std::string pred, std::vector<std::string> args);
  /// Stages one retraction (tombstone) for the next Publish(). Retracting
  /// an absent fact is a no-op counted in PublishStats.
  void DeleteFact(std::string pred, std::vector<std::string> args);
  size_t PendingFacts() const;

  /// Merges every staged fact into a successor snapshot, freezes it
  /// (incremental: only delta layers get index work), and atomically makes
  /// it the serving tip. Runs concurrently with queries; epochs already
  /// handed out stay valid and immutable. An empty delta still bumps the
  /// epoch id but re-shares all storage (no chain growth).
  PublishStats Publish();

  /// The current serving epoch. The returned handle pins the snapshot (and
  /// exactly the storage layers it reads) for as long as the caller keeps
  /// it; queries evaluated against it are unaffected by later publishes.
  std::shared_ptr<const Database> Acquire() const;

  /// Epoch id of the current serving tip.
  uint64_t epoch() const;

  /// Ring of recent publish-pipeline spans (stage → freeze → artifact →
  /// commit → swap per-phase wall times), refused publishes included —
  /// the publish-side twin of the service's query flight recorder.
  /// Surfaced by /debug/epochs and /debug/trace on the admin plane.
  const obs::PublishRecorder& publish_recorder() const {
    return publish_recorder_;
  }

 private:
  mutable std::mutex mu_;  // guards tip_, pending_, genesis_/sealed state
  std::mutex publish_mu_;  // serializes Publish pipelines
  std::unique_ptr<Database> genesis_;         // until sealed
  std::shared_ptr<const Database> tip_;       // after sealing
  /// The genesis snapshot, pinned for the manager's lifetime so raw
  /// pointers handed out pre-seal (e.g. QueryService::database()) stay
  /// valid after the serving tip moves on.
  std::shared_ptr<const Database> genesis_keeper_;
  struct PendingFact {
    std::string pred;
    std::vector<std::string> args;
    bool is_delete = false;
  };
  /// Staging tail shared by AddFact/DeleteFact: logs to the sink (in
  /// staging order, under mu_), then stages in memory.
  void Stage(PendingFact f);
  std::vector<PendingFact> pending_;
  ArtifactBuilder artifact_builder_;  // guarded by mu_
  PublishListener publish_listener_;  // guarded by mu_
  DurabilitySink* sink_ = nullptr;    // guarded by mu_; borrowed
  obs::PublishRecorder publish_recorder_;  // internally synchronized
  uint64_t next_publish_id_ = 0;           // guarded by publish_mu_
};

}  // namespace binchain

#endif  // BINCHAIN_LIVE_SNAPSHOT_MANAGER_H_
