#include <gtest/gtest.h>

#include <set>

#include "baselines/bottom_up.h"
#include "datalog/analysis.h"
#include "datalog/parser.h"
#include "transform/adorn.h"
#include "transform/binarize.h"
#include "transform/simple_bin.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

Program MustParse(const std::string& text, SymbolTable& symbols) {
  auto r = ParseProgram(text, symbols);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.take();
}

Literal MustLiteral(const std::string& text, SymbolTable& symbols) {
  auto r = ParseLiteral(text, symbols);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.take();
}

class AdornTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(AdornTest, SgBfStaysBf) {
  Program p = MustParse(workloads::SgProgramText(), db_.symbols());
  auto adorned =
      AdornProgram(p, db_.symbols(), MustLiteral("sg(a, Y)", db_.symbols()));
  ASSERT_TRUE(adorned.ok()) << adorned.status().message();
  EXPECT_EQ(adorned.value().query.adornment.ToString(), "bf");
  // Two rules, both adorned bf; the recursive one passes bf inward.
  ASSERT_EQ(adorned.value().rules.size(), 2u);
  for (const AdornedRule& r : adorned.value().rules) {
    EXPECT_EQ(r.head.adornment.ToString(), "bf");
    if (r.has_derived) {
      EXPECT_EQ(r.derived_adorned.adornment.ToString(), "bf");
      EXPECT_EQ(r.prefix.size(), 1u);  // up(X, X1)
      EXPECT_EQ(r.suffix.size(), 1u);  // down(Y1, Y)
    }
  }
  EXPECT_TRUE(IsChainProgram(adorned.value()));
}

TEST_F(AdornTest, FlightProgramAdornsBbff) {
  Program p = MustParse(workloads::FlightProgramText(), db_.symbols());
  auto adorned = AdornProgram(
      p, db_.symbols(), MustLiteral("cnx(p0, 3, D, AT)", db_.symbols()));
  ASSERT_TRUE(adorned.ok()) << adorned.status().message();
  EXPECT_EQ(adorned.value().query.adornment.ToString(), "bbff");
  for (const AdornedRule& r : adorned.value().rules) {
    EXPECT_EQ(r.head.adornment.ToString(), "bbff");
    if (r.has_derived) {
      EXPECT_EQ(r.derived_adorned.adornment.ToString(), "bbff");
      // flight, <, is-deptime all belong to the prefix.
      EXPECT_EQ(r.prefix.size(), 3u);
      EXPECT_TRUE(r.suffix.empty());
    }
  }
  EXPECT_TRUE(IsChainProgram(adorned.value()));
}

TEST_F(AdornTest, AlternatingProgramFlipsAdornment) {
  Program p = MustParse(workloads::AlternatingProgramText(), db_.symbols());
  auto adorned =
      AdornProgram(p, db_.symbols(), MustLiteral("p(a, Y)", db_.symbols()));
  ASSERT_TRUE(adorned.ok()) << adorned.status().message();
  std::set<std::string> seen;
  for (const AdornedRule& r : adorned.value().rules) {
    seen.insert(AdornedName(r.head, db_.symbols()));
  }
  EXPECT_EQ(seen, (std::set<std::string>{"p~bf", "p~fb"}));
  EXPECT_TRUE(IsChainProgram(adorned.value()));
}

TEST_F(AdornTest, NonChainProgramDetected) {
  Program p = MustParse(workloads::NonChainProgramText(), db_.symbols());
  auto adorned =
      AdornProgram(p, db_.symbols(), MustLiteral("p(a, Y)", db_.symbols()));
  ASSERT_TRUE(adorned.ok()) << adorned.status().message();
  EXPECT_FALSE(IsChainProgram(adorned.value()));
}

TEST_F(AdornTest, RejectsTwoDerivedLiterals) {
  Program p = MustParse(
      "t(X, Z) :- t(X, Y), t(Y, Z).\nt(X, Y) :- e(X, Y).\n", db_.symbols());
  auto adorned =
      AdornProgram(p, db_.symbols(), MustLiteral("t(a, Y)", db_.symbols()));
  EXPECT_FALSE(adorned.ok());
}

class BinarizeTest : public ::testing::Test {
 protected:
  Database db_;

  std::vector<Tuple> Transformed(const std::string& program_text,
                                 const std::string& query_text,
                                 bool allow_non_chain = false) {
    Program p = MustParse(program_text, db_.symbols());
    Literal q = MustLiteral(query_text, db_.symbols());
    auto r = EvaluateViaBinarization(p, db_, q, {}, allow_non_chain);
    EXPECT_TRUE(r.ok()) << r.status().message();
    return r.ok() ? r.value().tuples : std::vector<Tuple>{};
  }

  std::vector<Tuple> Reference(const std::string& program_text,
                               const std::string& query_text) {
    Program p = MustParse(program_text, db_.symbols());
    Literal q = MustLiteral(query_text, db_.symbols());
    auto r = SeminaiveQuery(p, db_, q, nullptr);
    EXPECT_TRUE(r.ok()) << r.status().message();
    return r.ok() ? r.value() : std::vector<Tuple>{};
  }
};

TEST_F(BinarizeTest, SgMatchesSeminaive) {
  std::string a = workloads::Fig7a(db_, 5);
  std::string q = "sg(" + a + ", Y)";
  EXPECT_EQ(Transformed(workloads::SgProgramText(), q),
            Reference(workloads::SgProgramText(), q));
}

TEST_F(BinarizeTest, SgBothArgumentsBound) {
  // The transformation propagates bindings of *both* arguments (end of
  // Section 3: the plain algorithm cannot, the transformed program can).
  std::string a = workloads::Fig7c(db_, 6);
  std::string q = "sg(" + a + ", b1)";
  auto got = Transformed(workloads::SgProgramText(), q);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(db_.symbols().Name(got[0][1]), "b1");
}

TEST_F(BinarizeTest, FlightConnectionsMatchSeminaive) {
  workloads::FlightSpec spec;
  spec.airports = 6;
  spec.flights = 40;
  spec.horizon = 30;
  std::string p0 = workloads::BuildFlights(db_, spec);
  // Find some departure time of p0 to make the query satisfiable.
  const Relation* flight = db_.Find("flight");
  ASSERT_NE(flight, nullptr);
  std::string dt;
  SymbolId p0_sym = *db_.symbols().Find(p0);
  for (const Tuple& t : flight->tuples()) {
    if (t[0] == p0_sym) {
      dt = db_.symbols().Name(t[1]);
      break;
    }
  }
  ASSERT_FALSE(dt.empty());
  std::string q = "cnx(" + p0 + ", " + dt + ", D, AT)";
  EXPECT_EQ(Transformed(workloads::FlightProgramText(), q),
            Reference(workloads::FlightProgramText(), q));
}

TEST_F(BinarizeTest, AlternatingBindingsMatchSeminaive) {
  Rng rng(11);
  workloads::RandomGraph(db_, "b0", "n", 12, 20, rng);
  // The recursion walks b1; keep it acyclic so the traversal terminates
  // (the C = 0 condition, Theorem 4 (2)).
  workloads::RandomDag(db_, "b1", "n", 12, 20, rng);
  std::string q = "p(n1, Y)";
  EXPECT_EQ(Transformed(workloads::AlternatingProgramText(), q),
            Reference(workloads::AlternatingProgramText(), q));
}

TEST_F(BinarizeTest, NonChainProgramRejectedByDefault) {
  db_.AddFact("b1", {"a", "b"});
  db_.AddFact("b0", {"b", "c"});
  Program p = MustParse(workloads::NonChainProgramText(), db_.symbols());
  Literal q = MustLiteral("p(a, Y)", db_.symbols());
  auto r = EvaluateViaBinarization(p, db_, q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST_F(BinarizeTest, NonChainOverapproximates) {
  // Lemma 5: the transformed program *contains* the original relation; on
  // the paper's counterexample it is a strict superset.
  db_.AddFact("b1", {"a", "b"});
  db_.AddFact("b0", {"b", "c"});
  auto got = Transformed(workloads::NonChainProgramText(), "p(a, Y)",
                         /*allow_non_chain=*/true);
  auto ref = Reference(workloads::NonChainProgramText(), "p(a, Y)");
  ASSERT_EQ(ref.size(), 1u);  // the correct answer is exactly {b}
  EXPECT_EQ(db_.symbols().Name(ref[0][1]), "b");
  std::set<Tuple> got_set(got.begin(), got.end());
  for (const Tuple& t : ref) EXPECT_TRUE(got_set.count(t));
  EXPECT_GT(got.size(), ref.size());
}

TEST_F(BinarizeTest, BinProgramIsBinaryChain) {
  Program p = MustParse(workloads::FlightProgramText(), db_.symbols());
  auto adorned = AdornProgram(
      p, db_.symbols(), MustLiteral("cnx(p0, 3, D, AT)", db_.symbols()));
  ASSERT_TRUE(adorned.ok());
  auto bin = Binarize(adorned.value(), db_.symbols());
  ASSERT_TRUE(bin.ok()) << bin.status().message();
  ProgramAnalysis analysis(bin.value().bin_program, db_.symbols());
  EXPECT_TRUE(analysis.IsBinaryChainProgram());
  EXPECT_TRUE(analysis.IsLinearProgram());
  // The recursive flight rule drops its trivial out-r (paper example).
  bool found_two_literal_rule = false;
  for (const Rule& r : bin.value().bin_program.rules) {
    if (r.body.size() == 2) found_two_literal_rule = true;
  }
  EXPECT_TRUE(found_two_literal_rule);
}

TEST_F(BinarizeTest, SimpleBinMatchesButTouchesEverything) {
  std::string a = workloads::Fig7c(db_, 8);
  Program p = MustParse(workloads::SgProgramText(), db_.symbols());
  Literal q = MustLiteral("sg(" + a + ", Y)", db_.symbols());
  SimpleBinStats stats;
  auto r = SimpleBinQuery(p, db_, q, &stats);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value(), Reference(workloads::SgProgramText(),
                                 "sg(" + a + ", Y)"));
  // The whole bin relation is materialized regardless of the binding.
  EXPECT_GT(stats.bin_edges, 8u);
}

}  // namespace
}  // namespace binchain
