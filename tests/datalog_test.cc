#include <gtest/gtest.h>

#include "datalog/analysis.h"
#include "datalog/ast.h"
#include "datalog/parser.h"
#include "datalog/printer.h"

namespace binchain {
namespace {

Program MustParse(const std::string& text, SymbolTable& symbols) {
  auto r = ParseProgram(text, symbols);
  EXPECT_TRUE(r.ok()) << r.status().message();
  return r.take();
}

TEST(ParserTest, ParsesRulesFactsAndQueries) {
  SymbolTable symbols;
  Program p = MustParse(
      "sg(X, Y) :- flat(X, Y).\n"
      "sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).\n"
      "up(a, b).\n"
      "?- sg(a, Y).\n",
      symbols);
  EXPECT_EQ(p.rules.size(), 2u);
  EXPECT_EQ(p.facts.size(), 1u);
  EXPECT_EQ(p.queries.size(), 1u);
  EXPECT_EQ(p.rules[1].body.size(), 3u);
}

TEST(ParserTest, DistinguishesVariablesAndConstants) {
  SymbolTable symbols;
  Program p = MustParse("r(X, a, 'Quoted Const', 42) :- b(X).\n", symbols);
  const Literal& head = p.rules[0].head;
  EXPECT_TRUE(head.args[0].IsVar());
  EXPECT_TRUE(head.args[1].IsConst());
  EXPECT_TRUE(head.args[2].IsConst());
  EXPECT_EQ(symbols.Name(head.args[2].symbol), "Quoted Const");
  EXPECT_TRUE(head.args[3].IsConst());
}

TEST(ParserTest, InfixComparisonsBecomeLiterals) {
  SymbolTable symbols;
  Program p = MustParse("r(X, Y) :- b(X, Y), X < Y, X != Y.\n", symbols);
  ASSERT_EQ(p.rules[0].body.size(), 3u);
  EXPECT_EQ(symbols.Name(p.rules[0].body[1].predicate), "<");
  EXPECT_EQ(symbols.Name(p.rules[0].body[2].predicate), "!=");
}

TEST(ParserTest, AnonymousVariablesAreFresh) {
  SymbolTable symbols;
  Program p = MustParse("r(X) :- b(X, _), c(_, X).\n", symbols);
  SymbolId v1 = p.rules[0].body[0].args[1].symbol;
  SymbolId v2 = p.rules[0].body[1].args[0].symbol;
  EXPECT_NE(v1, v2);
}

TEST(ParserTest, CommentsAreIgnored) {
  SymbolTable symbols;
  Program p = MustParse("% a comment\nr(a, b). % trailing\n", symbols);
  EXPECT_EQ(p.facts.size(), 1u);
}

TEST(ParserTest, ReflexiveRuleIsARuleNotAFact) {
  SymbolTable symbols;
  Program p = MustParse("p(X, X).\n", symbols);
  EXPECT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.facts.size(), 0u);
}

TEST(ParserTest, ReportsErrorsWithPosition) {
  SymbolTable symbols;
  auto r = ParseProgram("p(X :- q(X).\n", symbols);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("1:"), std::string::npos);
}

TEST(ParserTest, RejectsUnterminatedQuote) {
  SymbolTable symbols;
  auto r = ParseProgram("p('oops).\n", symbols);
  EXPECT_FALSE(r.ok());
}

TEST(PrinterTest, RoundTripsThroughParser) {
  SymbolTable symbols;
  Program p = MustParse(
      "sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).\n"
      "cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, "
      "cnx(D1, DT1, D, AT).\nup(a, b).\n",
      symbols);
  std::string text = ProgramToString(p, symbols);
  Program p2 = MustParse(text, symbols);
  EXPECT_EQ(ProgramToString(p2, symbols), text);
}

TEST(AnalysisTest, ClassifiesSameGeneration) {
  SymbolTable symbols;
  Program p = MustParse(
      "sg(X, Y) :- flat(X, Y).\n"
      "sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).\n",
      symbols);
  ProgramAnalysis a(p, symbols);
  SymbolId sg = *symbols.Find("sg");
  SymbolId up = *symbols.Find("up");
  EXPECT_TRUE(a.IsDerived(sg));
  EXPECT_TRUE(a.IsBase(up));
  EXPECT_TRUE(a.IsRecursivePredicate(sg));
  EXPECT_TRUE(a.IsLinearProgram());
  EXPECT_TRUE(a.IsBinaryChainProgram());
  EXPECT_FALSE(a.IsRegularProgram());  // sg is neither left- nor right-linear
  EXPECT_TRUE(a.BodyHasAtMostOneDerived());
}

TEST(AnalysisTest, TransitiveClosureIsRegular) {
  SymbolTable symbols;
  Program p = MustParse(
      "path(X, Y) :- e(X, Y).\n"
      "path(X, Z) :- e(X, Y), path(Y, Z).\n",
      symbols);
  ProgramAnalysis a(p, symbols);
  SymbolId path = *symbols.Find("path");
  EXPECT_TRUE(a.IsRightLinearPredicate(path));
  EXPECT_FALSE(a.IsLeftLinearPredicate(path));
  EXPECT_TRUE(a.IsRegularProgram());
}

TEST(AnalysisTest, MutualRecursionDetected) {
  SymbolTable symbols;
  Program p = MustParse(
      "p(X, Y) :- a(X, Z), q(Z, Y).\n"
      "q(X, Y) :- b(X, Z), p(Z, Y).\n"
      "r(X, Y) :- p(X, Y).\n",
      symbols);
  ProgramAnalysis a(p, symbols);
  SymbolId sp = *symbols.Find("p");
  SymbolId sq = *symbols.Find("q");
  SymbolId sr = *symbols.Find("r");
  EXPECT_TRUE(a.MutuallyRecursive(sp, sq));
  EXPECT_FALSE(a.MutuallyRecursive(sp, sr));
  EXPECT_FALSE(a.IsRecursivePredicate(sr));
  auto classes = a.MutualRecursionClasses();
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].size(), 2u);
}

TEST(AnalysisTest, NonLinearRuleDetected) {
  SymbolTable symbols;
  Program p = MustParse("t(X, Z) :- t(X, Y), t(Y, Z).\nt(X, Y) :- e(X, Y).\n",
                        symbols);
  ProgramAnalysis a(p, symbols);
  EXPECT_FALSE(a.IsLinearProgram());
}

TEST(AnalysisTest, BinaryChainRuleShapes) {
  SymbolTable symbols;
  Program p = MustParse(
      "ok(X, Z) :- a(X, Y), b(Y, Z).\n"
      "refl(X, X).\n"
      "swapped(X, Z) :- a(Y, X), b(Y, Z).\n"
      "repeated(X, Y) :- a(X, Y), b(Y, Y).\n",
      symbols);
  EXPECT_TRUE(ProgramAnalysis::IsBinaryChainRule(p.rules[0]));
  EXPECT_TRUE(ProgramAnalysis::IsBinaryChainRule(p.rules[1]));
  EXPECT_FALSE(ProgramAnalysis::IsBinaryChainRule(p.rules[2]));
  EXPECT_FALSE(ProgramAnalysis::IsBinaryChainRule(p.rules[3]));
}

TEST(AnalysisTest, SafetyChecks) {
  SymbolTable symbols;
  Program unsafe_head = MustParse("p(X, Y) :- b(X, X).\n", symbols);
  ProgramAnalysis a1(unsafe_head, symbols);
  EXPECT_FALSE(a1.CheckSafety().ok());

  SymbolTable symbols2;
  Program unsafe_builtin = MustParse("p(X, Y) :- b(X, Y), Z < Y.\n", symbols2);
  ProgramAnalysis a2(unsafe_builtin, symbols2);
  EXPECT_FALSE(a2.CheckSafety().ok());

  SymbolTable symbols3;
  Program safe = MustParse("p(X, Y) :- b(X, Y), X < Y.\n", symbols3);
  ProgramAnalysis a3(safe, symbols3);
  EXPECT_TRUE(a3.CheckSafety().ok());
}

TEST(AnalysisTest, LeftLinearProgram) {
  SymbolTable symbols;
  Program p = MustParse(
      "path(X, Y) :- e(X, Y).\n"
      "path(X, Z) :- path(X, Y), e(Y, Z).\n",
      symbols);
  ProgramAnalysis a(p, symbols);
  SymbolId path = *symbols.Find("path");
  EXPECT_TRUE(a.IsLeftLinearPredicate(path));
  EXPECT_FALSE(a.IsRightLinearPredicate(path));
  EXPECT_TRUE(a.IsRegularProgram());
}

}  // namespace
}  // namespace binchain
