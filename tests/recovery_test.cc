// Durable epochs: WAL framing, checkpointing, crash recovery, and the
// fault-injection kill-and-replay matrix. Every named fault point the Wal
// honors is armed in turn; the "process" dies (FaultInjectedCrash unwinds,
// the crashed objects are destroyed) and recovery must land on exactly the
// pre-crash committed tip or the post-publish tip — detected torn-tail
// truncation is fine, silent corruption or a mixed state never is.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "datalog/parser.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "eval/query.h"
#include "live/snapshot_manager.h"
#include "service/query_service.h"
#include "storage/database.h"
#include "util/fault_points.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

namespace fs = std::filesystem;
using durability::CheckpointData;
using durability::ReadCheckpoint;
using durability::RecoveredSystem;
using durability::RecoveryManager;
using durability::RecoverSnapshotManager;
using durability::ScanLog;
using durability::Wal;
using durability::WalOptions;
using durability::WalRecord;

/// Self-cleaning scratch directory for one WAL scenario.
class TempDir {
 public:
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "binchain_wal_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* p = mkdtemp(buf.data());
    EXPECT_NE(p, nullptr);
    if (p != nullptr) path_ = p;
  }
  ~TempDir() {
    std::error_code ec;
    if (!path_.empty()) fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// One staged op of a scenario batch, in the string form the manager takes.
struct Op {
  bool is_delete = false;
  std::string pred;
  std::vector<std::string> args;
};

Op Add(std::string pred, std::vector<std::string> args) {
  return Op{false, std::move(pred), std::move(args)};
}
Op Del(std::string pred, std::vector<std::string> args) {
  return Op{true, std::move(pred), std::move(args)};
}

std::string Key(const std::string& pred, const std::vector<std::string>& args) {
  std::string s = pred + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) s += ",";
    s += args[i];
  }
  return s + ")";
}

/// The fact-set model: what a sequence of batches leaves behind
/// (last-writer-wins per fact key, exactly the storage semantics).
std::set<std::string> Model(const std::vector<const std::vector<Op>*>& batches) {
  std::set<std::string> state;
  for (const std::vector<Op>* batch : batches) {
    for (const Op& op : *batch) {
      if (op.is_delete) {
        state.erase(Key(op.pred, op.args));
      } else {
        state.insert(Key(op.pred, op.args));
      }
    }
  }
  return state;
}

/// The live contents of a snapshot, rendered by name (symbol ids are not
/// comparable across a recovery — spellings are).
std::set<std::string> TipFacts(const Database& db) {
  std::set<std::string> out;
  for (const std::string& name : db.relation_names()) {
    const Relation* rel = db.Find(name);
    for (TupleRef t : rel->tuples()) {
      std::vector<std::string> args;
      for (SymbolId c : t) args.push_back(db.symbols().Name(c));
      out.insert(Key(name, args));
    }
  }
  return out;
}

/// A durable live deployment: manager + attached Wal, built fresh over
/// `genesis_facts` and sealed (the Sealed hook checkpoints the genesis).
struct DurableRig {
  std::unique_ptr<SnapshotManager> manager;
  std::unique_ptr<Wal> wal;
  DurableRig() = default;
  DurableRig(DurableRig&&) = default;
  DurableRig& operator=(DurableRig&&) = default;
  ~DurableRig() {
    if (manager != nullptr) manager->SetDurabilitySink(nullptr);
  }
};

DurableRig StartFresh(const std::string& dir, const WalOptions& options,
                      const std::vector<Op>& genesis_facts) {
  DurableRig rig;
  auto wal = Wal::Open(dir, options);
  EXPECT_TRUE(wal.ok()) << wal.status().message();
  rig.wal = wal.take();
  auto genesis = std::make_unique<Database>();
  for (const Op& f : genesis_facts) {
    genesis->GetOrCreate(f.pred, f.args.size());
    genesis->AddFact(f.pred, f.args);
  }
  rig.manager = std::make_unique<SnapshotManager>(std::move(genesis));
  rig.manager->SetDurabilitySink(rig.wal.get());
  rig.manager->Seal();
  return rig;
}

void Stage(SnapshotManager* manager, const Op& op) {
  if (op.is_delete) {
    manager->DeleteFact(op.pred, op.args);
  } else {
    manager->AddFact(op.pred, op.args);
  }
}

RecoveredSystem Recover(const std::string& dir, WalOptions options = {}) {
  auto sys = RecoverSnapshotManager(dir, options);
  EXPECT_TRUE(sys.ok()) << sys.status().message();
  return sys.take();
}

// ---------------------------------------------------------------------------
// WAL framing and scan.

TEST(WalTest, AppendScanRoundtrip) {
  TempDir dir;
  {
    auto wal = Wal::Open(dir.path()).take();
    ASSERT_TRUE(wal->StageAdd("edge", {"a", "b"}).ok());
    ASSERT_TRUE(wal->StageDelete("edge", {"a", "b"}).ok());
    ASSERT_TRUE(wal->StageAdd("label", {"a", "red", "solid"}).ok());
    ASSERT_TRUE(wal->Commit(7).ok());
  }
  auto scan = ScanLog(Wal::LogPath(dir.path())).take();
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records[0].kind, WalRecord::kAdd);
  EXPECT_EQ(scan.records[0].pred, "edge");
  EXPECT_EQ(scan.records[0].args, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(scan.records[1].kind, WalRecord::kDelete);
  EXPECT_EQ(scan.records[1].pred, "edge");
  EXPECT_EQ(scan.records[2].kind, WalRecord::kAdd);
  EXPECT_EQ(scan.records[2].args,
            (std::vector<std::string>{"a", "red", "solid"}));
  EXPECT_EQ(scan.records[3].kind, WalRecord::kCommit);
  EXPECT_EQ(scan.records[3].epoch, 7u);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.good_bytes, scan.file_bytes);
  EXPECT_EQ(scan.committed_bytes, scan.file_bytes);
}

TEST(WalTest, ScanOfMissingLogIsCleanAndEmpty) {
  TempDir dir;
  auto scan = ScanLog(Wal::LogPath(dir.path())).take();
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.file_bytes, 0u);
  EXPECT_FALSE(scan.torn_tail);
}

TEST(WalTest, TornTailAndUncommittedRecordsTruncatedAtLastCommit) {
  TempDir dir;
  {
    auto wal = Wal::Open(dir.path()).take();
    ASSERT_TRUE(wal->StageAdd("e", {"a", "b"}).ok());
    ASSERT_TRUE(wal->Commit(1).ok());
    // Complete but uncommitted: the manager that staged this is "dead".
    ASSERT_TRUE(wal->StageAdd("e", {"b", "c"}).ok());
  }
  {  // A real power cut leaves a short trailing record.
    std::ofstream f(Wal::LogPath(dir.path()),
                    std::ios::binary | std::ios::app);
    f.write("\xde\xad\xbe", 3);
  }
  auto scan = ScanLog(Wal::LogPath(dir.path())).take();
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_LT(scan.committed_bytes, scan.good_bytes);
  EXPECT_LT(scan.good_bytes, scan.file_bytes);

  auto rm = RecoveryManager::Load(dir.path()).take();
  EXPECT_TRUE(rm->stats().tail_truncated);
  EXPECT_EQ(rm->stats().truncated_bytes, scan.file_bytes - scan.committed_bytes);
  EXPECT_EQ(rm->stats().batches_committed, 1u);
  // Load physically normalized the file: a re-scan is clean and fully
  // committed.
  auto rescan = ScanLog(Wal::LogPath(dir.path())).take();
  EXPECT_FALSE(rescan.torn_tail);
  EXPECT_EQ(rescan.file_bytes, scan.committed_bytes);
  EXPECT_EQ(rescan.committed_bytes, rescan.file_bytes);
}

TEST(WalTest, CheckpointRoundtripExcludesDeadRows) {
  TempDir dir;
  DurableRig rig = StartFresh(dir.path(), WalOptions{},
                              {Add("e", {"a", "b"}), Add("e", {"b", "c"})});
  Stage(rig.manager.get(), Add("e", {"c", "d"}));
  Stage(rig.manager.get(), Del("e", {"a", "b"}));
  PublishStats ps = rig.manager->Publish();
  ASSERT_TRUE(ps.status.ok());
  EXPECT_EQ(ps.facts_deleted, 1u);

  auto tip = rig.manager->Acquire();
  ASSERT_TRUE(rig.wal->Checkpoint(*tip).ok());
  EXPECT_FALSE(fs::exists(Wal::CheckpointTmpPath(dir.path())));

  CheckpointData cp = ReadCheckpoint(Wal::CheckpointPath(dir.path())).take();
  EXPECT_EQ(cp.epoch, 1u);
  ASSERT_EQ(cp.relations.size(), 1u);
  EXPECT_EQ(cp.relations[0].name, "e");
  EXPECT_EQ(cp.relations[0].arity, 2u);
  std::set<std::string> rows;
  for (const auto& row : cp.relations[0].rows) rows.insert(Key("e", row));
  // The tombstoned row is gone from the snapshot image.
  EXPECT_EQ(rows, (std::set<std::string>{"e(b,c)", "e(c,d)"}));
  // A checkpoint truncates the log: everything it covers left the log.
  EXPECT_EQ(rig.wal->log_bytes(), 0u);
}

TEST(WalTest, ReadCheckpointReportsNotFoundWhenAbsent) {
  TempDir dir;
  auto cp = ReadCheckpoint(Wal::CheckpointPath(dir.path()));
  ASSERT_FALSE(cp.ok());
  EXPECT_EQ(cp.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Recovery without faults.

TEST(RecoveryTest, FreshDirectoryRecoversToEmptyGenesis) {
  TempDir dir;
  uint64_t first_epoch = 0;
  {
    RecoveredSystem sys = Recover(dir.path());
    EXPECT_FALSE(sys.stats.checkpoint_found);
    EXPECT_EQ(sys.manager->epoch(), 0u);
    EXPECT_TRUE(TipFacts(*sys.manager->Acquire()).empty());
    // The recovered (empty) system accepts durable publishes.
    sys.manager->AddFact("e", {"a", "b"});
    PublishStats ps = sys.manager->Publish();
    ASSERT_TRUE(ps.status.ok());
    first_epoch = ps.epoch;
    EXPECT_EQ(first_epoch, 1u);
  }
  RecoveredSystem again = Recover(dir.path());
  EXPECT_EQ(again.manager->epoch(), first_epoch);
  EXPECT_EQ(TipFacts(*again.manager->Acquire()),
            (std::set<std::string>{"e(a,b)"}));
  EXPECT_EQ(again.stats.batches_replayed, 1u);
}

TEST(RecoveryTest, TombstoneRetractionSurvivesRestart) {
  TempDir dir;
  const std::vector<Op> genesis = {Add("e", {"a", "b"}), Add("e", {"b", "c"})};
  const std::vector<Op> b1 = {Add("e", {"c", "d"}), Del("e", {"a", "b"})};
  // Delete-then-reinsert across batches: the reinserted fact must
  // resurrect through replay, not stay tombstoned.
  const std::vector<Op> b2 = {Del("e", {"b", "c"}), Add("e", {"a", "b"})};
  {
    DurableRig rig = StartFresh(dir.path(), WalOptions{}, genesis);
    for (const Op& op : b1) Stage(rig.manager.get(), op);
    ASSERT_TRUE(rig.manager->Publish().status.ok());
    for (const Op& op : b2) Stage(rig.manager.get(), op);
    ASSERT_TRUE(rig.manager->Publish().status.ok());
  }
  RecoveredSystem sys = Recover(dir.path());
  const std::set<std::string> expected = Model({&genesis, &b1, &b2});
  EXPECT_EQ(TipFacts(*sys.manager->Acquire()), expected);
  EXPECT_EQ(sys.manager->epoch(), 2u);

  // Acceptance: the recovered tombstone-bearing tip equals a cold database
  // holding exactly the surviving facts.
  Database cold;
  cold.GetOrCreate("e", 2);
  for (const Op& f : genesis) cold.AddFact(f.pred, f.args);
  for (const std::vector<Op>* batch : {&b1, &b2}) {
    for (const Op& op : *batch) {
      if (op.is_delete) {
        cold.DeleteFact(op.pred, op.args);
      } else {
        cold.AddFact(op.pred, op.args);
      }
    }
  }
  EXPECT_EQ(TipFacts(*sys.manager->Acquire()), TipFacts(cold));
}

TEST(RecoveryTest, CheckpointThresholdBoundsLogAndReplay) {
  TempDir dir;
  WalOptions options;
  options.checkpoint_log_bytes = 0;  // checkpoint after every publish
  {
    DurableRig rig = StartFresh(dir.path(), options, {Add("e", {"a", "b"})});
    for (int i = 0; i < 4; ++i) {
      Stage(rig.manager.get(), Add("e", {"n" + std::to_string(i),
                                         "n" + std::to_string(i + 1)}));
      ASSERT_TRUE(rig.manager->Publish().status.ok());
    }
    EXPECT_EQ(rig.wal->checkpoints_written(), 5u);  // Sealed + 4 publishes
    EXPECT_EQ(rig.wal->log_bytes(), 0u);
  }
  RecoveredSystem sys = Recover(dir.path(), options);
  EXPECT_TRUE(sys.stats.checkpoint_found);
  EXPECT_EQ(sys.stats.checkpoint_epoch, 4u);
  EXPECT_EQ(sys.stats.batches_replayed, 0u);  // everything checkpointed
  EXPECT_EQ(sys.manager->epoch(), 4u);
  EXPECT_EQ(TipFacts(*sys.manager->Acquire()).size(), 5u);
}

// ---------------------------------------------------------------------------
// The kill-and-replay fault matrix.

/// What recovery must land on after a scenario crashed (or failed) at one
/// armed point. kOld = the last committed pre-crash tip (epoch 1); kNew =
/// the batch-2 tip (epoch 2). The error-shaped points do not crash: the
/// publish itself must unwind cleanly, with the in-scope assertions below.
enum class Expect {
  kOld,
  kNew,
  kCommitRefused,      // fsync failed: publish aborts, no swap, Wal poisoned
  kCheckpointSkipped,  // checkpoint fsync failed: publish fine, log kept
};

struct MatrixCase {
  const char* point;
  Expect expect;
};

TEST(RecoveryTest, FaultMatrixKillAndReplay) {
  // One entry per fault point the Wal honors, in pipeline order. Append and
  // pre-fsync commit crashes lose the uncommitted batch (kOld, by detected
  // truncation of the uncommitted/torn tail). Once the COMMIT record is in
  // the file the batch is recovered (kNew) — the harness treats written
  // bytes as kept, the conservative direction for replay idempotence; a
  // crash *before* the tip swap still recovering forward is fine, because
  // no pre-crash reader is contradicted by serving a newer committed epoch.
  // Checkpoint-phase crashes all recover kNew: the commit was durable
  // first, and the checkpoint is pure log-compaction.
  const std::vector<MatrixCase> cases = {
      {"wal.append.crash_before", Expect::kOld},
      {"wal.append.short_write", Expect::kOld},
      {"wal.append.crash_after", Expect::kOld},
      {"wal.commit.crash_before", Expect::kOld},
      {"wal.commit.short_write", Expect::kOld},
      {"wal.commit.crash_after_write", Expect::kNew},
      {"wal.commit.fsync_fail", Expect::kCommitRefused},
      {"wal.commit.crash_after_fsync", Expect::kNew},
      {"wal.checkpoint.crash_before", Expect::kNew},
      {"wal.checkpoint.short_write", Expect::kNew},
      {"wal.checkpoint.fsync_fail", Expect::kCheckpointSkipped},
      {"wal.checkpoint.crash_before_rename", Expect::kNew},
      {"wal.checkpoint.crash_after_rename", Expect::kNew},
  };
  {  // The table covers exactly the points the Wal honors.
    std::set<std::string> table, honored;
    for (const MatrixCase& c : cases) table.insert(c.point);
    for (const char* name : Wal::FaultPointNames()) honored.insert(name);
    ASSERT_EQ(table, honored);
  }

  const std::vector<Op> genesis = {Add("e", {"a", "b"}), Add("e", {"b", "c"})};
  const std::vector<Op> batch1 = {Add("e", {"c", "d"})};
  const std::vector<Op> batch2 = {Add("e", {"d", "f"}), Del("e", {"a", "b"})};
  const std::set<std::string> old_state = Model({&genesis, &batch1});
  const std::set<std::string> new_state = Model({&genesis, &batch1, &batch2});

  for (const MatrixCase& c : cases) {
    SCOPED_TRACE(c.point);
    TempDir dir;
    WalOptions options;
    const bool checkpoint_point =
        std::string(c.point).rfind("wal.checkpoint.", 0) == 0;
    // Checkpoint points need Published() to actually checkpoint; the rest
    // keep the default threshold so the log carries the whole history.
    options.checkpoint_log_bytes = checkpoint_point ? 0 : (1u << 20);

    bool crashed = false;
    {
      DurableRig rig = StartFresh(dir.path(), options, genesis);
      for (const Op& op : batch1) Stage(rig.manager.get(), op);
      PublishStats p1 = rig.manager->Publish();
      ASSERT_TRUE(p1.status.ok()) << p1.status.message();
      ASSERT_EQ(p1.epoch, 1u);
      ASSERT_EQ(TipFacts(*rig.manager->Acquire()), old_state);

      FaultInjector::Instance().Arm(c.point);
      PublishStats p2;
      bool publish_returned = false;
      try {
        for (const Op& op : batch2) Stage(rig.manager.get(), op);
        p2 = rig.manager->Publish();
        publish_returned = true;
      } catch (const FaultInjectedCrash&) {
        crashed = true;
      }
      FaultInjector::Instance().Disarm();

      switch (c.expect) {
        case Expect::kCommitRefused:
          // No crash: the publish must unwind cleanly with no tip swap,
          // the batch re-queued, and the log poisoned so nothing later
          // pretends to be durable.
          ASSERT_FALSE(crashed);
          ASSERT_TRUE(publish_returned);
          EXPECT_FALSE(p2.status.ok());
          EXPECT_EQ(rig.manager->epoch(), 1u);
          EXPECT_EQ(TipFacts(*rig.manager->Acquire()), old_state);
          EXPECT_EQ(rig.manager->PendingFacts(), batch2.size());
          EXPECT_FALSE(rig.wal->poisoned().ok());
          {  // A retry refuses too: the poison is sticky.
            PublishStats retry = rig.manager->Publish();
            EXPECT_FALSE(retry.status.ok());
            EXPECT_EQ(rig.manager->epoch(), 1u);
          }
          break;
        case Expect::kCheckpointSkipped:
          // No crash, and checkpoint failure must NOT fail the publish —
          // the log remains authoritative and is retried later.
          ASSERT_FALSE(crashed);
          ASSERT_TRUE(publish_returned);
          EXPECT_TRUE(p2.status.ok()) << p2.status.message();
          EXPECT_EQ(rig.manager->epoch(), 2u);
          EXPECT_TRUE(rig.wal->poisoned().ok());
          break;
        case Expect::kOld:
        case Expect::kNew:
          EXPECT_TRUE(crashed);
          break;
      }
      // The rig goes out of scope here: process death.
    }

    RecoveredSystem sys = Recover(dir.path(), options);
    const std::set<std::string> recovered =
        TipFacts(*sys.manager->Acquire());
    switch (c.expect) {
      case Expect::kOld:
        EXPECT_EQ(recovered, old_state);
        EXPECT_EQ(sys.manager->epoch(), 1u);
        break;
      case Expect::kNew:
      case Expect::kCheckpointSkipped:
        EXPECT_EQ(recovered, new_state);
        EXPECT_EQ(sys.manager->epoch(), 2u);
        break;
      case Expect::kCommitRefused:
        // The COMMIT record was written before the failed fsync; the
        // harness treats written-as-kept, so recovery finds a fully
        // committed batch 2. Both outcomes are prefix-consistent (a failed
        // fsync means "durability unknown") — what matters is the crashed
        // process never served epoch 2 while the log was in doubt, and
        // recovery lands on exactly one of the two batch boundaries.
        EXPECT_EQ(recovered, new_state);
        EXPECT_EQ(sys.manager->epoch(), 2u);
        break;
    }
    if (std::string(c.point) == "wal.checkpoint.crash_after_rename") {
      // Crash between checkpoint rename and log truncation: the log still
      // holds batch 2, but the checkpoint already covers it. Replay must
      // skip it, not double-apply.
      EXPECT_TRUE(sys.stats.checkpoint_found);
      EXPECT_EQ(sys.stats.checkpoint_epoch, 2u);
      EXPECT_GE(sys.stats.batches_skipped, 1u);
      EXPECT_EQ(sys.stats.batches_replayed, 0u);
    }

    // Whatever the crash did, the recovered system keeps accepting durable
    // publishes at the next epoch id.
    const uint64_t recovered_epoch = sys.manager->epoch();
    sys.manager->AddFact("e", {"y", "z"});
    PublishStats pr = sys.manager->Publish();
    EXPECT_TRUE(pr.status.ok()) << pr.status.message();
    EXPECT_EQ(pr.epoch, recovered_epoch + 1);
  }
}

TEST(RecoveryTest, MidBatchAppendCrashLosesWholeBatch) {
  // A crash on the *second* staged record of a batch (countdown arming)
  // leaves a committed-record prefix with no COMMIT: recovery must cut the
  // whole staged batch, never apply half of it.
  TempDir dir;
  {
    DurableRig rig = StartFresh(dir.path(), WalOptions{},
                                {Add("e", {"a", "b"})});
    Stage(rig.manager.get(), Add("e", {"b", "c"}));
    ASSERT_TRUE(rig.manager->Publish().status.ok());

    FaultInjector::Instance().Arm("wal.append.crash_after", 2);
    bool crashed = false;
    try {
      Stage(rig.manager.get(), Add("e", {"c", "d"}));
      Stage(rig.manager.get(), Del("e", {"a", "b"}));
      rig.manager->Publish();
    } catch (const FaultInjectedCrash&) {
      crashed = true;
    }
    FaultInjector::Instance().Disarm();
    ASSERT_TRUE(crashed);
  }
  RecoveredSystem sys = Recover(dir.path());
  EXPECT_EQ(TipFacts(*sys.manager->Acquire()),
            (std::set<std::string>{"e(a,b)", "e(b,c)"}));
  EXPECT_EQ(sys.manager->epoch(), 1u);
  EXPECT_TRUE(sys.stats.tail_truncated);
  EXPECT_GT(sys.stats.truncated_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Query service over a recovered deployment.

std::vector<std::string> Rendered(const std::vector<QueryResponse>& responses,
                                  const Database& db) {
  std::vector<std::string> out;
  for (const QueryResponse& r : responses) {
    for (const Tuple& t : r.tuples) {
      std::string s;
      for (size_t i = 0; i < t.size(); ++i) {
        if (i > 0) s += "|";
        s += db.symbols().Name(t[i]);
      }
      out.push_back(std::move(s));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RecoveryTest, ServiceGatesSubmissionsUntilReplayFinishes) {
  TempDir dir;
  Database workload;
  workloads::Fig7b(workload, 8);

  // Facts of the workload, split genesis / two published deltas.
  std::vector<Op> facts;
  for (const std::string& name : workload.relation_names()) {
    const Relation* rel = workload.Find(name);
    for (TupleRef t : rel->tuples()) {
      std::vector<std::string> args;
      for (SymbolId c : t) args.push_back(workload.symbols().Name(c));
      facts.push_back(Add(name, std::move(args)));
    }
  }
  ASSERT_GE(facts.size(), 6u);
  const size_t genesis_count = facts.size() / 2;
  const size_t mid = genesis_count + (facts.size() - genesis_count) / 2;

  std::vector<QueryRequest> requests;
  for (const std::string& source : {"a1", "a3"}) {
    QueryRequest req;
    req.pred = "sg";
    req.source = source;
    requests.push_back(std::move(req));
  }

  QueryService::Options sopts;
  sopts.num_threads = 2;

  std::vector<std::string> pre_answers;
  uint64_t pre_epoch = 0;
  {  // Phase A: a durable live service, two published batches, then "crash".
    auto wal = Wal::Open(dir.path()).take();
    auto genesis = std::make_unique<Database>();
    for (const Op& f : facts) genesis->GetOrCreate(f.pred, f.args.size());
    for (size_t i = 0; i < genesis_count; ++i) {
      genesis->AddFact(facts[i].pred, facts[i].args);
    }
    Program program =
        ParseProgram(workloads::SgProgramText(), genesis->symbols()).take();
    SnapshotManager manager(std::move(genesis));
    manager.SetDurabilitySink(wal.get());
    QueryService service(&manager, program, sopts);
    ASSERT_TRUE(service.status().ok()) << service.status().message();

    for (size_t i = genesis_count; i < mid; ++i) {
      manager.AddFact(facts[i].pred, facts[i].args);
    }
    ASSERT_TRUE(manager.Publish().status.ok());
    for (size_t i = mid; i < facts.size(); ++i) {
      manager.AddFact(facts[i].pred, facts[i].args);
    }
    ASSERT_TRUE(manager.Publish().status.ok());
    pre_epoch = manager.epoch();

    auto responses = service.EvalBatch(requests);
    for (const QueryResponse& r : responses) ASSERT_TRUE(r.status.ok());
    pre_answers = Rendered(responses, *manager.Acquire());
    EXPECT_FALSE(pre_answers.empty());
    manager.SetDurabilitySink(nullptr);
  }

  // Phase B: recover through the service's gated startup path.
  auto rm = RecoveryManager::Load(dir.path()).take();
  auto genesis = rm->BuildGenesis();
  Program program =
      ParseProgram(workloads::SgProgramText(), genesis->symbols()).take();
  SnapshotManager manager(std::move(genesis));
  QueryService service(&manager, rm.get(), program, sopts);
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  // Gate closed: every submission path answers kUnavailable, never a
  // pre-replay (stale) epoch.
  auto shed = service.EvalBatch(requests);
  ASSERT_EQ(shed.size(), requests.size());
  for (const QueryResponse& r : shed) {
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(r.tuples.empty());
  }
  {
    QueryFuture future = service.Submit(requests[0]);
    QueryResponse r = future.Take();
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  }

  ASSERT_TRUE(service.FinishRecovery().ok());
  EXPECT_EQ(manager.epoch(), pre_epoch);
  auto responses = service.EvalBatch(requests);
  for (const QueryResponse& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.message();
    EXPECT_EQ(r.epoch, pre_epoch);
  }
  EXPECT_EQ(Rendered(responses, *manager.Acquire()), pre_answers);

  // Post-recovery publishes flow through the service-owned WAL.
  manager.AddFact(facts.front().pred, facts.front().args);
  PublishStats ps = manager.Publish();
  EXPECT_TRUE(ps.status.ok()) << ps.status.message();
  EXPECT_EQ(ps.epoch, pre_epoch + 1);
}

}  // namespace
}  // namespace binchain
