// Property-based cross-validation on randomly generated programs and
// databases: every evaluation strategy must compute the same relation as
// seminaive bottom-up evaluation (the semantics oracle). Parameterized over
// RNG seeds.
#include <gtest/gtest.h>

#include <string>

#include "baselines/bottom_up.h"
#include "baselines/counting.h"
#include "baselines/magic.h"
#include "datalog/parser.h"
#include "equations/lemma1.h"
#include "eval/hsu.h"
#include "eval/query.h"
#include "transform/binarize.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

std::string Node(size_t i) { return "u" + std::to_string(i); }

/// Random DAG: edges only from lower- to higher-numbered nodes, so every
/// base relation is acyclic and the traversal terminates by Theorem 4 (2).
void RandomDag(Database& db, const std::string& rel, size_t nodes,
               size_t edges, Rng& rng) {
  for (size_t k = 0; k < edges; ++k) {
    size_t i = rng.Below(nodes - 1);
    size_t j = i + 1 + rng.Below(nodes - 1 - i);
    db.AddFact(rel, {Node(i), Node(j)});
  }
}

/// Random right-linear (regular) binary-chain program over `npreds` derived
/// and `nbase` base predicates.
std::string RandomRegularProgram(Rng& rng, size_t npreds, size_t nbase) {
  std::string text;
  for (size_t i = 0; i < npreds; ++i) {
    std::string p = "p" + std::to_string(i);
    // One or two base rules.
    size_t base_rules = 1 + rng.Below(2);
    for (size_t r = 0; r < base_rules; ++r) {
      text += p + "(X, Y) :- b" + std::to_string(rng.Below(nbase)) +
              "(X, Y).\n";
    }
    // One or two right-linear recursive rules (derived literal last).
    size_t rec_rules = 1 + rng.Below(2);
    for (size_t r = 0; r < rec_rules; ++r) {
      std::string q = "p" + std::to_string(rng.Below(npreds));
      text += p + "(X, Z) :- b" + std::to_string(rng.Below(nbase)) +
              "(X, Y), " + q + "(Y, Z).\n";
    }
  }
  return text;
}

/// Random nonregular linear binary-chain program: every recursive rule has
/// base literals on both sides of the derived literal, so each iteration
/// advances along a base path (termination on acyclic data).
std::string RandomNonRegularProgram(Rng& rng, size_t npreds, size_t nbase) {
  std::string text;
  for (size_t i = 0; i < npreds; ++i) {
    std::string p = "p" + std::to_string(i);
    text += p + "(X, Y) :- b" + std::to_string(rng.Below(nbase)) +
            "(X, Y).\n";
    size_t rec_rules = 1 + rng.Below(2);
    for (size_t r = 0; r < rec_rules; ++r) {
      std::string q = "p" + std::to_string(rng.Below(npreds));
      text += p + "(X, Z) :- b" + std::to_string(rng.Below(nbase)) +
              "(X, A), " + q + "(A, B), b" + std::to_string(rng.Below(nbase)) +
              "(B, Z).\n";
    }
  }
  return text;
}

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededTest, RegularProgramsMatchSeminaiveOnCyclicData) {
  Rng rng(GetParam());
  Database db;
  size_t nbase = 2 + rng.Below(2);
  for (size_t b = 0; b < nbase; ++b) {
    // Cyclic random data is fine: regular queries terminate in one pass.
    workloads::RandomGraph(db, "b" + std::to_string(b), "u", 12, 20, rng);
  }
  std::string text = RandomRegularProgram(rng, 2 + rng.Below(2), nbase);
  auto parsed = ParseProgram(text, db.symbols());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();

  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgram(parsed.value()).ok()) << text;
  for (size_t s = 0; s < 12; s += 3) {
    std::string q = "p0(" + Node(s) + ", Y)";
    auto lit = ParseLiteral(q, db.symbols());
    ASSERT_TRUE(lit.ok());
    auto expected = SeminaiveQuery(parsed.value(), db, lit.value(), nullptr);
    ASSERT_TRUE(expected.ok());
    auto got = qe.Query(lit.value());
    ASSERT_TRUE(got.ok()) << got.status().message() << "\n" << text;
    EXPECT_EQ(got.value().tuples, expected.value()) << q << "\n" << text;
  }
}

TEST_P(SeededTest, RegularProgramsMatchHsu) {
  Rng rng(GetParam() * 7919 + 1);
  Database db;
  for (size_t b = 0; b < 2; ++b) {
    workloads::RandomGraph(db, "b" + std::to_string(b), "u", 10, 18, rng);
  }
  std::string text = RandomRegularProgram(rng, 2, 2);
  auto parsed = ParseProgram(text, db.symbols());
  ASSERT_TRUE(parsed.ok());
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgram(parsed.value()).ok());
  SymbolId p0 = *db.symbols().Find("p0");
  TermId src = qe.views().pool().Unary(db.symbols().Intern(Node(0)));
  auto h = HsuEvaluate(qe.equations(), qe.views(), p0, src, nullptr);
  ASSERT_TRUE(h.ok()) << h.status().message();
  auto r = qe.Query("p0(" + Node(0) + ", Y)");
  ASSERT_TRUE(r.ok());
  std::vector<SymbolId> engine_consts;
  for (const Tuple& t : r.value().tuples) engine_consts.push_back(t[1]);
  std::vector<SymbolId> hsu_consts;
  for (TermId y : h.value()) {
    hsu_consts.push_back(qe.views().pool().AsUnary(y));
  }
  std::sort(engine_consts.begin(), engine_consts.end());
  std::sort(hsu_consts.begin(), hsu_consts.end());
  EXPECT_EQ(engine_consts, hsu_consts) << text;
}

TEST_P(SeededTest, NonRegularProgramsMatchSeminaiveOnDags) {
  Rng rng(GetParam() * 104729 + 3);
  Database db;
  size_t nbase = 2 + rng.Below(2);
  for (size_t b = 0; b < nbase; ++b) {
    RandomDag(db, "b" + std::to_string(b), 14, 24, rng);
  }
  std::string text = RandomNonRegularProgram(rng, 2 + rng.Below(2), nbase);
  auto parsed = ParseProgram(text, db.symbols());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();

  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgram(parsed.value()).ok()) << text;
  for (size_t s = 0; s < 14; s += 4) {
    std::string q = "p0(" + Node(s) + ", Y)";
    auto lit = ParseLiteral(q, db.symbols());
    ASSERT_TRUE(lit.ok());
    auto expected = SeminaiveQuery(parsed.value(), db, lit.value(), nullptr);
    ASSERT_TRUE(expected.ok());
    auto got = qe.Query(lit.value());
    ASSERT_TRUE(got.ok()) << got.status().message() << "\n" << text;
    EXPECT_EQ(got.value().tuples, expected.value()) << q << "\n" << text;
  }
}

TEST_P(SeededTest, MagicMatchesSeminaiveOnRandomSgData) {
  Rng rng(GetParam() * 65537 + 11);
  Database db;
  RandomDag(db, "up", 16, 22, rng);
  RandomDag(db, "down", 16, 22, rng);
  RandomDag(db, "flat", 16, 10, rng);
  auto parsed = ParseProgram(workloads::SgProgramText(), db.symbols());
  ASSERT_TRUE(parsed.ok());
  for (size_t s = 0; s < 16; s += 5) {
    auto lit = ParseLiteral("sg(" + Node(s) + ", Y)", db.symbols());
    ASSERT_TRUE(lit.ok());
    auto expected = SeminaiveQuery(parsed.value(), db, lit.value(), nullptr);
    ASSERT_TRUE(expected.ok());
    auto magic = MagicQuery(parsed.value(), db, lit.value(), nullptr);
    ASSERT_TRUE(magic.ok());
    EXPECT_EQ(magic.value(), expected.value());
  }
}

TEST_P(SeededTest, LevelMethodsMatchEngineOnRandomSgData) {
  Rng rng(GetParam() * 193 + 7);
  Database db;
  RandomDag(db, "up", 14, 20, rng);
  RandomDag(db, "down", 14, 20, rng);
  RandomDag(db, "flat", 14, 12, rng);
  auto parsed = ParseProgram(workloads::SgProgramText(), db.symbols());
  ASSERT_TRUE(parsed.ok());
  auto eqs = TransformToEquations(parsed.value(), db.symbols());
  ASSERT_TRUE(eqs.ok());
  LinearNormalForm nf;
  ASSERT_TRUE(MatchLinearNormalForm(eqs.value().final_system,
                                    *db.symbols().Find("sg"), &nf));
  ViewRegistry views(&db.symbols());
  views.RegisterDatabase(db);

  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgram(parsed.value()).ok());
  for (size_t s = 0; s < 14; s += 4) {
    TermId src = views.pool().Unary(db.symbols().Intern(Node(s)));
    auto counting = CountingQuery(views, nf, src, 1000, nullptr);
    ASSERT_TRUE(counting.ok());
    auto hn = HenschenNaqviQuery(views, nf, src, 1000, nullptr);
    ASSERT_TRUE(hn.ok());
    auto rc = ReverseCountingQuery(views, nf, src, 1000, nullptr);
    ASSERT_TRUE(rc.ok());
    EXPECT_EQ(counting.value(), hn.value());
    EXPECT_EQ(counting.value(), rc.value());

    auto engine = qe.Query("sg(" + Node(s) + ", Y)");
    ASSERT_TRUE(engine.ok());
    std::vector<SymbolId> engine_consts, counting_consts;
    for (const Tuple& t : engine.value().tuples) {
      engine_consts.push_back(t[1]);
    }
    for (TermId y : counting.value()) {
      counting_consts.push_back(views.pool().AsUnary(y));
    }
    std::sort(engine_consts.begin(), engine_consts.end());
    std::sort(counting_consts.begin(), counting_consts.end());
    EXPECT_EQ(engine_consts, counting_consts);
  }
}

TEST_P(SeededTest, BinarizationMatchesSeminaiveOnAlternating) {
  Rng rng(GetParam() * 31 + 17);
  Database db;
  workloads::RandomGraph(db, "b0", "u", 10, 16, rng);
  RandomDag(db, "b1", 10, 14, rng);  // the recursion walks b1: keep acyclic
  auto parsed =
      ParseProgram(workloads::AlternatingProgramText(), db.symbols());
  ASSERT_TRUE(parsed.ok());
  for (size_t s = 0; s < 10; s += 3) {
    auto lit = ParseLiteral("p(" + Node(s) + ", Y)", db.symbols());
    ASSERT_TRUE(lit.ok());
    auto expected = SeminaiveQuery(parsed.value(), db, lit.value(), nullptr);
    ASSERT_TRUE(expected.ok());
    auto got = EvaluateViaBinarization(parsed.value(), db, lit.value());
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(got.value().tuples, expected.value());
  }
}

TEST_P(SeededTest, InvertedQueriesMatchForward) {
  Rng rng(GetParam() * 131 + 29);
  Database db;
  workloads::RandomGraph(db, "b0", "u", 12, 24, rng);
  std::string text =
      "p0(X, Y) :- b0(X, Y).\n"
      "p0(X, Z) :- b0(X, Y), p0(Y, Z).\n";
  auto parsed = ParseProgram(text, db.symbols());
  ASSERT_TRUE(parsed.ok());
  QueryEngine qe(&db);
  ASSERT_TRUE(qe.LoadProgram(parsed.value()).ok());
  auto all = qe.Query("p0(X, Y)");
  ASSERT_TRUE(all.ok());
  for (size_t t = 0; t < 12; t += 5) {
    auto r = qe.Query("p0(X, " + Node(t) + ")");
    ASSERT_TRUE(r.ok());
    std::vector<Tuple> expected;
    SymbolId target = db.symbols().Intern(Node(t));
    for (const Tuple& tup : all.value().tuples) {
      if (tup[1] == target) expected.push_back(tup);
    }
    EXPECT_EQ(r.value().tuples, expected);
  }
}

TEST_P(SeededTest, Lemma1StatementsHoldOnRandomPrograms) {
  Rng rng(GetParam() * 8191 + 5);
  SymbolTable symbols;
  // Mix of regular and nonregular programs.
  std::string text = (GetParam() % 2 == 0)
                         ? RandomRegularProgram(rng, 3, 3)
                         : RandomNonRegularProgram(rng, 3, 3);
  auto parsed = ParseProgram(text, symbols);
  ASSERT_TRUE(parsed.ok());
  auto r = TransformToEquations(parsed.value(), symbols);
  ASSERT_TRUE(r.ok()) << r.status().message() << "\n" << text;
  Status s = VerifyLemma1Statements(parsed.value(), symbols, r.value());
  EXPECT_TRUE(s.ok()) << s.message() << "\n" << text;
}

/// 3-ary chain program: colored reachability. The color argument rides
/// along bound, so the adorned program is a chain program with tuple terms
/// of width 2.
TEST_P(SeededTest, ColoredPathBinarizationMatchesSeminaive) {
  Rng rng(GetParam() * 523 + 41);
  Database db;
  const char* colors[] = {"red", "green"};
  for (size_t k = 0; k < 40; ++k) {
    size_t i = rng.Below(11);
    size_t j = i + 1 + rng.Below(11 - i);
    db.AddFact("edge", {Node(i), colors[rng.Below(2)], Node(j)});
  }
  const char* program_text =
      "cpath(X, C, Y) :- edge(X, C, Y).\n"
      "cpath(X, C, Y) :- edge(X, C, Z), cpath(Z, C, Y).\n";
  auto parsed = ParseProgram(program_text, db.symbols());
  ASSERT_TRUE(parsed.ok());
  for (const char* color : colors) {
    auto lit = ParseLiteral("cpath(u0, " + std::string(color) + ", Y)",
                            db.symbols());
    ASSERT_TRUE(lit.ok());
    auto expected = SeminaiveQuery(parsed.value(), db, lit.value(), nullptr);
    ASSERT_TRUE(expected.ok());
    auto got = EvaluateViaBinarization(parsed.value(), db, lit.value());
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_TRUE(got.value().is_chain);
    EXPECT_EQ(got.value().tuples, expected.value());
  }
}

/// 4-ary chain program whose recursive rule has both a prefix and a suffix
/// join: pairs advance through b1 and the answer pair is produced by b2.
TEST_P(SeededTest, PairChainBinarizationMatchesSeminaive) {
  Rng rng(GetParam() * 811 + 3);
  Database db;
  for (size_t k = 0; k < 30; ++k) {
    size_t i = rng.Below(9);
    size_t j = i + 1 + rng.Below(9 - i);
    db.AddFact("b1", {Node(i), Node(i + 100), Node(j), Node(j + 100)});
    db.AddFact("b2", {Node(i), Node(i + 100), Node(j), Node(j + 100)});
  }
  const char* program_text =
      "r(X, Y, U, V) :- b2(X, Y, U, V).\n"
      "r(X, Y, U, V) :- b1(X, Y, Z, W), r(Z, W, U2, V2), b2(U2, V2, U, V).\n";
  auto parsed = ParseProgram(program_text, db.symbols());
  ASSERT_TRUE(parsed.ok());
  auto lit = ParseLiteral("r(u0, u100, U, V)", db.symbols());
  ASSERT_TRUE(lit.ok());
  auto expected = SeminaiveQuery(parsed.value(), db, lit.value(), nullptr);
  ASSERT_TRUE(expected.ok());
  auto got = EvaluateViaBinarization(parsed.value(), db, lit.value());
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_TRUE(got.value().is_chain);
  EXPECT_EQ(got.value().tuples, expected.value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

}  // namespace
}  // namespace binchain
