#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/relation.h"
#include "storage/symbol_table.h"
#include "storage/term_pool.h"

namespace binchain {
namespace {

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable t;
  SymbolId a = t.Intern("alpha");
  SymbolId b = t.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, t.Intern("alpha"));
  EXPECT_EQ(t.Name(a), "alpha");
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTableTest, FindReturnsExistingOnly) {
  SymbolTable t;
  EXPECT_FALSE(t.Find("x").has_value());
  SymbolId x = t.Intern("x");
  ASSERT_TRUE(t.Find("x").has_value());
  EXPECT_EQ(*t.Find("x"), x);
}

TEST(SymbolTableTest, IntegerSpellingsCarryValues) {
  SymbolTable t;
  EXPECT_EQ(t.IntValue(t.Intern("42")).value_or(-1), 42);
  EXPECT_EQ(t.IntValue(t.Intern("-7")).value_or(0), -7);
  EXPECT_FALSE(t.IntValue(t.Intern("x42")).has_value());
  EXPECT_FALSE(t.IntValue(t.Intern("-")).has_value());
  EXPECT_FALSE(t.IntValue(t.Intern("")).has_value());
}

TEST(RelationTest, InsertDeduplicates) {
  Relation r(2);
  EXPECT_TRUE(r.Insert({1, 2}));
  EXPECT_FALSE(r.Insert({1, 2}));
  EXPECT_TRUE(r.Insert({2, 1}));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({1, 2}));
  EXPECT_FALSE(r.Contains({3, 3}));
}

TEST(RelationTest, MaskedLookupFindsMatches) {
  Relation r(2);
  r.Insert({1, 10});
  r.Insert({1, 11});
  r.Insert({2, 10});
  std::vector<Tuple> got;
  r.ForEachMatch(0b01, {1, 0}, [&](const Tuple& t) { got.push_back(t); });
  EXPECT_EQ(got.size(), 2u);
  got.clear();
  r.ForEachMatch(0b10, {0, 10}, [&](const Tuple& t) { got.push_back(t); });
  EXPECT_EQ(got.size(), 2u);
  got.clear();
  r.ForEachMatch(0b11, {1, 11}, [&](const Tuple& t) { got.push_back(t); });
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Tuple{1, 11}));
}

TEST(RelationTest, IndexAbsorbsLaterInsertions) {
  Relation r(2);
  r.Insert({1, 10});
  std::vector<Tuple> got;
  r.ForEachMatch(0b01, {1, 0}, [&](const Tuple& t) { got.push_back(t); });
  EXPECT_EQ(got.size(), 1u);
  r.Insert({1, 11});  // after the index was built
  got.clear();
  r.ForEachMatch(0b01, {1, 0}, [&](const Tuple& t) { got.push_back(t); });
  EXPECT_EQ(got.size(), 2u);
}

TEST(RelationTest, FullScanWithEmptyMask) {
  Relation r(3);
  r.Insert({1, 2, 3});
  r.Insert({4, 5, 6});
  size_t count = 0;
  r.ForEachMatch(0, {0, 0, 0}, [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST(RelationTest, FetchCountTracksRetrievals) {
  Relation r(2);
  r.Insert({1, 2});
  r.Insert({1, 3});
  r.ResetFetchCount();
  r.ForEachMatch(0b01, {1, 0}, [](const Tuple&) {});
  EXPECT_EQ(r.fetch_count(), 2u);
}

TEST(DatabaseTest, AddFactCreatesRelationsAndInterns) {
  Database db;
  db.AddFact("up", {"a", "b"});
  db.AddFact("up", {"a", "b"});  // duplicate
  db.AddFact("up", {"b", "c"});
  const Relation* up = db.Find("up");
  ASSERT_NE(up, nullptr);
  EXPECT_EQ(up->size(), 2u);
  EXPECT_EQ(db.Find("down"), nullptr);
}

TEST(DatabaseTest, RelationNamesPreserveOrder) {
  Database db;
  db.AddFact("zeta", {"a"});
  db.AddFact("alpha", {"b"});
  ASSERT_EQ(db.relation_names().size(), 2u);
  EXPECT_EQ(db.relation_names()[0], "zeta");
  EXPECT_EQ(db.relation_names()[1], "alpha");
}

TEST(TermPoolTest, InternsUnaryAndTupleTerms) {
  TermPool pool;
  TermId a = pool.Unary(7);
  TermId b = pool.InternTuple({7});
  EXPECT_EQ(a, b);
  TermId pair = pool.InternTuple({7, 8});
  EXPECT_NE(a, pair);
  EXPECT_EQ(pool.Get(pair), (Tuple{7, 8}));
  EXPECT_EQ(pool.AsUnary(a), 7u);
  TermId empty = pool.InternTuple({});
  EXPECT_EQ(pool.Get(empty).size(), 0u);
}

}  // namespace
}  // namespace binchain
