#include <gtest/gtest.h>

#include <set>

#include "equations/equations.h"
#include "eval/engine.h"
#include "eval/rex_image.h"
#include "rex/rex_parser.h"
#include "storage/database.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

TEST(RexParserTest, PrecedenceAndRoundTrip) {
  SymbolTable symbols;
  for (const char* text : {
           "a U b.c",
           "(a U b).c",
           "b.(d.e)*.c",
           "a^-1",
           "flat U up.sg.down",
           "b.c*.c U a.q2.b.c*",
       }) {
    auto e = ParseRex(text, symbols);
    ASSERT_TRUE(e.ok()) << text << ": " << e.status().message();
    // Printing and reparsing is a fixed point.
    std::string printed = RexToString(e.value(), symbols);
    auto e2 = ParseRex(printed, symbols);
    ASSERT_TRUE(e2.ok()) << printed;
    EXPECT_TRUE(RexEquals(e.value(), e2.value()))
        << text << " vs " << printed;
  }
}

TEST(RexParserTest, SpecialAtoms) {
  SymbolTable symbols;
  EXPECT_TRUE(ParseRex("0", symbols).value()->IsEmpty());
  EXPECT_TRUE(ParseRex("id", symbols).value()->IsId());
  EXPECT_TRUE(ParseRex("id.a U 0", symbols).value()->IsPred(
      *symbols.Find("a")));
}

TEST(RexParserTest, InverseDistributesOverConcat) {
  SymbolTable symbols;
  auto e = ParseRex("(a.b)^-1", symbols);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(RexToString(e.value(), symbols), "b^-1.a^-1");
}

TEST(RexParserTest, Errors) {
  SymbolTable symbols;
  EXPECT_FALSE(ParseRex("a U", symbols).ok());
  EXPECT_FALSE(ParseRex("(a", symbols).ok());
  EXPECT_FALSE(ParseRex("a b", symbols).ok());
  EXPECT_FALSE(ParseRex("", symbols).ok());
}

TEST(EquationParserTest, ParsesSystems) {
  SymbolTable symbols;
  auto sys = ParseEquationSystem(
      "% the same-generation equation\n"
      "sg = flat U up.sg.down\n",
      symbols);
  ASSERT_TRUE(sys.ok()) << sys.status().message();
  LinearNormalForm nf;
  EXPECT_TRUE(MatchLinearNormalForm(sys.value(), *symbols.Find("sg"), &nf));
}

TEST(EquationParserTest, RejectsDuplicatesAndDerivedInverse) {
  SymbolTable symbols;
  EXPECT_FALSE(ParseEquationSystem("p = a\np = b\n", symbols).ok());
  auto inv = ParseEquationSystem("p = a U p^-1.b\n", symbols);
  ASSERT_FALSE(inv.ok());
  EXPECT_EQ(inv.status().code(), StatusCode::kUnsupported);
}

TEST(EquationParserTest, ParsedSystemEvaluates) {
  // Kuittinen-style direct use: no Datalog program at all, just equations
  // over the EDB, evaluated by the graph-traversal engine.
  Database db;
  std::string a = workloads::Fig7c(db, 6);
  auto sys = ParseEquationSystem("sg = flat U up.sg.down\n", db.symbols());
  ASSERT_TRUE(sys.ok());
  ViewRegistry views(&db.symbols());
  views.RegisterDatabase(db);
  Engine engine(&sys.value(), &views);
  EvalStats stats;
  auto r = engine.EvalFrom(*db.symbols().Find("sg"),
                           views.pool().Unary(*db.symbols().Find(a)), {},
                           &stats);
  ASSERT_TRUE(r.ok()) << r.status().message();
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(db.symbols().Name(views.pool().AsUnary(r.value()[0])), "b1");
}

TEST(Lemma2Test, PartialAnswersMatchExpandedExpressions) {
  // Lemma 2 (1): after iteration i the partial answer equals the answer to
  // the query under p = p_i, where p_i is e_p unrolled i times.
  Database db;
  std::string a = workloads::Fig7b(db, 7);
  auto sys = ParseEquationSystem("sg = flat U up.sg.down\n", db.symbols());
  ASSERT_TRUE(sys.ok());
  SymbolId sg = *db.symbols().Find("sg");
  ViewRegistry views(&db.symbols());
  views.RegisterDatabase(db);
  Engine engine(&sys.value(), &views);
  TermId src = views.pool().Unary(*db.symbols().Find(a));

  EvalStats stats;
  auto full = engine.EvalFrom(sg, src, {}, &stats);
  ASSERT_TRUE(full.ok());
  ASSERT_GE(stats.answers_per_iteration.size(), 3u);

  for (size_t i = 1; i <= stats.answers_per_iteration.size(); ++i) {
    RexPtr pi = ExpandPi(sys.value(), sg, i);
    auto img = ImageUnderRex(views, pi, {src});
    ASSERT_TRUE(img.ok()) << img.status().message();
    EXPECT_EQ(img.value().size(), stats.answers_per_iteration[i - 1])
        << "iteration " << i;
  }
}

TEST(Lemma2Test, SgiIsHornerForm) {
  // The paper: sg_2 = flat U up.(flat U up.flat.down).down — the Horner
  // form, smaller by a factor of i than the expanded sum.
  SymbolTable symbols;
  auto sys = ParseEquationSystem("sg = flat U up.sg.down\n", symbols);
  ASSERT_TRUE(sys.ok());
  SymbolId sg = *symbols.Find("sg");
  EXPECT_TRUE(ExpandPi(sys.value(), sg, 0)->IsEmpty());
  EXPECT_EQ(RexToString(ExpandPi(sys.value(), sg, 1), symbols), "flat");
  EXPECT_EQ(RexToString(ExpandPi(sys.value(), sg, 2), symbols),
            "flat U up.flat.down");
  EXPECT_EQ(RexToString(ExpandPi(sys.value(), sg, 3), symbols),
            "flat U up.(flat U up.flat.down).down");
  // Leaf growth is linear in i (Horner, 3i - 2), not quadratic as in the
  // expanded sum sg'_i the paper contrasts it with.
  EXPECT_EQ(LeafCount(ExpandPi(sys.value(), sg, 5)), 13u);
}

TEST(IterationTraceTest, CyclicDataHasSilentPeriods) {
  // Figure 8 discussion: "the algorithm performs periodically m successive
  // iterations during which nothing new is added to the answer set".
  Database db;
  std::string a = workloads::Fig8(db, 3, 5);
  auto sys = ParseEquationSystem("sg = flat U up.sg.down\n", db.symbols());
  ASSERT_TRUE(sys.ok());
  ViewRegistry views(&db.symbols());
  views.RegisterDatabase(db);
  Engine engine(&sys.value(), &views);
  EvalOptions opt;
  opt.use_cyclic_bound = true;
  EvalStats stats;
  auto r = engine.EvalFrom(*db.symbols().Find("sg"),
                           views.pool().Unary(*db.symbols().Find(a)), opt,
                           &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 5u);
  ASSERT_EQ(stats.answers_per_iteration.size(), 15u);  // m*n iterations
  // Answers arrive exactly every m = 3 iterations.
  size_t arrivals = 0;
  for (size_t i = 0; i < stats.answers_per_iteration.size(); ++i) {
    uint64_t prev = (i == 0) ? 0 : stats.answers_per_iteration[i - 1];
    if (stats.answers_per_iteration[i] > prev) {
      ++arrivals;
      // Growth steps are m iterations apart.
      EXPECT_EQ(i % 3, 2u) << "answer arrived at iteration " << i + 1;
    }
  }
  EXPECT_EQ(arrivals, 5u);
}

}  // namespace
}  // namespace binchain
