// Epoch-scoped shared evaluation artifacts: the snapshot-owned adjacency /
// closure / demand memos must (a) enumerate exactly what the EDB probes
// they replace enumerate, (b) refresh in O(delta) across epochs — entries
// whose relations are untouched are reused by pointer, only dependents of
// the delta are invalidated — and (c) fill safely under concurrent probes
// (this test runs under ThreadSanitizer in CI alongside service_test).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datalog/parser.h"
#include "eval/eval_artifacts.h"
#include "eval/query.h"
#include "eval/relation_view.h"
#include "live/snapshot_manager.h"
#include "service/query_service.h"
#include "workloads/workloads.h"

namespace binchain {
namespace {

std::vector<SymbolId> DirectSuccessors(const Relation& rel, SymbolId u) {
  std::vector<SymbolId> out;
  const SymbolId key[2] = {u, 0};
  rel.ForEachMatch(0b01u, TupleRef(key, 2),
                   [&](TupleRef m) { out.push_back(m[1]); });
  return out;
}

std::vector<SymbolId> DirectPredecessors(const Relation& rel, SymbolId v) {
  std::vector<SymbolId> out;
  const SymbolId key[2] = {0, v};
  rel.ForEachMatch(0b10u, TupleRef(key, 2),
                   [&](TupleRef m) { out.push_back(m[0]); });
  return out;
}

TEST(SharedAdjacencyTest, MatchesDirectProbesInOrder) {
  Relation rel(2);
  rel.Insert({3, 7});
  rel.Insert({3, 5});
  rel.Insert({9, 3});
  rel.Insert({3, 11});
  rel.Insert({5, 3});
  rel.Freeze();
  SharedAdjacency adj(&rel);
  EXPECT_FALSE(adj.built());
  adj.EnsureBuilt();
  ASSERT_TRUE(adj.built());
  for (SymbolId c = 0; c <= 12; ++c) {
    std::vector<SymbolId> succ, pred;
    adj.ForEachSucc(c, [&](SymbolId v) { succ.push_back(v); });
    adj.ForEachPred(c, [&](SymbolId u) { pred.push_back(u); });
    EXPECT_EQ(succ, DirectSuccessors(rel, c)) << "succ of " << c;
    EXPECT_EQ(pred, DirectPredecessors(rel, c)) << "pred of " << c;
  }
}

TEST(SharedAdjacencyTest, ChainedLayerCoversDeltaRowsOnly) {
  auto base = std::make_shared<Relation>(2);
  for (SymbolId i = 0; i < 6; ++i) base->Insert(Tuple{i, i + 1});
  base->Freeze();
  auto base_adj = std::make_shared<SharedAdjacency>(base.get());
  base_adj->EnsureBuilt();

  auto delta = Relation::Extend(base);
  delta->Insert(Tuple{2, 50});  // second successor for 2, after {2, 3}
  delta->Insert(Tuple{50, 0});
  delta->Freeze();
  SharedAdjacency chained(delta.get(), base_adj);
  EXPECT_EQ(chained.chain_depth(), 1u);
  chained.EnsureBuilt();
  for (SymbolId c = 0; c <= 51; ++c) {
    std::vector<SymbolId> succ, pred;
    chained.ForEachSucc(c, [&](SymbolId v) { succ.push_back(v); });
    chained.ForEachPred(c, [&](SymbolId u) { pred.push_back(u); });
    EXPECT_EQ(succ, DirectSuccessors(*delta, c)) << "succ of " << c;
    EXPECT_EQ(pred, DirectPredecessors(*delta, c)) << "pred of " << c;
  }
  // Base rows enumerate before delta rows (global insertion order).
  std::vector<SymbolId> two;
  chained.ForEachSucc(2, [&](SymbolId v) { two.push_back(v); });
  EXPECT_EQ(two, (std::vector<SymbolId>{3, 50}));
}

TEST(SharedAdjacencyTest, ConcurrentBuildAndProbeAgree) {
  // The fill-once probe path under contention: every thread races
  // EnsureBuilt, then enumerates; all must see the one built memo. Runs
  // under TSan in CI.
  Relation rel(2);
  for (SymbolId i = 0; i < 400; ++i) rel.Insert(Tuple{i % 37, (i * 7) % 53});
  rel.Freeze();
  std::vector<std::vector<SymbolId>> expected(64);
  for (SymbolId c = 0; c < 64; ++c) expected[c] = DirectSuccessors(rel, c);

  SharedAdjacency adj(&rel);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      adj.EnsureBuilt();
      for (SymbolId c = 0; c < 64; ++c) {
        std::vector<SymbolId> got;
        adj.ForEachSucc(c, [&](SymbolId v) { got.push_back(v); });
        if (got != expected[c]) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SharedDemandMemoTest, JoinsOncePerSourceAcrossViews) {
  Database db;
  db.AddFact("e", {"a", "b"});
  db.AddFact("e", {"a", "c"});
  db.AddFact("e", {"b", "c"});
  auto parsed = ParseProgram("h(X, Y) :- e(X, Y).", db.symbols());
  ASSERT_TRUE(parsed.ok());
  std::vector<Literal> body = parsed.value().rules[0].body;
  SymbolId x = *db.symbols().Find("X");
  SymbolId y = *db.symbols().Find("Y");
  SymbolId a = *db.symbols().Find("a");

  SharedDemandMemo shared;
  // Two "workers": separate pools, one shared memo.
  ViewRegistry views1(&db.symbols()), views2(&db.symbols());
  DemandJoinView v1(&db, &views1.pool(), body, {x}, {Term::Var(y)});
  DemandJoinView v2(&db, &views2.pool(), body, {x}, {Term::Var(y)});
  v1.BindSharedMemo(&shared);
  v2.BindSharedMemo(&shared);

  auto run = [&db](DemandJoinView& v, TermPool& pool, SymbolId src) {
    std::set<SymbolId> out;
    v.ForEachSucc(pool.Unary(src), [&](TermId t) { out.insert(pool.Get(t)[0]); });
    return out;
  };
  std::set<SymbolId> first = run(v1, views1.pool(), a);
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(shared.entries(), 1u);

  // The second view's probe is served by the shared memo: same outputs,
  // zero additional EDB fetches, one memo hit.
  uint64_t fetches_before = db.TotalFetches();
  uint64_t hits_before = EvalArtifacts::ThreadMemoHits();
  std::set<SymbolId> second = run(v2, views2.pool(), a);
  EXPECT_EQ(second, first);
  EXPECT_EQ(db.TotalFetches(), fetches_before);
  EXPECT_EQ(EvalArtifacts::ThreadMemoHits(), hits_before + 1);
}

std::shared_ptr<const EvalArtifacts> ArtifactsOf(const SnapshotManager& m) {
  auto arts =
      std::dynamic_pointer_cast<const EvalArtifacts>(m.Acquire()->artifact());
  EXPECT_NE(arts, nullptr);
  return arts;
}

TEST(EvalArtifactsTest, PublishInvalidatesOnlyDependentEntries) {
  auto genesis = std::make_unique<Database>();
  workloads::Fig7c(*genesis, 12);
  Program program =
      ParseProgram(workloads::SgProgramText(), genesis->symbols()).take();
  SnapshotManager manager(std::move(genesis));
  QueryService service(&manager, program, {2});
  ASSERT_TRUE(service.status().ok()) << service.status().message();

  auto e0 = manager.Acquire();
  auto a0 = ArtifactsOf(manager);
  ASSERT_NE(a0, nullptr);
  SymbolId up = *e0->symbols().Find("up");
  SymbolId flat = *e0->symbols().Find("flat");
  SymbolId down = *e0->symbols().Find("down");
  // Genesis build: one adjacency entry per binary relation, eagerly built.
  EXPECT_EQ(a0->refresh_stats().adjacency_entries, 3u);
  for (SymbolId p : {up, flat, down}) {
    ASSERT_NE(a0->Adjacency(p), nullptr);
    EXPECT_TRUE(a0->Adjacency(p)->built());
  }

  // Delta touching `up` only.
  manager.AddFact("up", {"a12", "a13"});
  manager.Publish();
  auto e1 = manager.Acquire();
  auto a1 = ArtifactsOf(manager);
  ASSERT_NE(a1, nullptr);
  ASSERT_NE(a1, a0);

  // Untouched relations: the very same memo objects serve the new epoch.
  EXPECT_EQ(a1->Adjacency(flat), a0->Adjacency(flat));
  EXPECT_EQ(a1->Adjacency(down), a0->Adjacency(down));
  // The touched relation got a chained O(delta) extension, not a rebuild.
  EXPECT_NE(a1->Adjacency(up), a0->Adjacency(up));
  EXPECT_EQ(a1->Adjacency(up)->relation(), e1->Find("up"));
  EXPECT_EQ(a1->Adjacency(up)->chain_depth(), 1u);
  const EvalArtifacts::RefreshStats& rs = a1->refresh_stats();
  EXPECT_EQ(rs.adjacency_reused, 2u);
  EXPECT_EQ(rs.adjacency_extended, 1u);
  EXPECT_EQ(rs.adjacency_rebuilt, 0u);
  // sg reads up/flat/down transitively, so its closure/source cells are
  // invalidated (fresh, unfilled).
  EXPECT_EQ(rs.derived_entries, rs.derived_invalidated);
  EXPECT_EQ(rs.derived_reused, 0u);

  // A duplicate-only publish changes no relation: everything is reused.
  manager.AddFact("up", {"a12", "a13"});
  manager.Publish();
  auto a2 = ArtifactsOf(manager);
  ASSERT_NE(a2, nullptr);
  EXPECT_EQ(a2->Adjacency(up), a1->Adjacency(up));
  EXPECT_EQ(a2->Adjacency(flat), a1->Adjacency(flat));
  EXPECT_EQ(a2->refresh_stats().adjacency_reused, 3u);
  EXPECT_EQ(a2->refresh_stats().derived_reused,
            a2->refresh_stats().derived_entries);
}

TEST(EvalArtifactsTest, ServiceServesFromSharedArtifactsWithZeroFetches) {
  // The all-pairs-style batch the refactor targets: every constant as a
  // source, plus all-free sweeps, over 1 and 4 workers. Identical results,
  // zero EDB fetches (every probe is memo-served), memo hits visible.
  Database db;
  workloads::Fig7b(db, 16);
  Program program =
      ParseProgram(workloads::SgProgramText(), db.symbols()).take();
  std::set<std::string> constants;
  for (const std::string& name : db.relation_names()) {
    for (TupleRef t : db.Find(name)->tuples()) {
      for (SymbolId c : t) constants.insert(db.symbols().Name(c));
    }
  }
  std::vector<QueryRequest> batch;
  for (const std::string& c : constants) batch.push_back({"sg", c, "", {}});
  batch.push_back({"sg", "", "", {}});  // all-free sweep

  QueryService seq(&db, program, {1});
  ASSERT_TRUE(seq.status().ok());
  BatchStats seq_stats;
  auto expected = seq.EvalBatch(batch, &seq_stats);
  EXPECT_EQ(seq_stats.failed, 0u);
  EXPECT_EQ(seq_stats.fetches, 0u);
  EXPECT_GT(seq_stats.total.memo_hits, 0u);

  QueryService par(&db, program, {4});
  ASSERT_TRUE(par.status().ok());
  BatchStats par_stats;
  auto got = par.EvalBatch(batch, &par_stats);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].tuples, expected[i].tuples) << i;
    EXPECT_EQ(got[i].fetches, expected[i].fetches) << i;
  }
  EXPECT_EQ(par_stats.fetches, 0u);
}

TEST(EvalArtifactsTest, CompatiblePlanRejectsDifferentRuleSets) {
  // Artifacts cache closure/source results keyed by predicate id, so a
  // service must not adopt an attached set that was built for a different
  // rule set over the same spellings.
  Database db;
  db.AddFact("e", {"a", "b"});
  db.AddFact("f", {"b", "c"});
  Program prog_e =
      ParseProgram("p(X, Y) :- e(X, Y). p(X, Z) :- e(X, Y), p(Y, Z).",
                   db.symbols())
          .take();
  Program prog_f =
      ParseProgram("p(X, Y) :- f(X, Y). p(X, Z) :- f(X, Y), p(Y, Z).",
                   db.symbols())
          .take();
  auto plan_e = PrepareProgram(&db, prog_e, /*compile_machines=*/false);
  auto plan_f = PrepareProgram(&db, prog_f, /*compile_machines=*/false);
  ASSERT_TRUE(plan_e.ok() && plan_f.ok());
  db.Freeze();
  auto arts = EvalArtifacts::BuildFor(db, plan_e.value(), nullptr);
  EXPECT_TRUE(arts->CompatiblePlan(*plan_e.value(), db.symbols()));
  EXPECT_FALSE(arts->CompatiblePlan(*plan_f.value(), db.symbols()));
}

TEST(EvalArtifactsTest, SharedClosureCacheAcrossConcurrentAllFreeQueries) {
  // Pure-closure program: all-free queries are answered by the shared
  // Tarjan result; the fill-once cell must survive 4 workers racing to
  // publish it. Runs under TSan in CI.
  Database db;
  db.AddFact("e", {"a", "b"});
  db.AddFact("e", {"b", "c"});
  db.AddFact("e", {"c", "a"});
  db.AddFact("e", {"c", "d"});
  Program program =
      ParseProgram(workloads::PathProgramText(), db.symbols()).take();

  QueryService service(&db, program, {4});
  ASSERT_TRUE(service.status().ok()) << service.status().message();
  // Concurrent *separate* submissions (a single batch of identical
  // requests would be collapsed by in-batch dedup into one evaluation —
  // the point here is 4 workers racing on the fill-once cell).
  constexpr size_t kClients = 12;
  std::vector<QueryResponse> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (size_t i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        responses[i] = service.Eval(QueryRequest{"path", "", "", {}});
      });
    }
    for (std::thread& t : clients) t.join();
  }
  uint64_t memo_hits = 0, fetches = 0;
  for (const QueryResponse& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.message();
    memo_hits += r.stats.memo_hits;
    fetches += r.fetches;
  }
  const std::vector<Tuple>& first = responses[0].tuples;
  EXPECT_FALSE(first.empty());
  for (const QueryResponse& r : responses) EXPECT_EQ(r.tuples, first);
  // Every query past the initial fill races hits the shared cell. Up to
  // one query *per worker* can see the cell empty before the first publish
  // lands (they compute concurrently, first wins, none of them counts a
  // hit), so the guaranteed floor is the client count minus the workers.
  EXPECT_GE(memo_hits, kClients - 4);
  EXPECT_EQ(fetches, 0u);
}

}  // namespace
}  // namespace binchain
